#!/usr/bin/env bash
# Tier-1 verification for the dnasim workspace, run fully offline.
#
# 1. Guard: no Cargo manifest may depend on anything outside the tree.
#    Every dependency must be `path = …` (directly or via
#    `workspace = true` resolving to a path entry in the root manifest).
# 2. Guard: non-test library sources must stay panic-free — no unwrap(),
#    expect(), panic!(), unreachable!(), todo!() or unimplemented!()
#    outside test modules (testkit and bench are test infrastructure and
#    exempt). Robustness is DESIGN.md §8's contract: typed errors or
#    quarantine, never a panic.
# 3. Guard: `crates/parallel` (the thread pool everything else trusts for
#    determinism) must itself stay free of registry dependencies — every
#    dependency line in its manifest is `path = …` / `workspace = true`.
# 4. Build the whole workspace in release mode with the network disabled.
# 5. Run the full test suite twice — at DNASIM_THREADS=1 and
#    DNASIM_THREADS=4 — so every pool-backed stage is exercised both
#    serial and parallel; the golden end-to-end snapshot
#    (tests/golden_pipeline.rs → golden_pipeline.txt) is diffed under
#    both thread counts, which is DESIGN.md §9's contract that thread
#    count never changes output.
# 6. Run the chaos fault-injection suite in smoke mode.
# 7. Guard: `crates/metrics` (the edit-distance kernels clustering and
#    evaluation trust) must stay free of registry dependencies too.
# 8. Run the kernel differential suite twice — once with the runtime SIMD
#    dispatch active and once with DNASIM_SIMD=off — so the Myers kernels
#    (single-pattern and the multi-pattern bank tier) agree bit-for-bit
#    with the scalar DP oracle on both sides of the dispatch. A guard also
#    checks that every metrics source using `unsafe` carries
#    `deny(unsafe_op_in_unsafe_fn)` and SAFETY comments.
# 9. Streaming equivalence: the bounded-memory pipeline
#    (tests/streaming_equivalence.rs) must be byte-identical to the
#    in-memory path at DNASIM_THREADS=1 and =4 — including the online
#    streaming clusterer diffed against the materialised greedy pass on
#    seeded pools at batch sizes {1, 7, 64, ∞}, and the fully windowed
#    archive whose peak-resident-reads gauge must stay bounded — and the
#    CLI `--stream` / `--batch-size` paths must reproduce the
#    whole-dataset files exactly (DESIGN.md §11, §16). The cluster crate
#    suite also re-runs under DNASIM_SIMD=off so lane accounting holds on
#    the portable fallback.
# 10. Serve soak smoke: the multi-tenant batch RPC tier must answer ≥200
#    interleaved requests byte-identically to isolated serial execution
#    (tests/serve_soak.rs in smoke mode), and the `dnasim serve` pipe must
#    honour the exit-code contract (responses + exit 0 on valid JSONL,
#    usage + exit 2 on a malformed line, never a panic).
# 11. Bench smoke: scripts/bench.sh --fast must produce parseable reports
#    (the workspace groups, the cross-format parse group, the
#    multi-pattern clustering group, and the streaming-clusterer group),
#    and the committed BENCH_004.json … BENCH_009.json reports (when
#    present) must still validate.
# 12. Cancellation chaos smoke: the `dnasim chaos --json` grid (including
#    the stalled-source / sink-write-failure / budget-exhaustion
#    streaming faults) must report clean, and a deadline-metered serve
#    pipe must answer with a typed `deadline` response and exit 0
#    (DESIGN.md §13).
# 13. Lint gate: `cargo clippy --all-targets -- -D warnings` must pass.
#
# Usage: scripts/verify.sh

set -euo pipefail

cd "$(dirname "$0")/.."

echo "== hermetic-dependency guard =="

# Scan dependency sections of every manifest. A line introduces a non-path
# dependency if it carries a bare version requirement, or a `version`,
# `git`, or `registry` key. `workspace = true` lines are fine: the
# workspace table itself is scanned by the same rules.
fail=0
while IFS= read -r manifest; do
    bad=$(awk '
        /^\[/ {
            in_deps = ($0 ~ /^\[(workspace\.)?(dev-|build-)?dependencies([].]|$)/)
            next
        }
        !in_deps { next }
        /^[[:space:]]*(#|$)/ { next }
        {
            line = $0
            sub(/#.*/, "", line)
            # bare `name = "1.2"` version shorthand
            if (line ~ /^[[:space:]]*[A-Za-z0-9_-]+[[:space:]]*=[[:space:]]*"/) { print; next }
            # inline tables or multi-line entries with registry-ish keys
            if (line ~ /(^|[{,[:space:]])(version|git|registry)[[:space:]]*=/) { print; next }
        }
    ' "$manifest")
    if [ -n "$bad" ]; then
        echo "ERROR: non-path dependency in $manifest:" >&2
        echo "$bad" | sed 's/^/    /' >&2
        fail=1
    fi
done < <(find . -name Cargo.toml -not -path './target/*')

if [ "$fail" -ne 0 ]; then
    echo "The workspace must stay hermetic: in-tree path dependencies only." >&2
    exit 1
fi
echo "ok: all dependencies are in-tree path crates"

echo "== panic-guard (library sources) =="

# Library code must degrade with typed errors, never panic. Scan every
# non-test source: cut each file at its first `#[cfg(test)]` (test modules
# sit at the end of files in this workspace), skip comment/doc-comment
# lines, and flag the panicking constructs. testkit and bench are test
# infrastructure and exempt.
fail=0
while IFS= read -r src; do
    case "$src" in
        ./crates/testkit/*|./crates/bench/*) continue ;;
    esac
    bad=$(awk '
        /^[[:space:]]*#\[cfg\(test\)\]/ { exit }
        /^[[:space:]]*\/\// { next }
        /\.unwrap\(\)|\.expect\(|panic!\(|unreachable!\(|todo!\(|unimplemented!\(/ {
            printf "%d:%s\n", NR, $0
        }
    ' "$src")
    if [ -n "$bad" ]; then
        echo "ERROR: panicking construct in non-test library code: $src" >&2
        echo "$bad" | sed 's/^/    /' >&2
        fail=1
    fi
done < <(find ./crates/*/src ./src -name '*.rs')

if [ "$fail" -ne 0 ]; then
    echo "Library code must return typed errors (DnasimError), not panic." >&2
    exit 1
fi
echo "ok: non-test library sources are panic-free"

echo "== parallel-crate dependency guard =="

# The determinism of every pool-backed stage rests on crates/parallel, so
# its manifest gets a belt-and-braces check on top of the workspace-wide
# scan: every dependency line must be an in-tree path or workspace entry.
bad=$(awk '
    /^\[/ { in_deps = ($0 ~ /^\[(dev-|build-)?dependencies([].]|$)/); next }
    !in_deps { next }
    /^[[:space:]]*(#|$)/ { next }
    !/path[[:space:]]*=/ && !/workspace[[:space:]]*=[[:space:]]*true/ {
        printf "%d:%s\n", NR, $0
    }
' crates/parallel/Cargo.toml)
if [ -n "$bad" ]; then
    echo "ERROR: crates/parallel/Cargo.toml has a non-path dependency:" >&2
    echo "$bad" | sed 's/^/    /' >&2
    exit 1
fi
echo "ok: crates/parallel depends only on in-tree path crates"

echo "== metrics-crate dependency guard =="

# The Myers kernels sit on the clustering hot path and in the oracle
# contract; keep crates/metrics free of registry dependencies so the
# kernel code can never silently pick up an external implementation.
bad=$(awk '
    /^\[/ { in_deps = ($0 ~ /^\[(dev-|build-)?dependencies([].]|$)/); next }
    !in_deps { next }
    /^[[:space:]]*(#|$)/ { next }
    !/path[[:space:]]*=/ && !/workspace[[:space:]]*=[[:space:]]*true/ {
        printf "%d:%s\n", NR, $0
    }
' crates/metrics/Cargo.toml)
if [ -n "$bad" ]; then
    echo "ERROR: crates/metrics/Cargo.toml has a non-path dependency:" >&2
    echo "$bad" | sed 's/^/    /' >&2
    exit 1
fi
echo "ok: crates/metrics depends only on in-tree path crates"

echo "== offline release build =="
# --workspace so the dnasim CLI binary is rebuilt too: the root
# manifest is both a workspace and the facade package, and a bare
# `cargo build` would only cover the facade (leaving a stale
# target/release/dnasim for the CLI smoke below).
CARGO_NET_OFFLINE=true cargo build --release --workspace

# The full suite runs under two thread counts. tests/golden_pipeline.rs
# builds its pool with ThreadPool::from_env(), so each run re-diffs the
# checked-in golden_pipeline.txt snapshot under that worker count, and
# tests/parallel_equivalence.rs covers the 1/2/4/8 grid internally.
echo "== test suite (DNASIM_THREADS=1) =="
CARGO_NET_OFFLINE=true DNASIM_THREADS=1 cargo test -q

echo "== test suite (DNASIM_THREADS=4) =="
CARGO_NET_OFFLINE=true DNASIM_THREADS=4 cargo test -q

echo "== chaos suite (smoke) =="
CARGO_NET_OFFLINE=true DNASIM_BENCH_FAST=1 cargo test -q -p dnasim-faults --test chaos

echo "== binary corpus fuzz (smoke, 128 seeded mutations) =="
# Truncations, bit flips, and length lies over an encoded binary corpus
# must yield typed errors or clean prefixes — no panic, no misread
# (crates/faults/src/corpus.rs; DESIGN.md §14).
CARGO_NET_OFFLINE=true cargo test -q -p dnasim-faults --lib smoke_sweep_of_128_mutations

echo "== unsafe-SIMD-module guard (crates/metrics) =="
# Any metrics source reaching for `unsafe` (the AVX2/NEON kernel backends)
# must opt into the strict unsafe-block rules and justify every block.
fail=0
while IFS= read -r src; do
    if grep -q '\bunsafe\b' "$src"; then
        if ! grep -q 'deny(unsafe_op_in_unsafe_fn)' "$src"; then
            echo "ERROR: $src uses unsafe without #![deny(unsafe_op_in_unsafe_fn)]" >&2
            fail=1
        fi
        if ! grep -q 'SAFETY:' "$src"; then
            echo "ERROR: $src uses unsafe without any SAFETY: comments" >&2
            fail=1
        fi
    fi
done < <(find crates/metrics/src -name '*.rs')
if [ "$fail" -ne 0 ]; then
    echo "SIMD modules must deny implicit unsafe and document every block." >&2
    exit 1
fi
echo "ok: metrics unsafe modules deny implicit unsafe and carry SAFETY comments"

echo "== kernel differential suite (Myers vs scalar oracle, SIMD dispatch on) =="
CARGO_NET_OFFLINE=true cargo test -q -p dnasim-metrics --test myers_differential

echo "== kernel differential suite (DNASIM_SIMD=off, portable fallback) =="
CARGO_NET_OFFLINE=true DNASIM_SIMD=off cargo test -q -p dnasim-metrics --test myers_differential

echo "== cluster suite (DNASIM_SIMD=off, scalar lane accounting) =="
# ClusterStats lane accounting and the reference-assignment paths must be
# identical when the multi-pattern bank tier falls back to scalar lanes.
CARGO_NET_OFFLINE=true DNASIM_SIMD=off cargo test -q -p dnasim-cluster

echo "== streaming equivalence suite (DNASIM_THREADS=1 and 4) =="
# Includes the streaming-vs-materialised clusterer diff on seeded pools
# and the windowed-archive batch/thread invariance matrix.
CARGO_NET_OFFLINE=true DNASIM_THREADS=1 cargo test -q --test streaming_equivalence
CARGO_NET_OFFLINE=true DNASIM_THREADS=4 cargo test -q --test streaming_equivalence

echo "== streaming CLI smoke (bounded-memory end to end) =="
dnasim=target/release/dnasim
stream_dir=$(mktemp -d /tmp/dnasim-stream-smoke.XXXXXX)
"$dnasim" generate --out "$stream_dir/twin.txt" --small --clusters 48 --seed 9
"$dnasim" generate --out "$stream_dir/twin-stream.txt" --small --clusters 48 --seed 9 \
    --stream --batch-size 32
cmp "$stream_dir/twin.txt" "$stream_dir/twin-stream.txt"
"$dnasim" simulate --data "$stream_dir/twin.txt" --model keoliya:spatial \
    --out "$stream_dir/sim.txt"
"$dnasim" simulate --data "$stream_dir/twin.txt" --model keoliya:spatial \
    --out "$stream_dir/sim-stream.txt" --stream --batch-size 32
cmp "$stream_dir/sim.txt" "$stream_dir/sim-stream.txt"
"$dnasim" archive --bytes 512 --batch-size 32 | grep -q "round-trip OK"

# Cross-format golden step: the same generation in binary, converted back
# to text, must be byte-identical to the text-path output — and the
# binary-input streamed simulate must reproduce the text-input one.
"$dnasim" generate --out "$stream_dir/twin.dnb" --small --clusters 48 --seed 9 \
    --stream --batch-size 32 --format binary
"$dnasim" convert --in "$stream_dir/twin.dnb" --out "$stream_dir/twin-roundtrip.txt" \
    --format text
cmp "$stream_dir/twin.txt" "$stream_dir/twin-roundtrip.txt"
"$dnasim" simulate --data "$stream_dir/twin.dnb" --model keoliya:spatial \
    --out "$stream_dir/sim-binary-in.txt" --stream --batch-size 32 --prefetch
cmp "$stream_dir/sim.txt" "$stream_dir/sim-binary-in.txt"
rm -rf "$stream_dir"
echo "ok: streamed CLI output is byte-identical across formats; archive decode window bounded"

echo "== serve soak smoke (differential, multi-tenant) =="
# ≥240 interleaved requests across 8 tenants at 1/2/4 workers, every
# response diffed against isolated serial execution, injected faults
# quarantined per tenant (tests/serve_soak.rs, smoke scale).
CARGO_NET_OFFLINE=true DNASIM_BENCH_FAST=1 cargo test -q --test serve_soak

echo "== serve CLI smoke (exit-code contract) =="
serve_out=$(printf '%s\n' \
    '{"tenant":"acme","request_id":"r1","op":"corrupt","count":3,"len":30,"reads":2}' \
    '{"tenant":"beta","request_id":"r2","op":"archive","bytes":48,"reads":4}' \
    | "$dnasim" serve --seed 7)
[ "$(printf '%s\n' "$serve_out" | wc -l)" -eq 2 ]
printf '%s' "$serve_out" | grep -q '"request_id":"r1"'
# A malformed line must exit 2 with a diagnostic on stderr, never panic.
set +e
serve_err=$(printf 'not json\n' | "$dnasim" serve 2>&1 >/dev/null)
serve_code=$?
set -e
[ "$serve_code" -eq 2 ]
printf '%s' "$serve_err" | grep -q "request line 1"
echo "ok: serve answers valid JSONL and rejects malformed lines with exit 2"

echo "== cancellation chaos smoke (budgets, deadlines, shedding) =="
# The machine-readable chaos grid must be clean, including the streaming
# faults that attack budgets mid-flight (DESIGN.md §13).
chaos_json=$("$dnasim" chaos --seeds 2 --json)
printf '%s' "$chaos_json" | grep -q '"clean":true'
printf '%s' "$chaos_json" | grep -q '"budget-exhaustion"'
# A request that cannot meet its work-unit deadline answers with a typed
# deadline response — exit 0, no abort, no panic.
deadline_out=$(printf '%s\n' \
    '{"tenant":"acme","request_id":"d1","op":"generate","clusters":12,"len":30,"deadline":3}' \
    | "$dnasim" serve --seed 5)
printf '%s' "$deadline_out" | grep -q '"status":"deadline"'
printf '%s' "$deadline_out" | grep -q '"spent":3'
# An explicit cluster budget sheds oversized requests as overloaded.
shed_out=$(printf '%s\n' \
    '{"tenant":"acme","request_id":"big","op":"generate","clusters":500,"len":24}' \
    | "$dnasim" serve --cluster-budget 32)
printf '%s' "$shed_out" | grep -q '"reason":"overloaded"'
echo "ok: chaos grid clean; deadlines and shedding answer with typed responses"

echo "== clippy lint gate =="
CARGO_NET_OFFLINE=true cargo clippy --all-targets -q -- -D warnings
echo "ok: clippy is clean at -D warnings"

echo "== bench smoke (fast mode) =="
smoke_report=$(mktemp /tmp/dnasim-bench-smoke.XXXXXX.json)
smoke_parse_report=$(mktemp /tmp/dnasim-bench-parse-smoke.XXXXXX.json)
smoke_mp_report=$(mktemp /tmp/dnasim-bench-mp-smoke.XXXXXX.json)
smoke_stream_report=$(mktemp /tmp/dnasim-bench-stream-smoke.XXXXXX.json)
trap 'rm -f "$smoke_report" "$smoke_parse_report" "$smoke_mp_report" "$smoke_stream_report"' EXIT
scripts/bench.sh --fast --out "$smoke_report" --parse-out "$smoke_parse_report" \
    --multipattern-out "$smoke_mp_report" --stream-out "$smoke_stream_report"
CARGO_NET_OFFLINE=true cargo run -q --release -p dnasim-bench --bin benchreport -- \
    check "$smoke_report"
CARGO_NET_OFFLINE=true cargo run -q --release -p dnasim-bench --bin benchreport -- \
    check "$smoke_parse_report"
CARGO_NET_OFFLINE=true cargo run -q --release -p dnasim-bench --bin benchreport -- \
    check "$smoke_mp_report"
CARGO_NET_OFFLINE=true cargo run -q --release -p dnasim-bench --bin benchreport -- \
    check "$smoke_stream_report"

for report in BENCH_004.json BENCH_005.json BENCH_006.json BENCH_007.json BENCH_008.json \
              BENCH_009.json; do
    if [ -f "$report" ]; then
        echo "== committed benchmark report ($report) =="
        CARGO_NET_OFFLINE=true cargo run -q --release -p dnasim-bench --bin benchreport -- \
            check "$report"
    fi
done

echo "verify: OK"
