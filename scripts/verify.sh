#!/usr/bin/env bash
# Tier-1 verification for the dnasim workspace, run fully offline.
#
# 1. Guard: no Cargo manifest may depend on anything outside the tree.
#    Every dependency must be `path = …` (directly or via
#    `workspace = true` resolving to a path entry in the root manifest).
# 2. Build the whole workspace in release mode with the network disabled.
# 3. Run the full test suite.
#
# Usage: scripts/verify.sh

set -euo pipefail

cd "$(dirname "$0")/.."

echo "== hermetic-dependency guard =="

# Scan dependency sections of every manifest. A line introduces a non-path
# dependency if it carries a bare version requirement, or a `version`,
# `git`, or `registry` key. `workspace = true` lines are fine: the
# workspace table itself is scanned by the same rules.
fail=0
while IFS= read -r manifest; do
    bad=$(awk '
        /^\[/ {
            in_deps = ($0 ~ /^\[(workspace\.)?(dev-|build-)?dependencies([].]|$)/)
            next
        }
        !in_deps { next }
        /^[[:space:]]*(#|$)/ { next }
        {
            line = $0
            sub(/#.*/, "", line)
            # bare `name = "1.2"` version shorthand
            if (line ~ /^[[:space:]]*[A-Za-z0-9_-]+[[:space:]]*=[[:space:]]*"/) { print; next }
            # inline tables or multi-line entries with registry-ish keys
            if (line ~ /(^|[{,[:space:]])(version|git|registry)[[:space:]]*=/) { print; next }
        }
    ' "$manifest")
    if [ -n "$bad" ]; then
        echo "ERROR: non-path dependency in $manifest:" >&2
        echo "$bad" | sed 's/^/    /' >&2
        fail=1
    fi
done < <(find . -name Cargo.toml -not -path './target/*')

if [ "$fail" -ne 0 ]; then
    echo "The workspace must stay hermetic: in-tree path dependencies only." >&2
    exit 1
fi
echo "ok: all dependencies are in-tree path crates"

echo "== offline release build =="
CARGO_NET_OFFLINE=true cargo build --release

echo "== test suite =="
CARGO_NET_OFFLINE=true cargo test -q

echo "verify: OK"
