#!/usr/bin/env bash
# Performance measurement for the dnasim workspace, run fully offline.
#
# Runs the five benchmark suites that track the paper pipeline's hot
# paths — kernel (edit-distance metrics), clustering, end-to-end pipeline,
# the bounded-memory streaming path, and the serve batch RPC loop — with
# the harness's JSONL emission enabled, then assembles the per-suite records into one machine-readable
# report via `benchreport`.
#
# Usage: scripts/bench.sh [--fast] [--out FILE]
#
#   --fast    smoke mode: DNASIM_BENCH_FAST=1 shrinks warmup/measurement to
#             CI levels and the report is tagged "fast" (the kernel-speedup
#             gate is skipped — smoke timings are not meaningful).
#   --out     report path (default: BENCH_006.json at the repo root).

set -euo pipefail

cd "$(dirname "$0")/.."

mode=full
out=BENCH_006.json
while [ "$#" -gt 0 ]; do
    case "$1" in
        --fast) mode=fast ;;
        --out)
            shift
            out=${1:?--out needs a value}
            ;;
        *)
            echo "usage: scripts/bench.sh [--fast] [--out FILE]" >&2
            exit 2
            ;;
    esac
    shift
done

if [ "$mode" = fast ]; then
    export DNASIM_BENCH_FAST=1
fi
export CARGO_NET_OFFLINE=true

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

# group name → bench target; each suite appends to its own JSONL file.
run_suite() {
    local group=$1 target=$2
    echo "== bench suite: $group ($target, mode $mode) =="
    DNASIM_BENCH_JSON="$tmpdir/$group.jsonl" \
        cargo bench -q -p dnasim-bench --bench "$target"
}

run_suite kernel metrics
run_suite clustering clustering
run_suite pipeline pipeline
run_suite streaming streaming
run_suite serve serve

echo "== assemble $out =="
gate=()
if [ "$mode" = full ]; then
    # ISSUE acceptance: the Myers kernel must beat the scalar DP by ≥3× on
    # 110 nt strands.
    gate=(--min-speedup 3.0)
fi
cargo run -q --release -p dnasim-bench --bin benchreport -- \
    assemble --mode "$mode" --out "$out" --bench-id BENCH_006 "${gate[@]}" \
    kernel="$tmpdir/kernel.jsonl" \
    clustering="$tmpdir/clustering.jsonl" \
    pipeline="$tmpdir/pipeline.jsonl" \
    streaming="$tmpdir/streaming.jsonl" \
    serve="$tmpdir/serve.jsonl"

cargo run -q --release -p dnasim-bench --bin benchreport -- check "$out"
echo "bench: OK ($out)"
