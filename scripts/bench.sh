#!/usr/bin/env bash
# Performance measurement for the dnasim workspace, run fully offline.
#
# Runs the six benchmark suites that track the paper pipeline's hot
# paths — kernel (edit-distance metrics), clustering, end-to-end pipeline,
# the bounded-memory streaming path, the serve batch RPC loop, and the
# cross-format parse path — with the harness's JSONL emission enabled,
# then assembles the per-suite records into three machine-readable
# reports via `benchreport`: the workspace report (BENCH_006,
# kernel-speedup gate), the cross-format parse report (BENCH_007,
# binary-parse gate: binary-with-prefetch must beat text parsing by ≥2×),
# the multi-pattern clustering report (BENCH_008: banked assignment
# with the error-ball prefilter must beat the repeated single-pattern
# loop by ≥2×, and the prefilter must prune ≥30% of candidate kernel
# evaluations), and the streaming-clusterer report (BENCH_009: the online
# clusterer must hold throughput parity — ≥0.75× — with the materialised
# pass, and its resident state must stay a small fraction of the pool).
#
# Usage: scripts/bench.sh [--fast] [--out FILE] [--parse-out FILE]
#                         [--multipattern-out FILE] [--stream-out FILE]
#
#   --fast       smoke mode: DNASIM_BENCH_FAST=1 shrinks warmup/measurement
#                to CI levels and the reports are tagged "fast" (all
#                speedup gates are skipped — smoke timings are not
#                meaningful).
#   --out        workspace report path (default: BENCH_006.json).
#   --parse-out  parse report path (default: BENCH_007.json).
#   --multipattern-out  clustering report path (default: BENCH_008.json).
#   --stream-out streaming-clusterer report path (default: BENCH_009.json).

set -euo pipefail

cd "$(dirname "$0")/.."

mode=full
out=BENCH_006.json
parse_out=BENCH_007.json
multipattern_out=BENCH_008.json
stream_out=BENCH_009.json
while [ "$#" -gt 0 ]; do
    case "$1" in
        --fast) mode=fast ;;
        --out)
            shift
            out=${1:?--out needs a value}
            ;;
        --parse-out)
            shift
            parse_out=${1:?--parse-out needs a value}
            ;;
        --multipattern-out)
            shift
            multipattern_out=${1:?--multipattern-out needs a value}
            ;;
        --stream-out)
            shift
            stream_out=${1:?--stream-out needs a value}
            ;;
        *)
            echo "usage: scripts/bench.sh [--fast] [--out FILE] [--parse-out FILE] [--multipattern-out FILE] [--stream-out FILE]" >&2
            exit 2
            ;;
    esac
    shift
done

if [ "$mode" = fast ]; then
    export DNASIM_BENCH_FAST=1
fi
export CARGO_NET_OFFLINE=true

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

# group name → bench target; each suite appends to its own JSONL file.
run_suite() {
    local group=$1 target=$2
    echo "== bench suite: $group ($target, mode $mode) =="
    DNASIM_BENCH_JSON="$tmpdir/$group.jsonl" \
        cargo bench -q -p dnasim-bench --bench "$target"
}

run_suite kernel metrics
run_suite clustering clustering
run_suite pipeline pipeline
run_suite streaming streaming
run_suite serve serve
run_suite parse parse

echo "== assemble $out =="
gate=()
if [ "$mode" = full ]; then
    # ISSUE acceptance: the Myers kernel must beat the scalar DP by ≥3× on
    # 110 nt strands.
    gate=(--min-speedup 3.0)
fi
cargo run -q --release -p dnasim-bench --bin benchreport -- \
    assemble --mode "$mode" --out "$out" --bench-id BENCH_006 "${gate[@]}" \
    kernel="$tmpdir/kernel.jsonl" \
    clustering="$tmpdir/clustering.jsonl" \
    pipeline="$tmpdir/pipeline.jsonl" \
    streaming="$tmpdir/streaming.jsonl" \
    serve="$tmpdir/serve.jsonl"

cargo run -q --release -p dnasim-bench --bin benchreport -- check "$out"

echo "== assemble $parse_out =="
parse_gate=()
if [ "$mode" = full ]; then
    # ISSUE acceptance: binary parsing with prefetch overlap must beat
    # the text parser by ≥2× on the 512-cluster corpus.
    parse_gate=(--min-speedup 2.0)
fi
cargo run -q --release -p dnasim-bench --bin benchreport -- \
    assemble --mode "$mode" --out "$parse_out" --bench-id BENCH_007 \
    --baseline parse/text/512 --contender parse/binary-prefetch/512 \
    "${parse_gate[@]}" \
    parse="$tmpdir/parse.jsonl"

cargo run -q --release -p dnasim-bench --bin benchreport -- check "$parse_out"

echo "== assemble $multipattern_out =="
mp_gate=()
if [ "$mode" = full ]; then
    # ISSUE acceptance: banked multi-pattern assignment (with the q-gram
    # error-ball prefilter) must beat the repeated single-pattern loop by
    # ≥2× on the same 64-reference pool.
    mp_gate=(--min-speedup 2.0)
fi
cargo run -q --release -p dnasim-bench --bin benchreport -- \
    assemble --mode "$mode" --out "$multipattern_out" --bench-id BENCH_008 \
    --baseline cluster-bank/single-pattern/64refs \
    --contender cluster-bank/banked-prefilter/64refs \
    "${mp_gate[@]}" \
    clustering="$tmpdir/clustering.jsonl"

cargo run -q --release -p dnasim-bench --bin benchreport -- check "$multipattern_out"

if [ "$mode" = full ]; then
    # ISSUE acceptance: the error-ball prefilter must discharge >30% of
    # candidate kernel evaluations on the benchmark pool. The metric rides
    # the JSONL stream as a pseudo-record (median == the percentage).
    awk '
        /"id":"cluster-bank\/pruned-share-pct"/ {
            found = 1
            if (match($0, /"median_ns":[0-9.]+/)) {
                share = substr($0, RSTART + 12, RLENGTH - 12) + 0
                if (share <= 30.0) {
                    printf "bench: FAIL pruned share %.1f%% <= 30%%\n", share
                    exit 1
                }
                printf "bench: prefilter pruned %.1f%% of candidate evaluations\n", share
            }
        }
        END { if (!found) { print "bench: FAIL pruned-share-pct record missing"; exit 1 } }
    ' "$tmpdir/clustering.jsonl"
fi

echo "== assemble $stream_out =="
stream_gate=()
if [ "$mode" = full ]; then
    # ISSUE acceptance: the online streaming clusterer holds throughput
    # parity with the materialised pass — it may give up at most 25% in
    # exchange for bounded memory.
    stream_gate=(--min-speedup 0.75)
fi
cargo run -q --release -p dnasim-bench --bin benchreport -- \
    assemble --mode "$mode" --out "$stream_out" --bench-id BENCH_009 \
    --baseline cluster-stream/materialised/64refs \
    --contender cluster-stream/streaming/64refs \
    "${stream_gate[@]}" \
    clustering="$tmpdir/clustering.jsonl"

cargo run -q --release -p dnasim-bench --bin benchreport -- check "$stream_out"

if [ "$mode" = full ]; then
    # ISSUE acceptance: the streaming clusterer's resident state (per-group
    # representatives) must stay below half the pool it consumed — the
    # bounded-memory claim, measured rather than asserted. The metric rides
    # the JSONL stream as a pseudo-record (median == the percentage).
    awk '
        /"id":"cluster-stream\/resident-share-pct"/ {
            found = 1
            if (match($0, /"median_ns":[0-9.]+/)) {
                share = substr($0, RSTART + 12, RLENGTH - 12) + 0
                if (share >= 50.0) {
                    printf "bench: FAIL resident share %.1f%% >= 50%%\n", share
                    exit 1
                }
                printf "bench: clusterer resident state is %.1f%% of the pool\n", share
            }
        }
        END { if (!found) { print "bench: FAIL resident-share-pct record missing"; exit 1 } }
    ' "$tmpdir/clustering.jsonl"
fi
echo "bench: OK ($out, $parse_out, $multipattern_out, $stream_out)"
