//! The `dnasim serve` batch RPC tier: a long-lived JSONL request loop
//! over the streaming pipeline, with per-request seed namespaces.
//!
//! A serve session reads one JSON object per line from its input,
//! dispatches each to a streaming entry point (twin generation, channel
//! corruption, resimulation, reconstruction evaluation, archive round
//! trips), and writes one JSON response per line in request order.
//! Every request carries a `tenant` and `request_id`; its randomness is
//! the namespace `SeedSequence::derive_seq(tenant).derive_seq(request_id)`
//! off the service root seed, so replaying any request alone — via
//! [`execute`] — reproduces its in-service response byte for byte,
//! independent of the surrounding traffic, the admission windowing, and
//! the worker-thread count.
//!
//! Admission control is load-based: requests accumulate into a bounded
//! in-flight window until either the request cap or the cluster budget
//! (the same quantity [`WindowStats`](dnasim_core::WindowStats) audits)
//! would be exceeded, then the window executes on the worker pool and
//! responses flush in order. Per-request failures reuse the workspace
//! `Degraded`/quarantine taxonomy: a malformed dataset or an
//! over-budget archive answers in place with `"status":"error"` or
//! `"status":"degraded"` and never disturbs its neighbours.
//!
//! # Examples
//!
//! ```
//! use dnasim_par::ThreadPool;
//! use dnasim_serve::{serve, ServeConfig};
//!
//! let input = concat!(
//!     "{\"tenant\":\"acme\",\"request_id\":\"r1\",\"op\":\"generate\",",
//!     "\"clusters\":4,\"len\":30}\n",
//! );
//! let mut output = Vec::new();
//! let report = serve(
//!     input.as_bytes(),
//!     &mut output,
//!     &ServeConfig::default(),
//!     &ThreadPool::new(2),
//! )
//! .expect("session runs");
//! assert_eq!(report.ok, 1);
//! assert_eq!(String::from_utf8(output).unwrap().lines().count(), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod json;
mod request;
mod server;

pub use request::{AlgorithmSpec, ModelSpec, Op, ProtocolError, Request};
pub use server::{
    execute, execute_with, rejection, serve, serve_with_shutdown, ExecPolicy, Outcome,
    ResponseStatus, ServeConfig, ServeError, ServeReport,
};
