//! A minimal JSON parser and emitter for the serve protocol.
//!
//! The workspace is hermetic (no serde), so the JSONL request/response
//! framing is handled by this small recursive-descent parser and an
//! ordered object writer. The parser accepts exactly the JSON grammar
//! (RFC 8259) with a nesting-depth cap; the writer emits fields in
//! insertion order so responses are byte-deterministic.

use std::fmt::Write as _;

/// Maximum nesting depth the parser accepts; a hostile request cannot
/// recurse the stack arbitrarily deep.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`, like JavaScript).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, with fields in source order; on duplicate keys,
    /// [`get`](Json::get) returns the first.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a field of an object; `None` for missing fields and
    /// non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a number with no
    /// fractional part within the exactly-representable `f64` range.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9_007_199_254_740_992.0 => {
                Some(*n as usize)
            }
            _ => None,
        }
    }
}

/// Parses one complete JSON document, rejecting trailing garbage.
///
/// # Errors
///
/// A human-readable message naming the byte offset of the failure.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value(0)?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.fail("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn fail(&self, message: &str) -> String {
        format!("byte {}: {}", self.pos, message)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, byte: u8) -> bool {
        if self.peek() == Some(byte) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_literal(&mut self, literal: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(self.fail("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(self.fail("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.expect_literal("true", Json::Bool(true)),
            Some(b'f') => self.expect_literal("false", Json::Bool(false)),
            Some(b'n') => self.expect_literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.fail("unexpected character")),
            None => Err(self.fail("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.pos += 1; // consume '{'
        let mut fields = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.fail("expected string key"));
            }
            let key = self.string()?;
            self.skip_ws();
            if !self.eat(b':') {
                return Err(self.fail("expected ':' after key"));
            }
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            if self.eat(b'}') {
                return Ok(Json::Object(fields));
            }
            return Err(self.fail("expected ',' or '}' in object"));
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.pos += 1; // consume '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            if self.eat(b']') {
                return Ok(Json::Array(items));
            }
            return Err(self.fail("expected ',' or ']' in array"));
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.pos += 1; // consume '"'
        let mut out = String::new();
        loop {
            let Some(byte) = self.peek() else {
                return Err(self.fail("unterminated string"));
            };
            self.pos += 1;
            match byte {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(escape) = self.peek() else {
                        return Err(self.fail("unterminated escape"));
                    };
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        _ => return Err(self.fail("invalid escape character")),
                    }
                }
                _ if byte < 0x20 => return Err(self.fail("raw control character in string")),
                _ => {
                    // Re-borrow the full UTF-8 character starting at byte.
                    let start = self.pos - 1;
                    let len = utf8_len(byte);
                    let end = start + len;
                    let Some(slice) = self.bytes.get(start..end) else {
                        return Err(self.fail("truncated UTF-8 sequence"));
                    };
                    let Ok(s) = std::str::from_utf8(slice) else {
                        return Err(self.fail("invalid UTF-8 in string"));
                    };
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, String> {
        let first = self.hex4()?;
        // Surrogate pairs: a high surrogate must be followed by \uXXXX low.
        if (0xD800..0xDC00).contains(&first) {
            if !(self.eat(b'\\') && self.eat(b'u')) {
                return Err(self.fail("unpaired surrogate"));
            }
            let second = self.hex4()?;
            if !(0xDC00..0xE000).contains(&second) {
                return Err(self.fail("invalid low surrogate"));
            }
            let code = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
            char::from_u32(code).ok_or_else(|| self.fail("invalid surrogate pair"))
        } else if (0xDC00..0xE000).contains(&first) {
            Err(self.fail("unpaired low surrogate"))
        } else {
            char::from_u32(first).ok_or_else(|| self.fail("invalid \\u escape"))
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut value = 0u32;
        for _ in 0..4 {
            let Some(byte) = self.peek() else {
                return Err(self.fail("truncated \\u escape"));
            };
            let digit = match byte {
                b'0'..=b'9' => u32::from(byte - b'0'),
                b'a'..=b'f' => u32::from(byte - b'a') + 10,
                b'A'..=b'F' => u32::from(byte - b'A') + 10,
                _ => return Err(self.fail("non-hex digit in \\u escape")),
            };
            value = value * 16 + digit;
            self.pos += 1;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        self.eat(b'-');
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.eat(b'.') {
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let Ok(text) = std::str::from_utf8(&self.bytes[start..self.pos]) else {
            return Err(self.fail("invalid number"));
        };
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Json::Number(n)),
            _ => Err(self.fail("invalid number")),
        }
    }
}

/// Byte length of a UTF-8 character from its first byte (1 for malformed
/// leading bytes, letting `from_utf8` report the error).
fn utf8_len(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        0xF0..=0xF7 => 4,
        _ => 1,
    }
}

/// Escapes a string for embedding inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// An ordered JSON object writer: fields render in the order they are
/// added, which is what makes serve responses byte-deterministic.
#[derive(Debug)]
pub struct Obj {
    buf: String,
}

impl Obj {
    /// Opens an object.
    pub fn new() -> Obj {
        Obj {
            buf: String::from("{"),
        }
    }

    fn key(&mut self, name: &str) {
        if self.buf.len() > 1 {
            self.buf.push(',');
        }
        self.buf.push('"');
        self.buf.push_str(&escape(name));
        self.buf.push_str("\":");
    }

    /// Adds a string field.
    pub fn str(mut self, name: &str, value: &str) -> Obj {
        self.key(name);
        self.buf.push('"');
        self.buf.push_str(&escape(value));
        self.buf.push('"');
        self
    }

    /// Adds an unsigned integer field.
    pub fn usize(mut self, name: &str, value: usize) -> Obj {
        self.key(name);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Adds a float field rendered with four decimal places (stable across
    /// platforms, unlike shortest-round-trip formatting of computed sums).
    pub fn f64(mut self, name: &str, value: f64) -> Obj {
        self.key(name);
        let _ = write!(self.buf, "{value:.4}");
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, name: &str, value: bool) -> Obj {
        self.key(name);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Adds a pre-rendered JSON value verbatim.
    pub fn raw(mut self, name: &str, value: &str) -> Obj {
        self.key(name);
        self.buf.push_str(value);
        self
    }

    /// Closes the object and returns the rendered text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for Obj {
    fn default() -> Obj {
        Obj::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_request_shapes() {
        let v = parse(r#"{"op":"generate","clusters":32,"deep":{"x":[1,2.5,-3]},"ok":true}"#)
            .unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("generate"));
        assert_eq!(v.get("clusters").and_then(Json::as_usize), Some(32));
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        let deep = v.get("deep").and_then(|d| d.get("x"));
        assert_eq!(
            deep,
            Some(&Json::Array(vec![
                Json::Number(1.0),
                Json::Number(2.5),
                Json::Number(-3.0)
            ]))
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\"}",
            "{\"a\":}",
            "[1,]",
            "{\"a\":1} trailing",
            "\"unterminated",
            "nul",
            "01x",
            "{\"a\":\"\\q\"}",
            "\"\\ud800\"",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "line1\nline2\t\"quoted\" \\slash\u{1}é𝄞";
        let rendered = format!("\"{}\"", escape(original));
        let back = parse(&rendered).unwrap();
        assert_eq!(back.as_str(), Some(original));
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = parse("\"\\ud834\\udd1e\"").unwrap();
        assert_eq!(v.as_str(), Some("𝄞"));
    }

    #[test]
    fn as_usize_rejects_fractions_and_negatives() {
        assert_eq!(Json::Number(3.0).as_usize(), Some(3));
        assert_eq!(Json::Number(3.5).as_usize(), None);
        assert_eq!(Json::Number(-1.0).as_usize(), None);
        assert_eq!(Json::String("3".into()).as_usize(), None);
    }

    #[test]
    fn depth_limit_is_enforced() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
        let fine = "[".repeat(20) + &"]".repeat(20);
        assert!(parse(&fine).is_ok());
    }

    #[test]
    fn obj_renders_fields_in_insertion_order() {
        let text = Obj::new()
            .str("id", "a\"b")
            .usize("n", 7)
            .f64("rate", 0.5)
            .bool("ok", true)
            .raw("inner", "{\"x\":1}")
            .finish();
        assert_eq!(
            text,
            "{\"id\":\"a\\\"b\",\"n\":7,\"rate\":0.5000,\"ok\":true,\"inner\":{\"x\":1}}"
        );
        // And the output re-parses.
        assert!(parse(&text).is_ok());
    }
}
