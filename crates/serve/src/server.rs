//! The batch RPC loop: bounded in-flight windows over per-request seed
//! namespaces.
//!
//! [`serve`] reads JSONL requests, admits them into a window bounded both
//! by request count and by a cluster budget (the sum of each request's
//! [`Request::load_estimate`], the same quantity `WindowStats` audits),
//! executes the window on the worker pool, and writes responses in
//! request order. Each request runs as a pure function of `(request,
//! namespace seed)` via [`execute`], with all internal parallelism
//! disabled — so the response stream is byte-identical at every worker
//! count, and any single request replayed alone via [`execute`]
//! reproduces its in-service response exactly.

use std::io::{BufRead, Write};

use dnasim_channel::{CoverageModel, DnaSimulatorModel, ErrorModel, KeoliyaModel, Simulator};
use dnasim_core::rng::{RngExt, SeedSequence};
use dnasim_core::{Budget, CancelToken, Dataset, DnasimError, Strand, WindowStats};
use dnasim_dataset::{fnv1a64, read_dataset, AnyDatasetWriter, DatasetWriter, Format, NanoporeTwinConfig};
use dnasim_par::ThreadPool;
use dnasim_pipeline::{
    archive_round_trip_stream_budgeted, evaluate_reconstruction_stream_budgeted, ArchiveConfig,
    ArchiveMode,
};
use dnasim_profile::{ErrorStats, LearnedModel, TieBreak};
use dnasim_reconstruct::{
    BmaLookahead, DividerBma, Iterative, MajorityVote, TraceReconstructor, TwoWayIterative,
};

use crate::json::Obj;
use crate::request::{AlgorithmSpec, ModelSpec, Op, ProtocolError, Request};

/// Configuration of one serve session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Root seed of the service namespace; every request's randomness is
    /// `SeedSequence::new(seed).derive_seq(tenant).derive_seq(request_id)`.
    pub seed: u64,
    /// Maximum requests admitted into one in-flight window.
    pub window: usize,
    /// Streaming batch size each op runs with (bounds its in-flight
    /// clusters; audited by `WindowStats::high_watermark`).
    pub batch_size: usize,
    /// Admission cap on request size (`clusters` / `count`; `bytes / 16`
    /// for archive).
    pub max_batch: usize,
    /// Cluster budget for one in-flight window; `None` means
    /// `window * batch_size` (count-bound only).
    pub cluster_budget: Option<usize>,
    /// Lenient protocol handling: malformed lines become `rejected`
    /// responses instead of aborting the stream.
    pub lenient: bool,
    /// Work-unit deadline applied to requests that do not carry their own
    /// `deadline` field; `None` means unmetered.
    pub default_deadline: Option<u64>,
    /// Extra attempts granted to a request whose op fails at runtime.
    /// Each retry re-derives the op's random streams from the request's
    /// seed namespace (`retry-1`, `retry-2`, …) — backoff in seed space
    /// rather than wall-clock, so retried responses stay deterministic.
    pub retries: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            seed: 0,
            window: 8,
            batch_size: 256,
            max_batch: 4096,
            cluster_budget: None,
            lenient: false,
            default_deadline: None,
            retries: 0,
        }
    }
}

impl ServeConfig {
    fn effective_cluster_budget(&self) -> usize {
        self.cluster_budget
            .unwrap_or_else(|| self.window.saturating_mul(self.batch_size))
            .max(self.batch_size)
    }

    /// The per-request execution policy this configuration implies — what
    /// [`execute_with`] needs to replay any in-service response exactly.
    pub fn policy(&self) -> ExecPolicy {
        ExecPolicy {
            default_deadline: self.default_deadline,
            retries: self.retries,
        }
    }
}

/// The per-request execution policy: the deadline applied when a request
/// carries none, and how many seeded retries a failing op is granted.
/// [`execute`] uses the default (unmetered, no retries); a serve session
/// derives its policy from [`ServeConfig::policy`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecPolicy {
    /// Work-unit deadline for requests without their own `deadline`.
    pub default_deadline: Option<u64>,
    /// Extra seeded attempts after a runtime failure.
    pub retries: usize,
}

/// Why a serve session stopped early.
#[derive(Debug)]
pub enum ServeError {
    /// A protocol violation in strict mode; responses for every request
    /// admitted before it were flushed first.
    Protocol(ProtocolError),
    /// A runtime failure of the loop itself (I/O on the transport, worker
    /// pool degradation).
    Runtime(DnasimError),
    /// The response stream could not be written (e.g. the reader closed
    /// the pipe). Distinguished from `Runtime` so callers can exit
    /// cleanly — a consumer that hangs up is not a server fault.
    Output(std::io::Error),
}

impl ServeError {
    /// True when the session ended because the response consumer hung up
    /// (`EPIPE`/broken pipe on the output stream).
    pub fn is_broken_pipe(&self) -> bool {
        matches!(
            self,
            ServeError::Output(e) if e.kind() == std::io::ErrorKind::BrokenPipe
        )
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Protocol(e) => write!(f, "{e}"),
            ServeError::Runtime(e) => write!(f, "{e}"),
            ServeError::Output(e) => write!(f, "response stream closed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Protocol(e) => Some(e),
            ServeError::Runtime(e) => Some(e),
            ServeError::Output(e) => Some(e),
        }
    }
}

impl From<ProtocolError> for ServeError {
    fn from(e: ProtocolError) -> ServeError {
        ServeError::Protocol(e)
    }
}

impl From<DnasimError> for ServeError {
    fn from(e: DnasimError) -> ServeError {
        ServeError::Runtime(e)
    }
}

/// How one request concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResponseStatus {
    /// The op completed fully.
    Ok,
    /// The op completed with quarantined data loss (the `Degraded`
    /// taxonomy — e.g. a lenient archive over its erasure budget).
    Degraded,
    /// The op was admitted but failed at runtime; the failure is isolated
    /// to this request.
    Error,
    /// The line failed protocol validation (lenient mode only).
    Rejected,
    /// The op ran out of its work-unit deadline, or the session was
    /// cancelled while it ran. Partial work is discarded; the response
    /// names the stage and the units spent.
    Deadline,
    /// The request was shed at admission: its total work estimate exceeds
    /// the configured cluster budget. Rendered as `rejected` with reason
    /// `overloaded`; the op never ran.
    Overloaded,
}

impl ResponseStatus {
    fn label(self) -> &'static str {
        match self {
            ResponseStatus::Ok => "ok",
            ResponseStatus::Degraded => "degraded",
            ResponseStatus::Error => "error",
            ResponseStatus::Rejected | ResponseStatus::Overloaded => "rejected",
            ResponseStatus::Deadline => "deadline",
        }
    }
}

/// One rendered response plus the bookkeeping the service report absorbs.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// The JSONL response line (no trailing newline).
    pub line: String,
    /// The op's streaming window counters (zero for rejections).
    pub window: WindowStats,
    /// How the request concluded.
    pub status: ResponseStatus,
}

/// Summary of a completed serve session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeReport {
    /// Non-blank request lines seen.
    pub requests: usize,
    /// Requests that completed fully.
    pub ok: usize,
    /// Requests that failed at runtime (isolated per-request).
    pub errors: usize,
    /// Requests that completed degraded.
    pub degraded: usize,
    /// Lines rejected by protocol validation (lenient mode).
    pub rejected: usize,
    /// Requests that exhausted their work-unit deadline or were cancelled
    /// by a session shutdown.
    pub deadlines: usize,
    /// Requests shed at admission because their total work estimate
    /// exceeded the configured cluster budget.
    pub shed: usize,
    /// In-flight windows executed.
    pub windows: usize,
    /// Most requests any window held.
    pub peak_inflight_requests: usize,
    /// Largest cluster-load estimate any window carried — the admission
    /// high-watermark, never above the configured cluster budget.
    pub peak_inflight_clusters: usize,
    /// Aggregated op streaming counters across all requests.
    pub stream: WindowStats,
}

/// Runs the batch RPC loop: JSONL requests in, JSONL responses out.
///
/// Responses are written in request order, one line per non-blank input
/// line, and are byte-identical for every worker-pool size. In strict
/// mode (the default) the first protocol violation flushes the admitted
/// window and returns [`ServeError::Protocol`]; in lenient mode it
/// becomes a `rejected` response and the stream continues.
///
/// # Errors
///
/// [`ServeError::Protocol`] for a strict-mode protocol violation;
/// [`ServeError::Runtime`] for transport I/O failures, a degraded worker
/// pool, or an invalid configuration.
pub fn serve<R, W>(
    input: R,
    output: &mut W,
    config: &ServeConfig,
    pool: &ThreadPool,
) -> Result<ServeReport, ServeError>
where
    R: BufRead,
    W: Write,
{
    serve_with_shutdown(input, output, config, pool, &CancelToken::new())
}

/// [`serve`] with cooperative shutdown.
///
/// `shutdown` is observed at two points: before each new request line is
/// read (no further admissions once cancelled), and inside every running
/// op at its next batch boundary (via the budget's linked token). On
/// cancellation the in-flight window drains — already-finished requests
/// answer normally, interrupted ones answer with status `deadline` — and
/// responses are still written in request order before the session
/// returns its report. Stdin EOF drains the same way, minus the
/// cancellation: the partial window executes and flushes in order.
///
/// # Errors
///
/// As [`serve`], plus [`ServeError::Output`] when a response cannot be
/// written (e.g. the consumer closed the pipe).
pub fn serve_with_shutdown<R, W>(
    input: R,
    output: &mut W,
    config: &ServeConfig,
    pool: &ThreadPool,
    shutdown: &CancelToken,
) -> Result<ServeReport, ServeError>
where
    R: BufRead,
    W: Write,
{
    if config.window == 0 {
        return Err(DnasimError::config("window", "serve window must be at least 1").into());
    }
    if config.batch_size == 0 {
        return Err(
            DnasimError::config("batch_size", "streaming batch size must be at least 1").into(),
        );
    }
    if config.max_batch == 0 {
        return Err(DnasimError::config("max_batch", "admission cap must be at least 1").into());
    }
    let root = SeedSequence::new(config.seed);
    let budget = config.effective_cluster_budget();
    let mut report = ServeReport::default();
    let mut window: Vec<WorkItem> = Vec::new();
    let mut load = 0usize;

    let mut lines = input.lines().enumerate();
    loop {
        // Graceful drain: once shutdown is raised, stop admitting and fall
        // through to the final flush, which answers the in-flight window
        // (cancelled ops report `deadline`) in request order.
        if shutdown.is_cancelled() {
            break;
        }
        let Some((idx, line)) = lines.next() else { break };
        let line_no = idx + 1;
        let line = line.map_err(DnasimError::Io)?;
        if line.trim().is_empty() {
            continue;
        }
        report.requests += 1;
        match Request::parse(&line, line_no, config.max_batch) {
            Ok(request) => {
                // Overload shedding: an explicit cluster budget also caps
                // the *total* work any one request may demand. A shed
                // request holds a window slot (responses stay 1:1 with
                // input lines) but adds no load and never runs.
                if config.cluster_budget.is_some() && request.work_estimate() > budget {
                    if window.len() >= config.window {
                        flush_window(
                            &mut window,
                            &mut load,
                            config,
                            &root,
                            pool,
                            output,
                            &mut report,
                            shutdown,
                        )?;
                    }
                    window.push(WorkItem::Shed(request));
                    continue;
                }
                let estimate = request.load_estimate(config.batch_size);
                if !window.is_empty()
                    && (window.len() >= config.window || load + estimate > budget)
                {
                    flush_window(
                        &mut window,
                        &mut load,
                        config,
                        &root,
                        pool,
                        output,
                        &mut report,
                        shutdown,
                    )?;
                }
                load += estimate;
                window.push(WorkItem::Run(request));
            }
            Err(protocol) if config.lenient => {
                if window.len() >= config.window {
                    flush_window(
                        &mut window,
                        &mut load,
                        config,
                        &root,
                        pool,
                        output,
                        &mut report,
                        shutdown,
                    )?;
                }
                window.push(WorkItem::Reject(protocol));
            }
            Err(protocol) => {
                // Drain what was admitted so the output is a faithful
                // prefix, then abort with the diagnostic.
                flush_window(
                    &mut window,
                    &mut load,
                    config,
                    &root,
                    pool,
                    output,
                    &mut report,
                    shutdown,
                )?;
                let _ = output.flush();
                return Err(protocol.into());
            }
        }
    }
    flush_window(
        &mut window,
        &mut load,
        config,
        &root,
        pool,
        output,
        &mut report,
        shutdown,
    )?;
    output.flush().map_err(ServeError::Output)?;
    Ok(report)
}

/// A slot in the in-flight window: an admitted request, a (lenient mode)
/// protocol rejection, or a request shed at admission — the latter two
/// hold their place so responses stay 1:1 with input lines.
#[derive(Debug)]
enum WorkItem {
    Run(Request),
    Reject(ProtocolError),
    Shed(Request),
}

#[allow(clippy::too_many_arguments)]
fn flush_window<W: Write>(
    window: &mut Vec<WorkItem>,
    load: &mut usize,
    config: &ServeConfig,
    root: &SeedSequence,
    pool: &ThreadPool,
    output: &mut W,
    report: &mut ServeReport,
    shutdown: &CancelToken,
) -> Result<(), ServeError> {
    if window.is_empty() {
        return Ok(());
    }
    report.windows += 1;
    report.peak_inflight_requests = report.peak_inflight_requests.max(window.len());
    report.peak_inflight_clusters = report.peak_inflight_clusters.max(*load);
    let batch_size = config.batch_size;
    let policy = config.policy();
    let outcomes = pool
        .par_map_indexed(window, |_, item| match item {
            WorkItem::Run(request) => {
                execute_with(request, root, batch_size, &policy, Some(shutdown))
            }
            WorkItem::Reject(protocol) => rejection(protocol),
            WorkItem::Shed(request) => shed_response(request, config.effective_cluster_budget()),
        })
        .map_err(|e| ServeError::Runtime(e.into()))?;
    for outcome in outcomes {
        report.stream.absorb(outcome.window);
        match outcome.status {
            ResponseStatus::Ok => report.ok += 1,
            ResponseStatus::Degraded => report.degraded += 1,
            ResponseStatus::Error => report.errors += 1,
            ResponseStatus::Rejected => report.rejected += 1,
            ResponseStatus::Deadline => report.deadlines += 1,
            ResponseStatus::Overloaded => report.shed += 1,
        }
        output
            .write_all(outcome.line.as_bytes())
            .map_err(ServeError::Output)?;
        output.write_all(b"\n").map_err(ServeError::Output)?;
    }
    window.clear();
    *load = 0;
    Ok(())
}

/// Renders the response for a request shed at admission: `rejected` with
/// reason `overloaded`, naming the estimate and the budget it exceeded.
fn shed_response(request: &Request, cluster_budget: usize) -> Outcome {
    let estimate = request.work_estimate();
    let obj = Obj::new()
        .str("request_id", &request.request_id)
        .str("tenant", &request.tenant)
        .str("op", request.op_name())
        .str("status", ResponseStatus::Overloaded.label())
        .str("reason", "overloaded")
        .usize("estimate", estimate)
        .usize("cluster_budget", cluster_budget)
        .str(
            "error",
            &format!(
                "estimated load of {estimate} cluster(s) exceeds the cluster budget of \
                 {cluster_budget}"
            ),
        );
    Outcome {
        line: obj.finish(),
        window: WindowStats::default(),
        status: ResponseStatus::Overloaded,
    }
}

/// Renders the response for a lenient-mode protocol rejection.
pub fn rejection(protocol: &ProtocolError) -> Outcome {
    let obj = Obj::new()
        .str("request_id", protocol.request_id.as_deref().unwrap_or(""))
        .str("tenant", protocol.tenant.as_deref().unwrap_or(""))
        .str("status", ResponseStatus::Rejected.label())
        .str("error", &protocol.to_string());
    Outcome {
        line: obj.finish(),
        window: WindowStats::default(),
        status: ResponseStatus::Rejected,
    }
}

/// Executes one admitted request in isolation and renders its response.
///
/// This is the replay anchor of the serve tier: the response is a pure
/// function of `(request, root seed, batch_size)` — internal parallelism
/// is disabled, and all randomness flows from
/// `root.derive_seq(tenant).derive_seq(request_id)` — so calling this
/// directly for any single request reproduces its in-service response
/// byte-for-byte, regardless of what traffic surrounded it.
pub fn execute(request: &Request, root: &SeedSequence, batch_size: usize) -> Outcome {
    execute_with(request, root, batch_size, &ExecPolicy::default(), None)
}

/// [`execute`] under an explicit policy and optional session cancellation.
///
/// The effective deadline is the request's own `deadline` field, falling
/// back to the policy default; each attempt runs under a fresh
/// [`Budget`] of that many work units, linked to the session token when
/// one is given. Runtime failures are retried up to `policy.retries`
/// times, each retry re-deriving the op's random streams under a
/// `retry-{k}` namespace component — seeded backoff, deterministic and
/// wall-clock-free. Deadline exhaustion is *not* retried (the same
/// budget meters the same work, so a retry deterministically fails
/// again), and neither is session cancellation. When the policy grants
/// retries the response carries an `attempts` field; with the default
/// policy the rendering is byte-identical to [`execute`].
pub fn execute_with(
    request: &Request,
    root: &SeedSequence,
    batch_size: usize,
    policy: &ExecPolicy,
    session: Option<&CancelToken>,
) -> Outcome {
    let namespace = root
        .derive_seq(&request.tenant)
        .derive_seq(&request.request_id);
    // Cross-request parallelism only: within a request the pool is serial,
    // which keeps the response independent of worker count.
    let pool = ThreadPool::serial();
    let deadline = request.deadline.or(policy.default_deadline);
    let mut attempts = 0usize;
    let result = loop {
        let attempt_ns = if attempts == 0 {
            namespace.clone()
        } else {
            namespace.derive_seq(&format!("retry-{attempts}"))
        };
        let budget = match (deadline, session) {
            (Some(limit), Some(token)) => Budget::limited(limit).with_token(token.clone()),
            (Some(limit), None) => Budget::limited(limit),
            (None, Some(token)) => Budget::unlimited().with_token(token.clone()),
            (None, None) => Budget::unlimited(),
        };
        let result = run_op(request, &attempt_ns, batch_size, &pool, &budget);
        attempts += 1;
        match &result {
            Err(DnasimError::DeadlineExceeded { .. }) => break result,
            Err(_)
                if attempts <= policy.retries
                    && session.is_none_or(|token| !token.is_cancelled()) =>
            {
                continue;
            }
            _ => break result,
        }
    };
    let mut header = Obj::new()
        .str("request_id", &request.request_id)
        .str("tenant", &request.tenant)
        .str("op", request.op_name());
    if policy.retries > 0 {
        header = header.usize("attempts", attempts);
    }
    match result {
        Ok(op_output) => {
            let status = if op_output.degraded {
                ResponseStatus::Degraded
            } else {
                ResponseStatus::Ok
            };
            let mut obj = header.str("status", status.label()).raw(
                "window",
                &Obj::new()
                    .usize("batches", op_output.window.batches)
                    .usize("clusters", op_output.window.clusters)
                    .usize("high_watermark", op_output.window.high_watermark)
                    .finish(),
            );
            for (name, raw) in op_output.fields {
                obj = obj.raw(&name, &raw);
            }
            Outcome {
                line: obj.finish(),
                window: op_output.window,
                status,
            }
        }
        Err(DnasimError::DeadlineExceeded {
            spent,
            limit,
            stage,
        }) => {
            let err = DnasimError::DeadlineExceeded {
                spent,
                limit,
                stage,
            };
            let obj = header
                .str("status", ResponseStatus::Deadline.label())
                .str("stage", stage)
                .usize("spent", usize::try_from(spent).unwrap_or(usize::MAX))
                .usize("limit", usize::try_from(limit).unwrap_or(usize::MAX))
                .str("error", &err.to_string());
            Outcome {
                line: obj.finish(),
                window: WindowStats::default(),
                status: ResponseStatus::Deadline,
            }
        }
        Err(e) => {
            // Per-request failures reuse the Degraded/quarantine taxonomy:
            // a degraded worker result stays "degraded", everything else is
            // an isolated "error". Either way the stream continues.
            let status = if matches!(e, DnasimError::Degraded { .. }) {
                ResponseStatus::Degraded
            } else {
                ResponseStatus::Error
            };
            let obj = header
                .str("status", status.label())
                .str("error", &e.to_string());
            Outcome {
                line: obj.finish(),
                window: WindowStats::default(),
                status,
            }
        }
    }
}

/// What an op hands back for rendering: extra response fields (already
/// rendered as JSON), its window counters, and whether it degraded.
struct OpOutput {
    fields: Vec<(String, String)>,
    window: WindowStats,
    degraded: bool,
}

fn run_op(
    request: &Request,
    namespace: &SeedSequence,
    batch_size: usize,
    pool: &ThreadPool,
    budget: &Budget,
) -> Result<OpOutput, DnasimError> {
    match &request.op {
        Op::Generate {
            clusters,
            len,
            format,
        } => op_generate(namespace, *clusters, *len, *format, batch_size, pool, budget),
        Op::Corrupt { count, len, reads } => {
            op_corrupt(namespace, *count, *len, *reads, batch_size, pool, budget)
        }
        Op::Simulate { dataset, model } => {
            op_simulate(namespace, dataset, *model, batch_size, pool, budget)
        }
        Op::Evaluate { dataset, algorithm } => {
            op_evaluate(dataset, *algorithm, batch_size, pool, budget)
        }
        // The archive format is admission-validated (unknown values are
        // rejected before the op runs) but does not change the round trip:
        // the coded payload never leaves the server as a cluster file.
        Op::Archive {
            bytes,
            reads,
            lenient,
            format: _,
        } => op_archive(namespace, *bytes, *reads, *lenient, batch_size, pool, budget),
    }
}

/// Renders a dataset's cluster-file text as a JSON string literal.
fn dataset_text(buf: Vec<u8>) -> Result<String, DnasimError> {
    let text = String::from_utf8(buf)
        .map_err(|_| DnasimError::codec("cluster-file text is not UTF-8"))?;
    Ok(format!("\"{}\"", crate::json::escape(&text)))
}

fn op_generate(
    namespace: &SeedSequence,
    clusters: usize,
    len: usize,
    format: Format,
    batch_size: usize,
    pool: &ThreadPool,
    budget: &Budget,
) -> Result<OpOutput, DnasimError> {
    let mut config = NanoporeTwinConfig::small();
    config.cluster_count = clusters;
    config.strand_len = len;
    // A 4-cluster request should not be one-quarter erasures.
    config.erasure_count = config.erasure_count.min(clusters / 8);
    config.seed = namespace.derive("twin");
    let mut buf = Vec::new();
    let mut writer = AnyDatasetWriter::new(&mut buf, format);
    let window = config.generate_stream_budgeted(batch_size, pool, budget, &mut writer)?;
    let (written, reads) = (writer.clusters_written(), writer.reads_written());
    writer
        .into_inner()
        .map_err(|e| DnasimError::codec(format!("flushing generated dataset: {e}")))?;
    let fields = match format {
        // The text response is unchanged from the pre-format protocol:
        // clients that never send "format" see byte-identical lines.
        Format::Text => vec![
            ("clusters".into(), written.to_string()),
            ("reads".into(), reads.to_string()),
            ("dataset".into(), dataset_text(buf)?),
        ],
        // Binary frames are not JSON-safe, so the response carries the
        // encoded size and checksum instead of the dataset itself; a
        // client regenerates the bytes with `dnasim generate --format
        // binary` under the same seed namespace and verifies the digest.
        Format::Binary => vec![
            ("clusters".into(), written.to_string()),
            ("reads".into(), reads.to_string()),
            ("format".into(), format!("\"{format}\"")),
            ("dataset_bytes".into(), buf.len().to_string()),
            ("checksum".into(), format!("\"{:016x}\"", fnv1a64(&buf))),
        ],
    };
    Ok(OpOutput {
        fields,
        window,
        degraded: false,
    })
}

fn op_corrupt(
    namespace: &SeedSequence,
    count: usize,
    len: usize,
    reads: usize,
    batch_size: usize,
    pool: &ThreadPool,
    budget: &Budget,
) -> Result<OpOutput, DnasimError> {
    let mut reference_rng = namespace.derive_rng("references");
    let references: Vec<Strand> = (0..count)
        .map(|_| Strand::random(len, &mut reference_rng))
        .collect();
    let simulator = Simulator::new(
        DnaSimulatorModel::nanopore_default(),
        CoverageModel::Fixed(reads),
    );
    let channel = namespace.derive_seq("channel");
    let mut noisy = Dataset::new();
    let window = simulator.simulate_stream_budgeted(
        &references,
        &channel,
        batch_size,
        pool,
        budget,
        &mut noisy,
    )?;
    let mut pairs = String::from("[");
    for (i, cluster) in noisy.iter().enumerate() {
        if i > 0 {
            pairs.push(',');
        }
        let mut pair = Obj::new().str("clean", &cluster.reference().to_string());
        let mut noisy_reads = String::from("[");
        for (j, read) in cluster.reads().iter().enumerate() {
            if j > 0 {
                noisy_reads.push(',');
            }
            noisy_reads.push('"');
            noisy_reads.push_str(&crate::json::escape(&read.to_string()));
            noisy_reads.push('"');
        }
        noisy_reads.push(']');
        pair = pair.raw("noisy", &noisy_reads);
        pairs.push_str(&pair.finish());
    }
    pairs.push(']');
    Ok(OpOutput {
        fields: vec![
            ("count".into(), noisy.len().to_string()),
            ("pairs".into(), pairs),
        ],
        window,
        degraded: false,
    })
}

fn op_simulate(
    namespace: &SeedSequence,
    dataset: &str,
    model: ModelSpec,
    batch_size: usize,
    pool: &ThreadPool,
    budget: &Budget,
) -> Result<OpOutput, DnasimError> {
    let parsed = read_dataset(dataset.as_bytes())?;
    let channel = namespace.derive_seq("channel");
    let learn = |namespace: &SeedSequence| -> LearnedModel {
        let mut rng = namespace.derive_rng("learn");
        let stats = ErrorStats::from_dataset(&parsed, TieBreak::Random, &mut rng);
        LearnedModel::from_stats(&stats, 10)
    };
    match model {
        ModelSpec::Naive => resimulate(
            &Simulator::new(
                KeoliyaModel::new(learn(namespace), dnasim_channel::SimulatorLayer::Naive),
                CoverageModel::Fixed(0),
            ),
            &parsed,
            &channel,
            batch_size,
            pool,
            budget,
        ),
        ModelSpec::DnaSimulator => resimulate(
            &Simulator::new(
                DnaSimulatorModel::nanopore_default(),
                CoverageModel::Fixed(0),
            ),
            &parsed,
            &channel,
            batch_size,
            pool,
            budget,
        ),
        ModelSpec::Keoliya(layer) => resimulate(
            &Simulator::new(
                KeoliyaModel::new(learn(namespace), layer),
                CoverageModel::Fixed(0),
            ),
            &parsed,
            &channel,
            batch_size,
            pool,
            budget,
        ),
    }
}

fn resimulate<M: ErrorModel + Sync>(
    simulator: &Simulator<M>,
    dataset: &Dataset,
    channel: &SeedSequence,
    batch_size: usize,
    pool: &ThreadPool,
    budget: &Budget,
) -> Result<OpOutput, DnasimError> {
    let mut buf = Vec::new();
    let mut writer = DatasetWriter::new(&mut buf);
    let window = simulator.resimulate_stream_budgeted(
        &mut dataset.stream(),
        channel,
        batch_size,
        pool,
        budget,
        &mut writer,
    )?;
    let (clusters, reads) = (writer.clusters_written(), writer.reads_written());
    Ok(OpOutput {
        fields: vec![
            ("clusters".into(), clusters.to_string()),
            ("reads".into(), reads.to_string()),
            ("dataset".into(), dataset_text(buf)?),
        ],
        window,
        degraded: false,
    })
}

fn op_evaluate(
    dataset: &str,
    algorithm: AlgorithmSpec,
    batch_size: usize,
    pool: &ThreadPool,
    budget: &Budget,
) -> Result<OpOutput, DnasimError> {
    let parsed = read_dataset(dataset.as_bytes())?;
    let (report, window) = match algorithm {
        AlgorithmSpec::Bma => {
            evaluate_with(&BmaLookahead::default(), &parsed, batch_size, pool, budget)
        }
        AlgorithmSpec::DivBma => evaluate_with(&DividerBma, &parsed, batch_size, pool, budget),
        AlgorithmSpec::Iterative => {
            evaluate_with(&Iterative::default(), &parsed, batch_size, pool, budget)
        }
        AlgorithmSpec::IterativeTwoWay => {
            evaluate_with(&TwoWayIterative::default(), &parsed, batch_size, pool, budget)
        }
        AlgorithmSpec::Majority => evaluate_with(&MajorityVote, &parsed, batch_size, pool, budget),
    }?;
    Ok(OpOutput {
        fields: vec![
            ("algorithm".into(), format!("\"{}\"", algorithm.name())),
            ("strands".into(), report.strand_count().to_string()),
            (
                "exact_strands".into(),
                report.exact_strand_count().to_string(),
            ),
            (
                "per_strand_percent".into(),
                format!("{:.4}", report.per_strand_percent()),
            ),
            (
                "per_char_percent".into(),
                format!("{:.4}", report.per_char_percent()),
            ),
        ],
        window,
        degraded: false,
    })
}

fn evaluate_with<A: TraceReconstructor + Sync>(
    algorithm: &A,
    dataset: &Dataset,
    batch_size: usize,
    pool: &ThreadPool,
    budget: &Budget,
) -> Result<(dnasim_metrics::AccuracyReport, WindowStats), DnasimError> {
    evaluate_reconstruction_stream_budgeted(
        &mut dataset.stream(),
        algorithm,
        batch_size,
        pool,
        budget,
    )
}

fn op_archive(
    namespace: &SeedSequence,
    bytes: usize,
    reads: usize,
    lenient: bool,
    batch_size: usize,
    pool: &ThreadPool,
    budget: &Budget,
) -> Result<OpOutput, DnasimError> {
    let mut payload_rng = namespace.derive_rng("payload");
    let data: Vec<u8> = (0..bytes).map(|_| payload_rng.random::<u8>()).collect();
    let config = ArchiveConfig {
        sequencing_reads_per_strand: reads,
        mode: if lenient {
            ArchiveMode::Lenient
        } else {
            ArchiveMode::Strict
        },
        ..ArchiveConfig::default()
    };
    let mut channel_rng = namespace.derive_rng("channel");
    let (report, window) =
        archive_round_trip_stream_budgeted(&data, &config, &mut channel_rng, pool, batch_size, budget)?;
    let intact = report
        .data
        .get(..data.len())
        .is_some_and(|decoded| decoded == &data[..]);
    let degraded = report.is_degraded();
    if !intact && !degraded {
        return Err(DnasimError::codec("archive payload mismatch after round trip"));
    }
    Ok(OpOutput {
        fields: vec![
            ("bytes".into(), bytes.to_string()),
            ("strands_written".into(), report.strands_written.to_string()),
            ("reads_sequenced".into(), report.reads_sequenced.to_string()),
            (
                "parity_recoveries".into(),
                report.strands_recovered_by_parity.to_string(),
            ),
            (
                "clusters_quarantined".into(),
                report.clusters_quarantined.to_string(),
            ),
            (
                "strands_unrecovered".into(),
                report.strands_unrecovered.to_string(),
            ),
            ("round_trip".into(), intact.to_string()),
        ],
        window,
        degraded,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(json: &str) -> Request {
        Request::parse(json, 1, 4096).expect("test request parses")
    }

    fn serve_text(input: &str, config: &ServeConfig, pool: &ThreadPool) -> (String, ServeReport) {
        let mut out = Vec::new();
        let report = serve(input.as_bytes(), &mut out, config, pool).expect("serve runs");
        (String::from_utf8(out).expect("utf8"), report)
    }

    #[test]
    fn execute_is_a_pure_function_of_request_and_root() {
        let root = SeedSequence::new(9);
        let req = request(
            "{\"tenant\":\"acme\",\"request_id\":\"r1\",\"op\":\"corrupt\",\"count\":4,\
             \"len\":40,\"reads\":3}",
        );
        let a = execute(&req, &root, 64);
        let b = execute(&req, &root, 64);
        assert_eq!(a.line, b.line);
        assert_eq!(a.status, ResponseStatus::Ok);
        assert!(a.line.contains("\"pairs\":["));
        // A different tenant gets different bytes from the same op.
        let other = request(
            "{\"tenant\":\"umbrella\",\"request_id\":\"r1\",\"op\":\"corrupt\",\"count\":4,\
             \"len\":40,\"reads\":3}",
        );
        assert_ne!(execute(&other, &root, 64).line, a.line);
    }

    #[test]
    fn serve_responses_match_isolated_execution() {
        let config = ServeConfig {
            window: 3,
            batch_size: 32,
            ..ServeConfig::default()
        };
        let pool = ThreadPool::new(2);
        let lines = [
            "{\"tenant\":\"a\",\"request_id\":\"g1\",\"op\":\"generate\",\"clusters\":6,\"len\":30}",
            "{\"tenant\":\"b\",\"request_id\":\"c1\",\"op\":\"corrupt\",\"count\":3,\"len\":25}",
            "{\"tenant\":\"a\",\"request_id\":\"a1\",\"op\":\"archive\",\"bytes\":64}",
        ];
        let input = lines.join("\n");
        let (output, report) = serve_text(&input, &config, &pool);
        assert_eq!(report.requests, 3);
        assert_eq!(report.ok, 3);
        let root = SeedSequence::new(config.seed);
        for (line, response) in lines.iter().zip(output.lines()) {
            let isolated = execute(&request(line), &root, config.batch_size);
            assert_eq!(response, isolated.line);
        }
    }

    #[test]
    fn strict_mode_aborts_on_protocol_error_after_flushing() {
        let config = ServeConfig {
            batch_size: 16,
            ..ServeConfig::default()
        };
        let pool = ThreadPool::serial();
        let input = "{\"tenant\":\"a\",\"request_id\":\"g\",\"op\":\"generate\",\
                     \"clusters\":2,\"len\":20}\nnot json\n";
        let mut out = Vec::new();
        let err = serve(input.as_bytes(), &mut out, &config, &pool).unwrap_err();
        match err {
            ServeError::Protocol(p) => assert_eq!(p.line, 2),
            other => panic!("expected protocol error, got {other}"),
        }
        // The admitted first request was answered before the abort.
        let text = String::from_utf8(out).expect("utf8");
        assert_eq!(text.lines().count(), 1);
        assert!(text.contains("\"request_id\":\"g\""));
    }

    #[test]
    fn lenient_mode_rejects_in_place_and_continues() {
        let config = ServeConfig {
            batch_size: 16,
            lenient: true,
            ..ServeConfig::default()
        };
        let pool = ThreadPool::serial();
        let input = "garbage\n\
                     {\"tenant\":\"a\",\"request_id\":\"g\",\"op\":\"generate\",\
                      \"clusters\":2,\"len\":20}\n\
                     {\"tenant\":\"b\",\"request_id\":\"x\",\"op\":\"warp\"}\n";
        let (text, report) = serve_text(input, &config, &pool);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"status\":\"rejected\""));
        assert!(lines[1].contains("\"status\":\"ok\""));
        assert!(lines[2].contains("\"status\":\"rejected\""));
        // The unknown-op rejection recovered its identity.
        assert!(lines[2].contains("\"tenant\":\"b\""));
        assert_eq!(report.rejected, 2);
        assert_eq!(report.ok, 1);
    }

    #[test]
    fn runtime_failures_are_isolated_per_request() {
        let config = ServeConfig {
            batch_size: 16,
            ..ServeConfig::default()
        };
        let pool = ThreadPool::serial();
        // The second request's dataset is corrupt (bad base) — a runtime
        // error, not a protocol one: it must answer in place with status
        // "error" and leave its neighbours untouched.
        let input = "{\"tenant\":\"a\",\"request_id\":\"g\",\"op\":\"generate\",\
                     \"clusters\":2,\"len\":20}\n\
                     {\"tenant\":\"b\",\"request_id\":\"s\",\"op\":\"simulate\",\
                     \"dataset\":\">ACGT\\nAXGT\\n\"}\n\
                     {\"tenant\":\"c\",\"request_id\":\"g2\",\"op\":\"generate\",\
                     \"clusters\":2,\"len\":20}\n";
        let (text, report) = serve_text(input, &config, &pool);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].contains("\"status\":\"error\""));
        // The dataset parse failure carries its line number through.
        assert!(lines[1].contains("line 2"), "{}", lines[1]);
        assert!(lines[0].contains("\"status\":\"ok\""));
        assert!(lines[2].contains("\"status\":\"ok\""));
        assert_eq!(report.errors, 1);
        assert_eq!(report.ok, 2);
    }

    #[test]
    fn admission_window_bounds_inflight_load() {
        let config = ServeConfig {
            window: 2,
            batch_size: 8,
            cluster_budget: Some(12),
            ..ServeConfig::default()
        };
        let pool = ThreadPool::serial();
        let mut input = String::new();
        for i in 0..6 {
            input.push_str(&format!(
                "{{\"tenant\":\"t\",\"request_id\":\"r{i}\",\"op\":\"generate\",\
                 \"clusters\":8,\"len\":20}}\n"
            ));
        }
        let (text, report) = serve_text(&input, &config, &pool);
        assert_eq!(text.lines().count(), 6);
        assert_eq!(report.ok, 6);
        // Budget 12 with 8-cluster requests → one request per window.
        assert_eq!(report.peak_inflight_requests, 1);
        assert!(report.peak_inflight_clusters <= 12);
        assert_eq!(report.windows, 6);
        // Each op's streaming window stayed within the batch size.
        assert!(report.stream.high_watermark <= config.batch_size);
    }

    #[test]
    fn responses_are_identical_across_worker_counts() {
        let config = ServeConfig {
            window: 4,
            batch_size: 16,
            ..ServeConfig::default()
        };
        let mut input = String::new();
        for i in 0..8 {
            input.push_str(&format!(
                "{{\"tenant\":\"t{}\",\"request_id\":\"r{i}\",\"op\":\"corrupt\",\
                 \"count\":3,\"len\":30,\"reads\":2}}\n",
                i % 3
            ));
        }
        let (serial, _) = serve_text(&input, &config, &ThreadPool::serial());
        for workers in [2, 4] {
            let (parallel, _) = serve_text(&input, &config, &ThreadPool::new(workers));
            assert_eq!(serial, parallel, "workers={workers}");
        }
    }

    #[test]
    fn archive_degraded_uses_the_degraded_status() {
        // Strict archive over a clean channel round-trips OK.
        let root = SeedSequence::new(3);
        let req = request(
            "{\"tenant\":\"t\",\"request_id\":\"ok\",\"op\":\"archive\",\"bytes\":128}",
        );
        let outcome = execute(&req, &root, 64);
        assert_eq!(outcome.status, ResponseStatus::Ok);
        assert!(outcome.line.contains("\"round_trip\":true"));
    }

    #[test]
    fn per_request_deadline_yields_a_typed_deadline_response() {
        let root = SeedSequence::new(11);
        let req = request(
            "{\"tenant\":\"t\",\"request_id\":\"d\",\"op\":\"generate\",\"clusters\":32,\
             \"len\":20,\"deadline\":5}",
        );
        let outcome = execute(&req, &root, 8);
        assert_eq!(outcome.status, ResponseStatus::Deadline);
        assert!(outcome.line.contains("\"status\":\"deadline\""));
        assert!(outcome.line.contains("\"stage\":\"generate\""));
        assert!(outcome.line.contains("\"spent\":5"));
        assert!(outcome.line.contains("\"limit\":5"));
        // A deadline wide enough for the whole op changes nothing.
        let req = request(
            "{\"tenant\":\"t\",\"request_id\":\"d\",\"op\":\"generate\",\"clusters\":32,\
             \"len\":20,\"deadline\":32}",
        );
        let roomy = execute(&req, &root, 8);
        assert_eq!(roomy.status, ResponseStatus::Ok);
        let unmetered = request(
            "{\"tenant\":\"t\",\"request_id\":\"d\",\"op\":\"generate\",\"clusters\":32,\
             \"len\":20}",
        );
        // The deadline field is not part of the namespace, so the roomy
        // run matches the unmetered one byte for byte minus nothing.
        assert_eq!(roomy.line, execute(&unmetered, &root, 8).line);
    }

    #[test]
    fn default_deadline_applies_and_request_deadline_overrides_it() {
        let config = ServeConfig {
            batch_size: 8,
            default_deadline: Some(4),
            ..ServeConfig::default()
        };
        let pool = ThreadPool::serial();
        // First request inherits the default (4 units, too few for 16
        // clusters); second overrides with room to spare.
        let input = "{\"tenant\":\"a\",\"request_id\":\"r1\",\"op\":\"generate\",\
                     \"clusters\":16,\"len\":20}\n\
                     {\"tenant\":\"a\",\"request_id\":\"r2\",\"op\":\"generate\",\
                     \"clusters\":16,\"len\":20,\"deadline\":64}\n";
        let (text, report) = serve_text(input, &config, &pool);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"status\":\"deadline\""), "{}", lines[0]);
        assert!(lines[0].contains("\"spent\":4"));
        assert!(lines[1].contains("\"status\":\"ok\""), "{}", lines[1]);
        assert_eq!(report.deadlines, 1);
        assert_eq!(report.ok, 1);
    }

    #[test]
    fn retries_report_attempts_and_stay_deterministic() {
        let root = SeedSequence::new(5);
        let policy = ExecPolicy {
            default_deadline: None,
            retries: 2,
        };
        // A structurally bad dataset fails on every seeded attempt: the
        // response burns all attempts and reports them.
        let bad = request(
            "{\"tenant\":\"t\",\"request_id\":\"bad\",\"op\":\"simulate\",\
             \"dataset\":\">ACGT\\nAXGT\\n\"}",
        );
        let a = execute_with(&bad, &root, 16, &policy, None);
        let b = execute_with(&bad, &root, 16, &policy, None);
        assert_eq!(a.line, b.line);
        assert_eq!(a.status, ResponseStatus::Error);
        assert!(a.line.contains("\"attempts\":3"), "{}", a.line);
        // A healthy request succeeds first try and says so.
        let good = request(
            "{\"tenant\":\"t\",\"request_id\":\"ok\",\"op\":\"generate\",\"clusters\":4,\
             \"len\":20}",
        );
        let ok = execute_with(&good, &root, 16, &policy, None);
        assert_eq!(ok.status, ResponseStatus::Ok);
        assert!(ok.line.contains("\"attempts\":1"), "{}", ok.line);
        // Deadline exhaustion is deterministic, so it is never retried.
        let metered = request(
            "{\"tenant\":\"t\",\"request_id\":\"d\",\"op\":\"generate\",\"clusters\":32,\
             \"len\":20,\"deadline\":3}",
        );
        let deadline = execute_with(&metered, &root, 8, &policy, None);
        assert_eq!(deadline.status, ResponseStatus::Deadline);
        assert!(deadline.line.contains("\"attempts\":1"), "{}", deadline.line);
        // With no retries granted the attempts field is absent, keeping
        // default-policy responses byte-compatible.
        let plain = execute(&good, &root, 16);
        assert!(!plain.line.contains("attempts"));
    }

    #[test]
    fn serve_with_retries_matches_isolated_execute_with() {
        let config = ServeConfig {
            batch_size: 16,
            retries: 1,
            ..ServeConfig::default()
        };
        let pool = ThreadPool::new(2);
        let lines = [
            "{\"tenant\":\"a\",\"request_id\":\"g1\",\"op\":\"generate\",\"clusters\":4,\"len\":20}",
            "{\"tenant\":\"b\",\"request_id\":\"s1\",\"op\":\"simulate\",\"dataset\":\">ACGT\\nAXGT\\n\"}",
        ];
        let input = lines.join("\n");
        let (text, _) = serve_text(&input, &config, &pool);
        let root = SeedSequence::new(config.seed);
        let policy = config.policy();
        for (line, response) in lines.iter().zip(text.lines()) {
            let isolated = execute_with(&request(line), &root, config.batch_size, &policy, None);
            assert_eq!(response, isolated.line);
        }
    }

    #[test]
    fn oversized_requests_are_shed_as_overloaded() {
        let config = ServeConfig {
            window: 4,
            batch_size: 8,
            cluster_budget: Some(16),
            ..ServeConfig::default()
        };
        let pool = ThreadPool::serial();
        let input = "{\"tenant\":\"a\",\"request_id\":\"small\",\"op\":\"generate\",\
                     \"clusters\":4,\"len\":20}\n\
                     {\"tenant\":\"b\",\"request_id\":\"huge\",\"op\":\"generate\",\
                     \"clusters\":500,\"len\":20}\n\
                     {\"tenant\":\"c\",\"request_id\":\"tail\",\"op\":\"generate\",\
                     \"clusters\":4,\"len\":20}\n";
        let (text, report) = serve_text(input, &config, &pool);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"status\":\"ok\""));
        assert!(lines[1].contains("\"status\":\"rejected\""), "{}", lines[1]);
        assert!(lines[1].contains("\"reason\":\"overloaded\""));
        assert!(lines[1].contains("\"estimate\":500"));
        assert!(lines[1].contains("\"cluster_budget\":16"));
        assert!(lines[2].contains("\"status\":\"ok\""));
        assert_eq!(report.shed, 1);
        assert_eq!(report.ok, 2);
        // Without an explicit budget the same traffic is not shed.
        let unshed = ServeConfig {
            window: 4,
            batch_size: 8,
            cluster_budget: None,
            ..ServeConfig::default()
        };
        let (_, report) = serve_text(input, &unshed, &pool);
        assert_eq!(report.shed, 0);
        assert_eq!(report.ok, 3);
    }

    #[test]
    fn shutdown_drains_the_inflight_window_in_order() {
        use std::io::Read;

        // A reader that raises the shutdown token while serving the
        // third request line, as a transport would on SIGTERM.
        struct CancellingReader {
            data: Vec<Vec<u8>>,
            idx: usize,
            pos: usize,
            cancel_on: usize,
            token: CancelToken,
        }
        impl Read for CancellingReader {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                loop {
                    match self.data.get(self.idx) {
                        None => return Ok(0),
                        Some(line) if self.pos < line.len() => {
                            if self.idx == self.cancel_on {
                                self.token.cancel();
                            }
                            let n = buf.len().min(line.len() - self.pos);
                            buf[..n].copy_from_slice(&line[self.pos..self.pos + n]);
                            self.pos += n;
                            return Ok(n);
                        }
                        Some(_) => {
                            self.idx += 1;
                            self.pos = 0;
                        }
                    }
                }
            }
        }

        let token = CancelToken::new();
        let reader = CancellingReader {
            data: (0..6)
                .map(|i| {
                    format!(
                        "{{\"tenant\":\"t\",\"request_id\":\"r{i}\",\"op\":\"generate\",\
                         \"clusters\":4,\"len\":20}}\n"
                    )
                    .into_bytes()
                })
                .collect(),
            idx: 0,
            pos: 0,
            cancel_on: 2,
            token: token.clone(),
        };
        let config = ServeConfig {
            window: 8,
            batch_size: 8,
            ..ServeConfig::default()
        };
        let mut out = Vec::new();
        let report = serve_with_shutdown(
            std::io::BufReader::new(reader),
            &mut out,
            &config,
            &ThreadPool::new(2),
            &token,
        )
        .expect("drain succeeds");
        let text = String::from_utf8(out).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        // Lines 0..=2 were admitted before the loop observed the token;
        // 3..6 were never read. Every admitted request answers, in
        // request order, with a typed deadline response.
        assert_eq!(lines.len(), 3, "{text}");
        for (i, line) in lines.iter().enumerate() {
            assert!(line.contains(&format!("\"request_id\":\"r{i}\"")), "{line}");
            assert!(line.contains("\"status\":\"deadline\""), "{line}");
        }
        assert_eq!(report.requests, 3);
        assert_eq!(report.deadlines, 3);
    }

    #[test]
    fn broken_output_pipe_is_a_clean_output_error() {
        struct BrokenSink;
        impl std::io::Write for BrokenSink {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::new(
                    std::io::ErrorKind::BrokenPipe,
                    "reader hung up",
                ))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let config = ServeConfig {
            window: 1,
            batch_size: 8,
            ..ServeConfig::default()
        };
        let input = "{\"tenant\":\"t\",\"request_id\":\"r\",\"op\":\"generate\",\
                     \"clusters\":2,\"len\":20}\n\
                     {\"tenant\":\"t\",\"request_id\":\"r2\",\"op\":\"generate\",\
                     \"clusters\":2,\"len\":20}\n";
        let err = serve(
            input.as_bytes(),
            &mut BrokenSink,
            &config,
            &ThreadPool::serial(),
        )
        .unwrap_err();
        assert!(matches!(err, ServeError::Output(_)), "{err}");
        assert!(err.is_broken_pipe());
        assert!(err.to_string().contains("response stream closed"));
    }

    #[test]
    fn invalid_config_is_a_runtime_error() {
        let pool = ThreadPool::serial();
        for config in [
            ServeConfig {
                window: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                batch_size: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                max_batch: 0,
                ..ServeConfig::default()
            },
        ] {
            let mut out = Vec::new();
            let err = serve("".as_bytes(), &mut out, &config, &pool).unwrap_err();
            assert!(matches!(err, ServeError::Runtime(DnasimError::Config { .. })));
        }
    }
}
