//! Request framing and admission validation for the serve protocol.
//!
//! One JSONL line is one request. Every request names a `tenant` and a
//! `request_id` — the two labels that key its seed namespace — plus an
//! `op` and op-specific parameters. Validation here is *protocol-level*:
//! a request that fails it never reaches an op (strict mode aborts the
//! stream with a diagnostic, lenient mode emits a `rejected` response).
//! Failures inside an admitted op are runtime errors, reported
//! per-request (see `server`).

use std::fmt;

use dnasim_channel::SimulatorLayer;
use dnasim_dataset::Format;

use crate::json::{self, Json};

/// A protocol-level violation: malformed JSON, missing identity, unknown
/// op, or an oversized batch. Carries the offending line number and, when
/// recoverable, the identity of the request so lenient mode can answer it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    /// 1-based line number of the offending request.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
    /// The tenant, when the line parsed far enough to recover it.
    pub tenant: Option<String>,
    /// The request id, when the line parsed far enough to recover it.
    pub request_id: Option<String>,
}

impl ProtocolError {
    fn new(line: usize, message: impl Into<String>) -> ProtocolError {
        ProtocolError {
            line,
            message: message.into(),
            tenant: None,
            request_id: None,
        }
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "request line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ProtocolError {}

/// The channel model a `simulate` request names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelSpec {
    /// Uniform learned rates (`naive`).
    Naive,
    /// The dnaSimulator literature preset (`dnasimulator`).
    DnaSimulator,
    /// The paper's layered simulator (`keoliya[:naive|cond|spatial|second]`).
    Keoliya(SimulatorLayer),
}

impl ModelSpec {
    /// The canonical spelling, echoed back in responses.
    pub fn name(self) -> &'static str {
        match self {
            ModelSpec::Naive => "naive",
            ModelSpec::DnaSimulator => "dnasimulator",
            ModelSpec::Keoliya(SimulatorLayer::Naive) => "keoliya:naive",
            ModelSpec::Keoliya(SimulatorLayer::ConditionalLongDel) => "keoliya:cond",
            ModelSpec::Keoliya(SimulatorLayer::SpatialSkew) => "keoliya:spatial",
            ModelSpec::Keoliya(SimulatorLayer::SecondOrder) => "keoliya:second",
        }
    }

    fn parse(spec: &str) -> Option<ModelSpec> {
        match spec {
            "naive" => Some(ModelSpec::Naive),
            "dnasimulator" => Some(ModelSpec::DnaSimulator),
            "keoliya" => Some(ModelSpec::Keoliya(SimulatorLayer::SecondOrder)),
            "keoliya:naive" => Some(ModelSpec::Keoliya(SimulatorLayer::Naive)),
            "keoliya:cond" => Some(ModelSpec::Keoliya(SimulatorLayer::ConditionalLongDel)),
            "keoliya:spatial" => Some(ModelSpec::Keoliya(SimulatorLayer::SpatialSkew)),
            "keoliya:second" => Some(ModelSpec::Keoliya(SimulatorLayer::SecondOrder)),
            _ => None,
        }
    }
}

/// The reconstruction algorithm an `evaluate` request names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgorithmSpec {
    /// BMA with lookahead.
    Bma,
    /// Divider BMA.
    DivBma,
    /// Iterative reconstruction.
    Iterative,
    /// Two-way iterative reconstruction.
    IterativeTwoWay,
    /// Plain per-position majority vote.
    Majority,
}

impl AlgorithmSpec {
    /// The canonical spelling, echoed back in responses.
    pub fn name(self) -> &'static str {
        match self {
            AlgorithmSpec::Bma => "bma",
            AlgorithmSpec::DivBma => "divbma",
            AlgorithmSpec::Iterative => "iterative",
            AlgorithmSpec::IterativeTwoWay => "iterative-twoway",
            AlgorithmSpec::Majority => "majority",
        }
    }

    fn parse(spec: &str) -> Option<AlgorithmSpec> {
        match spec {
            "bma" => Some(AlgorithmSpec::Bma),
            "divbma" => Some(AlgorithmSpec::DivBma),
            "iterative" => Some(AlgorithmSpec::Iterative),
            "iterative-twoway" => Some(AlgorithmSpec::IterativeTwoWay),
            "majority" => Some(AlgorithmSpec::Majority),
            _ => None,
        }
    }
}

/// The operation an admitted request runs.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Generate a Nanopore-twin dataset (`clusters`, `len`, `format`).
    Generate {
        /// Number of clusters to generate.
        clusters: usize,
        /// Designed strand length.
        len: usize,
        /// Dataset encoding for the response: text inlines the cluster
        /// file, binary answers with its size and checksum.
        format: Format,
    },
    /// Generate seeded noisy/clean strand pairs (`count`, `len`, `reads`).
    Corrupt {
        /// Number of reference strands.
        count: usize,
        /// Strand length.
        len: usize,
        /// Noisy reads per strand.
        reads: usize,
    },
    /// Resimulate an inline dataset under a named channel model.
    Simulate {
        /// Cluster-file text to resimulate.
        dataset: String,
        /// The channel model.
        model: ModelSpec,
    },
    /// Reconstruct an inline dataset and report accuracy.
    Evaluate {
        /// Cluster-file text to reconstruct.
        dataset: String,
        /// The reconstruction algorithm.
        algorithm: AlgorithmSpec,
    },
    /// Run the coded archival round trip over a seeded payload.
    Archive {
        /// Payload size in bytes.
        bytes: usize,
        /// Sequencing reads per strand.
        reads: usize,
        /// Lenient mode: quarantine unrecoverable strands instead of
        /// failing the request.
        lenient: bool,
        /// Cluster-file encoding the archived payload is staged through
        /// on its way to the decoder.
        format: Format,
    },
}

/// One admitted request: identity plus operation.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// The tenant label (first namespace component).
    pub tenant: String,
    /// The request id (second namespace component).
    pub request_id: String,
    /// What to run.
    pub op: Op,
    /// Per-request work-unit deadline; overrides the server default when
    /// present. Always at least 1 (a zero deadline is a protocol error).
    pub deadline: Option<u64>,
}

impl Request {
    /// The op name, echoed back in responses.
    pub fn op_name(&self) -> &'static str {
        match self.op {
            Op::Generate { .. } => "generate",
            Op::Corrupt { .. } => "corrupt",
            Op::Simulate { .. } => "simulate",
            Op::Evaluate { .. } => "evaluate",
            Op::Archive { .. } => "archive",
        }
    }

    /// Upper bound on the clusters this request holds in flight at once —
    /// the quantity the admission window budgets. Every op streams through
    /// a bounded window of at most `batch_size` clusters (that is the
    /// `WindowStats::high_watermark` contract), and ops whose total size is
    /// known to be smaller are bounded by that size instead.
    pub fn load_estimate(&self, batch_size: usize) -> usize {
        let cap = batch_size.max(1);
        match &self.op {
            Op::Generate { clusters, .. } => (*clusters).min(cap),
            Op::Corrupt { count, .. } => (*count).min(cap),
            Op::Simulate { .. } | Op::Evaluate { .. } | Op::Archive { .. } => cap,
        }
    }

    /// Total clusters the request processes end to end — the quantity
    /// overload shedding compares against an explicit `--cluster-budget`.
    /// Unlike [`Request::load_estimate`] this is *not* capped by the batch
    /// size: a request can stream through a small window yet still demand
    /// more total work than an operator is willing to spend on one tenant.
    pub fn work_estimate(&self) -> usize {
        match &self.op {
            Op::Generate { clusters, .. } => *clusters,
            Op::Corrupt { count, .. } => *count,
            Op::Simulate { dataset, .. } | Op::Evaluate { dataset, .. } => dataset
                .lines()
                .filter(|line| line.starts_with('>'))
                .count()
                .max(1),
            // One 16-byte Reed–Solomon data chunk becomes one strand.
            Op::Archive { bytes, .. } => bytes.div_ceil(16),
        }
    }

    /// Parses and validates one JSONL request line.
    ///
    /// `max_batch` is the admission cap on request size: `clusters`,
    /// `count`, and (scaled by the Reed–Solomon data length) `bytes` may
    /// not exceed it.
    ///
    /// # Errors
    ///
    /// [`ProtocolError`] naming the line and the violation; the tenant and
    /// request id are attached when the line parsed far enough to recover
    /// them.
    pub fn parse(line: &str, line_no: usize, max_batch: usize) -> Result<Request, ProtocolError> {
        let value = json::parse(line)
            .map_err(|e| ProtocolError::new(line_no, format!("malformed JSON ({e})")))?;
        if !matches!(value, Json::Object(_)) {
            return Err(ProtocolError::new(line_no, "request must be a JSON object"));
        }
        let tenant = identity_field(&value, "tenant", line_no)?;
        let request_id = identity_field(&value, "request_id", line_no).map_err(|mut e| {
            e.tenant = Some(tenant.clone());
            e
        })?;
        let attach = |mut e: ProtocolError| {
            e.tenant = Some(tenant.clone());
            e.request_id = Some(request_id.clone());
            e
        };

        let op_name = value
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| attach(ProtocolError::new(line_no, "missing string field 'op'")))?;
        let op = match op_name {
            "generate" => {
                let clusters = usize_field(&value, "clusters", 64, line_no).map_err(&attach)?;
                let len = usize_field(&value, "len", 110, line_no).map_err(&attach)?;
                check_range(clusters, 1, max_batch, "clusters", line_no).map_err(&attach)?;
                check_range(len, 1, 10_000, "len", line_no).map_err(&attach)?;
                let format = format_field(&value, line_no).map_err(&attach)?;
                Op::Generate {
                    clusters,
                    len,
                    format,
                }
            }
            "corrupt" => {
                let count = usize_field(&value, "count", 32, line_no).map_err(&attach)?;
                let len = usize_field(&value, "len", 110, line_no).map_err(&attach)?;
                let reads = usize_field(&value, "reads", 6, line_no).map_err(&attach)?;
                check_range(count, 1, max_batch, "count", line_no).map_err(&attach)?;
                check_range(len, 1, 10_000, "len", line_no).map_err(&attach)?;
                check_range(reads, 1, 1_000, "reads", line_no).map_err(&attach)?;
                Op::Corrupt { count, len, reads }
            }
            "simulate" => {
                let dataset = text_field(&value, "dataset", line_no).map_err(&attach)?;
                let spec = value.get("model").and_then(Json::as_str).unwrap_or("keoliya");
                let model = ModelSpec::parse(spec).ok_or_else(|| {
                    attach(ProtocolError::new(
                        line_no,
                        format!(
                            "unknown model '{spec}' (expected naive | dnasimulator | \
                             keoliya[:naive|cond|spatial|second])"
                        ),
                    ))
                })?;
                Op::Simulate { dataset, model }
            }
            "evaluate" => {
                let dataset = text_field(&value, "dataset", line_no).map_err(&attach)?;
                let spec = value
                    .get("algorithm")
                    .and_then(Json::as_str)
                    .unwrap_or("bma");
                let algorithm = AlgorithmSpec::parse(spec).ok_or_else(|| {
                    attach(ProtocolError::new(
                        line_no,
                        format!(
                            "unknown algorithm '{spec}' (expected bma | divbma | iterative | \
                             iterative-twoway | majority)"
                        ),
                    ))
                })?;
                Op::Evaluate { dataset, algorithm }
            }
            "archive" => {
                let bytes = usize_field(&value, "bytes", 1024, line_no).map_err(&attach)?;
                // One Reed–Solomon data chunk (16 bytes) becomes one strand,
                // so the admission cap scales bytes to the same strand budget
                // the other ops use.
                check_range(bytes, 1, max_batch.saturating_mul(16), "bytes", line_no)
                    .map_err(&attach)?;
                let reads = usize_field(&value, "reads", 20, line_no).map_err(&attach)?;
                check_range(reads, 1, 1_000, "reads", line_no).map_err(&attach)?;
                let lenient = value
                    .get("lenient")
                    .map(|v| v.as_bool().unwrap_or(false))
                    .unwrap_or(false);
                let format = format_field(&value, line_no).map_err(&attach)?;
                Op::Archive {
                    bytes,
                    reads,
                    lenient,
                    format,
                }
            }
            other => {
                return Err(attach(ProtocolError::new(
                    line_no,
                    format!(
                        "unknown op '{other}' (expected generate | corrupt | simulate | \
                         evaluate | archive)"
                    ),
                )))
            }
        };
        let deadline = match value.get("deadline") {
            None => None,
            Some(v) => {
                let units = v.as_usize().ok_or_else(|| {
                    attach(ProtocolError::new(
                        line_no,
                        "'deadline' must be a non-negative integer",
                    ))
                })?;
                if units == 0 {
                    return Err(attach(ProtocolError::new(
                        line_no,
                        "'deadline' must be at least 1 work unit",
                    )));
                }
                Some(units as u64)
            }
        };
        Ok(Request {
            tenant,
            request_id,
            op,
            deadline,
        })
    }
}

/// A required non-empty identity string (`tenant` / `request_id`), capped
/// so a hostile label cannot bloat every response that echoes it.
fn identity_field(value: &Json, name: &str, line_no: usize) -> Result<String, ProtocolError> {
    let text = value
        .get(name)
        .and_then(Json::as_str)
        .ok_or_else(|| ProtocolError::new(line_no, format!("missing string field '{name}'")))?;
    if text.is_empty() {
        return Err(ProtocolError::new(line_no, format!("'{name}' must be non-empty")));
    }
    if text.len() > 256 {
        return Err(ProtocolError::new(
            line_no,
            format!("'{name}' exceeds 256 bytes"),
        ));
    }
    Ok(text.to_owned())
}

/// An optional non-negative integer field with a default.
fn usize_field(
    value: &Json,
    name: &str,
    default: usize,
    line_no: usize,
) -> Result<usize, ProtocolError> {
    match value.get(name) {
        None => Ok(default),
        Some(v) => v.as_usize().ok_or_else(|| {
            ProtocolError::new(line_no, format!("'{name}' must be a non-negative integer"))
        }),
    }
}

/// The optional `format` field on dataset-producing ops; defaults to text
/// so every pre-format client keeps getting byte-identical responses.
fn format_field(value: &Json, line_no: usize) -> Result<Format, ProtocolError> {
    match value.get("format") {
        None => Ok(Format::Text),
        Some(v) => {
            let spec = v.as_str().ok_or_else(|| {
                ProtocolError::new(line_no, "'format' must be a string")
            })?;
            spec.parse().map_err(|_| {
                ProtocolError::new(
                    line_no,
                    format!("unknown format '{spec}' (expected text | binary)"),
                )
            })
        }
    }
}

/// A required non-empty string payload field.
fn text_field(value: &Json, name: &str, line_no: usize) -> Result<String, ProtocolError> {
    let text = value
        .get(name)
        .and_then(Json::as_str)
        .ok_or_else(|| ProtocolError::new(line_no, format!("missing string field '{name}'")))?;
    if text.is_empty() {
        return Err(ProtocolError::new(line_no, format!("'{name}' must be non-empty")));
    }
    Ok(text.to_owned())
}

fn check_range(
    value: usize,
    min: usize,
    max: usize,
    name: &str,
    line_no: usize,
) -> Result<(), ProtocolError> {
    if value < min {
        return Err(ProtocolError::new(
            line_no,
            format!("'{name}' must be at least {min}"),
        ));
    }
    if value > max {
        return Err(ProtocolError::new(
            line_no,
            format!("'{name}' = {value} exceeds the admission cap of {max}"),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAX: usize = 4096;

    #[test]
    fn parses_each_op_with_defaults() {
        let base = |op: &str, extra: &str| {
            format!("{{\"tenant\":\"t\",\"request_id\":\"r\",\"op\":\"{op}\"{extra}}}")
        };
        let r = Request::parse(&base("generate", ""), 1, MAX).unwrap();
        assert_eq!(
            r.op,
            Op::Generate { clusters: 64, len: 110, format: Format::Text }
        );
        assert_eq!(r.op_name(), "generate");
        let r = Request::parse(&base("corrupt", ",\"count\":5,\"reads\":3"), 1, MAX).unwrap();
        assert_eq!(r.op, Op::Corrupt { count: 5, len: 110, reads: 3 });
        let r = Request::parse(&base("simulate", ",\"dataset\":\">ACGT\\nACG\\n\""), 1, MAX)
            .unwrap();
        assert!(matches!(
            r.op,
            Op::Simulate { model: ModelSpec::Keoliya(SimulatorLayer::SecondOrder), .. }
        ));
        let r = Request::parse(
            &base("evaluate", ",\"dataset\":\">ACGT\\nACGT\\n\",\"algorithm\":\"majority\""),
            1,
            MAX,
        )
        .unwrap();
        assert!(matches!(r.op, Op::Evaluate { algorithm: AlgorithmSpec::Majority, .. }));
        let r = Request::parse(&base("archive", ",\"bytes\":256,\"lenient\":true"), 1, MAX)
            .unwrap();
        assert_eq!(
            r.op,
            Op::Archive { bytes: 256, reads: 20, lenient: true, format: Format::Text }
        );
    }

    #[test]
    fn format_field_parses_on_generate_and_archive() {
        let line = "{\"tenant\":\"t\",\"request_id\":\"r\",\"op\":\"generate\",\
                    \"format\":\"binary\"}";
        let r = Request::parse(line, 1, MAX).unwrap();
        assert!(matches!(r.op, Op::Generate { format: Format::Binary, .. }));
        let line = "{\"tenant\":\"t\",\"request_id\":\"r\",\"op\":\"archive\",\
                    \"format\":\"binary\"}";
        let r = Request::parse(line, 1, MAX).unwrap();
        assert!(matches!(r.op, Op::Archive { format: Format::Binary, .. }));
    }

    #[test]
    fn unknown_format_is_a_protocol_error_with_identity() {
        let line = "{\"tenant\":\"acme\",\"request_id\":\"r1\",\"op\":\"generate\",\
                    \"format\":\"parquet\"}";
        let err = Request::parse(line, 4, MAX).unwrap_err();
        assert_eq!(err.line, 4);
        assert!(err.message.contains("parquet"));
        assert!(err.message.contains("text | binary"));
        // Identity recovered, so lenient mode can answer `rejected`.
        assert_eq!(err.tenant.as_deref(), Some("acme"));
        assert_eq!(err.request_id.as_deref(), Some("r1"));
        let line = "{\"tenant\":\"t\",\"request_id\":\"r\",\"op\":\"archive\",\"format\":7}";
        let err = Request::parse(line, 1, MAX).unwrap_err();
        assert!(err.message.contains("must be a string"));
    }

    #[test]
    fn protocol_errors_name_the_line_and_identity() {
        let err = Request::parse("not json", 7, MAX).unwrap_err();
        assert_eq!(err.line, 7);
        assert!(err.to_string().contains("line 7"));
        assert_eq!(err.tenant, None);

        let err = Request::parse(
            "{\"tenant\":\"acme\",\"request_id\":\"r9\",\"op\":\"frobnicate\"}",
            3,
            MAX,
        )
        .unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("frobnicate"));
        assert_eq!(err.tenant.as_deref(), Some("acme"));
        assert_eq!(err.request_id.as_deref(), Some("r9"));
    }

    #[test]
    fn missing_identity_is_rejected() {
        for line in [
            "{\"op\":\"generate\"}",
            "{\"tenant\":\"t\",\"op\":\"generate\"}",
            "{\"tenant\":\"\",\"request_id\":\"r\",\"op\":\"generate\"}",
            "{\"tenant\":7,\"request_id\":\"r\",\"op\":\"generate\"}",
        ] {
            assert!(Request::parse(line, 1, MAX).is_err(), "accepted {line}");
        }
    }

    #[test]
    fn oversized_batches_are_rejected_at_admission() {
        let over = format!(
            "{{\"tenant\":\"t\",\"request_id\":\"r\",\"op\":\"generate\",\"clusters\":{}}}",
            MAX + 1
        );
        let err = Request::parse(&over, 1, MAX).unwrap_err();
        assert!(err.message.contains("admission cap"));
        let over = format!(
            "{{\"tenant\":\"t\",\"request_id\":\"r\",\"op\":\"archive\",\"bytes\":{}}}",
            MAX * 16 + 1
        );
        assert!(Request::parse(&over, 1, MAX).is_err());
        // At the cap is fine.
        let at = format!(
            "{{\"tenant\":\"t\",\"request_id\":\"r\",\"op\":\"corrupt\",\"count\":{MAX}}}"
        );
        assert!(Request::parse(&at, 1, MAX).is_ok());
    }

    #[test]
    fn load_estimate_is_bounded_by_batch_size() {
        let req = Request::parse(
            "{\"tenant\":\"t\",\"request_id\":\"r\",\"op\":\"generate\",\"clusters\":10}",
            1,
            MAX,
        )
        .unwrap();
        assert_eq!(req.load_estimate(256), 10);
        assert_eq!(req.load_estimate(4), 4);
        let req = Request::parse(
            "{\"tenant\":\"t\",\"request_id\":\"r\",\"op\":\"archive\"}",
            1,
            MAX,
        )
        .unwrap();
        assert_eq!(req.load_estimate(256), 256);
    }

    #[test]
    fn deadline_parses_and_zero_is_rejected() {
        let line = "{\"tenant\":\"t\",\"request_id\":\"r\",\"op\":\"generate\",\"deadline\":12}";
        let req = Request::parse(line, 1, MAX).unwrap();
        assert_eq!(req.deadline, Some(12));
        let line = "{\"tenant\":\"t\",\"request_id\":\"r\",\"op\":\"generate\"}";
        assert_eq!(Request::parse(line, 1, MAX).unwrap().deadline, None);
        let zero = "{\"tenant\":\"t\",\"request_id\":\"r\",\"op\":\"generate\",\"deadline\":0}";
        let err = Request::parse(zero, 1, MAX).unwrap_err();
        assert!(err.message.contains("at least 1"));
        assert_eq!(err.tenant.as_deref(), Some("t"));
        let bad = "{\"tenant\":\"t\",\"request_id\":\"r\",\"op\":\"generate\",\"deadline\":\"x\"}";
        assert!(Request::parse(bad, 1, MAX).is_err());
    }

    #[test]
    fn work_estimate_is_uncapped_total_work() {
        let req = Request::parse(
            "{\"tenant\":\"t\",\"request_id\":\"r\",\"op\":\"generate\",\"clusters\":2000}",
            1,
            MAX,
        )
        .unwrap();
        assert_eq!(req.work_estimate(), 2000);
        assert_eq!(req.load_estimate(64), 64);
        let req = Request::parse(
            "{\"tenant\":\"t\",\"request_id\":\"r\",\"op\":\"archive\",\"bytes\":320}",
            1,
            MAX,
        )
        .unwrap();
        assert_eq!(req.work_estimate(), 20);
        let req = Request::parse(
            "{\"tenant\":\"t\",\"request_id\":\"r\",\"op\":\"simulate\",\
             \"dataset\":\">AC\\nAC\\n>GT\\nGT\\n\"}",
            1,
            MAX,
        )
        .unwrap();
        assert_eq!(req.work_estimate(), 2);
    }

    #[test]
    fn unknown_model_and_algorithm_are_protocol_errors() {
        let bad_model =
            "{\"tenant\":\"t\",\"request_id\":\"r\",\"op\":\"simulate\",\"dataset\":\">A\\n\",\
             \"model\":\"quantum\"}";
        assert!(Request::parse(bad_model, 1, MAX)
            .unwrap_err()
            .message
            .contains("quantum"));
        let bad_algo =
            "{\"tenant\":\"t\",\"request_id\":\"r\",\"op\":\"evaluate\",\"dataset\":\">A\\n\",\
             \"algorithm\":\"oracle\"}";
        assert!(Request::parse(bad_algo, 1, MAX)
            .unwrap_err()
            .message
            .contains("oracle"));
    }
}
