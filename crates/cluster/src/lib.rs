//! Read clustering for DNA-storage pipelines.
//!
//! Sequencing returns an unordered pool of noisy reads; before trace
//! reconstruction, reads must be grouped into clusters of copies of the
//! same reference. Evaluation can either use *perfect* (pseudo-)clustering
//! — treating the simulator's ordered output as already grouped, isolating
//! reconstruction behaviour from clustering artifacts — or run a real
//! clusterer over the shuffled pool.
//!
//! * [`perfect_clustering`] — the explicit identity used by the paper's
//!   evaluation protocol;
//! * [`GreedyClusterer`] — single-pass greedy clustering with a
//!   [`QGramSignature`] MinHash prefilter and banded edit-distance
//!   confirmation.
//!
//! # Examples
//!
//! ```
//! use dnasim_cluster::GreedyClusterer;
//! use dnasim_core::Strand;
//!
//! let a: Strand = "ACGTACGTACGTACGTACGT".parse()?;
//! let pool = vec![a.clone(), a.clone(), a];
//! let clusters = GreedyClusterer::default().cluster(&pool);
//! assert_eq!(clusters.len(), 1);
//! # Ok::<(), dnasim_core::ParseStrandError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod greedy;
mod signature;

pub use greedy::{perfect_clustering, GreedyClusterer};
pub use signature::QGramSignature;
