//! Read clustering for DNA-storage pipelines.
//!
//! Sequencing returns an unordered pool of noisy reads; before trace
//! reconstruction, reads must be grouped into clusters of copies of the
//! same reference. Evaluation can either use *perfect* (pseudo-)clustering
//! — treating the simulator's ordered output as already grouped, isolating
//! reconstruction behaviour from clustering artifacts — or run a real
//! clusterer over the shuffled pool.
//!
//! * [`perfect_clustering`] — the explicit identity used by the paper's
//!   evaluation protocol;
//! * [`GreedyClusterer`] — single-pass greedy clustering with a
//!   [`QGramSignature`] MinHash prefilter, a q-gram error-ball lower
//!   bound that discharges hopeless candidates before any kernel runs,
//!   and banded edit-distance confirmation batched through the
//!   multi-pattern SIMD kernel tier;
//! * [`StreamingClusterer`] — the same decision core driven *online*:
//!   push reads window by window, keep only per-bucket representatives
//!   resident (`O(clusters)`, never `O(reads)`), get memberships
//!   byte-identical to [`GreedyClusterer`] at any batch size, with
//!   optional founding-time reference matching for the imperfect
//!   archive path;
//! * [`ClusterStats`] — per-run counters (candidates proposed, pruned by
//!   the error ball, kernel calls, lanes filled), also accumulated
//!   process-wide for the CLI's diagnostic line.
//!
//! # Examples
//!
//! ```
//! use dnasim_cluster::GreedyClusterer;
//! use dnasim_core::Strand;
//!
//! let a: Strand = "ACGTACGTACGTACGTACGT".parse()?;
//! let pool = vec![a.clone(), a.clone(), a];
//! let clusters = GreedyClusterer::default().cluster(&pool);
//! assert_eq!(clusters.len(), 1);
//! # Ok::<(), dnasim_core::ParseStrandError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod greedy;
mod signature;
mod stats;
mod streaming;

pub use greedy::{perfect_clustering, GreedyClusterer};
pub use signature::QGramSignature;
pub use stats::{process_cluster_stats, reset_process_cluster_stats, ClusterStats};
pub use streaming::{StreamAssignment, StreamingClusterer};
