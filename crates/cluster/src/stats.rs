//! Per-run and process-wide counters for the clustering hot path.
//!
//! The multi-pattern kernel tier and the q-gram error-ball prefilter are
//! pure throughput optimisations — they must never change a cluster — so
//! their effect is only observable through counters: how many candidate
//! comparisons the signature stage proposed, how many the error-ball
//! bound discharged without a kernel, and how densely the survivors were
//! packed into multi-pattern banks.
//!
//! Every public clustering entry point returns a [`ClusterStats`] via its
//! `*_stats` variant and also accumulates the same numbers into
//! process-wide atomics, which the CLI reads to print its
//! `cluster kernel:` diagnostic line (e.g. after `dnasim archive
//! --imperfect`).

use std::sync::atomic::{AtomicUsize, Ordering};

/// Counters from one clustering pass (or, via
/// [`process_cluster_stats`], accumulated across a whole process).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterStats {
    /// Reads processed by the assignment pass.
    pub reads: usize,
    /// Candidate comparisons proposed by the signature/bucket stage
    /// (before the error-ball prefilter).
    pub candidates: usize,
    /// Candidates discharged by the q-gram lower bound — comparisons
    /// that provably could not land within the threshold, so no kernel
    /// ran for them.
    pub pruned: usize,
    /// Edit-distance kernel invocations (a multi-pattern bank scan
    /// counts once).
    pub kernel_calls: usize,
    /// Pattern lanes evaluated across all kernel invocations; divided by
    /// [`kernel_calls`](ClusterStats::kernel_calls) this is the mean
    /// bank occupancy.
    pub kernel_lanes: usize,
}

impl ClusterStats {
    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &ClusterStats) {
        self.reads += other.reads;
        self.candidates += other.candidates;
        self.pruned += other.pruned;
        self.kernel_calls += other.kernel_calls;
        self.kernel_lanes += other.kernel_lanes;
    }

    /// Fraction of proposed candidates discharged by the error-ball
    /// prefilter (0 when nothing was proposed).
    pub fn pruned_share(&self) -> f64 {
        if self.candidates == 0 {
            0.0
        } else {
            self.pruned as f64 / self.candidates as f64
        }
    }

    /// Mean pattern lanes per kernel invocation (0 when no kernel ran).
    pub fn lanes_per_call(&self) -> f64 {
        if self.kernel_calls == 0 {
            0.0
        } else {
            self.kernel_lanes as f64 / self.kernel_calls as f64
        }
    }
}

static READS: AtomicUsize = AtomicUsize::new(0);
static CANDIDATES: AtomicUsize = AtomicUsize::new(0);
static PRUNED: AtomicUsize = AtomicUsize::new(0);
static KERNEL_CALLS: AtomicUsize = AtomicUsize::new(0);
static KERNEL_LANES: AtomicUsize = AtomicUsize::new(0);

/// Folds one pass's counters into the process-wide totals.
pub(crate) fn record(stats: &ClusterStats) {
    READS.fetch_add(stats.reads, Ordering::Relaxed);
    CANDIDATES.fetch_add(stats.candidates, Ordering::Relaxed);
    PRUNED.fetch_add(stats.pruned, Ordering::Relaxed);
    KERNEL_CALLS.fetch_add(stats.kernel_calls, Ordering::Relaxed);
    KERNEL_LANES.fetch_add(stats.kernel_lanes, Ordering::Relaxed);
}

/// Snapshot of the counters accumulated by every clustering pass in this
/// process (what the CLI's diagnostic line prints).
pub fn process_cluster_stats() -> ClusterStats {
    ClusterStats {
        reads: READS.load(Ordering::Relaxed),
        candidates: CANDIDATES.load(Ordering::Relaxed),
        pruned: PRUNED.load(Ordering::Relaxed),
        kernel_calls: KERNEL_CALLS.load(Ordering::Relaxed),
        kernel_lanes: KERNEL_LANES.load(Ordering::Relaxed),
    }
}

/// Resets the process-wide counters (test isolation).
pub fn reset_process_cluster_stats() {
    READS.store(0, Ordering::Relaxed);
    CANDIDATES.store(0, Ordering::Relaxed);
    PRUNED.store(0, Ordering::Relaxed);
    KERNEL_CALLS.store(0, Ordering::Relaxed);
    KERNEL_LANES.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates_every_field() {
        let mut a = ClusterStats {
            reads: 1,
            candidates: 2,
            pruned: 1,
            kernel_calls: 1,
            kernel_lanes: 1,
        };
        let b = ClusterStats {
            reads: 10,
            candidates: 20,
            pruned: 5,
            kernel_calls: 3,
            kernel_lanes: 15,
        };
        a.merge(&b);
        assert_eq!(a.reads, 11);
        assert_eq!(a.candidates, 22);
        assert_eq!(a.pruned, 6);
        assert_eq!(a.kernel_calls, 4);
        assert_eq!(a.kernel_lanes, 16);
    }

    #[test]
    fn ratios_handle_empty_runs() {
        let empty = ClusterStats::default();
        assert_eq!(empty.pruned_share(), 0.0);
        assert_eq!(empty.lanes_per_call(), 0.0);
        let s = ClusterStats {
            reads: 4,
            candidates: 10,
            pruned: 4,
            kernel_calls: 2,
            kernel_lanes: 6,
        };
        assert!((s.pruned_share() - 0.4).abs() < 1e-12);
        assert!((s.lanes_per_call() - 3.0).abs() < 1e-12);
    }
}
