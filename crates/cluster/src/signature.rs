//! q-gram MinHash signatures for cheap candidate filtering.
//!
//! Comparing every read against every cluster with edit distance is
//! quadratic and dominates clustering cost at dataset scale. Reads from the
//! same reference share most of their q-grams, so a small MinHash sketch of
//! the q-gram set buckets similar reads together and the expensive banded
//! edit distance only runs within buckets.

use dnasim_core::Strand;

/// A MinHash sketch over the q-grams of a strand.
///
/// Two strands within small edit distance share most q-grams, so their
/// sketches collide in at least one band with high probability.
///
/// # Examples
///
/// ```
/// use dnasim_cluster::QGramSignature;
/// use dnasim_core::Strand;
///
/// let a: Strand = "ACGTACGTACGT".parse()?;
/// let b: Strand = "ACGTACGACGT".parse()?; // one deletion
/// let sig_a = QGramSignature::new(&a, 4, 8);
/// let sig_b = QGramSignature::new(&b, 4, 8);
/// assert!(sig_a.shares_band(&sig_b, 2));
/// # Ok::<(), dnasim_core::ParseStrandError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QGramSignature {
    hashes: Vec<u64>,
}

impl QGramSignature {
    /// Builds a sketch of `sketch_len` minimum hashes over the `q`-grams of
    /// `strand`. A strand shorter than `q` gets a single whole-strand hash.
    pub fn new(strand: &Strand, q: usize, sketch_len: usize) -> QGramSignature {
        let bases = strand.as_bases();
        let mut hashes: Vec<u64> = if bases.len() < q || q == 0 {
            vec![hash_gram(bases, 0)]
        } else {
            bases
                .windows(q)
                .map(|gram| hash_gram(gram, 0))
                .collect()
        };
        hashes.sort_unstable();
        hashes.dedup();
        hashes.truncate(sketch_len.max(1));
        QGramSignature { hashes }
    }

    /// The sketch hashes (ascending).
    pub fn hashes(&self) -> &[u64] {
        &self.hashes
    }

    /// Whether the two sketches share at least one of their first
    /// `bands` hashes — the cheap candidate test.
    pub fn shares_band(&self, other: &QGramSignature, bands: usize) -> bool {
        let a = &self.hashes[..self.hashes.len().min(bands.max(1))];
        let b = &other.hashes[..other.hashes.len().min(bands.max(1))];
        // Both slices are sorted: linear merge intersection.
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }

    /// Jaccard-style overlap of the two sketches in `[0, 1]`.
    pub fn overlap(&self, other: &QGramSignature) -> f64 {
        let (mut i, mut j, mut shared) = (0, 0, 0usize);
        while i < self.hashes.len() && j < other.hashes.len() {
            match self.hashes[i].cmp(&other.hashes[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    shared += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        let denom = self.hashes.len().max(other.hashes.len());
        if denom == 0 {
            return 0.0;
        }
        shared as f64 / denom as f64
    }
}

/// FNV-1a over the gram bytes, mixed with SplitMix64.
fn hash_gram(gram: &[dnasim_core::Base], salt: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ salt;
    for &b in gram {
        h ^= b.index() as u64 + 1;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // SplitMix64 finaliser.
    h = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(text: &str) -> Strand {
        text.parse().unwrap()
    }

    #[test]
    fn identical_strands_have_identical_signatures() {
        let a = QGramSignature::new(&s("ACGTACGTACGT"), 4, 8);
        let b = QGramSignature::new(&s("ACGTACGTACGT"), 4, 8);
        assert_eq!(a, b);
        assert!((a.overlap(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn similar_strands_share_bands() {
        let a = QGramSignature::new(&s("ACGTACGTACGTACGTAGTC"), 4, 10);
        let b = QGramSignature::new(&s("ACGTACGACGTACGTAGTC"), 4, 10);
        assert!(a.shares_band(&b, 4));
        assert!(a.overlap(&b) > 0.4);
    }

    #[test]
    fn dissimilar_strands_have_low_overlap() {
        let a = QGramSignature::new(&s("AAAACCCCAAAACCCC"), 4, 8);
        let b = QGramSignature::new(&s("GGGGTTTTGGGGTTTT"), 4, 8);
        assert!(a.overlap(&b) < 0.2);
    }

    #[test]
    fn short_strands_hash_whole() {
        let a = QGramSignature::new(&s("AC"), 4, 8);
        assert_eq!(a.hashes().len(), 1);
        let b = QGramSignature::new(&s("AC"), 4, 8);
        assert!(a.shares_band(&b, 1));
    }

    #[test]
    fn sketch_length_is_bounded() {
        let a = QGramSignature::new(&s("ACGTACGTACGTACGTACGTACGTACGT"), 3, 5);
        assert!(a.hashes().len() <= 5);
        assert!(a.hashes().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn empty_strand_does_not_panic() {
        let a = QGramSignature::new(&Strand::new(), 4, 8);
        assert_eq!(a.hashes().len(), 1);
    }
}
