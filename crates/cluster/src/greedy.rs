//! Greedy edit-distance clustering of an unordered read pool.
//!
//! Real sequencing yields an unordered multiset of reads that must be
//! grouped into clusters before reconstruction. This clusterer follows the
//! standard recipe (cf. Rashtchian et al.): a q-gram MinHash prefilter
//! proposes candidate clusters, and a banded edit-distance test against the
//! cluster representative confirms membership.

use std::collections::HashMap;

use dnasim_core::{Cluster, Dataset, PackedStrand, Strand};
use dnasim_metrics::{myers, MyersScratch};

use crate::signature::QGramSignature;

/// Configuration for greedy clustering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GreedyClusterer {
    /// Maximum edit distance to a cluster representative for membership.
    pub distance_threshold: usize,
    /// q-gram length for the signature prefilter.
    pub qgram_len: usize,
    /// Number of MinHash entries kept per signature.
    pub sketch_len: usize,
    /// Number of leading sketch hashes used for candidate bucketing.
    pub bands: usize,
}

impl Default for GreedyClusterer {
    /// Defaults tuned for ~110-base strands at Nanopore error rates.
    fn default() -> GreedyClusterer {
        GreedyClusterer {
            distance_threshold: 18,
            qgram_len: 5,
            sketch_len: 12,
            bands: 6,
        }
    }
}

impl GreedyClusterer {
    /// Groups a pool of reads into clusters, returning read indices per
    /// cluster.
    ///
    /// Single pass: each read joins the first existing cluster whose
    /// representative is within the distance threshold (candidates proposed
    /// by signature band collisions), or founds a new cluster.
    pub fn cluster(&self, pool: &[Strand]) -> Vec<Vec<usize>> {
        let mut clusters: Vec<Vec<usize>> = Vec::new();
        // Representatives are kept 2-bit packed: every incoming read is
        // compared against them with the Myers kernel, so packing once at
        // founding time amortises the Eq-mask construction over the whole
        // pool.
        let mut representatives: Vec<(PackedStrand, QGramSignature)> = Vec::new();
        // band hash → cluster ids that expose it
        let mut buckets: HashMap<u64, Vec<usize>> = HashMap::new();
        let mut scratch = MyersScratch::new();

        for (read_idx, read) in pool.iter().enumerate() {
            let sig = QGramSignature::new(read, self.qgram_len, self.sketch_len);
            let packed = PackedStrand::from(read);
            let mut candidates: Vec<usize> = sig
                .hashes()
                .iter()
                .take(self.bands)
                .filter_map(|h| buckets.get(h))
                .flatten()
                .copied()
                .collect();
            candidates.sort_unstable();
            candidates.dedup();

            let mut joined = None;
            for &cluster_id in &candidates {
                let (repr, _) = &representatives[cluster_id];
                if myers::within_with(&mut scratch, repr, &packed, self.distance_threshold)
                    .is_some()
                {
                    joined = Some(cluster_id);
                    break;
                }
            }
            match joined {
                Some(id) => clusters[id].push(read_idx),
                None => {
                    let id = clusters.len();
                    clusters.push(vec![read_idx]);
                    for &h in sig.hashes().iter().take(self.bands) {
                        buckets.entry(h).or_default().push(id);
                    }
                    representatives.push((packed, sig));
                }
            }
        }
        clusters
    }

    /// Clusters a pool and assigns each group to the nearest reference
    /// strand, producing an evaluable [`Dataset`] (references with no
    /// assigned group become erasures).
    ///
    /// Reads whose group matches no reference within the threshold are
    /// dropped — exactly the data loss imperfect clustering causes.
    pub fn cluster_against_references(
        &self,
        pool: &[Strand],
        references: &[Strand],
    ) -> Dataset {
        let ref_sigs: Vec<QGramSignature> = references
            .iter()
            .map(|r| QGramSignature::new(r, self.qgram_len, self.sketch_len))
            .collect();
        // References are compared against every group representative, so
        // pack them once up front.
        let packed_refs: Vec<PackedStrand> =
            references.iter().map(PackedStrand::from).collect();
        let mut assigned: Vec<Vec<Strand>> = references.iter().map(|_| Vec::new()).collect();
        let mut scratch = MyersScratch::new();

        for group in self.cluster(pool) {
            let repr = &pool[group[0]];
            let sig = QGramSignature::new(repr, self.qgram_len, self.sketch_len);
            let packed_repr = PackedStrand::from(repr);
            // Nearest reference by signature overlap, confirmed by banded
            // distance.
            let mut best: Option<(usize, usize)> = None; // (ref idx, distance)
            for (ref_idx, packed_ref) in packed_refs.iter().enumerate() {
                if !sig.shares_band(&ref_sigs[ref_idx], self.bands)
                    && sig.overlap(&ref_sigs[ref_idx]) == 0.0
                {
                    continue;
                }
                if let Some(d) = myers::within_with(
                    &mut scratch,
                    packed_ref,
                    &packed_repr,
                    self.distance_threshold,
                ) {
                    if best.is_none_or(|(_, bd)| d < bd) {
                        best = Some((ref_idx, d));
                    }
                }
            }
            if let Some((ref_idx, _)) = best {
                for read_idx in group {
                    assigned[ref_idx].push(pool[read_idx].clone());
                }
            }
        }
        references
            .iter()
            .zip(assigned)
            .map(|(reference, reads)| Cluster::new(reference.clone(), reads))
            .collect()
    }
}

impl GreedyClusterer {
    /// A second pass over [`cluster`](GreedyClusterer::cluster)'s output
    /// that merges groups whose representatives are within the distance
    /// threshold of each other.
    ///
    /// Single-pass greedy clustering is order-dependent: a noisy early read
    /// can found a splinter cluster that later reads of the same strand
    /// never rejoin. Merging representative-close groups repairs most of
    /// these splits at `O(g²)` representative comparisons (with the
    /// signature prefilter pruning most pairs).
    pub fn cluster_with_merge(&self, pool: &[Strand]) -> Vec<Vec<usize>> {
        let groups = self.cluster(pool);
        if groups.len() <= 1 {
            return groups;
        }
        let representatives: Vec<(PackedStrand, QGramSignature)> = groups
            .iter()
            .map(|g| {
                let repr = &pool[g[0]];
                (
                    PackedStrand::from(repr),
                    QGramSignature::new(repr, self.qgram_len, self.sketch_len),
                )
            })
            .collect();
        let mut scratch = MyersScratch::new();
        // Union-find over groups.
        let mut parent: Vec<usize> = (0..groups.len()).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for i in 0..groups.len() {
            for j in (i + 1)..groups.len() {
                if find(&mut parent, i) == find(&mut parent, j) {
                    continue;
                }
                let (repr_i, sig_i) = &representatives[i];
                let (repr_j, sig_j) = &representatives[j];
                if !sig_i.shares_band(sig_j, self.bands) {
                    continue;
                }
                if myers::within_with(&mut scratch, repr_i, repr_j, self.distance_threshold)
                    .is_some()
                {
                    let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                    parent[ri.max(rj)] = ri.min(rj);
                }
            }
        }
        let mut merged: std::collections::BTreeMap<usize, Vec<usize>> =
            std::collections::BTreeMap::new();
        for (i, group) in groups.into_iter().enumerate() {
            merged.entry(find(&mut parent, i)).or_default().extend(group);
        }
        merged.into_values().collect()
    }
}

/// Perfect (pseudo-)clustering: treats the simulator's ordered output as
/// already clustered. This is the identity on a [`Dataset`] and exists to
/// make the clustering choice explicit at call sites.
pub fn perfect_clustering(dataset: Dataset) -> Dataset {
    dataset
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnasim_channel::{ErrorModel, NaiveModel};
    use dnasim_core::rng::seeded;

    #[test]
    fn identical_reads_form_one_cluster() {
        let read: Strand = "ACGTACGTACGTACGTACGT".parse().unwrap();
        let pool = vec![read.clone(), read.clone(), read];
        let clusters = GreedyClusterer::default().cluster(&pool);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0], vec![0, 1, 2]);
    }

    #[test]
    fn distant_reads_form_separate_clusters() {
        let mut rng = seeded(1);
        let a = Strand::random(60, &mut rng);
        let b = Strand::random(60, &mut rng);
        let pool = vec![a.clone(), b.clone(), a, b];
        let clusters = GreedyClusterer::default().cluster(&pool);
        assert_eq!(clusters.len(), 2);
    }

    #[test]
    fn noisy_copies_cluster_with_their_origin() {
        let mut rng = seeded(2);
        let model = NaiveModel::with_total_rate(0.05);
        let references: Vec<Strand> = (0..8).map(|_| Strand::random(110, &mut rng)).collect();
        let mut pool = Vec::new();
        let mut origin = Vec::new();
        for (i, r) in references.iter().enumerate() {
            for _ in 0..5 {
                pool.push(model.corrupt(r, &mut rng));
                origin.push(i);
            }
        }
        let clusters = GreedyClusterer::default().cluster(&pool);
        // Every cluster should be pure: all members share an origin.
        for group in &clusters {
            let first = origin[group[0]];
            assert!(
                group.iter().all(|&idx| origin[idx] == first),
                "mixed cluster: {group:?}"
            );
        }
        // And there should be roughly one cluster per reference.
        assert!(clusters.len() >= 8 && clusters.len() <= 12, "{}", clusters.len());
    }

    #[test]
    fn cluster_against_references_recovers_dataset() {
        let mut rng = seeded(3);
        let model = NaiveModel::with_total_rate(0.05);
        let references: Vec<Strand> = (0..6).map(|_| Strand::random(110, &mut rng)).collect();
        let mut pool = Vec::new();
        for r in &references {
            for _ in 0..4 {
                pool.push(model.corrupt(r, &mut rng));
            }
        }
        // Shuffle the pool to destroy ordering.
        use dnasim_core::rng::SliceRandom;
        pool.shuffle(&mut rng);
        let dataset =
            GreedyClusterer::default().cluster_against_references(&pool, &references);
        assert_eq!(dataset.len(), 6);
        // Most reads should be recovered into their clusters.
        assert!(
            dataset.total_reads() >= 20,
            "only {} of 24 reads assigned",
            dataset.total_reads()
        );
        for cluster in dataset.iter() {
            assert!(!cluster.is_erasure(), "lost a reference entirely");
        }
    }

    #[test]
    fn unmatched_reads_are_dropped() {
        let mut rng = seeded(4);
        let references = vec![Strand::random(110, &mut rng)];
        let junk = Strand::random(110, &mut rng);
        let dataset = GreedyClusterer::default()
            .cluster_against_references(&[junk], &references);
        assert_eq!(dataset.len(), 1);
        assert_eq!(dataset.total_reads(), 0);
    }

    #[test]
    fn empty_pool_yields_erasures() {
        let mut rng = seeded(5);
        let references = vec![Strand::random(50, &mut rng)];
        let dataset = GreedyClusterer::default().cluster_against_references(&[], &references);
        assert_eq!(dataset.erasure_count(), 1);
    }

    #[test]
    fn perfect_clustering_is_identity() {
        let mut rng = seeded(6);
        let r = Strand::random(20, &mut rng);
        let ds = Dataset::from_clusters(vec![Cluster::new(r.clone(), vec![r])]);
        assert_eq!(perfect_clustering(ds.clone()), ds);
    }
}

#[cfg(test)]
mod merge_tests {
    use super::*;
    use dnasim_channel::{ErrorModel, NaiveModel};
    use dnasim_core::rng::seeded;

    #[test]
    fn merge_repairs_splinter_clusters() {
        // A clusterer with a tight threshold splinters heavy-noise reads;
        // the merge pass with the same threshold rejoins groups whose
        // representatives are mutually close.
        let mut rng = seeded(10);
        let model = NaiveModel::with_total_rate(0.08);
        let references: Vec<Strand> = (0..6).map(|_| Strand::random(110, &mut rng)).collect();
        let mut pool = Vec::new();
        for r in &references {
            for _ in 0..8 {
                pool.push(model.corrupt(r, &mut rng));
            }
        }
        let clusterer = GreedyClusterer {
            distance_threshold: 22,
            ..GreedyClusterer::default()
        };
        let single_pass = clusterer.cluster(&pool);
        let merged = clusterer.cluster_with_merge(&pool);
        assert!(merged.len() <= single_pass.len());
        // Every read is still assigned exactly once.
        let mut seen: Vec<usize> = merged.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..pool.len()).collect::<Vec<_>>());
    }

    #[test]
    fn merge_is_identity_when_nothing_overlaps() {
        let mut rng = seeded(11);
        let a = Strand::random(80, &mut rng);
        let b = Strand::random(80, &mut rng);
        let pool = vec![a.clone(), a, b.clone(), b];
        let clusterer = GreedyClusterer::default();
        assert_eq!(
            clusterer.cluster_with_merge(&pool).len(),
            clusterer.cluster(&pool).len()
        );
    }

    #[test]
    fn merge_handles_trivial_pools() {
        let clusterer = GreedyClusterer::default();
        assert!(clusterer.cluster_with_merge(&[]).is_empty());
        let one = vec![Strand::random(30, &mut seeded(12))];
        assert_eq!(clusterer.cluster_with_merge(&one).len(), 1);
    }
}
