//! Greedy edit-distance clustering of an unordered read pool.
//!
//! Real sequencing yields an unordered multiset of reads that must be
//! grouped into clusters before reconstruction. This clusterer follows the
//! standard recipe (cf. Rashtchian et al.): a q-gram MinHash prefilter
//! proposes candidate clusters, and a banded edit-distance test against the
//! cluster representative confirms membership.
//!
//! Two throughput layers sit between candidate proposal and confirmation,
//! neither of which can change a clustering decision:
//!
//! 1. an **error-ball prefilter** — the q-gram counting lower bound
//!    ([`QGramProfile`]) discharges candidates whose distance provably
//!    exceeds the threshold before any kernel runs;
//! 2. the **multi-pattern kernel tier** — surviving candidates with equal
//!    word counts are batched into [`PatternBank`]s so one pass over the
//!    read advances up to [`MAX_LANES`] representatives at once (AVX2 /
//!    NEON / scalar, runtime selected).
//!
//! Both layers are exact, so `cluster`, `cluster_with_merge`, and
//! `cluster_against_references` return byte-identical groupings with any
//! backend and with the prefilter disabled; only the counters in
//! [`ClusterStats`] differ.

use std::collections::{BTreeMap, HashMap};

use dnasim_core::{Cluster, Dataset, PackedStrand, Strand};

use crate::stats::{self, ClusterStats};
use crate::streaming::{
    evaluate_candidates, AssignScratch, OnlineState, ReferenceIndex, Representative,
};

/// Configuration for greedy clustering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GreedyClusterer {
    /// Maximum edit distance to a cluster representative for membership.
    pub distance_threshold: usize,
    /// q-gram length for the signature prefilter (also the gram length of
    /// the error-ball lower bound).
    pub qgram_len: usize,
    /// Number of MinHash entries kept per signature.
    pub sketch_len: usize,
    /// Number of leading sketch hashes used for candidate bucketing.
    pub bands: usize,
    /// Whether the q-gram error-ball lower bound may discharge candidates
    /// before the kernel. Exact either way — disabling it only costs
    /// kernel calls (the filtered-vs-unfiltered differential tests flip
    /// this flag).
    pub prefilter: bool,
}

impl Default for GreedyClusterer {
    /// Defaults tuned for ~110-base strands at Nanopore error rates.
    fn default() -> GreedyClusterer {
        GreedyClusterer {
            distance_threshold: 18,
            qgram_len: 5,
            sketch_len: 12,
            bands: 6,
            prefilter: true,
        }
    }
}

impl GreedyClusterer {
    /// Groups a pool of reads into clusters, returning read indices per
    /// cluster.
    ///
    /// Single pass: each read joins the first existing cluster whose
    /// representative is within the distance threshold (candidates proposed
    /// by signature band collisions), or founds a new cluster.
    pub fn cluster(&self, pool: &[Strand]) -> Vec<Vec<usize>> {
        self.cluster_stats(pool).0
    }

    /// [`cluster`](GreedyClusterer::cluster) plus the pass's
    /// [`ClusterStats`] (also folded into the process-wide counters).
    pub fn cluster_stats(&self, pool: &[Strand]) -> (Vec<Vec<usize>>, ClusterStats) {
        let (clusters, _, run) = self.cluster_impl(pool);
        stats::record(&run);
        (clusters, run)
    }

    /// The single assignment pass shared by every public entry point.
    ///
    /// Delegates to the online [`OnlineState`] core — the same decision
    /// sequence the streaming clusterer runs read by read — and
    /// materialises the membership lists the streaming core deliberately
    /// does not keep. Returns the groups, the per-cluster
    /// [`Representative`]s (packed strand, signature, and q-gram profile —
    /// built exactly once, at founding time), and the pass counters.
    fn cluster_impl(&self, pool: &[Strand]) -> (Vec<Vec<usize>>, Vec<Representative>, ClusterStats) {
        let mut clusters: Vec<Vec<usize>> = Vec::new();
        let mut state = OnlineState::new(*self);
        for (read_idx, read) in pool.iter().enumerate() {
            let id = state.assign(read);
            if id == clusters.len() {
                clusters.push(Vec::new());
            }
            clusters[id].push(read_idx);
        }
        let (reps, run) = state.into_parts();
        (clusters, reps, run)
    }

    /// Clusters a pool and assigns each group to the nearest reference
    /// strand, producing an evaluable [`Dataset`] (references with no
    /// assigned group become erasures).
    ///
    /// Reads whose group matches no reference within the threshold are
    /// dropped — exactly the data loss imperfect clustering causes.
    pub fn cluster_against_references(&self, pool: &[Strand], references: &[Strand]) -> Dataset {
        self.cluster_against_references_stats(pool, references).0
    }

    /// [`cluster_against_references`](GreedyClusterer::cluster_against_references)
    /// plus the combined assignment-pass and reference-matching
    /// [`ClusterStats`].
    pub fn cluster_against_references_stats(
        &self,
        pool: &[Strand],
        references: &[Strand],
    ) -> (Dataset, ClusterStats) {
        // References are compared against every group representative, so
        // pack, sign, and profile them once up front.
        let refs = ReferenceIndex::new(self, references);
        let mut assigned: Vec<Vec<Strand>> = references.iter().map(|_| Vec::new()).collect();

        // The assignment pass already packed, signed, and profiled every
        // group representative — reuse them instead of recomputing from
        // `pool[group[0]]`. Matching is the same pure per-representative
        // function the streaming clusterer applies at founding time.
        let (groups, reps, mut run) = self.cluster_impl(pool);
        let mut scratch = AssignScratch::default();
        let mut results: Vec<Option<usize>> = Vec::new();

        for (gid, group) in groups.iter().enumerate() {
            let matched =
                refs.match_representative(self, &reps[gid], &mut scratch, &mut run, &mut results);
            if let Some(ref_idx) = matched {
                for &read_idx in group {
                    assigned[ref_idx].push(pool[read_idx].clone());
                }
            }
        }
        stats::record(&run);
        let dataset = references
            .iter()
            .zip(assigned)
            .map(|(reference, reads)| Cluster::new(reference.clone(), reads))
            .collect();
        (dataset, run)
    }
}

impl GreedyClusterer {
    /// A second pass over [`cluster`](GreedyClusterer::cluster)'s output
    /// that merges groups whose representatives are within the distance
    /// threshold of each other.
    ///
    /// Single-pass greedy clustering is order-dependent: a noisy early read
    /// can found a splinter cluster that later reads of the same strand
    /// never rejoin. Merging representative-close groups repairs most of
    /// these splits; candidate pairs come from band-bucket collisions (the
    /// same `HashMap` discipline as the first pass), so the merge scales
    /// with collisions rather than groups².
    pub fn cluster_with_merge(&self, pool: &[Strand]) -> Vec<Vec<usize>> {
        self.cluster_with_merge_stats(pool).0
    }

    /// [`cluster_with_merge`](GreedyClusterer::cluster_with_merge) plus
    /// the combined first-pass and merge-pass [`ClusterStats`].
    pub fn cluster_with_merge_stats(&self, pool: &[Strand]) -> (Vec<Vec<usize>>, ClusterStats) {
        let (groups, reps, mut run) = self.cluster_impl(pool);
        if groups.len() <= 1 {
            stats::record(&run);
            return (groups, run);
        }

        // Bucket-driven candidate pairs: two groups can merge only if
        // their signatures share one of the first `bands` hashes, i.e.
        // only if they collide in a band bucket. Collecting pairs per
        // bucket enumerates exactly the pairs `shares_band` would accept
        // (`max(1)` mirrors its floor), without touching the g² pairs
        // that share nothing.
        let mut buckets: HashMap<u64, Vec<usize>> = HashMap::new();
        for (gid, rep) in reps.iter().enumerate() {
            for &h in rep.sig.hashes().iter().take(self.bands.max(1)) {
                buckets.entry(h).or_default().push(gid);
            }
        }
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        for ids in buckets.values() {
            for (a, &i) in ids.iter().enumerate() {
                for &j in &ids[a + 1..] {
                    pairs.push((i.min(j), i.max(j)));
                }
            }
        }
        pairs.sort_unstable();
        pairs.dedup();

        // Union-find over groups.
        let mut parent: Vec<usize> = (0..groups.len()).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        let mut scratch = AssignScratch::default();
        let mut results: Vec<Option<usize>> = Vec::new();
        let mut idx = 0;
        while idx < pairs.len() {
            let i = pairs[idx].0;
            let mut end = idx;
            while end < pairs.len() && pairs[end].0 == i {
                end += 1;
            }
            // Batch group i's partners into banks. Partners that become
            // connected to i mid-batch are evaluated anyway; merging an
            // already-connected pair is a no-op, so the final partition
            // matches the strictly sequential pair loop.
            let mut partners: Vec<usize> = Vec::new();
            if self.prefilter {
                scratch.qgram.load(&reps[i].profile);
            }
            for &(_, j) in &pairs[idx..end] {
                if find(&mut parent, i) == find(&mut parent, j) {
                    continue;
                }
                run.candidates += 1;
                if self.prefilter
                    && scratch.qgram.bound(&reps[j].profile) > self.distance_threshold
                {
                    run.pruned += 1;
                    continue;
                }
                partners.push(j);
            }
            let lanes: Vec<&PackedStrand> = partners.iter().map(|&j| &reps[j].packed).collect();
            evaluate_candidates(
                &mut scratch,
                &lanes,
                &reps[i].packed,
                self.distance_threshold,
                &mut run,
                &mut results,
            );
            for (&j, r) in partners.iter().zip(results.iter()) {
                if r.is_some() {
                    let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                    if ri != rj {
                        parent[ri.max(rj)] = ri.min(rj);
                    }
                }
            }
            idx = end;
        }
        let mut merged: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (i, group) in groups.into_iter().enumerate() {
            merged.entry(find(&mut parent, i)).or_default().extend(group);
        }
        stats::record(&run);
        (merged.into_values().collect(), run)
    }
}

/// Perfect (pseudo-)clustering: treats the simulator's ordered output as
/// already clustered. This is the identity on a [`Dataset`] and exists to
/// make the clustering choice explicit at call sites.
pub fn perfect_clustering(dataset: Dataset) -> Dataset {
    dataset
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnasim_channel::{ErrorModel, NaiveModel};
    use dnasim_core::rng::seeded;

    #[test]
    fn identical_reads_form_one_cluster() {
        let read: Strand = "ACGTACGTACGTACGTACGT".parse().unwrap();
        let pool = vec![read.clone(), read.clone(), read];
        let clusters = GreedyClusterer::default().cluster(&pool);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0], vec![0, 1, 2]);
    }

    #[test]
    fn distant_reads_form_separate_clusters() {
        let mut rng = seeded(1);
        let a = Strand::random(60, &mut rng);
        let b = Strand::random(60, &mut rng);
        let pool = vec![a.clone(), b.clone(), a, b];
        let clusters = GreedyClusterer::default().cluster(&pool);
        assert_eq!(clusters.len(), 2);
    }

    #[test]
    fn noisy_copies_cluster_with_their_origin() {
        let mut rng = seeded(2);
        let model = NaiveModel::with_total_rate(0.05);
        let references: Vec<Strand> = (0..8).map(|_| Strand::random(110, &mut rng)).collect();
        let mut pool = Vec::new();
        let mut origin = Vec::new();
        for (i, r) in references.iter().enumerate() {
            for _ in 0..5 {
                pool.push(model.corrupt(r, &mut rng));
                origin.push(i);
            }
        }
        let clusters = GreedyClusterer::default().cluster(&pool);
        // Every cluster should be pure: all members share an origin.
        for group in &clusters {
            let first = origin[group[0]];
            assert!(
                group.iter().all(|&idx| origin[idx] == first),
                "mixed cluster: {group:?}"
            );
        }
        // And there should be roughly one cluster per reference.
        assert!(clusters.len() >= 8 && clusters.len() <= 12, "{}", clusters.len());
    }

    #[test]
    fn cluster_against_references_recovers_dataset() {
        let mut rng = seeded(3);
        let model = NaiveModel::with_total_rate(0.05);
        let references: Vec<Strand> = (0..6).map(|_| Strand::random(110, &mut rng)).collect();
        let mut pool = Vec::new();
        for r in &references {
            for _ in 0..4 {
                pool.push(model.corrupt(r, &mut rng));
            }
        }
        // Shuffle the pool to destroy ordering.
        use dnasim_core::rng::SliceRandom;
        pool.shuffle(&mut rng);
        let dataset =
            GreedyClusterer::default().cluster_against_references(&pool, &references);
        assert_eq!(dataset.len(), 6);
        // Most reads should be recovered into their clusters.
        assert!(
            dataset.total_reads() >= 20,
            "only {} of 24 reads assigned",
            dataset.total_reads()
        );
        for cluster in dataset.iter() {
            assert!(!cluster.is_erasure(), "lost a reference entirely");
        }
    }

    #[test]
    fn unmatched_reads_are_dropped() {
        let mut rng = seeded(4);
        let references = vec![Strand::random(110, &mut rng)];
        let junk = Strand::random(110, &mut rng);
        let dataset = GreedyClusterer::default()
            .cluster_against_references(&[junk], &references);
        assert_eq!(dataset.len(), 1);
        assert_eq!(dataset.total_reads(), 0);
    }

    #[test]
    fn empty_pool_yields_erasures() {
        let mut rng = seeded(5);
        let references = vec![Strand::random(50, &mut rng)];
        let dataset = GreedyClusterer::default().cluster_against_references(&[], &references);
        assert_eq!(dataset.erasure_count(), 1);
    }

    #[test]
    fn perfect_clustering_is_identity() {
        let mut rng = seeded(6);
        let r = Strand::random(20, &mut rng);
        let ds = Dataset::from_clusters(vec![Cluster::new(r.clone(), vec![r])]);
        assert_eq!(perfect_clustering(ds.clone()), ds);
    }

    #[test]
    fn stats_track_kernel_work() {
        let mut rng = seeded(7);
        let model = NaiveModel::with_total_rate(0.05);
        let references: Vec<Strand> = (0..10).map(|_| Strand::random(110, &mut rng)).collect();
        let mut pool = Vec::new();
        for r in &references {
            for _ in 0..6 {
                pool.push(model.corrupt(r, &mut rng));
            }
        }
        let (_, run) = GreedyClusterer::default().cluster_stats(&pool);
        assert_eq!(run.reads, pool.len());
        assert!(run.candidates >= run.pruned);
        // Every surviving candidate occupies exactly one kernel lane.
        assert_eq!(run.kernel_lanes, run.candidates - run.pruned);
        assert!(run.kernel_calls <= run.kernel_lanes);
    }
}

#[cfg(test)]
mod merge_tests {
    use super::*;
    use dnasim_channel::{ErrorModel, NaiveModel};
    use dnasim_core::rng::seeded;

    #[test]
    fn merge_repairs_splinter_clusters() {
        // A clusterer with a tight threshold splinters heavy-noise reads;
        // the merge pass with the same threshold rejoins groups whose
        // representatives are mutually close.
        let mut rng = seeded(10);
        let model = NaiveModel::with_total_rate(0.08);
        let references: Vec<Strand> = (0..6).map(|_| Strand::random(110, &mut rng)).collect();
        let mut pool = Vec::new();
        for r in &references {
            for _ in 0..8 {
                pool.push(model.corrupt(r, &mut rng));
            }
        }
        let clusterer = GreedyClusterer {
            distance_threshold: 22,
            ..GreedyClusterer::default()
        };
        let single_pass = clusterer.cluster(&pool);
        let merged = clusterer.cluster_with_merge(&pool);
        assert!(merged.len() <= single_pass.len());
        // Every read is still assigned exactly once.
        let mut seen: Vec<usize> = merged.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..pool.len()).collect::<Vec<_>>());
    }

    #[test]
    fn merge_is_identity_when_nothing_overlaps() {
        let mut rng = seeded(11);
        let a = Strand::random(80, &mut rng);
        let b = Strand::random(80, &mut rng);
        let pool = vec![a.clone(), a, b.clone(), b];
        let clusterer = GreedyClusterer::default();
        assert_eq!(
            clusterer.cluster_with_merge(&pool).len(),
            clusterer.cluster(&pool).len()
        );
    }

    #[test]
    fn merge_handles_trivial_pools() {
        let clusterer = GreedyClusterer::default();
        assert!(clusterer.cluster_with_merge(&[]).is_empty());
        let one = vec![Strand::random(30, &mut seeded(12))];
        assert_eq!(clusterer.cluster_with_merge(&one).len(), 1);
    }
}

#[cfg(test)]
mod filter_tests {
    use super::*;
    use dnasim_channel::{ErrorModel, NaiveModel};
    use dnasim_core::rng::seeded;

    /// Seeded noisy pools across several error rates and strand lengths.
    fn pools() -> Vec<(Vec<Strand>, Vec<Strand>)> {
        let mut out = Vec::new();
        for (seed, rate, len, refs, coverage) in [
            (100u64, 0.03f64, 110usize, 8usize, 5usize),
            (101, 0.08, 110, 6, 8),
            (102, 0.12, 90, 5, 6),
            (103, 0.05, 150, 7, 4),
        ] {
            let mut rng = seeded(seed);
            let model = NaiveModel::with_total_rate(rate);
            let references: Vec<Strand> =
                (0..refs).map(|_| Strand::random(len, &mut rng)).collect();
            let mut pool = Vec::new();
            for r in &references {
                for _ in 0..coverage {
                    pool.push(model.corrupt(r, &mut rng));
                }
            }
            use dnasim_core::rng::SliceRandom;
            pool.shuffle(&mut rng);
            out.push((pool, references));
        }
        out
    }

    #[test]
    fn error_ball_filter_never_changes_cluster_membership() {
        let with = GreedyClusterer::default();
        let without = GreedyClusterer {
            prefilter: false,
            ..GreedyClusterer::default()
        };
        for (pool, references) in pools() {
            assert_eq!(with.cluster(&pool), without.cluster(&pool));
            assert_eq!(
                with.cluster_with_merge(&pool),
                without.cluster_with_merge(&pool)
            );
            assert_eq!(
                with.cluster_against_references(&pool, &references),
                without.cluster_against_references(&pool, &references)
            );
        }
    }

    #[test]
    fn filter_discharges_work_without_losing_any() {
        let with = GreedyClusterer::default();
        let without = GreedyClusterer {
            prefilter: false,
            ..GreedyClusterer::default()
        };
        let mut pruned_total = 0usize;
        for (pool, _) in pools() {
            let (_, on) = with.cluster_stats(&pool);
            let (_, off) = without.cluster_stats(&pool);
            assert_eq!(off.pruned, 0, "disabled filter must prune nothing");
            assert_eq!(on.candidates, off.candidates, "proposal stage unchanged");
            assert_eq!(
                on.kernel_lanes + on.pruned,
                off.kernel_lanes,
                "every pruned candidate is a kernel lane saved"
            );
            pruned_total += on.pruned;
        }
        assert!(pruned_total > 0, "filter never fired on noisy pools");
    }

    #[test]
    fn reference_stats_empty_pool_is_all_erasures_with_zero_work() {
        let mut rng = seeded(40);
        let references: Vec<Strand> = (0..4).map(|_| Strand::random(90, &mut rng)).collect();
        let (dataset, run) =
            GreedyClusterer::default().cluster_against_references_stats(&[], &references);
        assert_eq!(dataset.len(), 4);
        assert_eq!(dataset.erasure_count(), 4);
        assert_eq!(run, ClusterStats::default(), "no reads, no counters");
    }

    #[test]
    fn reference_stats_empty_reference_set_drops_every_read() {
        let mut rng = seeded(41);
        let pool: Vec<Strand> = (0..5).map(|_| Strand::random(90, &mut rng)).collect();
        let (dataset, run) =
            GreedyClusterer::default().cluster_against_references_stats(&pool, &[]);
        assert!(dataset.is_empty());
        assert_eq!(run.reads, 5);
        // Lane accounting must hold even with nothing to match: every
        // non-pruned candidate is exactly one kernel lane, on any backend
        // (the verify script repeats this suite under DNASIM_SIMD=off).
        assert_eq!(run.kernel_lanes, run.candidates - run.pruned);
    }

    #[test]
    fn reference_stats_single_read_clusters_assign_each_read() {
        // Every read is its own cluster (distinct random references, one
        // exact copy each): each group must match its own reference.
        let mut rng = seeded(42);
        let references: Vec<Strand> = (0..6).map(|_| Strand::random(110, &mut rng)).collect();
        let pool: Vec<Strand> = references.clone();
        let (dataset, run) =
            GreedyClusterer::default().cluster_against_references_stats(&pool, &references);
        assert_eq!(dataset.len(), 6);
        assert_eq!(dataset.total_reads(), 6);
        assert_eq!(dataset.erasure_count(), 0);
        for cluster in dataset.iter() {
            assert_eq!(cluster.reads(), std::slice::from_ref(cluster.reference()));
        }
        assert_eq!(run.reads, 6);
        assert_eq!(run.kernel_lanes, run.candidates - run.pruned);
    }

    #[test]
    fn reference_stats_all_identical_reads_form_one_full_cluster() {
        let read: Strand = "ACGTACGTACGTACGTACGTACGTACGTACGT".parse().unwrap();
        let pool = vec![read.clone(); 12];
        let references = vec![read.clone()];
        let (dataset, run) = GreedyClusterer::default()
            .cluster_against_references_stats(&pool, &references);
        assert_eq!(dataset.len(), 1);
        assert_eq!(dataset.total_reads(), 12);
        assert!(dataset.iter().all(|c| c.reads().iter().all(|r| r == &read)));
        assert_eq!(run.reads, 12);
        // One founding read plus eleven joins against a single
        // representative, plus one group→reference match.
        assert!(run.kernel_calls >= 12);
        assert_eq!(run.kernel_lanes, run.candidates - run.pruned);
    }

    #[test]
    fn lane_accounting_holds_with_prefilter_disabled() {
        // With the error ball off, pruned must stay 0 and every candidate
        // must occupy a lane — the invariant the SIMD-off verify step
        // re-checks, since lane packing differs per backend but totals
        // may not.
        let mut rng = seeded(43);
        let model = NaiveModel::with_total_rate(0.06);
        let references: Vec<Strand> = (0..7).map(|_| Strand::random(110, &mut rng)).collect();
        let mut pool = Vec::new();
        for r in &references {
            for _ in 0..5 {
                pool.push(model.corrupt(r, &mut rng));
            }
        }
        let clusterer = GreedyClusterer {
            prefilter: false,
            ..GreedyClusterer::default()
        };
        let (_, run) = clusterer.cluster_against_references_stats(&pool, &references);
        assert_eq!(run.pruned, 0);
        assert_eq!(run.kernel_lanes, run.candidates);
        assert!(run.kernel_calls <= run.kernel_lanes);
    }

    #[test]
    fn process_counters_accumulate_across_runs() {
        let (pool, references) = pools().remove(0);
        let before = stats::process_cluster_stats();
        let (_, run) = GreedyClusterer::default()
            .cluster_against_references_stats(&pool, &references);
        let after = stats::process_cluster_stats();
        assert!(after.reads >= before.reads + run.reads);
        assert!(after.kernel_calls >= before.kernel_calls + run.kernel_calls);
    }
}
