//! Greedy edit-distance clustering of an unordered read pool.
//!
//! Real sequencing yields an unordered multiset of reads that must be
//! grouped into clusters before reconstruction. This clusterer follows the
//! standard recipe (cf. Rashtchian et al.): a q-gram MinHash prefilter
//! proposes candidate clusters, and a banded edit-distance test against the
//! cluster representative confirms membership.
//!
//! Two throughput layers sit between candidate proposal and confirmation,
//! neither of which can change a clustering decision:
//!
//! 1. an **error-ball prefilter** — the q-gram counting lower bound
//!    ([`QGramProfile`]) discharges candidates whose distance provably
//!    exceeds the threshold before any kernel runs;
//! 2. the **multi-pattern kernel tier** — surviving candidates with equal
//!    word counts are batched into [`PatternBank`]s so one pass over the
//!    read advances up to [`MAX_LANES`] representatives at once (AVX2 /
//!    NEON / scalar, runtime selected).
//!
//! Both layers are exact, so `cluster`, `cluster_with_merge`, and
//! `cluster_against_references` return byte-identical groupings with any
//! backend and with the prefilter disabled; only the counters in
//! [`ClusterStats`] differ.

use std::collections::{BTreeMap, HashMap};

use dnasim_core::{Cluster, Dataset, PackedStrand, Strand};
use dnasim_metrics::bank::{bank_within_with, BankScratch, PatternBank, MAX_LANES};
use dnasim_metrics::{myers, MyersScratch, QGramProfile, QGramScratch};

use crate::signature::QGramSignature;
use crate::stats::{self, ClusterStats};

/// Configuration for greedy clustering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GreedyClusterer {
    /// Maximum edit distance to a cluster representative for membership.
    pub distance_threshold: usize,
    /// q-gram length for the signature prefilter (also the gram length of
    /// the error-ball lower bound).
    pub qgram_len: usize,
    /// Number of MinHash entries kept per signature.
    pub sketch_len: usize,
    /// Number of leading sketch hashes used for candidate bucketing.
    pub bands: usize,
    /// Whether the q-gram error-ball lower bound may discharge candidates
    /// before the kernel. Exact either way — disabling it only costs
    /// kernel calls (the filtered-vs-unfiltered differential tests flip
    /// this flag).
    pub prefilter: bool,
}

impl Default for GreedyClusterer {
    /// Defaults tuned for ~110-base strands at Nanopore error rates.
    fn default() -> GreedyClusterer {
        GreedyClusterer {
            distance_threshold: 18,
            qgram_len: 5,
            sketch_len: 12,
            bands: 6,
            prefilter: true,
        }
    }
}

/// Everything `cluster` precomputes per founded cluster, threaded through
/// to the merge and reference-assignment passes so nothing is rebuilt.
struct Representative {
    packed: PackedStrand,
    sig: QGramSignature,
    profile: QGramProfile,
}

/// Reusable kernel buffers for one clustering pass.
#[derive(Default)]
struct AssignScratch {
    myers: MyersScratch,
    bank: BankScratch,
    qgram: QGramScratch,
    lane_out: Vec<Option<usize>>,
}

/// Evaluates `text` against every pattern in `patterns`, writing
/// `results[k] = Some(distance)` iff pattern `k` is within `limit`.
///
/// Patterns are grouped by word count and packed [`MAX_LANES`] at a time
/// into [`PatternBank`]s; singleton groups (and empty patterns, which have
/// no words to bank) use the single-pattern kernel. Both kernels are
/// exact, so `results` is independent of the grouping.
fn evaluate_candidates(
    scratch: &mut AssignScratch,
    patterns: &[&PackedStrand],
    text: &PackedStrand,
    limit: usize,
    stats: &mut ClusterStats,
    results: &mut Vec<Option<usize>>,
) {
    results.clear();
    results.resize(patterns.len(), None);
    let mut by_words: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (k, p) in patterns.iter().enumerate() {
        by_words.entry(p.words()).or_default().push(k);
    }
    for (words, slots) in by_words {
        if words == 0 {
            // Empty patterns: the kernel degenerates to |text| ≤ limit.
            for &k in &slots {
                stats.kernel_calls += 1;
                stats.kernel_lanes += 1;
                results[k] = myers::within_with(&mut scratch.myers, patterns[k], text, limit);
            }
            continue;
        }
        for chunk in slots.chunks(MAX_LANES) {
            if chunk.len() == 1 {
                let k = chunk[0];
                stats.kernel_calls += 1;
                stats.kernel_lanes += 1;
                results[k] = myers::within_with(&mut scratch.myers, patterns[k], text, limit);
                continue;
            }
            let lanes: Vec<&PackedStrand> = chunk.iter().map(|&k| patterns[k]).collect();
            match PatternBank::new(&lanes) {
                Some(bank) => {
                    stats.kernel_calls += 1;
                    stats.kernel_lanes += chunk.len();
                    bank_within_with(&mut scratch.bank, &bank, text, limit, &mut scratch.lane_out);
                    for (lane, &k) in chunk.iter().enumerate() {
                        results[k] = scratch.lane_out.get(lane).copied().flatten();
                    }
                }
                None => {
                    // Unreachable by construction (equal non-zero word
                    // counts, chunk ≤ MAX_LANES); stay exact regardless.
                    for &k in chunk {
                        stats.kernel_calls += 1;
                        stats.kernel_lanes += 1;
                        results[k] =
                            myers::within_with(&mut scratch.myers, patterns[k], text, limit);
                    }
                }
            }
        }
    }
}

impl GreedyClusterer {
    /// Groups a pool of reads into clusters, returning read indices per
    /// cluster.
    ///
    /// Single pass: each read joins the first existing cluster whose
    /// representative is within the distance threshold (candidates proposed
    /// by signature band collisions), or founds a new cluster.
    pub fn cluster(&self, pool: &[Strand]) -> Vec<Vec<usize>> {
        self.cluster_stats(pool).0
    }

    /// [`cluster`](GreedyClusterer::cluster) plus the pass's
    /// [`ClusterStats`] (also folded into the process-wide counters).
    pub fn cluster_stats(&self, pool: &[Strand]) -> (Vec<Vec<usize>>, ClusterStats) {
        let (clusters, _, run) = self.cluster_impl(pool);
        stats::record(&run);
        (clusters, run)
    }

    /// The single assignment pass shared by every public entry point.
    ///
    /// Returns the groups, the per-cluster [`Representative`]s (packed
    /// strand, signature, and q-gram profile — built exactly once, at
    /// founding time), and the pass counters.
    fn cluster_impl(&self, pool: &[Strand]) -> (Vec<Vec<usize>>, Vec<Representative>, ClusterStats) {
        let mut clusters: Vec<Vec<usize>> = Vec::new();
        // Representatives are kept 2-bit packed: every incoming read is
        // compared against them with the Myers kernels, so packing once at
        // founding time amortises the Eq-mask construction over the whole
        // pool. The q-gram profile rides along for the error-ball bound.
        let mut reps: Vec<Representative> = Vec::new();
        // band hash → cluster ids that expose it
        let mut buckets: HashMap<u64, Vec<usize>> = HashMap::new();
        let mut scratch = AssignScratch::default();
        let mut run = ClusterStats::default();
        let mut survivors: Vec<usize> = Vec::new();
        let mut results: Vec<Option<usize>> = Vec::new();

        for (read_idx, read) in pool.iter().enumerate() {
            run.reads += 1;
            let sig = QGramSignature::new(read, self.qgram_len, self.sketch_len);
            let packed = PackedStrand::from(read);
            let profile = QGramProfile::new(read, self.qgram_len);
            let mut candidates: Vec<usize> = sig
                .hashes()
                .iter()
                .take(self.bands)
                .filter_map(|h| buckets.get(h))
                .flatten()
                .copied()
                .collect();
            candidates.sort_unstable();
            candidates.dedup();
            run.candidates += candidates.len();

            // Error-ball prefilter: a candidate whose q-gram lower bound
            // already exceeds the threshold cannot pass the kernel test,
            // so dropping it cannot change the clustering. The read's
            // histogram is loaded once; each candidate is a read-only scan.
            if self.prefilter && !candidates.is_empty() {
                scratch.qgram.load(&profile);
            }
            survivors.clear();
            for &id in &candidates {
                if self.prefilter
                    && scratch.qgram.bound(&reps[id].profile) > self.distance_threshold
                {
                    run.pruned += 1;
                    continue;
                }
                survivors.push(id);
            }

            // `survivors` is ascending, so the first match is the lowest
            // cluster id — the same winner the one-at-a-time loop with an
            // early break would have picked.
            let joined = {
                let lanes: Vec<&PackedStrand> =
                    survivors.iter().map(|&id| &reps[id].packed).collect();
                evaluate_candidates(
                    &mut scratch,
                    &lanes,
                    &packed,
                    self.distance_threshold,
                    &mut run,
                    &mut results,
                );
                survivors
                    .iter()
                    .zip(results.iter())
                    .find(|(_, r)| r.is_some())
                    .map(|(&id, _)| id)
            };
            match joined {
                Some(id) => clusters[id].push(read_idx),
                None => {
                    let id = clusters.len();
                    clusters.push(vec![read_idx]);
                    for &h in sig.hashes().iter().take(self.bands) {
                        buckets.entry(h).or_default().push(id);
                    }
                    reps.push(Representative {
                        packed,
                        sig,
                        profile,
                    });
                }
            }
        }
        (clusters, reps, run)
    }

    /// Clusters a pool and assigns each group to the nearest reference
    /// strand, producing an evaluable [`Dataset`] (references with no
    /// assigned group become erasures).
    ///
    /// Reads whose group matches no reference within the threshold are
    /// dropped — exactly the data loss imperfect clustering causes.
    pub fn cluster_against_references(&self, pool: &[Strand], references: &[Strand]) -> Dataset {
        self.cluster_against_references_stats(pool, references).0
    }

    /// [`cluster_against_references`](GreedyClusterer::cluster_against_references)
    /// plus the combined assignment-pass and reference-matching
    /// [`ClusterStats`].
    pub fn cluster_against_references_stats(
        &self,
        pool: &[Strand],
        references: &[Strand],
    ) -> (Dataset, ClusterStats) {
        let ref_sigs: Vec<QGramSignature> = references
            .iter()
            .map(|r| QGramSignature::new(r, self.qgram_len, self.sketch_len))
            .collect();
        // References are compared against every group representative, so
        // pack and profile them once up front.
        let packed_refs: Vec<PackedStrand> = references.iter().map(PackedStrand::from).collect();
        let ref_profiles: Vec<QGramProfile> = references
            .iter()
            .map(|r| QGramProfile::new(r, self.qgram_len))
            .collect();
        let mut assigned: Vec<Vec<Strand>> = references.iter().map(|_| Vec::new()).collect();

        // The assignment pass already packed, signed, and profiled every
        // group representative — reuse them instead of recomputing from
        // `pool[group[0]]`.
        let (groups, reps, mut run) = self.cluster_impl(pool);
        let mut scratch = AssignScratch::default();
        let mut results: Vec<Option<usize>> = Vec::new();

        for (gid, group) in groups.iter().enumerate() {
            let rep = &reps[gid];
            // Nearest reference by signature overlap, confirmed by banded
            // distance (error-ball bound in between, as in `cluster`).
            let mut cand_refs: Vec<usize> = Vec::new();
            if self.prefilter {
                scratch.qgram.load(&rep.profile);
            }
            for ref_idx in 0..references.len() {
                if !rep.sig.shares_band(&ref_sigs[ref_idx], self.bands)
                    && rep.sig.overlap(&ref_sigs[ref_idx]) == 0.0
                {
                    continue;
                }
                run.candidates += 1;
                if self.prefilter
                    && scratch.qgram.bound(&ref_profiles[ref_idx]) > self.distance_threshold
                {
                    run.pruned += 1;
                    continue;
                }
                cand_refs.push(ref_idx);
            }
            let lanes: Vec<&PackedStrand> =
                cand_refs.iter().map(|&r| &packed_refs[r]).collect();
            evaluate_candidates(
                &mut scratch,
                &lanes,
                &rep.packed,
                self.distance_threshold,
                &mut run,
                &mut results,
            );
            // `cand_refs` ascends, and only a strictly smaller distance
            // displaces the incumbent, so ties resolve to the earliest
            // reference — the order the one-at-a-time loop produced.
            let mut best: Option<(usize, usize)> = None; // (ref idx, distance)
            for (&ref_idx, r) in cand_refs.iter().zip(results.iter()) {
                if let Some(d) = *r {
                    if best.is_none_or(|(_, bd)| d < bd) {
                        best = Some((ref_idx, d));
                    }
                }
            }
            if let Some((ref_idx, _)) = best {
                for &read_idx in group {
                    assigned[ref_idx].push(pool[read_idx].clone());
                }
            }
        }
        stats::record(&run);
        let dataset = references
            .iter()
            .zip(assigned)
            .map(|(reference, reads)| Cluster::new(reference.clone(), reads))
            .collect();
        (dataset, run)
    }
}

impl GreedyClusterer {
    /// A second pass over [`cluster`](GreedyClusterer::cluster)'s output
    /// that merges groups whose representatives are within the distance
    /// threshold of each other.
    ///
    /// Single-pass greedy clustering is order-dependent: a noisy early read
    /// can found a splinter cluster that later reads of the same strand
    /// never rejoin. Merging representative-close groups repairs most of
    /// these splits; candidate pairs come from band-bucket collisions (the
    /// same `HashMap` discipline as the first pass), so the merge scales
    /// with collisions rather than groups².
    pub fn cluster_with_merge(&self, pool: &[Strand]) -> Vec<Vec<usize>> {
        self.cluster_with_merge_stats(pool).0
    }

    /// [`cluster_with_merge`](GreedyClusterer::cluster_with_merge) plus
    /// the combined first-pass and merge-pass [`ClusterStats`].
    pub fn cluster_with_merge_stats(&self, pool: &[Strand]) -> (Vec<Vec<usize>>, ClusterStats) {
        let (groups, reps, mut run) = self.cluster_impl(pool);
        if groups.len() <= 1 {
            stats::record(&run);
            return (groups, run);
        }

        // Bucket-driven candidate pairs: two groups can merge only if
        // their signatures share one of the first `bands` hashes, i.e.
        // only if they collide in a band bucket. Collecting pairs per
        // bucket enumerates exactly the pairs `shares_band` would accept
        // (`max(1)` mirrors its floor), without touching the g² pairs
        // that share nothing.
        let mut buckets: HashMap<u64, Vec<usize>> = HashMap::new();
        for (gid, rep) in reps.iter().enumerate() {
            for &h in rep.sig.hashes().iter().take(self.bands.max(1)) {
                buckets.entry(h).or_default().push(gid);
            }
        }
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        for ids in buckets.values() {
            for (a, &i) in ids.iter().enumerate() {
                for &j in &ids[a + 1..] {
                    pairs.push((i.min(j), i.max(j)));
                }
            }
        }
        pairs.sort_unstable();
        pairs.dedup();

        // Union-find over groups.
        let mut parent: Vec<usize> = (0..groups.len()).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        let mut scratch = AssignScratch::default();
        let mut results: Vec<Option<usize>> = Vec::new();
        let mut idx = 0;
        while idx < pairs.len() {
            let i = pairs[idx].0;
            let mut end = idx;
            while end < pairs.len() && pairs[end].0 == i {
                end += 1;
            }
            // Batch group i's partners into banks. Partners that become
            // connected to i mid-batch are evaluated anyway; merging an
            // already-connected pair is a no-op, so the final partition
            // matches the strictly sequential pair loop.
            let mut partners: Vec<usize> = Vec::new();
            if self.prefilter {
                scratch.qgram.load(&reps[i].profile);
            }
            for &(_, j) in &pairs[idx..end] {
                if find(&mut parent, i) == find(&mut parent, j) {
                    continue;
                }
                run.candidates += 1;
                if self.prefilter
                    && scratch.qgram.bound(&reps[j].profile) > self.distance_threshold
                {
                    run.pruned += 1;
                    continue;
                }
                partners.push(j);
            }
            let lanes: Vec<&PackedStrand> = partners.iter().map(|&j| &reps[j].packed).collect();
            evaluate_candidates(
                &mut scratch,
                &lanes,
                &reps[i].packed,
                self.distance_threshold,
                &mut run,
                &mut results,
            );
            for (&j, r) in partners.iter().zip(results.iter()) {
                if r.is_some() {
                    let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                    if ri != rj {
                        parent[ri.max(rj)] = ri.min(rj);
                    }
                }
            }
            idx = end;
        }
        let mut merged: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (i, group) in groups.into_iter().enumerate() {
            merged.entry(find(&mut parent, i)).or_default().extend(group);
        }
        stats::record(&run);
        (merged.into_values().collect(), run)
    }
}

/// Perfect (pseudo-)clustering: treats the simulator's ordered output as
/// already clustered. This is the identity on a [`Dataset`] and exists to
/// make the clustering choice explicit at call sites.
pub fn perfect_clustering(dataset: Dataset) -> Dataset {
    dataset
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnasim_channel::{ErrorModel, NaiveModel};
    use dnasim_core::rng::seeded;

    #[test]
    fn identical_reads_form_one_cluster() {
        let read: Strand = "ACGTACGTACGTACGTACGT".parse().unwrap();
        let pool = vec![read.clone(), read.clone(), read];
        let clusters = GreedyClusterer::default().cluster(&pool);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0], vec![0, 1, 2]);
    }

    #[test]
    fn distant_reads_form_separate_clusters() {
        let mut rng = seeded(1);
        let a = Strand::random(60, &mut rng);
        let b = Strand::random(60, &mut rng);
        let pool = vec![a.clone(), b.clone(), a, b];
        let clusters = GreedyClusterer::default().cluster(&pool);
        assert_eq!(clusters.len(), 2);
    }

    #[test]
    fn noisy_copies_cluster_with_their_origin() {
        let mut rng = seeded(2);
        let model = NaiveModel::with_total_rate(0.05);
        let references: Vec<Strand> = (0..8).map(|_| Strand::random(110, &mut rng)).collect();
        let mut pool = Vec::new();
        let mut origin = Vec::new();
        for (i, r) in references.iter().enumerate() {
            for _ in 0..5 {
                pool.push(model.corrupt(r, &mut rng));
                origin.push(i);
            }
        }
        let clusters = GreedyClusterer::default().cluster(&pool);
        // Every cluster should be pure: all members share an origin.
        for group in &clusters {
            let first = origin[group[0]];
            assert!(
                group.iter().all(|&idx| origin[idx] == first),
                "mixed cluster: {group:?}"
            );
        }
        // And there should be roughly one cluster per reference.
        assert!(clusters.len() >= 8 && clusters.len() <= 12, "{}", clusters.len());
    }

    #[test]
    fn cluster_against_references_recovers_dataset() {
        let mut rng = seeded(3);
        let model = NaiveModel::with_total_rate(0.05);
        let references: Vec<Strand> = (0..6).map(|_| Strand::random(110, &mut rng)).collect();
        let mut pool = Vec::new();
        for r in &references {
            for _ in 0..4 {
                pool.push(model.corrupt(r, &mut rng));
            }
        }
        // Shuffle the pool to destroy ordering.
        use dnasim_core::rng::SliceRandom;
        pool.shuffle(&mut rng);
        let dataset =
            GreedyClusterer::default().cluster_against_references(&pool, &references);
        assert_eq!(dataset.len(), 6);
        // Most reads should be recovered into their clusters.
        assert!(
            dataset.total_reads() >= 20,
            "only {} of 24 reads assigned",
            dataset.total_reads()
        );
        for cluster in dataset.iter() {
            assert!(!cluster.is_erasure(), "lost a reference entirely");
        }
    }

    #[test]
    fn unmatched_reads_are_dropped() {
        let mut rng = seeded(4);
        let references = vec![Strand::random(110, &mut rng)];
        let junk = Strand::random(110, &mut rng);
        let dataset = GreedyClusterer::default()
            .cluster_against_references(&[junk], &references);
        assert_eq!(dataset.len(), 1);
        assert_eq!(dataset.total_reads(), 0);
    }

    #[test]
    fn empty_pool_yields_erasures() {
        let mut rng = seeded(5);
        let references = vec![Strand::random(50, &mut rng)];
        let dataset = GreedyClusterer::default().cluster_against_references(&[], &references);
        assert_eq!(dataset.erasure_count(), 1);
    }

    #[test]
    fn perfect_clustering_is_identity() {
        let mut rng = seeded(6);
        let r = Strand::random(20, &mut rng);
        let ds = Dataset::from_clusters(vec![Cluster::new(r.clone(), vec![r])]);
        assert_eq!(perfect_clustering(ds.clone()), ds);
    }

    #[test]
    fn stats_track_kernel_work() {
        let mut rng = seeded(7);
        let model = NaiveModel::with_total_rate(0.05);
        let references: Vec<Strand> = (0..10).map(|_| Strand::random(110, &mut rng)).collect();
        let mut pool = Vec::new();
        for r in &references {
            for _ in 0..6 {
                pool.push(model.corrupt(r, &mut rng));
            }
        }
        let (_, run) = GreedyClusterer::default().cluster_stats(&pool);
        assert_eq!(run.reads, pool.len());
        assert!(run.candidates >= run.pruned);
        // Every surviving candidate occupies exactly one kernel lane.
        assert_eq!(run.kernel_lanes, run.candidates - run.pruned);
        assert!(run.kernel_calls <= run.kernel_lanes);
    }
}

#[cfg(test)]
mod merge_tests {
    use super::*;
    use dnasim_channel::{ErrorModel, NaiveModel};
    use dnasim_core::rng::seeded;

    #[test]
    fn merge_repairs_splinter_clusters() {
        // A clusterer with a tight threshold splinters heavy-noise reads;
        // the merge pass with the same threshold rejoins groups whose
        // representatives are mutually close.
        let mut rng = seeded(10);
        let model = NaiveModel::with_total_rate(0.08);
        let references: Vec<Strand> = (0..6).map(|_| Strand::random(110, &mut rng)).collect();
        let mut pool = Vec::new();
        for r in &references {
            for _ in 0..8 {
                pool.push(model.corrupt(r, &mut rng));
            }
        }
        let clusterer = GreedyClusterer {
            distance_threshold: 22,
            ..GreedyClusterer::default()
        };
        let single_pass = clusterer.cluster(&pool);
        let merged = clusterer.cluster_with_merge(&pool);
        assert!(merged.len() <= single_pass.len());
        // Every read is still assigned exactly once.
        let mut seen: Vec<usize> = merged.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..pool.len()).collect::<Vec<_>>());
    }

    #[test]
    fn merge_is_identity_when_nothing_overlaps() {
        let mut rng = seeded(11);
        let a = Strand::random(80, &mut rng);
        let b = Strand::random(80, &mut rng);
        let pool = vec![a.clone(), a, b.clone(), b];
        let clusterer = GreedyClusterer::default();
        assert_eq!(
            clusterer.cluster_with_merge(&pool).len(),
            clusterer.cluster(&pool).len()
        );
    }

    #[test]
    fn merge_handles_trivial_pools() {
        let clusterer = GreedyClusterer::default();
        assert!(clusterer.cluster_with_merge(&[]).is_empty());
        let one = vec![Strand::random(30, &mut seeded(12))];
        assert_eq!(clusterer.cluster_with_merge(&one).len(), 1);
    }
}

#[cfg(test)]
mod filter_tests {
    use super::*;
    use dnasim_channel::{ErrorModel, NaiveModel};
    use dnasim_core::rng::seeded;

    /// Seeded noisy pools across several error rates and strand lengths.
    fn pools() -> Vec<(Vec<Strand>, Vec<Strand>)> {
        let mut out = Vec::new();
        for (seed, rate, len, refs, coverage) in [
            (100u64, 0.03f64, 110usize, 8usize, 5usize),
            (101, 0.08, 110, 6, 8),
            (102, 0.12, 90, 5, 6),
            (103, 0.05, 150, 7, 4),
        ] {
            let mut rng = seeded(seed);
            let model = NaiveModel::with_total_rate(rate);
            let references: Vec<Strand> =
                (0..refs).map(|_| Strand::random(len, &mut rng)).collect();
            let mut pool = Vec::new();
            for r in &references {
                for _ in 0..coverage {
                    pool.push(model.corrupt(r, &mut rng));
                }
            }
            use dnasim_core::rng::SliceRandom;
            pool.shuffle(&mut rng);
            out.push((pool, references));
        }
        out
    }

    #[test]
    fn error_ball_filter_never_changes_cluster_membership() {
        let with = GreedyClusterer::default();
        let without = GreedyClusterer {
            prefilter: false,
            ..GreedyClusterer::default()
        };
        for (pool, references) in pools() {
            assert_eq!(with.cluster(&pool), without.cluster(&pool));
            assert_eq!(
                with.cluster_with_merge(&pool),
                without.cluster_with_merge(&pool)
            );
            assert_eq!(
                with.cluster_against_references(&pool, &references),
                without.cluster_against_references(&pool, &references)
            );
        }
    }

    #[test]
    fn filter_discharges_work_without_losing_any() {
        let with = GreedyClusterer::default();
        let without = GreedyClusterer {
            prefilter: false,
            ..GreedyClusterer::default()
        };
        let mut pruned_total = 0usize;
        for (pool, _) in pools() {
            let (_, on) = with.cluster_stats(&pool);
            let (_, off) = without.cluster_stats(&pool);
            assert_eq!(off.pruned, 0, "disabled filter must prune nothing");
            assert_eq!(on.candidates, off.candidates, "proposal stage unchanged");
            assert_eq!(
                on.kernel_lanes + on.pruned,
                off.kernel_lanes,
                "every pruned candidate is a kernel lane saved"
            );
            pruned_total += on.pruned;
        }
        assert!(pruned_total > 0, "filter never fired on noisy pools");
    }

    #[test]
    fn process_counters_accumulate_across_runs() {
        let (pool, references) = pools().remove(0);
        let before = stats::process_cluster_stats();
        let (_, run) = GreedyClusterer::default()
            .cluster_against_references_stats(&pool, &references);
        let after = stats::process_cluster_stats();
        assert!(after.reads >= before.reads + run.reads);
        assert!(after.kernel_calls >= before.kernel_calls + run.kernel_calls);
    }
}
