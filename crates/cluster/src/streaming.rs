//! Online sharded clustering over a read stream.
//!
//! [`GreedyClusterer`] batches poorly at paper scale: `cluster(&pool)`
//! needs the whole read pool in memory even though its decision sequence
//! is strictly one-read-at-a-time. This module hoists that decision
//! sequence into an explicitly *online* core:
//!
//! * the k-mer LSH **bucket signatures** ([`QGramSignature`] band hashes)
//!   are the shard assignment — an incoming read only ever probes the
//!   buckets its own signature exposes;
//! * the only resident state is **per-bucket representatives** (packed
//!   strand + q-gram profile + signature, built once at founding time)
//!   plus the bucket map itself — `O(clusters)`, never `O(reads)`;
//! * intra-bucket assignment reuses the PR 9 kernel tier: the q-gram
//!   error-ball bound discharges hopeless candidates, survivors are
//!   batched through [`PatternBank`](dnasim_metrics::bank::PatternBank)
//!   lanes.
//!
//! Because the materialised [`GreedyClusterer`] entry points now delegate
//! to this same core, streaming memberships are **byte-identical** to the
//! materialised ones by construction: feeding reads one at a time, in any
//! batch shape, replays exactly the same founding/joining decisions. The
//! differential tests in this module (and the `scripts/verify.sh` step
//! that repeats them at 1 and 4 threads) pin that equivalence on seeded
//! noisy pools.
//!
//! In *reference mode* ([`StreamingClusterer::with_references`]) each
//! group is matched to its nearest reference **at founding time** — the
//! match is a pure function of the representative and the fixed reference
//! set, so deciding it eagerly is provably identical to the post-hoc
//! matching pass `cluster_against_references` used to run; both paths now
//! share [`ReferenceIndex::match_representative`].

use std::collections::{BTreeMap, HashMap};

use dnasim_core::{PackedStrand, Strand};
use dnasim_metrics::bank::{bank_within_with, BankScratch, PatternBank, MAX_LANES};
use dnasim_metrics::{myers, MyersScratch, QGramProfile, QGramScratch};

use crate::greedy::GreedyClusterer;
use crate::signature::QGramSignature;
use crate::stats::{self, ClusterStats};

/// Everything the clusterer keeps resident per founded cluster, threaded
/// through to the merge and reference-assignment passes so nothing is
/// rebuilt.
pub(crate) struct Representative {
    pub(crate) packed: PackedStrand,
    pub(crate) sig: QGramSignature,
    pub(crate) profile: QGramProfile,
}

/// Reusable kernel buffers for one clustering pass.
#[derive(Default)]
pub(crate) struct AssignScratch {
    pub(crate) myers: MyersScratch,
    pub(crate) bank: BankScratch,
    pub(crate) qgram: QGramScratch,
    pub(crate) lane_out: Vec<Option<usize>>,
}

/// Evaluates `text` against every pattern in `patterns`, writing
/// `results[k] = Some(distance)` iff pattern `k` is within `limit`.
///
/// Patterns are grouped by word count and packed [`MAX_LANES`] at a time
/// into [`PatternBank`]s; singleton groups (and empty patterns, which have
/// no words to bank) use the single-pattern kernel. Both kernels are
/// exact, so `results` is independent of the grouping.
pub(crate) fn evaluate_candidates(
    scratch: &mut AssignScratch,
    patterns: &[&PackedStrand],
    text: &PackedStrand,
    limit: usize,
    stats: &mut ClusterStats,
    results: &mut Vec<Option<usize>>,
) {
    results.clear();
    results.resize(patterns.len(), None);
    let mut by_words: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (k, p) in patterns.iter().enumerate() {
        by_words.entry(p.words()).or_default().push(k);
    }
    for (words, slots) in by_words {
        if words == 0 {
            // Empty patterns: the kernel degenerates to |text| ≤ limit.
            for &k in &slots {
                stats.kernel_calls += 1;
                stats.kernel_lanes += 1;
                results[k] = myers::within_with(&mut scratch.myers, patterns[k], text, limit);
            }
            continue;
        }
        for chunk in slots.chunks(MAX_LANES) {
            if chunk.len() == 1 {
                let k = chunk[0];
                stats.kernel_calls += 1;
                stats.kernel_lanes += 1;
                results[k] = myers::within_with(&mut scratch.myers, patterns[k], text, limit);
                continue;
            }
            let lanes: Vec<&PackedStrand> = chunk.iter().map(|&k| patterns[k]).collect();
            match PatternBank::new(&lanes) {
                Some(bank) => {
                    stats.kernel_calls += 1;
                    stats.kernel_lanes += chunk.len();
                    bank_within_with(&mut scratch.bank, &bank, text, limit, &mut scratch.lane_out);
                    for (lane, &k) in chunk.iter().enumerate() {
                        results[k] = scratch.lane_out.get(lane).copied().flatten();
                    }
                }
                None => {
                    // Unreachable by construction (equal non-zero word
                    // counts, chunk ≤ MAX_LANES); stay exact regardless.
                    for &k in chunk {
                        stats.kernel_calls += 1;
                        stats.kernel_lanes += 1;
                        results[k] =
                            myers::within_with(&mut scratch.myers, patterns[k], text, limit);
                    }
                }
            }
        }
    }
}

/// The online assignment core shared by [`StreamingClusterer`] and every
/// materialised [`GreedyClusterer`] entry point.
///
/// Resident state is `O(clusters)`: one [`Representative`] per founded
/// group plus the band-hash bucket map. Read membership lists are *not*
/// kept here — callers that want them accumulate the returned group ids.
pub(crate) struct OnlineState {
    config: GreedyClusterer,
    reps: Vec<Representative>,
    /// band hash → cluster ids that expose it (the LSH shard map).
    buckets: HashMap<u64, Vec<usize>>,
    scratch: AssignScratch,
    run: ClusterStats,
    survivors: Vec<usize>,
    results: Vec<Option<usize>>,
}

impl OnlineState {
    pub(crate) fn new(config: GreedyClusterer) -> OnlineState {
        OnlineState {
            config,
            reps: Vec::new(),
            buckets: HashMap::new(),
            scratch: AssignScratch::default(),
            run: ClusterStats::default(),
            survivors: Vec::new(),
            results: Vec::new(),
        }
    }

    /// Assigns one read, returning its group id. A returned id equal to
    /// the previous group count means the read founded a new group.
    ///
    /// This is the exact decision sequence the materialised single-pass
    /// loop ran: candidates from band-bucket collisions (ascending,
    /// deduped), the q-gram error-ball prefilter, kernel confirmation, and
    /// first-match-wins joining.
    pub(crate) fn assign(&mut self, read: &Strand) -> usize {
        self.run.reads += 1;
        let sig = QGramSignature::new(read, self.config.qgram_len, self.config.sketch_len);
        let packed = PackedStrand::from(read);
        let profile = QGramProfile::new(read, self.config.qgram_len);
        let mut candidates: Vec<usize> = sig
            .hashes()
            .iter()
            .take(self.config.bands)
            .filter_map(|h| self.buckets.get(h))
            .flatten()
            .copied()
            .collect();
        candidates.sort_unstable();
        candidates.dedup();
        self.run.candidates += candidates.len();

        // Error-ball prefilter: a candidate whose q-gram lower bound
        // already exceeds the threshold cannot pass the kernel test, so
        // dropping it cannot change the clustering. The read's histogram
        // is loaded once; each candidate is a read-only scan.
        if self.config.prefilter && !candidates.is_empty() {
            self.scratch.qgram.load(&profile);
        }
        self.survivors.clear();
        for &id in &candidates {
            if self.config.prefilter
                && self.scratch.qgram.bound(&self.reps[id].profile) > self.config.distance_threshold
            {
                self.run.pruned += 1;
                continue;
            }
            self.survivors.push(id);
        }

        // `survivors` is ascending, so the first match is the lowest
        // cluster id — the same winner the one-at-a-time loop with an
        // early break would have picked.
        let lanes: Vec<&PackedStrand> =
            self.survivors.iter().map(|&id| &self.reps[id].packed).collect();
        evaluate_candidates(
            &mut self.scratch,
            &lanes,
            &packed,
            self.config.distance_threshold,
            &mut self.run,
            &mut self.results,
        );
        let joined = self
            .survivors
            .iter()
            .zip(self.results.iter())
            .find(|(_, r)| r.is_some())
            .map(|(&id, _)| id);
        match joined {
            Some(id) => id,
            None => {
                let id = self.reps.len();
                for &h in sig.hashes().iter().take(self.config.bands) {
                    self.buckets.entry(h).or_default().push(id);
                }
                self.reps.push(Representative {
                    packed,
                    sig,
                    profile,
                });
                id
            }
        }
    }

    pub(crate) fn groups(&self) -> usize {
        self.reps.len()
    }

    pub(crate) fn stats(&self) -> ClusterStats {
        self.run
    }

    pub(crate) fn scratch_and_stats(
        &mut self,
    ) -> (&mut AssignScratch, &mut ClusterStats, &[Representative]) {
        (&mut self.scratch, &mut self.run, &self.reps)
    }

    pub(crate) fn into_parts(self) -> (Vec<Representative>, ClusterStats) {
        (self.reps, self.run)
    }
}

/// Precomputed reference-side state for nearest-reference matching,
/// shared by the materialised `cluster_against_references` pass and the
/// streaming clusterer's founding-time matcher.
pub(crate) struct ReferenceIndex {
    pub(crate) packed: Vec<PackedStrand>,
    pub(crate) sigs: Vec<QGramSignature>,
    pub(crate) profiles: Vec<QGramProfile>,
}

impl ReferenceIndex {
    pub(crate) fn new(config: &GreedyClusterer, references: &[Strand]) -> ReferenceIndex {
        ReferenceIndex {
            packed: references.iter().map(PackedStrand::from).collect(),
            sigs: references
                .iter()
                .map(|r| QGramSignature::new(r, config.qgram_len, config.sketch_len))
                .collect(),
            profiles: references
                .iter()
                .map(|r| QGramProfile::new(r, config.qgram_len))
                .collect(),
        }
    }

    /// Matches one group representative to its nearest reference, or
    /// `None` when no reference lies within the distance threshold.
    ///
    /// Pure in `(rep, self, config)` — the answer does not depend on any
    /// other group — which is what lets the streaming clusterer decide it
    /// at founding time while staying identical to the post-hoc pass:
    /// candidate references come from band sharing or sketch overlap, the
    /// error-ball bound discharges hopeless ones, the kernel confirms,
    /// and only a strictly smaller distance displaces the incumbent (ties
    /// resolve to the earliest reference).
    pub(crate) fn match_representative(
        &self,
        config: &GreedyClusterer,
        rep: &Representative,
        scratch: &mut AssignScratch,
        run: &mut ClusterStats,
        results: &mut Vec<Option<usize>>,
    ) -> Option<usize> {
        let mut cand_refs: Vec<usize> = Vec::new();
        if config.prefilter {
            scratch.qgram.load(&rep.profile);
        }
        for ref_idx in 0..self.packed.len() {
            if !rep.sig.shares_band(&self.sigs[ref_idx], config.bands)
                && rep.sig.overlap(&self.sigs[ref_idx]) == 0.0
            {
                continue;
            }
            run.candidates += 1;
            if config.prefilter
                && scratch.qgram.bound(&self.profiles[ref_idx]) > config.distance_threshold
            {
                run.pruned += 1;
                continue;
            }
            cand_refs.push(ref_idx);
        }
        let lanes: Vec<&PackedStrand> = cand_refs.iter().map(|&r| &self.packed[r]).collect();
        evaluate_candidates(
            scratch,
            &lanes,
            &rep.packed,
            config.distance_threshold,
            run,
            results,
        );
        let mut best: Option<(usize, usize)> = None; // (ref idx, distance)
        for (&ref_idx, r) in cand_refs.iter().zip(results.iter()) {
            if let Some(d) = *r {
                if best.is_none_or(|(_, bd)| d < bd) {
                    best = Some((ref_idx, d));
                }
            }
        }
        best.map(|(ref_idx, _)| ref_idx)
    }
}

/// The verdict for one read pushed through the [`StreamingClusterer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamAssignment {
    /// The group the read joined (or founded).
    pub group: usize,
    /// Whether this read founded the group.
    pub founded: bool,
    /// In reference mode, the reference the read's group was matched to
    /// at founding time; `None` outside reference mode or when the group
    /// matched no reference within the threshold (those reads are the
    /// data loss imperfect clustering causes).
    pub reference: Option<usize>,
}

/// Online sharded clusterer: push reads in stream order, get group (and
/// optionally reference) assignments back, while only per-group
/// representatives stay resident.
///
/// Memberships are byte-identical to [`GreedyClusterer::cluster`] over the
/// same reads in the same order — both run the same [`OnlineState`]
/// decision core — at any push granularity (per read, per batch, whole
/// pool). See the module docs for the exactness argument.
///
/// # Examples
///
/// ```
/// use dnasim_cluster::{GreedyClusterer, StreamingClusterer};
/// use dnasim_core::Strand;
///
/// let a: Strand = "ACGTACGTACGTACGTACGT".parse()?;
/// let t: Strand = "TTTTTTTTTTTTTTTTTTTT".parse()?;
/// let pool = [a.clone(), t.clone(), a, t];
/// let mut stream = StreamingClusterer::new(GreedyClusterer::default());
/// let groups: Vec<usize> = pool.iter().map(|r| stream.push(r).group).collect();
/// assert_eq!(groups, [0, 1, 0, 1]);
/// assert_eq!(stream.resident_groups(), 2);
/// # Ok::<(), dnasim_core::ParseStrandError>(())
/// ```
pub struct StreamingClusterer {
    state: OnlineState,
    refs: Option<ReferenceIndex>,
    /// Per-group founding-time reference match (reference mode only).
    group_refs: Vec<Option<usize>>,
    results: Vec<Option<usize>>,
}

impl std::fmt::Debug for StreamingClusterer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamingClusterer")
            .field("config", &self.state.config)
            .field("resident_groups", &self.state.groups())
            .field("reference_mode", &self.refs.is_some())
            .finish()
    }
}

impl StreamingClusterer {
    /// Creates an online clusterer with the given configuration.
    pub fn new(config: GreedyClusterer) -> StreamingClusterer {
        StreamingClusterer {
            state: OnlineState::new(config),
            refs: None,
            group_refs: Vec::new(),
            results: Vec::new(),
        }
    }

    /// Creates an online clusterer in *reference mode*: every founded
    /// group is immediately matched against `references`, and each pushed
    /// read reports the match in [`StreamAssignment::reference`].
    pub fn with_references(config: GreedyClusterer, references: &[Strand]) -> StreamingClusterer {
        StreamingClusterer {
            refs: Some(ReferenceIndex::new(&config, references)),
            state: OnlineState::new(config),
            group_refs: Vec::new(),
            results: Vec::new(),
        }
    }

    /// Pushes one read, returning its assignment.
    pub fn push(&mut self, read: &Strand) -> StreamAssignment {
        let before = self.state.groups();
        let group = self.state.assign(read);
        let founded = group == before;
        if founded {
            if let Some(refs) = &self.refs {
                let config = self.state.config;
                let (scratch, run, reps) = self.state.scratch_and_stats();
                let matched = refs.match_representative(
                    &config,
                    &reps[group],
                    scratch,
                    run,
                    &mut self.results,
                );
                self.group_refs.push(matched);
            }
        }
        StreamAssignment {
            group,
            founded,
            reference: self.group_refs.get(group).copied().flatten(),
        }
    }

    /// Pushes a window of reads, returning one assignment per read in
    /// order. Equivalent to calling [`push`](StreamingClusterer::push) in
    /// a loop — batching is purely a convenience for `ClusterSource`-style
    /// drivers.
    pub fn push_batch(&mut self, reads: &[Strand]) -> Vec<StreamAssignment> {
        reads.iter().map(|r| self.push(r)).collect()
    }

    /// Number of groups founded so far — the resident-state gauge: the
    /// clusterer holds exactly one representative per group (plus the
    /// bucket map), never the reads themselves.
    pub fn resident_groups(&self) -> usize {
        self.state.groups()
    }

    /// Total reads pushed so far.
    pub fn reads_seen(&self) -> usize {
        self.state.stats().reads
    }

    /// The reference a group was matched to at founding time (reference
    /// mode only).
    pub fn group_reference(&self, group: usize) -> Option<usize> {
        self.group_refs.get(group).copied().flatten()
    }

    /// Counters accumulated so far (candidates, pruned, kernel work).
    pub fn stats(&self) -> ClusterStats {
        self.state.stats()
    }

    /// Finishes the stream, folding the pass counters into the
    /// process-wide totals (the same discipline every materialised
    /// [`GreedyClusterer`] entry point follows) and returning them.
    pub fn finish(self) -> ClusterStats {
        let (_, run) = self.state.into_parts();
        stats::record(&run);
        run
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnasim_channel::{ErrorModel, NaiveModel};
    use dnasim_core::rng::{seeded, SliceRandom};
    use dnasim_core::{Cluster, Dataset};

    /// Seeded noisy pools across several error rates and strand lengths —
    /// the same corpus the greedy filter differential uses.
    fn pools() -> Vec<(Vec<Strand>, Vec<Strand>)> {
        let mut out = Vec::new();
        for (seed, rate, len, refs, coverage) in [
            (200u64, 0.03f64, 110usize, 8usize, 5usize),
            (201, 0.08, 110, 6, 8),
            (202, 0.12, 90, 5, 6),
            (203, 0.05, 150, 7, 4),
        ] {
            let mut rng = seeded(seed);
            let model = NaiveModel::with_total_rate(rate);
            let references: Vec<Strand> =
                (0..refs).map(|_| Strand::random(len, &mut rng)).collect();
            let mut pool = Vec::new();
            for r in &references {
                for _ in 0..coverage {
                    pool.push(model.corrupt(r, &mut rng));
                }
            }
            pool.shuffle(&mut rng);
            out.push((pool, references));
        }
        out
    }

    /// Rebuilds membership lists from streamed assignments.
    fn memberships(assignments: &[StreamAssignment]) -> Vec<Vec<usize>> {
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for (read_idx, a) in assignments.iter().enumerate() {
            if a.group == groups.len() {
                groups.push(Vec::new());
            }
            groups[a.group].push(read_idx);
        }
        groups
    }

    #[test]
    fn streaming_matches_materialised_memberships_at_any_batch_size() {
        for (pool, _) in pools() {
            let expected = GreedyClusterer::default().cluster(&pool);
            for batch in [1usize, 7, 64, usize::MAX] {
                let mut stream = StreamingClusterer::new(GreedyClusterer::default());
                let mut assignments = Vec::new();
                for window in pool.chunks(batch.min(pool.len().max(1))) {
                    assignments.extend(stream.push_batch(window));
                }
                assert_eq!(
                    memberships(&assignments),
                    expected,
                    "batch={batch} pool={}",
                    pool.len()
                );
                assert_eq!(stream.resident_groups(), expected.len());
            }
        }
    }

    #[test]
    fn streaming_stats_match_materialised_stats() {
        for (pool, _) in pools() {
            let (_, run) = GreedyClusterer::default().cluster_stats(&pool);
            let mut stream = StreamingClusterer::new(GreedyClusterer::default());
            stream.push_batch(&pool);
            assert_eq!(stream.stats(), run);
            assert_eq!(stream.finish(), run);
        }
    }

    #[test]
    fn founding_time_reference_match_equals_post_hoc_pass() {
        for (pool, references) in pools() {
            let expected =
                GreedyClusterer::default().cluster_against_references(&pool, &references);
            // Stream the pool read by read, buffering read indices per
            // group to reproduce the post-hoc pass's group-major read
            // order.
            let mut stream =
                StreamingClusterer::with_references(GreedyClusterer::default(), &references);
            let assignments = stream.push_batch(&pool);
            let groups = memberships(&assignments);
            let mut assigned: Vec<Vec<Strand>> =
                references.iter().map(|_| Vec::new()).collect();
            for (gid, group) in groups.iter().enumerate() {
                if let Some(ref_idx) = stream.group_reference(gid) {
                    for &read_idx in group {
                        assigned[ref_idx].push(pool[read_idx].clone());
                    }
                }
            }
            let dataset: Dataset = references
                .iter()
                .zip(assigned)
                .map(|(reference, reads)| Cluster::new(reference.clone(), reads))
                .collect();
            assert_eq!(dataset, expected);
        }
    }

    #[test]
    fn assignment_reports_reference_for_joining_reads_too() {
        let (pool, references) = pools().remove(0);
        let mut stream =
            StreamingClusterer::with_references(GreedyClusterer::default(), &references);
        for read in &pool {
            let a = stream.push(read);
            assert_eq!(a.reference, stream.group_reference(a.group));
        }
    }

    #[test]
    fn resident_state_is_groups_not_reads() {
        // 400 near-identical reads: one group founded, so resident state
        // stays O(1) while reads_seen grows.
        let base: Strand = "ACGTACGTACGTACGTACGTACGTACGT".parse().unwrap();
        let mut stream = StreamingClusterer::new(GreedyClusterer::default());
        for _ in 0..400 {
            stream.push(&base);
        }
        assert_eq!(stream.resident_groups(), 1);
        assert_eq!(stream.reads_seen(), 400);
    }

    #[test]
    fn empty_and_degenerate_reads_do_not_panic() {
        let mut stream = StreamingClusterer::new(GreedyClusterer::default());
        let empty = Strand::new();
        let one: Strand = "A".parse().unwrap();
        let a0 = stream.push(&empty);
        let a1 = stream.push(&one);
        let a2 = stream.push(&empty);
        assert!(a0.founded);
        // Empty reads re-join the empty-read group (distance 0 ≤ threshold
        // via the candidate path only if buckets collide; with no q-grams
        // there are no bucket hits, so each empty read founds its own
        // group — the same behaviour the materialised pass has).
        let expected = GreedyClusterer::default().cluster(&[empty.clone(), one, empty]);
        assert_eq!(memberships(&[a0, a1, a2]), expected);
    }
}
