//! Position-wise (Hamming-style) comparison of strands.
//!
//! DNA-storage evaluation compares variable-length reads against a
//! fixed-length reference, so the classic equal-length Hamming distance is
//! generalised: positions are compared index-by-index, and every position of
//! the longer sequence beyond the shorter one counts as an error. Given the
//! reference `AGTC` and read `ATC`, positions 1, 2 and 3 are Hamming errors
//! (the deletion of `G` shifts everything after it).

use dnasim_core::Strand;

/// Generalised Hamming distance: mismatches over the common prefix length
/// plus the length difference.
///
/// # Examples
///
/// ```
/// use dnasim_metrics::hamming;
/// use dnasim_core::Strand;
///
/// let r: Strand = "AGTC".parse()?;
/// let c: Strand = "ATC".parse()?;
/// assert_eq!(hamming(&r, &c), 3);
/// # Ok::<(), dnasim_core::ParseStrandError>(())
/// ```
pub fn hamming(a: &Strand, b: &Strand) -> usize {
    let overlap = a.len().min(b.len());
    let mismatches = (0..overlap).filter(|&i| a[i] != b[i]).count();
    mismatches + a.len().abs_diff(b.len())
}

/// The positions (0-based) at which `a` and `b` differ, including every
/// index of the longer sequence past the end of the shorter.
///
/// This is the per-position view behind the paper's Hamming error-profile
/// figures.
///
/// ```
/// use dnasim_metrics::hamming_error_positions;
/// use dnasim_core::Strand;
///
/// let r: Strand = "AGTC".parse()?;
/// let c: Strand = "ATC".parse()?;
/// assert_eq!(hamming_error_positions(&r, &c), vec![1, 2, 3]);
/// # Ok::<(), dnasim_core::ParseStrandError>(())
/// ```
pub fn hamming_error_positions(a: &Strand, b: &Strand) -> Vec<usize> {
    let overlap = a.len().min(b.len());
    let longest = a.len().max(b.len());
    let mut out: Vec<usize> = (0..overlap).filter(|&i| a[i] != b[i]).collect();
    out.extend(overlap..longest);
    out
}

/// Number of positions where `candidate` carries the correct reference base
/// (correct base at the correct index).
///
/// Per-character accuracy for one strand is `matches / reference.len()`.
///
/// ```
/// use dnasim_metrics::positional_matches;
/// use dnasim_core::Strand;
///
/// let r: Strand = "AGTC".parse()?;
/// let c: Strand = "AGT".parse()?;
/// assert_eq!(positional_matches(&r, &c), 3);
/// # Ok::<(), dnasim_core::ParseStrandError>(())
/// ```
pub fn positional_matches(reference: &Strand, candidate: &Strand) -> usize {
    let overlap = reference.len().min(candidate.len());
    (0..overlap)
        .filter(|&i| reference[i] == candidate[i])
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(text: &str) -> Strand {
        text.parse().unwrap()
    }

    #[test]
    fn equal_strands_have_zero_distance() {
        assert_eq!(hamming(&s("ACGT"), &s("ACGT")), 0);
        assert_eq!(hamming(&Strand::new(), &Strand::new()), 0);
    }

    #[test]
    fn classic_equal_length() {
        assert_eq!(hamming(&s("ACGT"), &s("AGGT")), 1);
        assert_eq!(hamming(&s("AAAA"), &s("TTTT")), 4);
    }

    #[test]
    fn length_difference_counts() {
        assert_eq!(hamming(&s("ACGT"), &s("AC")), 2);
        assert_eq!(hamming(&s("AC"), &s("ACGT")), 2);
        assert_eq!(hamming(&s("ACGT"), &Strand::new()), 4);
    }

    #[test]
    fn paper_example_agtc_atc() {
        // Deletion of G shifts the suffix: errors at 1, 2, 3.
        assert_eq!(hamming(&s("AGTC"), &s("ATC")), 3);
        assert_eq!(hamming_error_positions(&s("AGTC"), &s("ATC")), vec![1, 2, 3]);
    }

    #[test]
    fn symmetric() {
        for (a, b) in [("ACGT", "AG"), ("A", "TTTT"), ("GATTACA", "GATTA")] {
            assert_eq!(hamming(&s(a), &s(b)), hamming(&s(b), &s(a)));
        }
    }

    #[test]
    fn error_positions_match_distance() {
        for (a, b) in [("ACGT", "AGGT"), ("AGTC", "ATC"), ("AC", "ACGTA")] {
            assert_eq!(
                hamming_error_positions(&s(a), &s(b)).len(),
                hamming(&s(a), &s(b))
            );
        }
    }

    #[test]
    fn positional_matches_counts_overlap_only() {
        assert_eq!(positional_matches(&s("ACGT"), &s("ACGTAAAA")), 4);
        assert_eq!(positional_matches(&s("ACGT"), &s("TCGA")), 2);
        assert_eq!(positional_matches(&s("ACGT"), &Strand::new()), 0);
    }
}
