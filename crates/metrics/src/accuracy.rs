//! Reconstruction accuracy: the paper's headline evaluation metrics.
//!
//! *Per-strand accuracy* is the percentage of reference strands
//! reconstructed without any error; *per-character accuracy* is the
//! percentage of reference characters reconstructed with the correct base at
//! the correct position.

use std::fmt;

use dnasim_core::Strand;

use crate::hamming::positional_matches;

/// Accuracy of a reconstruction run over a set of (reference, estimate)
/// pairs.
///
/// # Examples
///
/// ```
/// use dnasim_metrics::AccuracyReport;
/// use dnasim_core::Strand;
///
/// let reference: Strand = "ACGT".parse()?;
/// let perfect = reference.clone();
/// let off_by_one: Strand = "ACGA".parse()?;
///
/// let report = AccuracyReport::from_pairs([
///     (&reference, &perfect),
///     (&reference, &off_by_one),
/// ]);
/// assert_eq!(report.per_strand_percent(), 50.0);
/// assert_eq!(report.per_char_percent(), 87.5);
/// # Ok::<(), dnasim_core::ParseStrandError>(())
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccuracyReport {
    strands: usize,
    exact_strands: usize,
    chars: usize,
    correct_chars: usize,
}

impl AccuracyReport {
    /// Creates an empty report.
    pub fn new() -> AccuracyReport {
        AccuracyReport::default()
    }

    /// Builds a report from (reference, estimate) pairs.
    pub fn from_pairs<'a, I>(pairs: I) -> AccuracyReport
    where
        I: IntoIterator<Item = (&'a Strand, &'a Strand)>,
    {
        let mut report = AccuracyReport::new();
        for (reference, estimate) in pairs {
            report.record(reference, estimate);
        }
        report
    }

    /// Records one reconstructed strand against its reference.
    pub fn record(&mut self, reference: &Strand, estimate: &Strand) {
        self.strands += 1;
        if reference == estimate {
            self.exact_strands += 1;
        }
        self.chars += reference.len();
        self.correct_chars += positional_matches(reference, estimate);
    }

    /// Records an erasure: a reference for which nothing was reconstructed.
    pub fn record_erasure(&mut self, reference: &Strand) {
        self.strands += 1;
        self.chars += reference.len();
    }

    /// Merges another report into this one.
    pub fn merge(&mut self, other: &AccuracyReport) {
        self.strands += other.strands;
        self.exact_strands += other.exact_strands;
        self.chars += other.chars;
        self.correct_chars += other.correct_chars;
    }

    /// Number of strands recorded.
    pub fn strand_count(&self) -> usize {
        self.strands
    }

    /// Number of strands reconstructed exactly.
    pub fn exact_strand_count(&self) -> usize {
        self.exact_strands
    }

    /// Per-strand accuracy as a fraction in `[0, 1]` (0.0 if empty).
    pub fn per_strand(&self) -> f64 {
        if self.strands == 0 {
            return 0.0;
        }
        self.exact_strands as f64 / self.strands as f64
    }

    /// Per-character accuracy as a fraction in `[0, 1]` (0.0 if empty).
    pub fn per_char(&self) -> f64 {
        if self.chars == 0 {
            return 0.0;
        }
        self.correct_chars as f64 / self.chars as f64
    }

    /// Per-strand accuracy in percent, as the paper's tables report it.
    pub fn per_strand_percent(&self) -> f64 {
        self.per_strand() * 100.0
    }

    /// Per-character accuracy in percent.
    pub fn per_char_percent(&self) -> f64 {
        self.per_char() * 100.0
    }
}

impl fmt::Display for AccuracyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "per-strand {:.2}% ({}/{}), per-char {:.2}%",
            self.per_strand_percent(),
            self.exact_strands,
            self.strands,
            self.per_char_percent()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(text: &str) -> Strand {
        text.parse().unwrap()
    }

    #[test]
    fn empty_report_is_zero() {
        let r = AccuracyReport::new();
        assert_eq!(r.per_strand(), 0.0);
        assert_eq!(r.per_char(), 0.0);
        assert_eq!(r.strand_count(), 0);
    }

    #[test]
    fn perfect_reconstruction() {
        let reference = s("ACGTACGT");
        let mut r = AccuracyReport::new();
        r.record(&reference, &reference.clone());
        assert_eq!(r.per_strand_percent(), 100.0);
        assert_eq!(r.per_char_percent(), 100.0);
    }

    #[test]
    fn single_substitution_breaks_strand_not_all_chars() {
        let mut r = AccuracyReport::new();
        r.record(&s("ACGT"), &s("ACGA"));
        assert_eq!(r.per_strand_percent(), 0.0);
        assert_eq!(r.per_char_percent(), 75.0);
    }

    #[test]
    fn shorter_estimate_penalises_missing_chars() {
        let mut r = AccuracyReport::new();
        r.record(&s("ACGT"), &s("AC"));
        assert_eq!(r.per_char_percent(), 50.0);
    }

    #[test]
    fn longer_estimate_extra_chars_dont_count() {
        let mut r = AccuracyReport::new();
        r.record(&s("ACGT"), &s("ACGTAAAA"));
        // All four reference characters are correct, but the strand is not exact.
        assert_eq!(r.per_char_percent(), 100.0);
        assert_eq!(r.per_strand_percent(), 0.0);
    }

    #[test]
    fn erasures_count_as_total_loss() {
        let mut r = AccuracyReport::new();
        r.record_erasure(&s("ACGT"));
        r.record(&s("ACGT"), &s("ACGT"));
        assert_eq!(r.per_strand_percent(), 50.0);
        assert_eq!(r.per_char_percent(), 50.0);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = AccuracyReport::new();
        a.record(&s("ACGT"), &s("ACGT"));
        let mut b = AccuracyReport::new();
        b.record(&s("AAAA"), &s("TTTT"));
        a.merge(&b);
        assert_eq!(a.strand_count(), 2);
        assert_eq!(a.per_strand_percent(), 50.0);
        assert_eq!(a.per_char_percent(), 50.0);
    }

    #[test]
    fn display_is_informative() {
        let mut r = AccuracyReport::new();
        r.record(&s("ACGT"), &s("ACGT"));
        let text = r.to_string();
        assert!(text.contains("per-strand"));
        assert!(text.contains("100.00%"));
    }
}
