//! SIMD backends for the multi-pattern bank kernel.
//!
//! Both backends execute the exact per-lane recurrence of
//! [`bank`](crate::bank)'s scalar engine — the Myers addition never
//! carries across 64-bit lanes, so `_mm256_add_epi64` / `vaddq_u64`
//! vectorise it directly. AVX2 advances four pattern lanes per
//! `__m256i` (two vectors cover an 8-lane bank); NEON advances two per
//! `uint64x2_t`. The only per-lane-divergent operation — extracting the
//! score bit at `(len − 1) & 63` — uses the variable-shift forms
//! (`_mm256_srlv_epi64`, `vshlq_u64` with negative counts).
//!
//! Callers must guarantee the matching CPU feature before entering
//! (`is_x86_feature_detected!("avx2")` / `is_aarch64_feature_detected!
//! ("neon")`); the dispatcher in [`bank`](crate::bank) caches that probe.
//! All raw-pointer accesses here stay inside buffers sized `words × pad`
//! (or the fixed `MAX_LANES` arrays), with `pad` a multiple of the vector
//! width — each load/store carries its own SAFETY note.

#![deny(unsafe_op_in_unsafe_fn)]

#[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
use dnasim_core::PackedStrand;

#[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
use crate::bank::{BankScratch, PatternBank, MAX_LANES};

/// AVX2 bank engine: four 64-bit pattern lanes per `__m256i`.
///
/// # Safety
///
/// The caller must ensure the CPU supports AVX2 (the dispatcher only
/// selects this after `is_x86_feature_detected!("avx2")` succeeds).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn run_avx2(
    bank: &PatternBank,
    scratch: &mut BankScratch,
    text: &PackedStrand,
    eff_limit: i64,
    scores: &mut [i64; MAX_LANES],
    alive: &mut u32,
) {
    use core::arch::x86_64::*;

    let (words, pad) = (bank.words, bank.pad);
    // `pad` is 4 or 8, so one or two vectors span every lane.
    let nv = pad / 4;
    scratch.reset(words * pad);
    let n = text.len();
    let last = words - 1;

    let ones = _mm256_set1_epi64x(-1);
    let one = _mm256_set1_epi64x(1);

    let mut init = [0i64; MAX_LANES];
    for (slot, &len) in init.iter_mut().zip(bank.lens.iter()).take(bank.lanes) {
        *slot = len as i64;
    }
    let mut score_v = [_mm256_setzero_si256(); 2];
    let mut shift_v = [_mm256_setzero_si256(); 2];
    for v in 0..nv {
        // SAFETY: `init` and `bank.shifts` both hold MAX_LANES (8)
        // elements and v·4 + 4 ≤ pad ≤ 8; unaligned loads are permitted.
        unsafe {
            score_v[v] = _mm256_loadu_si256(init.as_ptr().add(v * 4).cast());
            shift_v[v] = _mm256_loadu_si256(bank.shifts.as_ptr().add(v * 4).cast());
        }
    }

    for (j, c) in text.codes().enumerate() {
        let plane = &bank.eq[(c & 3) as usize];
        let mut hp = [one; 2];
        let mut hn = [_mm256_setzero_si256(); 2];
        for w in 0..words {
            let base = w * pad;
            for v in 0..nv {
                let idx = base + v * 4;
                // SAFETY: `scratch.pv`/`scratch.mv` were reset to
                // words·pad elements and `plane` holds words·pad
                // elements; idx + 4 = w·pad + v·4 + 4 ≤ words·pad.
                let (pv, mv, eq0) = unsafe {
                    (
                        _mm256_loadu_si256(scratch.pv.as_ptr().add(idx).cast()),
                        _mm256_loadu_si256(scratch.mv.as_ptr().add(idx).cast()),
                        _mm256_loadu_si256(plane.as_ptr().add(idx).cast()),
                    )
                };
                let xv = _mm256_or_si256(eq0, mv);
                let eq = _mm256_or_si256(eq0, hn[v]);
                let xh = _mm256_or_si256(
                    _mm256_xor_si256(_mm256_add_epi64(_mm256_and_si256(eq, pv), pv), pv),
                    eq,
                );
                let ph = _mm256_or_si256(mv, _mm256_andnot_si256(_mm256_or_si256(xh, pv), ones));
                let mh = _mm256_and_si256(pv, xh);
                if w == last {
                    let delta = _mm256_sub_epi64(
                        _mm256_and_si256(_mm256_srlv_epi64(ph, shift_v[v]), one),
                        _mm256_and_si256(_mm256_srlv_epi64(mh, shift_v[v]), one),
                    );
                    score_v[v] = _mm256_add_epi64(score_v[v], delta);
                }
                let hout_p = _mm256_srli_epi64(ph, 63);
                let hout_n = _mm256_srli_epi64(mh, 63);
                let ph = _mm256_or_si256(_mm256_slli_epi64(ph, 1), hp[v]);
                let mh = _mm256_or_si256(_mm256_slli_epi64(mh, 1), hn[v]);
                let new_pv =
                    _mm256_or_si256(mh, _mm256_andnot_si256(_mm256_or_si256(xv, ph), ones));
                let new_mv = _mm256_and_si256(ph, xv);
                // SAFETY: same in-bounds argument as the loads above.
                unsafe {
                    _mm256_storeu_si256(scratch.pv.as_mut_ptr().add(idx).cast(), new_pv);
                    _mm256_storeu_si256(scratch.mv.as_mut_ptr().add(idx).cast(), new_mv);
                }
                hp[v] = hout_p;
                hn[v] = hout_n;
            }
        }
        // Early abandon: the bottom-row score moves by at most one per
        // column, so score − remaining > limit is unrecoverable.
        let remaining = (n - j - 1) as i64;
        let thresh = _mm256_set1_epi64x(eff_limit + remaining);
        for (v, &sv) in score_v.iter().enumerate().take(nv) {
            let dead = _mm256_cmpgt_epi64(sv, thresh);
            let mask = _mm256_movemask_pd(_mm256_castsi256_pd(dead)) as u32;
            *alive &= !(mask << (v * 4));
        }
        if *alive == 0 {
            break;
        }
    }

    let mut buf = [0i64; MAX_LANES];
    for (v, &sv) in score_v.iter().enumerate().take(nv) {
        // SAFETY: `buf` holds MAX_LANES (8) elements; v·4 + 4 ≤ pad ≤ 8.
        unsafe { _mm256_storeu_si256(buf.as_mut_ptr().add(v * 4).cast(), sv) };
    }
    scores[..bank.lanes].copy_from_slice(&buf[..bank.lanes]);
}

/// NEON bank engine: two 64-bit pattern lanes per `uint64x2_t`.
///
/// # Safety
///
/// The caller must ensure NEON is available (always true on aarch64
/// Linux/macOS targets; the dispatcher still probes
/// `is_aarch64_feature_detected!("neon")` first).
#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
pub(crate) unsafe fn run_neon(
    bank: &PatternBank,
    scratch: &mut BankScratch,
    text: &PackedStrand,
    eff_limit: i64,
    scores: &mut [i64; MAX_LANES],
    alive: &mut u32,
) {
    use core::arch::aarch64::*;

    let (words, pad) = (bank.words, bank.pad);
    // `pad` is 4 or 8, so two or four vectors span every lane.
    let nv = pad / 2;
    scratch.reset(words * pad);
    let n = text.len();
    let last = words - 1;

    let ones = vdupq_n_u64(!0u64);
    let one = vdupq_n_u64(1);

    let mut init = [0i64; MAX_LANES];
    let mut neg_shift_init = [0i64; MAX_LANES];
    for l in 0..MAX_LANES {
        if l < bank.lanes {
            init[l] = bank.lens[l] as i64;
        }
        // vshlq_u64 with a negative count shifts right by that amount.
        neg_shift_init[l] = -(bank.shifts[l] as i64);
    }
    let mut score_v = [vdupq_n_s64(0); 4];
    let mut neg_shift = [vdupq_n_s64(0); 4];
    for v in 0..nv {
        // SAFETY: `init` and `neg_shift_init` hold MAX_LANES (8)
        // elements and v·2 + 2 ≤ pad ≤ 8.
        unsafe {
            score_v[v] = vld1q_s64(init.as_ptr().add(v * 2));
            neg_shift[v] = vld1q_s64(neg_shift_init.as_ptr().add(v * 2));
        }
    }

    for (j, c) in text.codes().enumerate() {
        let plane = &bank.eq[(c & 3) as usize];
        let mut hp = [one; 4];
        let mut hn = [vdupq_n_u64(0); 4];
        for w in 0..words {
            let base = w * pad;
            for v in 0..nv {
                let idx = base + v * 2;
                // SAFETY: `scratch.pv`/`scratch.mv` were reset to
                // words·pad elements and `plane` holds words·pad
                // elements; idx + 2 = w·pad + v·2 + 2 ≤ words·pad.
                let (pv, mv, eq0) = unsafe {
                    (
                        vld1q_u64(scratch.pv.as_ptr().add(idx)),
                        vld1q_u64(scratch.mv.as_ptr().add(idx)),
                        vld1q_u64(plane.as_ptr().add(idx)),
                    )
                };
                let xv = vorrq_u64(eq0, mv);
                let eq = vorrq_u64(eq0, hn[v]);
                let xh = vorrq_u64(veorq_u64(vaddq_u64(vandq_u64(eq, pv), pv), pv), eq);
                // vbicq_u64(a, b) = a & !b, so ones-bic gives bitwise NOT.
                let ph = vorrq_u64(mv, vbicq_u64(ones, vorrq_u64(xh, pv)));
                let mh = vandq_u64(pv, xh);
                if w == last {
                    let pd = vandq_u64(vshlq_u64(ph, neg_shift[v]), one);
                    let md = vandq_u64(vshlq_u64(mh, neg_shift[v]), one);
                    score_v[v] = vaddq_s64(
                        score_v[v],
                        vsubq_s64(vreinterpretq_s64_u64(pd), vreinterpretq_s64_u64(md)),
                    );
                }
                let hout_p = vshrq_n_u64(ph, 63);
                let hout_n = vshrq_n_u64(mh, 63);
                let ph = vorrq_u64(vshlq_n_u64(ph, 1), hp[v]);
                let mh = vorrq_u64(vshlq_n_u64(mh, 1), hn[v]);
                let new_pv = vorrq_u64(mh, vbicq_u64(ones, vorrq_u64(xv, ph)));
                let new_mv = vandq_u64(ph, xv);
                // SAFETY: same in-bounds argument as the loads above.
                unsafe {
                    vst1q_u64(scratch.pv.as_mut_ptr().add(idx), new_pv);
                    vst1q_u64(scratch.mv.as_mut_ptr().add(idx), new_mv);
                }
                hp[v] = hout_p;
                hn[v] = hout_n;
            }
        }
        // Early abandon, as in the scalar engine.
        let remaining = (n - j - 1) as i64;
        let thresh = vdupq_n_s64(eff_limit + remaining);
        for v in 0..nv {
            let dead = vcgtq_s64(score_v[v], thresh);
            let m0 = (vgetq_lane_u64(dead, 0) & 1) as u32;
            let m1 = (vgetq_lane_u64(dead, 1) & 1) as u32;
            *alive &= !((m0 | (m1 << 1)) << (v * 2));
        }
        if *alive == 0 {
            break;
        }
    }

    let mut buf = [0i64; MAX_LANES];
    for v in 0..nv {
        // SAFETY: `buf` holds MAX_LANES (8) elements; v·2 + 2 ≤ pad ≤ 8.
        unsafe { vst1q_s64(buf.as_mut_ptr().add(v * 2), score_v[v]) };
    }
    scores[..bank.lanes].copy_from_slice(&buf[..bank.lanes]);
}
