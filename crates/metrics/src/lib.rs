//! Similarity metrics and accuracy evaluation for DNA-storage simulation.
//!
//! The paper evaluates simulator fidelity by how closely reconstruction
//! accuracy on simulated data tracks real data, and visualises error
//! behaviour through positional profiles. This crate provides:
//!
//! * [`levenshtein`] / [`levenshtein_within`] — edit distance, full and
//!   banded (the scalar reference implementation, and the oracle the
//!   bit-parallel kernels are differentially tested against);
//! * [`myers`] — Myers' bit-parallel edit-distance kernels over
//!   [`PackedStrand`](dnasim_core::PackedStrand)s, 64 DP cells per word
//!   (used by clustering and medoid selection);
//! * [`bank`] — the vectorised multi-pattern tier: a [`PatternBank`]
//!   advances 4–8 patterns per text column via AVX2/NEON (runtime
//!   detected, exact scalar fallback everywhere else);
//! * [`qgram`] — the q-gram counting lower bound on edit distance, used
//!   as an error-ball prefilter in front of the kernels;
//! * [`hamming`] / [`hamming_error_positions`] — position-wise comparison,
//!   where indels propagate (the "Hamming" figures);
//! * [`gestalt_score`] / [`matching_blocks`] / [`gestalt_error_positions`] —
//!   Ratcliff–Obershelp gestalt pattern matching, which re-aligns strands
//!   and exposes only the *sources* of misalignment (the "gestalt-aligned"
//!   figures);
//! * [`AccuracyReport`] — per-strand and per-character accuracy, the
//!   paper's headline metrics;
//! * [`PositionalProfile`] — per-position error histograms behind every
//!   figure;
//! * [`chi_square_distance`] — χ² distance between error histograms.
//!
//! # Examples
//!
//! ```
//! use dnasim_core::Strand;
//! use dnasim_metrics::{gestalt_score, hamming, levenshtein};
//!
//! let reference: Strand = "AGTC".parse()?;
//! let read: Strand = "ATC".parse()?;
//! assert_eq!(levenshtein(reference.as_bases(), read.as_bases()), 1);
//! assert_eq!(hamming(&reference, &read), 3);
//! assert!(gestalt_score(reference.as_bases(), read.as_bases()) > 0.8);
//! # Ok::<(), dnasim_core::ParseStrandError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod accuracy;
pub mod bank;
#[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
mod bank_simd;
mod chi2;
mod gestalt;
mod hamming;
mod levenshtein;
pub mod myers;
mod profiles;
pub mod qgram;

pub use accuracy::AccuracyReport;
pub use bank::{
    bank_distances_with, bank_within_with, set_simd_mode, simd_tier_name, BankScratch,
    PatternBank, SimdMode, MAX_LANES,
};
pub use chi2::{chi_square_distance, normalize_histogram};
pub use gestalt::{gestalt_error_positions, gestalt_score, matching_blocks, MatchingBlock};
pub use hamming::{hamming, hamming_error_positions, positional_matches};
pub use levenshtein::{levenshtein, levenshtein_within, normalized_levenshtein};
pub use myers::MyersScratch;
pub use profiles::{PositionalProfile, ProfileKind};
pub use qgram::{QGramProfile, QGramScratch};
