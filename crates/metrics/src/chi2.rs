//! χ² distance between frequency histograms.
//!
//! One of the candidate simulator-fidelity criteria (§3.1): compare the
//! error-type frequency histogram of simulated data against real data.

/// The χ² distance `½ · Σ (aᵢ − bᵢ)² / (aᵢ + bᵢ)` between two frequency
/// histograms, skipping bins where both are zero.
///
/// Histograms of different lengths are compared as if the shorter were
/// zero-padded.
///
/// # Examples
///
/// ```
/// use dnasim_metrics::chi_square_distance;
///
/// assert_eq!(chi_square_distance(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
/// assert!(chi_square_distance(&[1.0, 0.0], &[0.0, 1.0]) > 0.0);
/// ```
pub fn chi_square_distance(a: &[f64], b: &[f64]) -> f64 {
    let len = a.len().max(b.len());
    let mut sum = 0.0;
    for i in 0..len {
        let x = a.get(i).copied().unwrap_or(0.0);
        let y = b.get(i).copied().unwrap_or(0.0);
        let denom = x + y;
        if denom > 0.0 {
            sum += (x - y).powi(2) / denom;
        }
    }
    0.5 * sum
}

/// Normalises a histogram of counts into a probability distribution.
/// Returns all-zeros if the histogram sums to zero.
///
/// ```
/// use dnasim_metrics::normalize_histogram;
/// assert_eq!(normalize_histogram(&[2, 2]), vec![0.5, 0.5]);
/// assert_eq!(normalize_histogram(&[0, 0]), vec![0.0, 0.0]);
/// ```
pub fn normalize_histogram(counts: &[usize]) -> Vec<f64> {
    let total: usize = counts.iter().sum();
    if total == 0 {
        return vec![0.0; counts.len()];
    }
    counts.iter().map(|&c| c as f64 / total as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_histograms_have_zero_distance() {
        assert_eq!(chi_square_distance(&[0.2, 0.8], &[0.2, 0.8]), 0.0);
    }

    #[test]
    fn disjoint_distributions_have_distance_one() {
        // ½·[(1-0)²/1 + (0-1)²/1] = 1 for unit-mass disjoint histograms.
        assert!((chi_square_distance(&[1.0, 0.0], &[0.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn symmetric() {
        let a = [0.1, 0.4, 0.5];
        let b = [0.3, 0.3, 0.4];
        assert!((chi_square_distance(&a, &b) - chi_square_distance(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn length_mismatch_zero_pads() {
        let d1 = chi_square_distance(&[0.5, 0.5], &[0.5, 0.5, 0.0]);
        assert_eq!(d1, 0.0);
        let d2 = chi_square_distance(&[0.5, 0.5], &[0.5, 0.25, 0.25]);
        assert!(d2 > 0.0);
    }

    #[test]
    fn empty_histograms() {
        assert_eq!(chi_square_distance(&[], &[]), 0.0);
        assert_eq!(chi_square_distance(&[0.0], &[]), 0.0);
    }

    #[test]
    fn normalize_sums_to_one() {
        let h = normalize_histogram(&[1, 2, 3, 4]);
        assert!((h.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((h[3] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn closer_distribution_has_smaller_distance() {
        let real = [0.6, 0.3, 0.1];
        let close = [0.55, 0.33, 0.12];
        let far = [0.1, 0.2, 0.7];
        assert!(chi_square_distance(&real, &close) < chi_square_distance(&real, &far));
    }
}
