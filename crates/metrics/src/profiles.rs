//! Positional error profiles: the data behind the paper's Hamming and
//! gestalt-aligned figures.
//!
//! A profile counts, per strand position, how many compared pairs exhibited
//! an error at that position. Comparing *reads* against references yields
//! the pre-reconstruction noise profile (Fig. 3.2); comparing
//! *reconstructed* strands yields the post-reconstruction profiles
//! (Figs. 3.4–3.10).

use std::fmt;

use dnasim_core::Strand;

use crate::gestalt::gestalt_error_positions;
use crate::hamming::hamming_error_positions;

/// How error positions are attributed when comparing two strands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfileKind {
    /// Position-by-position comparison; an early indel corrupts every
    /// later position (linear error propagation).
    Hamming,
    /// Gestalt-aligned comparison; only the *sources* of misalignment
    /// count, positions re-aligned by matching blocks do not.
    GestaltAligned,
}

/// A per-position error histogram across many strand comparisons.
///
/// # Examples
///
/// ```
/// use dnasim_metrics::{PositionalProfile, ProfileKind};
/// use dnasim_core::Strand;
///
/// let r: Strand = "AGTC".parse()?;
/// let c: Strand = "ATC".parse()?;
/// let mut profile = PositionalProfile::new(ProfileKind::GestaltAligned, 4);
/// profile.record(&r, &c);
/// assert_eq!(profile.counts(), &[0, 1, 0, 0]);
/// # Ok::<(), dnasim_core::ParseStrandError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PositionalProfile {
    kind: ProfileKind,
    counts: Vec<usize>,
    comparisons: usize,
}

impl PositionalProfile {
    /// Creates an empty profile of `len` positions.
    ///
    /// Positions at or beyond `len` (possible under Hamming comparison of an
    /// over-long read) are accumulated into the last bucket if `len > 0`.
    pub fn new(kind: ProfileKind, len: usize) -> PositionalProfile {
        PositionalProfile {
            kind,
            counts: vec![0; len],
            comparisons: 0,
        }
    }

    /// The attribution rule used by this profile.
    pub fn kind(&self) -> ProfileKind {
        self.kind
    }

    /// Records the comparison of one (reference, candidate) pair.
    pub fn record(&mut self, reference: &Strand, candidate: &Strand) {
        self.comparisons += 1;
        let positions = match self.kind {
            ProfileKind::Hamming => hamming_error_positions(reference, candidate),
            ProfileKind::GestaltAligned => gestalt_error_positions(reference, candidate),
        };
        for p in positions {
            if let Some(slot) = self.counts.get_mut(p) {
                *slot += 1;
            } else if let Some(last) = self.counts.last_mut() {
                *last += 1;
            }
        }
    }

    /// Raw error counts per position.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Number of pairs recorded.
    pub fn comparisons(&self) -> usize {
        self.comparisons
    }

    /// Total errors across all positions.
    pub fn total_errors(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Error *rate* per position: `counts[i] / comparisons` (all zeros if
    /// nothing was recorded).
    pub fn rates(&self) -> Vec<f64> {
        if self.comparisons == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.comparisons as f64)
            .collect()
    }

    /// Merges another profile of the same kind into this one.
    ///
    /// Profiles of different lengths merge by growing to the longer
    /// length (counts stay in their original buckets) — the streaming
    /// pipeline accumulates per-batch profiles and a batch of erasure
    /// clusters legitimately reports length 0. Merging arbitrary
    /// partitions of a recording sequence at a fixed length equals the
    /// single-pass profile (see `crates/profile/tests/merge_properties`).
    ///
    /// # Panics
    ///
    /// Panics if the kinds differ — Hamming and gestalt-aligned counts
    /// measure different things and must never be pooled.
    pub fn merge(&mut self, other: &PositionalProfile) {
        assert_eq!(self.kind, other.kind, "cannot merge profiles of different kinds");
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.comparisons += other.comparisons;
    }

    /// A coarse shape summary: mean error rate over the first, middle and
    /// last thirds of the strand. Useful for asserting "A-shaped" /
    /// "V-shaped" / "linear" behaviour in tests and experiment summaries.
    pub fn thirds(&self) -> (f64, f64, f64) {
        let rates = self.rates();
        let n = rates.len();
        if n == 0 {
            return (0.0, 0.0, 0.0);
        }
        let third = (n / 3).max(1);
        let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len().max(1) as f64;
        (
            mean(&rates[..third.min(n)]),
            mean(&rates[third.min(n)..(2 * third).min(n).max(third.min(n))]),
            mean(&rates[(2 * third).min(n)..]),
        )
    }

    /// Renders the profile as a small ASCII chart, one row per bucket of
    /// positions — handy for eyeballing figure shapes in harness output.
    pub fn ascii_chart(&self, buckets: usize) -> String {
        let rates = self.rates();
        if rates.is_empty() || buckets == 0 {
            return String::new();
        }
        let per = rates.len().div_ceil(buckets);
        let grouped: Vec<f64> = rates
            .chunks(per)
            .map(|c| c.iter().sum::<f64>() / c.len() as f64)
            .collect();
        let max = grouped.iter().cloned().fold(f64::MIN, f64::max).max(1e-12);
        let mut out = String::new();
        for (i, g) in grouped.iter().enumerate() {
            let bar = "#".repeat(((g / max) * 50.0).round() as usize);
            out.push_str(&format!(
                "{:>4}-{:<4} {:>8.5} |{}\n",
                i * per,
                ((i + 1) * per - 1).min(rates.len() - 1),
                g,
                bar
            ));
        }
        out
    }
}

impl fmt::Display for PositionalProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (a, b, c) = self.thirds();
        write!(
            f,
            "{:?} profile over {} comparisons: thirds [{:.4}, {:.4}, {:.4}]",
            self.kind, self.comparisons, a, b, c
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(text: &str) -> Strand {
        text.parse().unwrap()
    }

    #[test]
    fn hamming_profile_records_propagation() {
        let mut p = PositionalProfile::new(ProfileKind::Hamming, 4);
        p.record(&s("AGTC"), &s("ATC"));
        assert_eq!(p.counts(), &[0, 1, 1, 1]);
        assert_eq!(p.total_errors(), 3);
    }

    #[test]
    fn gestalt_profile_records_sources_only() {
        let mut p = PositionalProfile::new(ProfileKind::GestaltAligned, 4);
        p.record(&s("AGTC"), &s("ATC"));
        assert_eq!(p.counts(), &[0, 1, 0, 0]);
    }

    #[test]
    fn overlong_reads_clamp_to_last_bucket() {
        let mut p = PositionalProfile::new(ProfileKind::Hamming, 4);
        p.record(&s("ACGT"), &s("ACGTAA"));
        // Positions 4 and 5 spill into the final bucket.
        assert_eq!(p.counts(), &[0, 0, 0, 2]);
    }

    #[test]
    fn rates_divide_by_comparisons() {
        let mut p = PositionalProfile::new(ProfileKind::Hamming, 2);
        p.record(&s("AC"), &s("AC"));
        p.record(&s("AC"), &s("AT"));
        assert_eq!(p.comparisons(), 2);
        assert_eq!(p.rates(), vec![0.0, 0.5]);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = PositionalProfile::new(ProfileKind::Hamming, 2);
        a.record(&s("AC"), &s("AT"));
        let mut b = PositionalProfile::new(ProfileKind::Hamming, 2);
        b.record(&s("AC"), &s("TC"));
        a.merge(&b);
        assert_eq!(a.counts(), &[1, 1]);
        assert_eq!(a.comparisons(), 2);
    }

    #[test]
    fn merge_grows_to_longer_profile() {
        let mut a = PositionalProfile::new(ProfileKind::Hamming, 0);
        let mut b = PositionalProfile::new(ProfileKind::Hamming, 2);
        b.record(&s("AC"), &s("TC"));
        a.merge(&b);
        assert_eq!(a.counts(), &[1, 0]);
        assert_eq!(a.comparisons(), 1);
    }

    #[test]
    #[should_panic(expected = "different kinds")]
    fn merge_rejects_kind_mismatch() {
        let mut a = PositionalProfile::new(ProfileKind::Hamming, 2);
        let b = PositionalProfile::new(ProfileKind::GestaltAligned, 2);
        a.merge(&b);
    }

    #[test]
    fn thirds_summarise_shape() {
        let mut p = PositionalProfile::new(ProfileKind::Hamming, 9);
        // Linear increase toward the end.
        p.record(&s("AAAAAAAAA"), &s("AAAAAATTT"));
        let (first, _, last) = p.thirds();
        assert!(last > first);
    }

    #[test]
    fn ascii_chart_has_requested_buckets() {
        let mut p = PositionalProfile::new(ProfileKind::Hamming, 10);
        p.record(&s("AAAAAAAAAA"), &s("TAAAAAAAAT"));
        let chart = p.ascii_chart(5);
        assert_eq!(chart.lines().count(), 5);
        assert!(chart.contains('#'));
    }

    #[test]
    fn empty_profile_rates() {
        let p = PositionalProfile::new(ProfileKind::Hamming, 3);
        assert_eq!(p.rates(), vec![0.0; 3]);
        assert_eq!(p.total_errors(), 0);
    }
}
