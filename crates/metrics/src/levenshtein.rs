//! Levenshtein (edit) distance, full and banded — the scalar reference
//! implementation.
//!
//! These generic scalar kernels are the workspace's *oracle*: the
//! bit-parallel kernels in [`myers`](crate::myers) are differentially
//! tested against them (`crates/metrics/tests/myers_differential.rs`) and
//! must agree bit-for-bit. Hot paths (clustering, medoid selection) call
//! the Myers kernels on [`PackedStrand`](dnasim_core::PackedStrand)s;
//! everything else — arbitrary `PartialEq` element types included — uses
//! these.

/// Computes the Levenshtein distance between two sequences: the minimum
/// number of insertions, deletions and substitutions transforming `a` into
/// `b`.
///
/// Runs in `O(|a|·|b|)` time and `O(min(|a|,|b|))` space. Equal slices
/// short-circuit to 0 before the DP row is allocated.
///
/// # Examples
///
/// ```
/// use dnasim_metrics::levenshtein;
/// use dnasim_core::Strand;
///
/// let a: Strand = "AGCG".parse()?;
/// let b: Strand = "AGG".parse()?;
/// assert_eq!(levenshtein(a.as_bases(), b.as_bases()), 1);
/// # Ok::<(), dnasim_core::ParseStrandError>(())
/// ```
pub fn levenshtein<T: PartialEq>(a: &[T], b: &[T]) -> usize {
    // Fast path: identical content (the overwhelmingly common case when
    // comparing clean reads) costs one scan and no allocation.
    if a == b {
        return 0;
    }
    // Keep the shorter sequence as the DP row.
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if short.is_empty() {
        return long.len();
    }
    let mut row: Vec<usize> = (0..=short.len()).collect();
    for (i, lx) in long.iter().enumerate() {
        let mut diag = row[0];
        row[0] = i + 1;
        for (j, sx) in short.iter().enumerate() {
            let cost = if lx == sx { 0 } else { 1 };
            let next = (diag + cost).min(row[j] + 1).min(row[j + 1] + 1);
            diag = row[j + 1];
            row[j + 1] = next;
        }
    }
    row[short.len()]
}

/// Levenshtein distance normalised to `[0, 1]` by the longer sequence's
/// length. Two empty sequences have distance `0.0`.
///
/// ```
/// use dnasim_metrics::normalized_levenshtein;
/// assert_eq!(normalized_levenshtein(b"ACGT", b"ACGT"), 0.0);
/// assert_eq!(normalized_levenshtein(b"AAAA", b""), 1.0);
/// ```
pub fn normalized_levenshtein<T: PartialEq>(a: &[T], b: &[T]) -> f64 {
    let longest = a.len().max(b.len());
    if longest == 0 {
        return 0.0;
    }
    levenshtein(a, b) as f64 / longest as f64
}

/// Computes the Levenshtein distance if it is at most `limit`, and `None`
/// otherwise, using Ukkonen's band to prune the DP.
///
/// Clustering uses this to reject dissimilar pairs early: a full DP over
/// every candidate pair would dominate runtime.
///
/// # Examples
///
/// ```
/// use dnasim_metrics::levenshtein_within;
/// assert_eq!(levenshtein_within(b"ACGT", b"AGGT", 2), Some(1));
/// assert_eq!(levenshtein_within(b"AAAA", b"TTTT", 2), None);
/// ```
pub fn levenshtein_within<T: PartialEq>(a: &[T], b: &[T], limit: usize) -> Option<usize> {
    // Fast paths: a length gap wider than the limit can never close (each
    // edit changes the length by at most one), and equal slices are free.
    if a.len().abs_diff(b.len()) > limit {
        return None;
    }
    if a == b {
        return Some(0);
    }
    const INF: usize = usize::MAX / 2;
    let m = b.len();
    // Cells farther than `limit` off the diagonal can never contribute to a
    // path of cost ≤ limit, so only the band is ever filled.
    let mut prev: Vec<usize> = (0..=m).map(|j| if j <= limit { j } else { INF }).collect();
    let mut cur = vec![INF; m + 1];
    for (i, ax) in a.iter().enumerate() {
        let row = i + 1;
        let lo = row.saturating_sub(limit);
        let hi = (row + limit).min(m);
        cur.iter_mut().for_each(|v| *v = INF);
        if lo == 0 {
            cur[0] = row;
        }
        let mut best = cur[0];
        for j in lo.max(1)..=hi {
            let cost = if ax == &b[j - 1] { 0 } else { 1 };
            let val = (prev[j - 1].saturating_add(cost))
                .min(prev[j].saturating_add(1))
                .min(cur[j - 1].saturating_add(1));
            cur[j] = val;
            best = best.min(val);
        }
        if best > limit {
            return None;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    let d = prev[m];
    (d <= limit).then_some(d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_cases() {
        assert_eq!(levenshtein(b"kitten", b"sitting"), 3);
        assert_eq!(levenshtein(b"flaw", b"lawn"), 2);
        assert_eq!(levenshtein(b"", b""), 0);
        assert_eq!(levenshtein(b"abc", b""), 3);
        assert_eq!(levenshtein(b"", b"abc"), 3);
        assert_eq!(levenshtein(b"abc", b"abc"), 0);
    }

    #[test]
    fn single_edits() {
        assert_eq!(levenshtein(b"ACGT", b"AGGT"), 1); // substitution
        assert_eq!(levenshtein(b"ACGT", b"ACT"), 1); // deletion
        assert_eq!(levenshtein(b"ACGT", b"ACGGT"), 1); // insertion
    }

    #[test]
    fn symmetric() {
        let pairs: [(&[u8], &[u8]); 3] =
            [(b"ACGT", b"TGCA"), (b"AAAA", b"AA"), (b"GATTACA", b"GCAT")];
        for (a, b) in pairs {
            assert_eq!(levenshtein(a, b), levenshtein(b, a));
        }
    }

    #[test]
    fn normalized_bounds() {
        assert_eq!(normalized_levenshtein::<u8>(&[], &[]), 0.0);
        assert!((normalized_levenshtein(b"AAAA", b"TTTT") - 1.0).abs() < 1e-12);
        let x = normalized_levenshtein(b"ACGT", b"ACTT");
        assert!(x > 0.0 && x < 1.0);
    }

    #[test]
    fn within_matches_full_when_under_limit() {
        let cases: [(&[u8], &[u8]); 5] = [
            (b"kitten", b"sitting"),
            (b"ACGTACGT", b"ACTTACG"),
            (b"", b"AC"),
            (b"AC", b""),
            (b"GATTACA", b"GATTACA"),
        ];
        for (a, b) in cases {
            let full = levenshtein(a, b);
            for limit in full..full + 3 {
                assert_eq!(levenshtein_within(a, b, limit), Some(full), "{a:?} {b:?}");
            }
        }
    }

    #[test]
    fn within_rejects_over_limit() {
        assert_eq!(levenshtein_within(b"kitten", b"sitting", 2), None);
        assert_eq!(levenshtein_within(b"AAAAAAAA", b"TTTTTTTT", 7), None);
        assert_eq!(levenshtein_within(b"AAAA", b"AAAATTTT", 3), None); // length gap
    }

    #[test]
    fn within_limit_zero_is_equality() {
        assert_eq!(levenshtein_within(b"ACGT", b"ACGT", 0), Some(0));
        assert_eq!(levenshtein_within(b"ACGT", b"ACGA", 0), None);
    }

    #[test]
    fn triangle_inequality_spot_checks() {
        let xs: [&[u8]; 4] = [b"ACGTACGT", b"ACTTAG", b"TTTT", b""];
        for a in xs {
            for b in xs {
                for c in xs {
                    assert!(levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c));
                }
            }
        }
    }
}
