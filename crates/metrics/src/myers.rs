//! Myers' bit-parallel edit-distance kernels over [`PackedStrand`]s.
//!
//! The scalar DP in [`levenshtein`](crate::levenshtein) touches one cell at
//! a time; Myers' 1999 algorithm encodes a whole DP *column* as vertical
//! delta bit-vectors (`Pv`/`Mv`) and advances 64 cells per word with a
//! handful of logical operations. Strands longer than 64 nt use the
//! blocked extension (Myers 1999 §4 / Hyyrö 2003): the column is split
//! into ⌈m/64⌉ words and the horizontal delta at each word's top bit
//! carries into the next word, exactly like a ripple carry.
//!
//! Conventions:
//!
//! * The *pattern* is the strand whose equality masks drive the kernel;
//!   the *text* is streamed base-by-base. Both operands arrive packed, so
//!   either can play either role — the kernel picks the assignment that
//!   minimises `pattern_words × text_len`.
//! * [`distance`] computes the exact Levenshtein distance.
//! * [`within`] is the banded variant: it returns the exact distance when
//!   it is ≤ `limit` and `None` otherwise, abandoning the column loop as
//!   soon as the running score minus the remaining columns (a lower bound
//!   on the final distance, since the bottom-row score changes by at most
//!   one per column) exceeds the limit.
//!
//! The scalar DP remains the reference oracle: the differential suite in
//! `crates/metrics/tests/myers_differential.rs` proves both kernels
//! bit-identical to it over random strand pairs and degenerate cases.
//!
//! # Examples
//!
//! ```
//! use dnasim_core::{PackedStrand, Strand};
//! use dnasim_metrics::myers;
//!
//! let a = PackedStrand::from(&"AGCG".parse::<Strand>()?);
//! let b = PackedStrand::from(&"AGG".parse::<Strand>()?);
//! assert_eq!(myers::distance(&a, &b), 1);
//! assert_eq!(myers::within(&a, &b, 1), Some(1));
//! assert_eq!(myers::within(&a, &b, 0), None);
//! # Ok::<(), dnasim_core::ParseStrandError>(())
//! ```

use dnasim_core::PackedStrand;

/// Reusable per-call state for the blocked kernels: the `Pv`/`Mv` delta
/// words, one pair per 64-base pattern block.
///
/// The kernels resize these buffers on demand, so one scratch serves
/// strands of any length; hot loops (cluster assignment, medoid selection)
/// allocate a single scratch and thread it through every comparison.
#[derive(Debug, Clone, Default)]
pub struct MyersScratch {
    pv: Vec<u64>,
    mv: Vec<u64>,
}

impl MyersScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> MyersScratch {
        MyersScratch::default()
    }
}

/// Picks the (pattern, text) assignment minimising kernel work
/// (`pattern_words × text_len`). Levenshtein distance is symmetric, so the
/// result is unaffected.
#[inline]
fn choose<'s>(a: &'s PackedStrand, b: &'s PackedStrand) -> (&'s PackedStrand, &'s PackedStrand) {
    if a.words() * b.len() <= b.words() * a.len() {
        (a, b)
    } else {
        (b, a)
    }
}

/// One blocked-kernel step: advances one 64-row block of the current
/// column. `hin` is the horizontal delta entering the block's bottom row
/// (+1, 0 or −1); the return value is the horizontal delta read off at
/// `out_bit` *before* the shift — bit 63 for interior blocks (the carry
/// into the next block), or the pattern's last-row bit for the top block
/// (the score delta).
#[inline(always)]
fn step(pv: &mut u64, mv: &mut u64, eq0: u64, hin: i32, out_bit: u64) -> i32 {
    let hin_neg = (hin < 0) as u64;
    let xv = eq0 | *mv;
    let eq = eq0 | hin_neg;
    let xh = (((eq & *pv).wrapping_add(*pv)) ^ *pv) | eq;
    let ph = *mv | !(xh | *pv);
    let mh = *pv & xh;
    let hout = ((ph & out_bit) != 0) as i32 - ((mh & out_bit) != 0) as i32;
    let ph = (ph << 1) | (hin > 0) as u64;
    let mh = (mh << 1) | hin_neg;
    *pv = mh | !(xv | ph);
    *mv = ph & xv;
    hout
}

/// Single-word fast path: pattern fits one machine word, so `Pv`/`Mv`
/// stay in registers for the whole text scan.
fn distance_one_word(pattern: &PackedStrand, text: &PackedStrand) -> usize {
    let m = pattern.len();
    let eqs: [u64; 4] = std::array::from_fn(|c| {
        pattern.eq_by_code(c as u8).first().copied().unwrap_or(0)
    });
    let mut pv = !0u64;
    let mut mv = 0u64;
    let mut score = m;
    let score_bit = 1u64 << (m - 1);
    for c in text.codes() {
        let eq = eqs[(c & 3) as usize];
        let xv = eq | mv;
        let xh = (((eq & pv).wrapping_add(pv)) ^ pv) | eq;
        let ph = mv | !(xh | pv);
        let mh = pv & xh;
        if ph & score_bit != 0 {
            score += 1;
        } else if mh & score_bit != 0 {
            score -= 1;
        }
        let ph = (ph << 1) | 1;
        let mh = mh << 1;
        pv = mh | !(xv | ph);
        mv = ph & xv;
    }
    score
}

/// Exact Levenshtein distance between two packed strands.
///
/// Allocation-free except for the scratch it creates; hot loops should
/// call [`distance_with`] with a reused [`MyersScratch`].
pub fn distance(a: &PackedStrand, b: &PackedStrand) -> usize {
    distance_with(&mut MyersScratch::new(), a, b)
}

/// [`distance`] with caller-provided scratch buffers.
pub fn distance_with(scratch: &mut MyersScratch, a: &PackedStrand, b: &PackedStrand) -> usize {
    let (p, t) = choose(a, b);
    let (m, n) = (p.len(), t.len());
    if m == 0 {
        return n;
    }
    if n == 0 {
        return m;
    }
    if p == t {
        return 0;
    }
    let words = p.words();
    if words == 1 {
        return distance_one_word(p, t);
    }

    scratch.pv.clear();
    scratch.pv.resize(words, !0u64);
    scratch.mv.clear();
    scratch.mv.resize(words, 0);
    let last = words - 1;
    let score_bit = 1u64 << ((m - 1) & 63);
    let mut score = m as isize;
    for c in t.codes() {
        let eqs = p.eq_by_code(c);
        let mut hin = 1i32;
        for ((pv, mv), &eq) in scratch.pv[..last]
            .iter_mut()
            .zip(scratch.mv[..last].iter_mut())
            .zip(&eqs[..last])
        {
            hin = step(pv, mv, eq, hin, 1 << 63);
        }
        score += step(
            &mut scratch.pv[last],
            &mut scratch.mv[last],
            eqs[last],
            hin,
            score_bit,
        ) as isize;
    }
    score.max(0) as usize
}

/// Banded distance: `Some(d)` with the exact distance when `d ≤ limit`,
/// `None` otherwise.
///
/// Rejects in O(1) when the length gap alone exceeds the limit, answers
/// equal strands in O(words), and otherwise abandons the text scan at the
/// first column where the score lower bound proves the limit unreachable.
pub fn within(a: &PackedStrand, b: &PackedStrand, limit: usize) -> Option<usize> {
    within_with(&mut MyersScratch::new(), a, b, limit)
}

/// [`within`] with caller-provided scratch buffers.
pub fn within_with(
    scratch: &mut MyersScratch,
    a: &PackedStrand,
    b: &PackedStrand,
    limit: usize,
) -> Option<usize> {
    if a.len().abs_diff(b.len()) > limit {
        return None;
    }
    if a == b {
        return Some(0);
    }
    let (p, t) = choose(a, b);
    let (m, n) = (p.len(), t.len());
    if m == 0 {
        // n ≤ limit is implied by the length-gap check above.
        return Some(n);
    }

    let words = p.words();
    scratch.pv.clear();
    scratch.pv.resize(words, !0u64);
    scratch.mv.clear();
    scratch.mv.resize(words, 0);
    let last = words - 1;
    let score_bit = 1u64 << ((m - 1) & 63);
    let limit = limit as isize;
    let mut score = m as isize;
    for (j, c) in t.codes().enumerate() {
        let eqs = p.eq_by_code(c);
        let mut hin = 1i32;
        for ((pv, mv), &eq) in scratch.pv[..last]
            .iter_mut()
            .zip(scratch.mv[..last].iter_mut())
            .zip(&eqs[..last])
        {
            hin = step(pv, mv, eq, hin, 1 << 63);
        }
        score += step(
            &mut scratch.pv[last],
            &mut scratch.mv[last],
            eqs[last],
            hin,
            score_bit,
        ) as isize;
        // The bottom-row score changes by at most one per column, so the
        // final distance is at least `score - columns_remaining`.
        let remaining = (n - j - 1) as isize;
        if score - remaining > limit {
            return None;
        }
    }
    (score <= limit).then_some(score.max(0) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnasim_core::rng::seeded;
    use dnasim_core::Strand;

    fn p(text: &str) -> PackedStrand {
        PackedStrand::from(&text.parse::<Strand>().unwrap())
    }

    #[test]
    fn classic_cases() {
        assert_eq!(distance(&p("ACGT"), &p("AGGT")), 1);
        assert_eq!(distance(&p("ACGT"), &p("ACT")), 1);
        assert_eq!(distance(&p("ACGT"), &p("ACGGT")), 1);
        assert_eq!(distance(&p(""), &p("")), 0);
        assert_eq!(distance(&p("ACG"), &p("")), 3);
        assert_eq!(distance(&p(""), &p("ACG")), 3);
        assert_eq!(distance(&p("AAAA"), &p("TTTT")), 4);
    }

    #[test]
    fn symmetric_across_operand_order() {
        let mut rng = seeded(1);
        for (la, lb) in [(10, 200), (65, 64), (110, 110), (1, 129)] {
            let a = PackedStrand::from(&Strand::random(la, &mut rng));
            let b = PackedStrand::from(&Strand::random(lb, &mut rng));
            assert_eq!(distance(&a, &b), distance(&b, &a));
        }
    }

    #[test]
    fn matches_scalar_on_multi_word_strands() {
        let mut rng = seeded(2);
        for (la, lb) in [(63, 64), (64, 64), (64, 65), (110, 113), (128, 129), (250, 300)] {
            let a = Strand::random(la, &mut rng);
            let b = Strand::random(lb, &mut rng);
            let expect = crate::levenshtein(a.as_bases(), b.as_bases());
            assert_eq!(
                distance(&PackedStrand::from(&a), &PackedStrand::from(&b)),
                expect,
                "lengths ({la}, {lb})"
            );
        }
    }

    #[test]
    fn within_matches_semantics() {
        assert_eq!(within(&p("ACGT"), &p("AGGT"), 2), Some(1));
        assert_eq!(within(&p("AAAA"), &p("TTTT"), 3), None);
        assert_eq!(within(&p("AAAA"), &p("AAAATTTT"), 3), None); // length gap
        assert_eq!(within(&p("ACGT"), &p("ACGT"), 0), Some(0));
        assert_eq!(within(&p("ACGT"), &p("ACGA"), 0), None);
        assert_eq!(within(&p(""), &p("AC"), 2), Some(2));
    }

    #[test]
    fn scratch_reuse_across_sizes_is_clean() {
        let mut scratch = MyersScratch::new();
        let mut rng = seeded(3);
        let long_a = PackedStrand::from(&Strand::random(300, &mut rng));
        let long_b = PackedStrand::from(&Strand::random(280, &mut rng));
        let short_a = PackedStrand::from(&Strand::random(20, &mut rng));
        let short_b = PackedStrand::from(&Strand::random(25, &mut rng));
        let d_long = distance(&long_a, &long_b);
        let d_short = distance(&short_a, &short_b);
        // Interleave sizes: stale state from the long pair must not leak.
        assert_eq!(distance_with(&mut scratch, &long_a, &long_b), d_long);
        assert_eq!(distance_with(&mut scratch, &short_a, &short_b), d_short);
        assert_eq!(distance_with(&mut scratch, &long_a, &long_b), d_long);
        assert_eq!(within_with(&mut scratch, &short_a, &short_b, 30), Some(d_short));
    }
}
