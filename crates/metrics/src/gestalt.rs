//! Gestalt pattern matching (Ratcliff–Obershelp).
//!
//! Given two strings, the number of *matching characters* `K_m` is the
//! length of their longest common substring (LCS) plus, recursively, the
//! matching characters on either side of the LCS. The gestalt score is
//! `2·K_m / (|S1| + |S2|)`.
//!
//! Beyond the score, the algorithm yields the *matching blocks* — the
//! aligned portions of the two strings. In DNA-storage evaluation this
//! effectively re-aligns a noisy read (or a reconstructed strand) to its
//! reference, correcting the positional shift that insertions/deletions
//! cause: the reference positions *not* covered by any block are the
//! *sources* of misalignment, which is exactly what the paper's
//! "gestalt-aligned" error profiles plot.

use dnasim_core::Strand;

/// A maximal aligned run shared by two sequences.
///
/// `a[a_start .. a_start+len] == b[b_start .. b_start+len]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatchingBlock {
    /// Start of the run in the first sequence.
    pub a_start: usize,
    /// Start of the run in the second sequence.
    pub b_start: usize,
    /// Length of the run.
    pub len: usize,
}

/// Finds the longest common substring of `a[a_lo..a_hi]` and `b[b_lo..b_hi]`.
///
/// Ties break toward the earliest start in `a`, then in `b` (mirroring
/// difflib's deterministic choice).
#[allow(clippy::needless_range_loop)] // windowed DP over two subranges reads clearer with indices
fn longest_match<T: PartialEq>(
    a: &[T],
    b: &[T],
    a_lo: usize,
    a_hi: usize,
    b_lo: usize,
    b_hi: usize,
) -> MatchingBlock {
    let mut best = MatchingBlock {
        a_start: a_lo,
        b_start: b_lo,
        len: 0,
    };
    // lengths[j] = length of the common suffix ending at (i-1, j-1) from the
    // previous row of the DP.
    let width = b_hi - b_lo;
    let mut prev = vec![0usize; width + 1];
    let mut cur = vec![0usize; width + 1];
    for i in a_lo..a_hi {
        for j in b_lo..b_hi {
            let jj = j - b_lo + 1;
            if a[i] == b[j] {
                let run = prev[jj - 1] + 1;
                cur[jj] = run;
                if run > best.len {
                    best = MatchingBlock {
                        a_start: i + 1 - run,
                        b_start: j + 1 - run,
                        len: run,
                    };
                }
            } else {
                cur[jj] = 0;
            }
        }
        std::mem::swap(&mut prev, &mut cur);
        cur.iter_mut().for_each(|v| *v = 0);
    }
    best
}

/// Computes the matching blocks of two sequences under Ratcliff–Obershelp,
/// ordered by position.
///
/// # Examples
///
/// ```
/// use dnasim_metrics::matching_blocks;
///
/// // WIKIMEDIA vs WIKIMANIA: blocks "WIKIM", then "IA" (paper Fig. 3.1
/// // merges "WIKI" with the following "M" of "WIKIMEDIA"/"WIKIMANIA").
/// let blocks = matching_blocks(b"WIKIMEDIA", b"WIKIMANIA");
/// let matched: usize = blocks.iter().map(|m| m.len).sum();
/// assert_eq!(matched, 7);
/// ```
pub fn matching_blocks<T: PartialEq>(a: &[T], b: &[T]) -> Vec<MatchingBlock> {
    let mut blocks = Vec::new();
    // Explicit work stack of (a_lo, a_hi, b_lo, b_hi) subproblems.
    let mut stack = vec![(0usize, a.len(), 0usize, b.len())];
    while let Some((a_lo, a_hi, b_lo, b_hi)) = stack.pop() {
        if a_lo >= a_hi || b_lo >= b_hi {
            continue;
        }
        let m = longest_match(a, b, a_lo, a_hi, b_lo, b_hi);
        if m.len == 0 {
            continue;
        }
        blocks.push(m);
        stack.push((a_lo, m.a_start, b_lo, m.b_start));
        stack.push((m.a_start + m.len, a_hi, m.b_start + m.len, b_hi));
    }
    blocks.sort_by_key(|m| (m.a_start, m.b_start));
    blocks
}

/// The gestalt (Ratcliff–Obershelp) similarity score `2·K_m/(|a|+|b|)`,
/// in `[0, 1]`. Two empty sequences score `1.0`.
///
/// # Examples
///
/// ```
/// use dnasim_metrics::gestalt_score;
///
/// assert_eq!(gestalt_score(b"ACGT", b"ACGT"), 1.0);
/// assert_eq!(gestalt_score(b"AAAA", b"TTTT"), 0.0);
/// let s = gestalt_score(b"WIKIMEDIA", b"WIKIMANIA");
/// assert!((s - 14.0 / 18.0).abs() < 1e-12);
/// ```
pub fn gestalt_score<T: PartialEq>(a: &[T], b: &[T]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let matched: usize = matching_blocks(a, b).iter().map(|m| m.len).sum();
    2.0 * matched as f64 / (a.len() + b.len()) as f64
}

/// Reference positions *not* covered by any matching block when aligning
/// `read` against `reference` — the sources of misalignment.
///
/// For reference `AGTC` and read `ATC` the only gestalt-aligned error is
/// position 1 (the deleted `G`), even though Hamming comparison flags
/// positions 1–3.
///
/// # Examples
///
/// ```
/// use dnasim_metrics::gestalt_error_positions;
/// use dnasim_core::Strand;
///
/// let r: Strand = "AGTC".parse()?;
/// let c: Strand = "ATC".parse()?;
/// assert_eq!(gestalt_error_positions(&r, &c), vec![1]);
/// # Ok::<(), dnasim_core::ParseStrandError>(())
/// ```
pub fn gestalt_error_positions(reference: &Strand, read: &Strand) -> Vec<usize> {
    let blocks = matching_blocks(reference.as_bases(), read.as_bases());
    let mut covered = vec![false; reference.len()];
    for m in &blocks {
        for c in covered.iter_mut().skip(m.a_start).take(m.len) {
            *c = true;
        }
    }
    covered
        .iter()
        .enumerate()
        .filter_map(|(i, &c)| (!c).then_some(i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(text: &str) -> Strand {
        text.parse().unwrap()
    }

    #[test]
    fn identical_sequences_score_one() {
        assert_eq!(gestalt_score(b"GATTACA", b"GATTACA"), 1.0);
        let blocks = matching_blocks(b"GATTACA", b"GATTACA");
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].len, 7);
    }

    #[test]
    fn empty_sequences() {
        assert_eq!(gestalt_score::<u8>(&[], &[]), 1.0);
        assert_eq!(gestalt_score(b"ACGT", &[]), 0.0);
        assert!(matching_blocks(b"ACGT", &[]).is_empty());
    }

    #[test]
    fn disjoint_sequences_score_zero() {
        assert_eq!(gestalt_score(b"AAAA", b"TTTT"), 0.0);
    }

    #[test]
    fn wikimedia_example() {
        // From Ratcliff & Metzener / paper Fig 3.1: WIKIMEDIA vs WIKIMANIA.
        let blocks = matching_blocks(b"WIKIMEDIA", b"WIKIMANIA");
        let total: usize = blocks.iter().map(|m| m.len) .sum();
        assert_eq!(total, 7); // WIKIM + IA
        assert!((gestalt_score(b"WIKIMEDIA", b"WIKIMANIA") - 14.0 / 18.0).abs() < 1e-12);
    }

    #[test]
    fn blocks_are_consistent_runs() {
        let a = b"ACGTTACGGA";
        let b = b"ACTTACGTGA";
        for m in matching_blocks(a, b) {
            assert_eq!(
                &a[m.a_start..m.a_start + m.len],
                &b[m.b_start..m.b_start + m.len]
            );
        }
    }

    #[test]
    fn blocks_are_ordered_and_disjoint() {
        let a = b"ACGTTACGGATTC";
        let b = b"AGTTACCGATC";
        let blocks = matching_blocks(a, b);
        for w in blocks.windows(2) {
            assert!(w[0].a_start + w[0].len <= w[1].a_start);
            assert!(w[0].b_start + w[0].len <= w[1].b_start);
        }
    }

    #[test]
    fn score_is_symmetric() {
        let pairs: [(&[u8], &[u8]); 3] = [
            (b"ACGTACGT", b"AGTACG"),
            (b"GATTACA", b"GCAT"),
            (b"AAAA", b"AATA"),
        ];
        for (a, b) in pairs {
            assert!((gestalt_score(a, b) - gestalt_score(b, a)).abs() < 1e-12);
        }
    }

    #[test]
    fn paper_deletion_example() {
        // ref AGTC, read ATC: only position 1 (G) is a gestalt error.
        assert_eq!(gestalt_error_positions(&s("AGTC"), &s("ATC")), vec![1]);
    }

    #[test]
    fn substitution_is_single_gestalt_error() {
        assert_eq!(gestalt_error_positions(&s("ACGT"), &s("ATGT")), vec![1]);
    }

    #[test]
    fn insertion_causes_no_reference_gap() {
        // read has an extra base; every reference position still aligns.
        assert_eq!(gestalt_error_positions(&s("ACGT"), &s("ACGGT")), Vec::<usize>::new());
    }

    #[test]
    fn identity_has_no_errors() {
        assert!(gestalt_error_positions(&s("ACGTACGT"), &s("ACGTACGT")).is_empty());
    }

    #[test]
    fn gestalt_errors_never_exceed_hamming_errors() {
        use crate::hamming::hamming;
        let pairs = [("AGTC", "ATC"), ("ACGTACGT", "ACTTACG"), ("AAAA", "TT")];
        for (a, b) in pairs {
            let g = gestalt_error_positions(&s(a), &s(b)).len();
            let h = hamming(&s(a), &s(b));
            assert!(g <= h, "{a} vs {b}: gestalt {g} > hamming {h}");
        }
    }
}
