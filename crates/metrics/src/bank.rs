//! Multi-pattern Myers tier: one text stream advances up to
//! [`MAX_LANES`] packed patterns per column.
//!
//! The single-pattern kernel in [`myers`](crate::myers) already processes
//! 64 DP cells per machine word, but cluster assignment compares one read
//! against *many* candidate representatives, paying the whole per-column
//! cost once per candidate. A [`PatternBank`] interleaves the Eq-mask
//! planes of 4–8 packed patterns struct-of-arrays style (`eq[code][word ·
//! pad + lane]`), so a single pass over the text advances every lane per
//! iteration:
//!
//! * on x86-64 with AVX2, four 64-bit lanes ride in one `__m256i` and the
//!   Myers recurrence runs on whole vectors (`_mm256_add_epi64` is
//!   per-lane, exactly the no-cross-lane-carry addition the algorithm
//!   needs);
//! * on aarch64, the NEON backend does the same two lanes per `uint64x2_t`;
//! * everywhere else — and whenever SIMD is disabled — a portable
//!   multi-lane scalar fallback executes the identical per-lane integer
//!   recurrence, so results are bit-identical on every target.
//!
//! Backend selection happens once at runtime ([`set_simd_mode`],
//! `DNASIM_SIMD=off`, or feature detection via
//! `is_x86_feature_detected!` / `is_aarch64_feature_detected!`); all
//! backends are exact, so the choice can never change an answer — the
//! differential suite (`myers_differential.rs`) pins every backend to the
//! scalar DP oracle.
//!
//! Banks require all lanes to share a word count (`ceil(len/64)`); callers
//! group candidates by [`PackedStrand::words`] and fall back to the
//! single-pattern kernel for singleton groups. Lanes may differ in exact
//! length within the shared word count: score extraction uses a per-lane
//! score bit, and in bit-parallel Myers information only flows from low
//! bits to high bits within a column, so a shorter lane's garbage rows
//! above its last row can never reach its score bit.
//!
//! # Examples
//!
//! ```
//! use dnasim_core::{PackedStrand, Strand};
//! use dnasim_metrics::bank::{bank_within_with, BankScratch, PatternBank};
//!
//! let text = PackedStrand::from(&"ACGTACGT".parse::<Strand>()?);
//! let p1 = PackedStrand::from(&"ACGTACGT".parse::<Strand>()?);
//! let p2 = PackedStrand::from(&"ACGAACGT".parse::<Strand>()?);
//! let bank = PatternBank::new(&[&p1, &p2]).expect("same word count");
//! let mut out = Vec::new();
//! bank_within_with(&mut BankScratch::new(), &bank, &text, 1, &mut out);
//! assert_eq!(out, vec![Some(0), Some(1)]);
//! # Ok::<(), dnasim_core::ParseStrandError>(())
//! ```

#![deny(unsafe_op_in_unsafe_fn)]

use std::sync::atomic::{AtomicU8, Ordering};

use dnasim_core::PackedStrand;

/// Maximum number of patterns one bank can hold.
pub const MAX_LANES: usize = 8;

/// SIMD policy for the multi-pattern tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdMode {
    /// Use the best backend the CPU supports (AVX2, NEON, or scalar).
    Auto,
    /// Force the portable multi-lane scalar fallback.
    Off,
}

const TIER_UNRESOLVED: u8 = 0;
const TIER_SCALAR: u8 = 1;
const TIER_AVX2: u8 = 2;
const TIER_NEON: u8 = 3;

/// Resolved backend, cached after the first kernel call (or an explicit
/// [`set_simd_mode`]).
static TIER: AtomicU8 = AtomicU8::new(TIER_UNRESOLVED);

fn resolve(mode: SimdMode) -> u8 {
    match mode {
        SimdMode::Off => TIER_SCALAR,
        SimdMode::Auto => {
            #[cfg(target_arch = "x86_64")]
            {
                if std::arch::is_x86_feature_detected!("avx2") {
                    return TIER_AVX2;
                }
            }
            #[cfg(target_arch = "aarch64")]
            {
                if std::arch::is_aarch64_feature_detected!("neon") {
                    return TIER_NEON;
                }
            }
            TIER_SCALAR
        }
    }
}

/// Overrides the runtime backend choice (the CLI's `--simd auto|off`).
///
/// Every backend is exact, so flipping the mode mid-process can never
/// change a distance — only throughput.
pub fn set_simd_mode(mode: SimdMode) {
    TIER.store(resolve(mode), Ordering::Relaxed);
}

/// The active backend, resolving `DNASIM_SIMD` and feature detection on
/// first use. `DNASIM_SIMD=off|0|scalar` forces the fallback; any other
/// value (or unset) means auto-detect.
fn active_tier() -> u8 {
    let tier = TIER.load(Ordering::Relaxed);
    if tier != TIER_UNRESOLVED {
        return tier;
    }
    let mode = match std::env::var("DNASIM_SIMD") {
        Ok(v) if v == "off" || v == "0" || v == "scalar" => SimdMode::Off,
        _ => SimdMode::Auto,
    };
    let tier = resolve(mode);
    TIER.store(tier, Ordering::Relaxed);
    tier
}

/// Human-readable name of the active backend (`"avx2"`, `"neon"`, or
/// `"scalar"`), for diagnostics and CLI counter lines.
pub fn simd_tier_name() -> &'static str {
    match active_tier() {
        TIER_AVX2 => "avx2",
        TIER_NEON => "neon",
        _ => "scalar",
    }
}

/// A struct-of-arrays bank of up to [`MAX_LANES`] packed patterns sharing
/// one word count.
///
/// Lane `l` of word `w` for base code `c` lives at `eq[c][w · pad + l]`,
/// where `pad` rounds the lane count up to the backend vector width (4 for
/// ≤4 lanes, 8 otherwise). Padding lanes carry zero Eq-masks and are never
/// reported.
#[derive(Debug, Clone)]
pub struct PatternBank {
    pub(crate) lanes: usize,
    pub(crate) pad: usize,
    pub(crate) words: usize,
    pub(crate) lens: [usize; MAX_LANES],
    /// Per-lane score-bit shift: `(len − 1) & 63` (0 for padding lanes).
    pub(crate) shifts: [u64; MAX_LANES],
    pub(crate) max_len: usize,
    /// Interleaved Eq-mask planes, one `Vec` per 2-bit base code.
    pub(crate) eq: [Vec<u64>; 4],
}

impl PatternBank {
    /// Builds a bank from 1–[`MAX_LANES`] patterns.
    ///
    /// Returns `None` when the slice is empty or oversized, when the
    /// patterns disagree on [`words`](PackedStrand::words), or when any
    /// pattern is empty (empty patterns short-circuit to trivial answers
    /// and never reach a kernel).
    pub fn new(patterns: &[&PackedStrand]) -> Option<PatternBank> {
        let lanes = patterns.len();
        if lanes == 0 || lanes > MAX_LANES {
            return None;
        }
        let words = patterns[0].words();
        if words == 0 || patterns.iter().any(|p| p.words() != words) {
            return None;
        }
        let pad = if lanes <= 4 { 4 } else { MAX_LANES };
        let mut lens = [0usize; MAX_LANES];
        let mut shifts = [0u64; MAX_LANES];
        let mut max_len = 0usize;
        for (l, p) in patterns.iter().enumerate() {
            lens[l] = p.len();
            shifts[l] = ((p.len() - 1) & 63) as u64;
            max_len = max_len.max(p.len());
        }
        let mut eq = [
            vec![0u64; words * pad],
            vec![0u64; words * pad],
            vec![0u64; words * pad],
            vec![0u64; words * pad],
        ];
        for (c, plane) in eq.iter_mut().enumerate() {
            for (l, p) in patterns.iter().enumerate() {
                let masks = p.eq_by_code(c as u8);
                for (w, &mask) in masks.iter().enumerate() {
                    plane[w * pad + l] = mask;
                }
            }
        }
        Some(PatternBank {
            lanes,
            pad,
            words,
            lens,
            shifts,
            max_len,
            eq,
        })
    }

    /// Number of live pattern lanes.
    #[inline]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Shared 64-base word count of every lane.
    #[inline]
    pub fn words(&self) -> usize {
        self.words
    }

    /// Length of the pattern in `lane` (0 for out-of-range lanes).
    #[inline]
    pub fn lane_len(&self, lane: usize) -> usize {
        if lane < self.lanes {
            self.lens[lane]
        } else {
            0
        }
    }
}

/// Reusable delta-vector buffers for the bank kernels (`Pv`/`Mv`, one pair
/// per word × padded lane). Grows on demand; one scratch serves banks of
/// any shape.
#[derive(Debug, Clone, Default)]
pub struct BankScratch {
    pub(crate) pv: Vec<u64>,
    pub(crate) mv: Vec<u64>,
}

impl BankScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> BankScratch {
        BankScratch::default()
    }

    pub(crate) fn reset(&mut self, cells: usize) {
        self.pv.clear();
        self.pv.resize(cells, !0u64);
        self.mv.clear();
        self.mv.resize(cells, 0);
    }
}

/// Banded multi-pattern distance: `out[l]` is `Some(d)` with the exact
/// Levenshtein distance between `text` and lane `l`'s pattern when
/// `d ≤ limit`, `None` otherwise.
///
/// Dispatches to the active SIMD backend; all backends compute the same
/// per-lane integer recurrence, so the output is identical everywhere.
/// Lanes whose length gap with the text already exceeds the limit are
/// rejected in O(1), and the column scan abandons early once every lane's
/// score lower bound proves the limit unreachable.
pub fn bank_within_with(
    scratch: &mut BankScratch,
    bank: &PatternBank,
    text: &PackedStrand,
    limit: usize,
    out: &mut Vec<Option<usize>>,
) {
    let n = text.len();
    let mut alive: u32 = 0;
    for l in 0..bank.lanes {
        if bank.lens[l].abs_diff(n) <= limit {
            alive |= 1 << l;
        }
    }
    let mut scores = [0i64; MAX_LANES];
    if alive != 0 {
        // Clamp the limit so the early-abandon arithmetic stays in range;
        // no distance can exceed n + max_len, so the clamp never changes
        // an accept/reject decision.
        let eff = limit.min(n + bank.max_len) as i64;
        run(bank, scratch, text, eff, &mut scores, &mut alive);
    }
    out.clear();
    for (l, &s) in scores.iter().enumerate().take(bank.lanes) {
        let d = s.max(0) as usize;
        if alive & (1 << l) != 0 && d <= limit {
            out.push(Some(d));
        } else {
            out.push(None);
        }
    }
}

/// Exact multi-pattern distances: `out[l]` is the Levenshtein distance
/// between `text` and lane `l`'s pattern. Same kernels as
/// [`bank_within_with`] with an unreachable band, so no lane ever abandons.
pub fn bank_distances_with(
    scratch: &mut BankScratch,
    bank: &PatternBank,
    text: &PackedStrand,
    out: &mut Vec<usize>,
) {
    let n = text.len();
    let mut alive: u32 = (1 << bank.lanes) - 1;
    let mut scores = [0i64; MAX_LANES];
    // n + max_len bounds every possible distance, so nothing abandons.
    let eff = (n + bank.max_len) as i64;
    run(bank, scratch, text, eff, &mut scores, &mut alive);
    out.clear();
    out.extend(scores[..bank.lanes].iter().map(|&s| s.max(0) as usize));
}

/// [`bank_within_with`] pinned to the portable scalar backend, regardless
/// of the runtime SIMD mode. Public so the differential suite can compare
/// the dispatching path against the fallback on the same inputs.
pub fn bank_within_scalar_with(
    scratch: &mut BankScratch,
    bank: &PatternBank,
    text: &PackedStrand,
    limit: usize,
    out: &mut Vec<Option<usize>>,
) {
    let n = text.len();
    let mut alive: u32 = 0;
    for l in 0..bank.lanes {
        if bank.lens[l].abs_diff(n) <= limit {
            alive |= 1 << l;
        }
    }
    let mut scores = [0i64; MAX_LANES];
    if alive != 0 {
        let eff = limit.min(n + bank.max_len) as i64;
        run_scalar(bank, scratch, text, eff, &mut scores, &mut alive);
    }
    out.clear();
    for (l, &s) in scores.iter().enumerate().take(bank.lanes) {
        let d = s.max(0) as usize;
        if alive & (1 << l) != 0 && d <= limit {
            out.push(Some(d));
        } else {
            out.push(None);
        }
    }
}

/// Dispatches one bank scan to the active backend.
fn run(
    bank: &PatternBank,
    scratch: &mut BankScratch,
    text: &PackedStrand,
    eff_limit: i64,
    scores: &mut [i64; MAX_LANES],
    alive: &mut u32,
) {
    match active_tier() {
        #[cfg(target_arch = "x86_64")]
        TIER_AVX2 => {
            // SAFETY: TIER_AVX2 is only ever stored after
            // `is_x86_feature_detected!("avx2")` returned true, so the
            // target-feature contract of `run_avx2` holds.
            unsafe {
                crate::bank_simd::run_avx2(bank, scratch, text, eff_limit, scores, alive);
            }
        }
        #[cfg(target_arch = "aarch64")]
        TIER_NEON => {
            // SAFETY: TIER_NEON is only ever stored after
            // `is_aarch64_feature_detected!("neon")` returned true.
            unsafe {
                crate::bank_simd::run_neon(bank, scratch, text, eff_limit, scores, alive);
            }
        }
        _ => run_scalar(bank, scratch, text, eff_limit, scores, alive),
    }
}

/// Portable multi-lane backend: the exact Myers blocked recurrence, one
/// scalar step per live lane per word, over the same interleaved layout
/// the SIMD backends consume.
fn run_scalar(
    bank: &PatternBank,
    scratch: &mut BankScratch,
    text: &PackedStrand,
    eff_limit: i64,
    scores: &mut [i64; MAX_LANES],
    alive: &mut u32,
) {
    let (words, pad, lanes) = (bank.words, bank.pad, bank.lanes);
    scratch.reset(words * pad);
    for (s, &len) in scores.iter_mut().zip(bank.lens.iter()).take(lanes) {
        *s = len as i64;
    }
    let n = text.len();
    let last = words - 1;
    for (j, c) in text.codes().enumerate() {
        let plane = &bank.eq[(c & 3) as usize];
        let mut hp = [1u64; MAX_LANES];
        let mut hn = [0u64; MAX_LANES];
        for w in 0..words {
            let base = w * pad;
            for l in 0..lanes {
                let idx = base + l;
                let pv = scratch.pv[idx];
                let mv = scratch.mv[idx];
                let eq0 = plane[idx];
                let xv = eq0 | mv;
                let eq = eq0 | hn[l];
                let xh = (((eq & pv).wrapping_add(pv)) ^ pv) | eq;
                let ph = mv | !(xh | pv);
                let mh = pv & xh;
                if w == last {
                    scores[l] += ((ph >> bank.shifts[l]) & 1) as i64
                        - ((mh >> bank.shifts[l]) & 1) as i64;
                }
                let hout_p = ph >> 63;
                let hout_n = mh >> 63;
                let ph = (ph << 1) | hp[l];
                let mh = (mh << 1) | hn[l];
                scratch.pv[idx] = mh | !(xv | ph);
                scratch.mv[idx] = ph & xv;
                hp[l] = hout_p;
                hn[l] = hout_n;
            }
        }
        // The bottom-row score changes by at most one per column, so a
        // lane whose score minus the remaining columns exceeds the limit
        // can never come back.
        let remaining = (n - j - 1) as i64;
        for (l, &s) in scores.iter().enumerate().take(lanes) {
            if *alive & (1 << l) != 0 && s - remaining > eff_limit {
                *alive &= !(1 << l);
            }
        }
        if *alive == 0 {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnasim_core::rng::seeded;
    use dnasim_core::Strand;

    fn p(text: &str) -> PackedStrand {
        PackedStrand::from(&text.parse::<Strand>().unwrap())
    }

    #[test]
    fn bank_rejects_bad_shapes() {
        let a = p("ACGT");
        let long = p(&"AC".repeat(40));
        assert!(PatternBank::new(&[]).is_none());
        assert!(PatternBank::new(&[&a, &long]).is_none(), "mixed word counts");
        assert!(PatternBank::new(&[&p("")]).is_none(), "empty pattern");
        let nine: Vec<&PackedStrand> = std::iter::repeat_n(&a, 9).collect();
        assert!(PatternBank::new(&nine).is_none(), "too many lanes");
    }

    #[test]
    fn bank_matches_single_pattern_kernel() {
        let mut rng = seeded(1);
        let text = PackedStrand::from(&Strand::random(110, &mut rng));
        let patterns: Vec<PackedStrand> = (0..5)
            .map(|_| PackedStrand::from(&Strand::random(110, &mut rng)))
            .collect();
        let refs: Vec<&PackedStrand> = patterns.iter().collect();
        let bank = PatternBank::new(&refs).unwrap();
        let mut out = Vec::new();
        for limit in [0usize, 10, 30, 90, 200] {
            bank_within_with(&mut BankScratch::new(), &bank, &text, limit, &mut out);
            for (l, pattern) in patterns.iter().enumerate() {
                assert_eq!(
                    out[l],
                    crate::myers::within(pattern, &text, limit),
                    "lane {l} limit {limit}"
                );
            }
        }
    }

    #[test]
    fn distances_match_across_mixed_lengths_in_one_word_band() {
        let mut rng = seeded(2);
        // All lengths in (64, 128] share words == 2.
        let text = PackedStrand::from(&Strand::random(100, &mut rng));
        let patterns: Vec<PackedStrand> = [65usize, 77, 100, 127, 128]
            .iter()
            .map(|&len| PackedStrand::from(&Strand::random(len, &mut rng)))
            .collect();
        let refs: Vec<&PackedStrand> = patterns.iter().collect();
        let bank = PatternBank::new(&refs).unwrap();
        let mut out = Vec::new();
        bank_distances_with(&mut BankScratch::new(), &bank, &text, &mut out);
        for (l, pattern) in patterns.iter().enumerate() {
            assert_eq!(out[l], crate::myers::distance(pattern, &text), "lane {l}");
        }
    }

    #[test]
    fn scalar_backend_equals_dispatch() {
        let mut rng = seeded(3);
        let text = PackedStrand::from(&Strand::random(90, &mut rng));
        let patterns: Vec<PackedStrand> = (0..MAX_LANES)
            .map(|_| PackedStrand::from(&Strand::random(80, &mut rng)))
            .collect();
        let refs: Vec<&PackedStrand> = patterns.iter().collect();
        let bank = PatternBank::new(&refs).unwrap();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        bank_within_with(&mut BankScratch::new(), &bank, &text, 40, &mut a);
        bank_within_scalar_with(&mut BankScratch::new(), &bank, &text, 40, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_text_scores_pattern_lengths() {
        let patterns = [p("ACG"), p("ACGTACGT")];
        let refs: Vec<&PackedStrand> = patterns.iter().collect();
        let bank = PatternBank::new(&refs).unwrap();
        let mut out = Vec::new();
        bank_within_with(&mut BankScratch::new(), &bank, &p(""), 4, &mut out);
        assert_eq!(out, vec![Some(3), None]);
        let mut dists = Vec::new();
        bank_distances_with(&mut BankScratch::new(), &bank, &p(""), &mut dists);
        assert_eq!(dists, vec![3, 8]);
    }

    #[test]
    fn scratch_reuse_across_bank_shapes_is_clean() {
        let mut rng = seeded(4);
        let mut scratch = BankScratch::new();
        let mut out = Vec::new();
        for (lanes, len) in [(8usize, 200usize), (2, 20), (5, 110), (1, 64)] {
            let text = PackedStrand::from(&Strand::random(len, &mut rng));
            let patterns: Vec<PackedStrand> = (0..lanes)
                .map(|_| PackedStrand::from(&Strand::random(len.max(1), &mut rng)))
                .collect();
            let refs: Vec<&PackedStrand> = patterns.iter().collect();
            let bank = PatternBank::new(&refs).unwrap();
            bank_within_with(&mut scratch, &bank, &text, 60, &mut out);
            for (l, pattern) in patterns.iter().enumerate() {
                assert_eq!(out[l], crate::myers::within(pattern, &text, 60));
            }
        }
    }

    #[test]
    fn tier_name_is_one_of_the_known_backends() {
        assert!(["avx2", "neon", "scalar"].contains(&simd_tier_name()));
    }
}
