//! Q-gram counting lower bound on edit distance (the error-ball prefilter).
//!
//! A single edit (substitution, insertion, or deletion) changes or shifts
//! at most `q` of a strand's overlapping q-grams, so two strands within
//! edit distance `d` must share — as multisets — at least
//! `max(|a|, |b|) − d·q` grams, where `|x|` is the number of q-grams in
//! strand `x` (Ukkonen's q-gram distance bound; the same window-damage
//! argument behind the IDS error-ball ball-size bounds of Abbasian et
//! al.). Contrapositively, a shared-gram deficit forces
//!
//! ```text
//! distance(a, b) ≥ ⌈(max(|a|, |b|) − shared(a, b)) / q⌉
//! ```
//!
//! Clustering uses this as a *prefilter*: a [`QGramProfile`] is built once
//! per read or representative (one pass plus a sort of small integers),
//! and candidates whose lower bound already exceeds the distance
//! threshold are dropped before any Myers kernel runs. Comparing two
//! profiles is a sorted-multiset merge — a few hundred integer compares
//! versus thousands of word operations for a kernel call. The bound is
//! conservative, never spurious: a pruned candidate provably cannot land
//! within the threshold, so filtering can never change cluster
//! membership (asserted by the filtered-vs-unfiltered differential in
//! `dnasim-cluster`).
//!
//! # Examples
//!
//! ```
//! use dnasim_core::Strand;
//! use dnasim_metrics::qgram::QGramProfile;
//!
//! let a = QGramProfile::new(&"ACGTACGTACGT".parse::<Strand>()?, 3);
//! let b = QGramProfile::new(&"TTTTTTTTTTTT".parse::<Strand>()?, 3);
//! assert!(a.distance_lower_bound(&b) >= 1);
//! assert_eq!(a.distance_lower_bound(&a), 0);
//! # Ok::<(), dnasim_core::ParseStrandError>(())
//! ```

use dnasim_core::Strand;

/// The sorted q-gram multiset of one strand, 2-bit packed (`q ≤ 8` keeps
/// every gram in a `u16`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QGramProfile {
    q: usize,
    /// Sorted 2-bit-packed gram codes, duplicates retained (multiset).
    grams: Vec<u16>,
}

impl QGramProfile {
    /// Profiles `strand` with gram length `q` (clamped to `1..=8`).
    ///
    /// A strand shorter than `q` has no grams; its profile yields a lower
    /// bound of 0 against everything and therefore never prunes.
    pub fn new(strand: &Strand, q: usize) -> QGramProfile {
        let q = q.clamp(1, 8);
        let bases = strand.as_bases();
        let mut grams: Vec<u16> = if bases.len() < q {
            Vec::new()
        } else {
            bases
                .windows(q)
                .map(|w| {
                    let mut code: u16 = 0;
                    for &b in w {
                        code = (code << 2) | b.index() as u16;
                    }
                    code
                })
                .collect()
        };
        grams.sort_unstable();
        QGramProfile { q, grams }
    }

    /// The gram length this profile was built with.
    #[inline]
    pub fn q(&self) -> usize {
        self.q
    }

    /// Number of q-grams in the profiled strand (`len − q + 1`, or 0).
    #[inline]
    pub fn gram_count(&self) -> usize {
        self.grams.len()
    }

    /// Multiset intersection size with `other` (sorted-merge scan).
    pub fn shared_grams(&self, other: &QGramProfile) -> usize {
        let (a, b) = (&self.grams, &other.grams);
        let (mut i, mut j, mut shared) = (0usize, 0usize, 0usize);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    shared += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        shared
    }

    /// Lower bound on the edit distance between the two profiled strands:
    /// `⌈(max(|a|, |b|) − shared) / q⌉`.
    ///
    /// Returns 0 (no information) when the profiles were built with
    /// different `q`, so mismatched profiles degrade to "never prune"
    /// rather than to an unsound bound.
    pub fn distance_lower_bound(&self, other: &QGramProfile) -> usize {
        if self.q != other.q {
            return 0;
        }
        let most = self.grams.len().max(other.grams.len());
        let deficit = most - self.shared_grams(other);
        deficit.div_ceil(self.q)
    }

}

/// Load-once, query-many histogram for the hot-path variant of
/// [`QGramProfile::distance_lower_bound`].
///
/// The sorted-merge scan in `distance_lower_bound` pays a data-dependent
/// branch per gram on *both* sides of every pair. The clustering prefilter
/// instead [`load`](QGramScratch::load)s one profile's grams into a dense
/// `4^q`-entry counting array once, then [`bound`](QGramScratch::bound)s
/// any number of candidate profiles against it — each query is a read-only
/// run-length scan of just the candidate's gram list, so comparing one
/// read against many representatives costs `O(|candidate|)` per pair
/// instead of `O(|read| + |candidate|)` plus a histogram rebuild. The
/// bound is identical to the merge version.
#[derive(Debug, Default)]
pub struct QGramScratch {
    /// Dense gram counts of the loaded profile (all-zero outside it).
    counts: Vec<u16>,
    /// Gram list of the loaded profile, kept for the sparse reset on the
    /// next load.
    loaded: Vec<u16>,
    /// `q` of the loaded profile (0 = nothing loaded: every bound is 0).
    loaded_q: usize,
    /// Gram count of the loaded profile.
    loaded_count: usize,
}

impl QGramScratch {
    /// An empty scratch; the first [`load`](QGramScratch::load) sizes it.
    pub fn new() -> QGramScratch {
        QGramScratch::default()
    }

    /// Loads `profile` into the histogram, replacing any previous load.
    ///
    /// Only the entries set by the previous load are re-zeroed, so a load
    /// costs one pass over each profile's gram list regardless of `4^q`.
    pub fn load(&mut self, profile: &QGramProfile) {
        for &g in &self.loaded {
            self.counts[g as usize] = 0;
        }
        // Gram codes are 2q bits by construction, so they index `space`.
        let space = 1usize << (2 * profile.q);
        if self.counts.len() < space {
            self.counts.resize(space, 0);
        }
        for &g in &profile.grams {
            self.counts[g as usize] += 1;
        }
        self.loaded.clear();
        self.loaded.extend_from_slice(&profile.grams);
        self.loaded_q = profile.q;
        self.loaded_count = profile.grams.len();
    }

    /// Lower bound on the edit distance between the loaded strand and
    /// `other` — exactly [`QGramProfile::distance_lower_bound`], but
    /// read-only, so one load serves any number of candidate queries.
    ///
    /// Returns 0 (never prunes) when nothing is loaded or the `q`s differ.
    pub fn bound(&self, other: &QGramProfile) -> usize {
        if self.loaded_q != other.q {
            return 0;
        }
        // `other.grams` is sorted, so equal grams form runs; each run of
        // length r contributes min(r, loaded count) to the multiset
        // intersection.
        let grams = &other.grams;
        let mut shared = 0usize;
        let mut i = 0usize;
        while i < grams.len() {
            let g = grams[i];
            let mut run = 1usize;
            while i + run < grams.len() && grams[i + run] == g {
                run += 1;
            }
            shared += run.min(self.counts[g as usize] as usize);
            i += run;
        }
        let most = self.loaded_count.max(grams.len());
        (most - shared).div_ceil(other.q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnasim_core::rng::{seeded, Rng};

    fn profile(text: &str, q: usize) -> QGramProfile {
        QGramProfile::new(&text.parse::<Strand>().unwrap(), q)
    }

    #[test]
    fn identical_strands_have_zero_bound() {
        let p = profile("ACGTACGTAC", 4);
        assert_eq!(p.distance_lower_bound(&p), 0);
        assert_eq!(p.shared_grams(&p), p.gram_count());
    }

    #[test]
    fn disjoint_alphabets_give_strong_bound() {
        let a = profile(&"A".repeat(40), 4);
        let b = profile(&"T".repeat(40), 4);
        assert_eq!(a.shared_grams(&b), 0);
        // 37 grams, zero shared, q = 4 → bound ⌈37/4⌉ = 10.
        assert_eq!(a.distance_lower_bound(&b), 10);
    }

    #[test]
    fn short_strands_never_prune() {
        let a = profile("AC", 5);
        let b = profile(&"ACGT".repeat(10), 5);
        // `a` has no grams: deficit is b's full gram count.
        assert_eq!(a.gram_count(), 0);
        assert!(a.distance_lower_bound(&b) <= 40);
        let c = profile("GT", 5);
        assert_eq!(a.distance_lower_bound(&c), 0);
    }

    #[test]
    fn mismatched_q_yields_no_information() {
        let a = profile("ACGTACGT", 3);
        let b = profile("TTTTTTTT", 4);
        assert_eq!(a.distance_lower_bound(&b), 0);
    }

    #[test]
    fn bound_never_exceeds_true_distance_randomised() {
        let mut rng = seeded(11);
        for _ in 0..200 {
            let len_a = 1 + (rng.next_u64() % 120) as usize;
            let len_b = 1 + (rng.next_u64() % 120) as usize;
            let a = Strand::random(len_a, &mut rng);
            let b = Strand::random(len_b, &mut rng);
            for q in [1usize, 3, 5, 8] {
                let pa = QGramProfile::new(&a, q);
                let pb = QGramProfile::new(&b, q);
                let bound = pa.distance_lower_bound(&pb);
                let true_d = crate::levenshtein(a.as_bases(), b.as_bases());
                assert!(
                    bound <= true_d,
                    "unsound bound {bound} > distance {true_d} (q={q}, a={a}, b={b})"
                );
                assert_eq!(bound, pb.distance_lower_bound(&pa), "bound is symmetric");
            }
        }
    }

    #[test]
    fn scratch_bound_equals_merge_bound() {
        let mut rng = seeded(23);
        let mut scratch = QGramScratch::new();
        assert_eq!(scratch.bound(&profile("ACGTACGT", 3)), 0, "unloaded scratch never prunes");
        for _ in 0..300 {
            let a = Strand::random(1 + (rng.next_u64() % 150) as usize, &mut rng);
            let b = Strand::random(1 + (rng.next_u64() % 150) as usize, &mut rng);
            for q in [1usize, 2, 5, 8] {
                let pa = QGramProfile::new(&a, q);
                let pb = QGramProfile::new(&b, q);
                // The scratch is reusable in both directions and across
                // mixed q sizes (the sparse reset really restores zero).
                scratch.load(&pa);
                assert_eq!(scratch.bound(&pb), pa.distance_lower_bound(&pb));
                scratch.load(&pb);
                assert_eq!(scratch.bound(&pa), pb.distance_lower_bound(&pa));
            }
        }
        // Mismatched q still degrades to "no information".
        let p3 = QGramProfile::new(&Strand::random(40, &mut rng), 3);
        let p4 = QGramProfile::new(&Strand::random(40, &mut rng), 4);
        scratch.load(&p3);
        assert_eq!(scratch.bound(&p4), 0);
    }

    #[test]
    fn single_edit_bound_is_at_most_one() {
        // One substitution damages ≤ q grams, so the bound must be ≤ 1.
        let a = profile("ACGTACGTACGTACGT", 4);
        let b = profile("ACGTACTTACGTACGT", 4);
        assert!(a.distance_lower_bound(&b) <= 1);
    }
}
