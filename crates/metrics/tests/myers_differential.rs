//! Differential tests: the Myers bit-parallel kernels against the scalar
//! DP oracle, plus the `PackedStrand` representation properties the
//! kernels rely on.
//!
//! This is the workspace's correctness contract for the fast path
//! (DESIGN.md §10): the scalar implementation in
//! `dnasim_metrics::levenshtein` is the oracle, and every kernel must
//! agree with it bit-for-bit — full distances, banded accept/reject
//! decisions, and the exact distances the band reports.

use dnasim_testkit::prelude::*;

use dnasim_core::{Base, PackedStrand, Strand};
use dnasim_metrics::{levenshtein, levenshtein_within, myers, MyersScratch};

fn strand(len: std::ops::Range<usize>) -> impl Strategy<Value = Strand> {
    dnasim_testkit::collection::vec(0usize..4, len).prop_map(|idx| {
        idx.into_iter()
            .map(|i| Base::from_index(i).expect("index < 4"))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The headline contract: Myers' full distance equals the scalar DP on
    /// arbitrary strand pairs, spanning one-word, boundary and multi-word
    /// pattern lengths.
    #[test]
    fn myers_distance_matches_scalar(a in strand(0..300), b in strand(0..300)) {
        let expect = levenshtein(a.as_bases(), b.as_bases());
        let (pa, pb) = (PackedStrand::from(&a), PackedStrand::from(&b));
        prop_assert_eq!(myers::distance(&pa, &pb), expect);
    }

    /// The banded kernel mirrors the scalar band exactly: same Some/None
    /// decision, same reported distance.
    #[test]
    fn myers_within_matches_scalar_band(
        a in strand(0..300),
        b in strand(0..300),
        limit in 0usize..50,
    ) {
        let expect = levenshtein_within(a.as_bases(), b.as_bases(), limit);
        let (pa, pb) = (PackedStrand::from(&a), PackedStrand::from(&b));
        prop_assert_eq!(myers::within(&pa, &pb, limit), expect);
    }

    /// Distance is symmetric regardless of which operand the kernel picks
    /// as pattern.
    #[test]
    fn myers_distance_is_symmetric(a in strand(0..200), b in strand(0..200)) {
        let (pa, pb) = (PackedStrand::from(&a), PackedStrand::from(&b));
        prop_assert_eq!(myers::distance(&pa, &pb), myers::distance(&pb, &pa));
    }

    /// A reused scratch never leaks state between calls of different
    /// sizes: interleaving pairs through one scratch reproduces the
    /// fresh-scratch answers.
    #[test]
    fn scratch_reuse_is_stateless(
        pairs in dnasim_testkit::collection::vec((strand(0..180), strand(0..180)), 1..6),
        limit in 0usize..40,
    ) {
        let mut scratch = MyersScratch::new();
        for (a, b) in &pairs {
            let (pa, pb) = (PackedStrand::from(a), PackedStrand::from(b));
            prop_assert_eq!(
                myers::distance_with(&mut scratch, &pa, &pb),
                myers::distance(&pa, &pb)
            );
            prop_assert_eq!(
                myers::within_with(&mut scratch, &pa, &pb, limit),
                myers::within(&pa, &pb, limit)
            );
        }
    }

    /// Packing is lossless: PackedStrand round-trips to the identical
    /// strand, with matching length and per-position bases.
    #[test]
    fn packed_round_trip_is_lossless(a in strand(0..300)) {
        let packed = PackedStrand::from(&a);
        prop_assert_eq!(packed.len(), a.len());
        let back = Strand::from(&packed);
        prop_assert_eq!(&back, &a);
        for (i, b) in a.iter().enumerate() {
            prop_assert_eq!(packed.get(i), Some(b));
        }
        prop_assert_eq!(packed.get(a.len()), None);
    }

    /// The four Eq-mask planes partition the positions: each position is
    /// set in exactly the plane of its base and cleared in the other
    /// three, and padding bits above the length stay zero.
    #[test]
    fn eq_masks_partition_positions(a in strand(0..300)) {
        let packed = PackedStrand::from(&a);
        for (i, base) in a.iter().enumerate() {
            let (word, bit) = (i / 64, 1u64 << (i % 64));
            for candidate in Base::ALL {
                let set = packed.eq_masks(candidate)[word] & bit != 0;
                prop_assert_eq!(set, candidate == base, "pos {} base {:?}", i, candidate);
            }
        }
        // Padding bits never vote in the kernel.
        if a.len() % 64 != 0 && !a.is_empty() {
            let pad = !0u64 << (a.len() % 64);
            for candidate in Base::ALL {
                let last = packed.eq_masks(candidate)[a.len() / 64];
                prop_assert_eq!(last & pad, 0);
            }
        }
    }
}

/// Deterministic word-boundary and degenerate cases, pinned so a proptest
/// shrink regression can never silently drop them.
#[test]
fn boundary_and_degenerate_cases() {
    let cases: [(&str, &str); 10] = [
        ("", ""),
        ("", "ACGT"),
        ("ACGT", ""),
        ("A", "A"),
        ("A", "T"),
        ("AGCG", "AGG"),
        // 63/64/65: the one-word ↔ blocked kernel boundary.
        (&"AC".repeat(32)[..63], &"AC".repeat(32)),
        (&"AC".repeat(32), &"AC".repeat(33)[..65]),
        // 110 nt — the dataset's strand length (two-word pattern).
        (&"ACGTT".repeat(22), &"ACGTA".repeat(22)),
        (&"G".repeat(128), &"G".repeat(129)),
    ];
    for (a, b) in cases {
        let (sa, sb): (Strand, Strand) = (a.parse().unwrap(), b.parse().unwrap());
        let (pa, pb) = (PackedStrand::from(&sa), PackedStrand::from(&sb));
        let expect = levenshtein(sa.as_bases(), sb.as_bases());
        assert_eq!(myers::distance(&pa, &pb), expect, "{a:?} vs {b:?}");
        for limit in [0usize, 1, expect.saturating_sub(1), expect, expect + 1, 50] {
            assert_eq!(
                myers::within(&pa, &pb, limit),
                levenshtein_within(sa.as_bases(), sb.as_bases(), limit),
                "{a:?} vs {b:?} at limit {limit}"
            );
        }
    }
}

/// Fully disjoint alphabets maximise the distance; the band must reject at
/// any limit below the full length and accept at it.
#[test]
fn disjoint_strands_hit_the_upper_bound() {
    let a: Strand = "A".repeat(150).parse().unwrap();
    let b: Strand = "T".repeat(150).parse().unwrap();
    let (pa, pb) = (PackedStrand::from(&a), PackedStrand::from(&b));
    assert_eq!(myers::distance(&pa, &pb), 150);
    assert_eq!(myers::within(&pa, &pb, 149), None);
    assert_eq!(myers::within(&pa, &pb, 150), Some(150));
}

/// Multi-pattern tier contract (DESIGN.md §15): every lane of a bank must
/// report exactly what the single-pattern banded kernel reports — same
/// Some/None decision, same distance — and the pinned scalar backend must
/// agree with whatever backend the runtime dispatcher picked. The verify
/// harness runs this file twice (default and `DNASIM_SIMD=off`) so both
/// sides of the dispatch are exercised.
mod bank_tier {
    use super::*;
    use dnasim_metrics::bank::bank_within_scalar_with;
    use dnasim_metrics::{bank_distances_with, bank_within_with, BankScratch, PatternBank};

    /// Builds `lanes` patterns out of a flat base pool, all within the
    /// same 64-bit word band (the bank's shape precondition).
    fn build_patterns(
        pool: &[usize],
        words: usize,
        lanes: usize,
        offsets: &[usize],
    ) -> Vec<Strand> {
        let lo = (words - 1) * 64 + 1;
        let hi = (words * 64).min(300);
        let mut patterns = Vec::with_capacity(lanes);
        let mut cursor = 0usize;
        for &offset in offsets.iter().take(lanes) {
            let len = lo + offset % (hi - lo + 1);
            let s: Strand = pool[cursor..cursor + len]
                .iter()
                .map(|&i| Base::from_index(i).expect("index < 4"))
                .collect();
            cursor += len;
            patterns.push(s);
        }
        patterns
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn bank_lanes_match_the_single_pattern_band(
            pool in dnasim_testkit::collection::vec(0usize..4, 2400..2401),
            words in 1usize..6,
            lanes_sel in 0usize..4,
            offsets in dnasim_testkit::collection::vec(0usize..64, 8..9),
            text in strand(0..300),
            limit in 0usize..80,
        ) {
            let lanes = [1usize, 2, 4, 8][lanes_sel];
            let patterns = build_patterns(&pool, words, lanes, &offsets);
            let packed: Vec<PackedStrand> = patterns.iter().map(PackedStrand::from).collect();
            let refs: Vec<&PackedStrand> = packed.iter().collect();
            let bank = PatternBank::new(&refs).expect("uniform word counts");
            let pt = PackedStrand::from(&text);
            let mut scratch = BankScratch::new();

            let mut banded = Vec::new();
            bank_within_with(&mut scratch, &bank, &pt, limit, &mut banded);
            prop_assert_eq!(banded.len(), lanes);

            // The pinned scalar backend and the dispatched backend agree.
            let mut scalar = Vec::new();
            bank_within_scalar_with(&mut scratch, &bank, &pt, limit, &mut scalar);
            prop_assert_eq!(&banded, &scalar);

            let mut full = Vec::new();
            bank_distances_with(&mut scratch, &bank, &pt, &mut full);
            prop_assert_eq!(full.len(), lanes);

            for (lane, pat) in packed.iter().enumerate() {
                let d = myers::distance(pat, &pt);
                prop_assert_eq!(full[lane], d, "distances lane {}", lane);
                prop_assert_eq!(
                    banded[lane],
                    myers::within(pat, &pt, limit),
                    "within lane {}", lane
                );
                // Whenever the true distance fits the band, the lane must
                // report exactly it — never a different in-band value.
                if d <= limit {
                    prop_assert_eq!(banded[lane], Some(d), "lane {}", lane);
                } else {
                    prop_assert_eq!(banded[lane], None, "lane {}", lane);
                }
            }
        }
    }
}
