//! Statistical sanity checks for the workspace PRNG (`dnasim_core::rng`).
//!
//! The in-tree xoshiro256++ generator underpins every simulation in the
//! workspace, so its output distributions are validated here with the same
//! χ² machinery the paper uses for simulator fidelity. All tests use fixed
//! seeds: they assert properties of the generator itself, not of a random
//! run, so they are deterministic pass/fail.

use dnasim_core::rng::{seeded, RngExt};
use dnasim_metrics::{chi_square_distance, normalize_histogram};

/// χ² distance between an observed bucket histogram and the uniform
/// distribution over the same number of buckets.
fn chi2_vs_uniform(counts: &[usize]) -> f64 {
    let observed = normalize_histogram(counts);
    let uniform = vec![1.0 / counts.len() as f64; counts.len()];
    chi_square_distance(&observed, &uniform)
}

#[test]
fn random_range_buckets_are_chi2_uniform() {
    const BUCKETS: usize = 16;
    const DRAWS: usize = 160_000;
    let mut rng = seeded(0xC415);
    let mut counts = [0usize; BUCKETS];
    for _ in 0..DRAWS {
        counts[rng.random_range(0..BUCKETS)] += 1;
    }
    // With 10k expected per bucket, a healthy generator lands far below
    // this threshold (observed ~1e-5); a stuck or biased one lands orders
    // of magnitude above.
    let distance = chi2_vs_uniform(&counts);
    assert!(distance < 1e-3, "χ² distance vs uniform too large: {distance}");
}

#[test]
fn random_u64_high_and_low_bits_are_chi2_uniform() {
    const DRAWS: usize = 100_000;
    let mut rng = seeded(9001);
    let mut high = [0usize; 8];
    let mut low = [0usize; 8];
    for _ in 0..DRAWS {
        let v = rng.random::<u64>();
        high[(v >> 61) as usize] += 1;
        low[(v & 0x7) as usize] += 1;
    }
    // Both ends of the word must be uniform — xoshiro++'s weakest bits are
    // the low ones, and `random_bool`/float conversion lean on the high ones.
    assert!(chi2_vs_uniform(&high) < 1e-3, "high bits biased: {high:?}");
    assert!(chi2_vs_uniform(&low) < 1e-3, "low bits biased: {low:?}");
}

#[test]
fn unit_floats_are_chi2_uniform_and_in_range() {
    const BUCKETS: usize = 20;
    const DRAWS: usize = 200_000;
    let mut rng = seeded(31337);
    let mut counts = [0usize; BUCKETS];
    for _ in 0..DRAWS {
        let x = rng.random::<f64>();
        assert!((0.0..1.0).contains(&x), "f64 out of unit interval: {x}");
        counts[(x * BUCKETS as f64) as usize] += 1;
    }
    let distance = chi2_vs_uniform(&counts);
    assert!(distance < 1e-3, "unit-float χ² vs uniform: {distance}");
}

#[test]
fn random_range_respects_bounds_exactly() {
    let mut rng = seeded(77);
    let mut hit_low = false;
    let mut hit_high = false;
    for _ in 0..20_000 {
        let v = rng.random_range(10u32..=17);
        assert!((10..=17).contains(&v));
        hit_low |= v == 10;
        hit_high |= v == 17;
    }
    assert!(hit_low && hit_high, "inclusive endpoints never sampled");

    // Half-open range never produces the excluded upper bound.
    for _ in 0..20_000 {
        let v = rng.random_range(-3i64..3);
        assert!((-3..3).contains(&v));
    }

    // Degenerate singleton ranges are exact.
    assert_eq!(rng.random_range(5usize..6), 5);
    assert_eq!(rng.random_range(5usize..=5), 5);
}

#[test]
fn random_bool_frequency_tracks_p() {
    const DRAWS: usize = 100_000;
    let mut rng = seeded(0xB001);
    for &p in &[0.1, 0.25, 0.5, 0.9] {
        let hits = (0..DRAWS).filter(|_| rng.random_bool(p)).count();
        let observed = hits as f64 / DRAWS as f64;
        // Binomial std-dev at n=100k is ≤ 0.0016; allow ~6σ.
        assert!(
            (observed - p).abs() < 0.01,
            "random_bool({p}) frequency {observed}"
        );
    }
    assert_eq!((0..1000).filter(|_| rng.random_bool(0.0)).count(), 0);
    assert_eq!((0..1000).filter(|_| rng.random_bool(1.0)).count(), 1000);
}

#[test]
fn distinct_seeds_give_distinct_histogram_fingerprints() {
    let histogram = |seed: u64| {
        let mut rng = seeded(seed);
        let mut counts = [0usize; 64];
        for _ in 0..4096 {
            counts[rng.random_range(0..64)] += 1;
        }
        counts
    };
    // Same seed reproduces exactly; different seeds decorrelate (nonzero χ²).
    assert_eq!(histogram(1), histogram(1));
    let a = normalize_histogram(&histogram(1));
    let b = normalize_histogram(&histogram(2));
    assert!(chi_square_distance(&a, &b) > 0.0);
}
