//! Statistical sanity checks for `SeedSequence::fork` — the per-item
//! stream derivation the parallel layer (`dnasim-par`) builds on.
//!
//! The fork contract: `fork(i)` is a pure function of `(root, i)`, distinct
//! across indices and across the `next_seed`/`derive` families, and the
//! resulting child streams are statistically independent. These tests use
//! the same χ² machinery as `rng_stats.rs` and fixed seeds throughout, so
//! they are deterministic pass/fail.

use std::collections::HashSet;

use dnasim_core::rng::{RngExt, SeedSequence};
use dnasim_metrics::{chi_square_distance, normalize_histogram};

/// χ² distance between an observed bucket histogram and the uniform
/// distribution over the same number of buckets.
fn chi2_vs_uniform(counts: &[usize]) -> f64 {
    let observed = normalize_histogram(counts);
    let uniform = vec![1.0 / counts.len() as f64; counts.len()];
    chi_square_distance(&observed, &uniform)
}

#[test]
fn fork_roots_never_collide_across_a_wide_index_range() {
    // 100k children per root, plus adversarially close roots: any collision
    // would hand two clusters identical randomness.
    for root in [0u64, 1, 42, u64::MAX] {
        let seq = SeedSequence::new(root);
        let mut seen = HashSet::with_capacity(100_000);
        for index in 0..100_000u64 {
            assert!(
                seen.insert(seq.fork(index).root()),
                "fork collision at root {root}, index {index}"
            );
        }
    }
}

#[test]
fn fork_roots_are_chi2_uniform_over_buckets() {
    const BUCKETS: usize = 32;
    const CHILDREN: u64 = 64_000;
    let seq = SeedSequence::new(0xF04C);
    let mut counts = [0usize; BUCKETS];
    for index in 0..CHILDREN {
        counts[(seq.fork(index).root() % BUCKETS as u64) as usize] += 1;
    }
    let distance = chi2_vs_uniform(&counts);
    assert!(distance < 1e-3, "fork roots χ² vs uniform: {distance}");
}

#[test]
fn sibling_streams_are_pairwise_decorrelated() {
    // Draw a histogram from each of two sibling streams; identical streams
    // give χ² = 0, healthy independent ones a clearly nonzero distance.
    let seq = SeedSequence::new(7);
    let histogram = |index: u64| {
        let mut rng = seq.fork_rng(index);
        let mut counts = [0usize; 64];
        for _ in 0..4096 {
            counts[rng.random_range(0..64)] += 1;
        }
        counts
    };
    for (a, b) in [(0u64, 1u64), (1, 2), (0, 1000), (999, 1000)] {
        let lhs = normalize_histogram(&histogram(a));
        let rhs = normalize_histogram(&histogram(b));
        assert!(
            chi_square_distance(&lhs, &rhs) > 0.0,
            "fork({a}) and fork({b}) streams coincide"
        );
    }
    // And the same index twice reproduces exactly.
    assert_eq!(histogram(5), histogram(5));
}

#[test]
fn fork_is_independent_of_sequence_state_and_order() {
    // Consuming next_seed()/derive() must not move fork(), and forking in
    // any order gives the same children — the property that makes
    // work-stealing schedules invisible to the output.
    let pristine = SeedSequence::new(123);
    let mut consumed = SeedSequence::new(123);
    let _ = consumed.next_seed();
    let _ = consumed.next_seed();
    let _ = consumed.derive("label");
    let forward: Vec<u64> = (0..50).map(|i| pristine.fork(i).root()).collect();
    let backward: Vec<u64> = (0..50).rev().map(|i| consumed.fork(i).root()).collect();
    assert_eq!(
        forward,
        backward.into_iter().rev().collect::<Vec<u64>>(),
        "fork depends on sequence state or call order"
    );
}

#[test]
fn tenant_request_namespaces_never_collide_across_10k_pairs() {
    // The serve tier keys every request's randomness by
    // derive_seq(tenant).derive_seq(request_id). 100 tenants × 100
    // requests plus adversarial label shapes (shared prefixes, shared
    // suffixes, concatenation aliases) must all land on distinct roots —
    // a collision would let one tenant's request replay another's stream.
    let root = SeedSequence::new(0x5E6E);
    let mut seen = HashSet::with_capacity(10_000);
    for tenant in 0..100u32 {
        let tenant_ns = root.derive_seq(&format!("tenant-{tenant}"));
        for request in 0..100u32 {
            let ns = tenant_ns.derive_seq(&format!("req-{request}"));
            assert!(
                seen.insert(ns.root()),
                "namespace collision at tenant-{tenant}/req-{request}"
            );
        }
    }
    assert_eq!(seen.len(), 10_000);
    // Concatenation must not alias the nested path: ("tenant-1", "2") vs
    // ("tenant-", "12") and ("t", "x1") vs ("tx", "1").
    for ((a1, a2), (b1, b2)) in [
        (("tenant-1", "2"), ("tenant-", "12")),
        (("t", "x1"), ("tx", "1")),
        (("", "a"), ("a", "")),
    ] {
        assert_ne!(
            root.derive_seq(a1).derive_seq(a2).root(),
            root.derive_seq(b1).derive_seq(b2).root(),
            "({a1:?},{a2:?}) aliases ({b1:?},{b2:?})"
        );
    }
}

#[test]
fn tenant_request_namespace_roots_are_chi2_uniform() {
    const BUCKETS: usize = 32;
    let root = SeedSequence::new(0xCAFE);
    let mut counts = [0usize; BUCKETS];
    for tenant in 0..128u32 {
        let tenant_ns = root.derive_seq(&format!("tenant-{tenant}"));
        for request in 0..256u32 {
            let ns = tenant_ns.derive_seq(&format!("req-{request}"));
            counts[(ns.root() % BUCKETS as u64) as usize] += 1;
        }
    }
    let distance = chi2_vs_uniform(&counts);
    assert!(distance < 1e-3, "namespace roots χ² vs uniform: {distance}");
}

#[test]
fn tenant_request_streams_are_statistically_independent() {
    // Neighbouring namespaces (same tenant, adjacent requests; adjacent
    // tenants, same request) must produce decorrelated draw histograms,
    // and replaying a namespace in isolation reproduces it exactly.
    let root = SeedSequence::new(99);
    let histogram = |tenant: &str, request: &str| {
        let mut rng = root.derive_seq(tenant).derive_seq(request).next_rng();
        let mut counts = [0usize; 64];
        for _ in 0..4096 {
            counts[rng.random_range(0..64)] += 1;
        }
        counts
    };
    let pairs = [
        (("alpha", "req-0"), ("alpha", "req-1")),
        (("alpha", "req-0"), ("beta", "req-0")),
        (("alpha", "req-999"), ("beta", "req-999")),
    ];
    for ((t1, r1), (t2, r2)) in pairs {
        let lhs = normalize_histogram(&histogram(t1, r1));
        let rhs = normalize_histogram(&histogram(t2, r2));
        assert!(
            chi_square_distance(&lhs, &rhs) > 0.0,
            "({t1},{r1}) and ({t2},{r2}) streams coincide"
        );
    }
    assert_eq!(histogram("gamma", "req-7"), histogram("gamma", "req-7"));
}

#[test]
fn namespace_family_avoids_fork_and_next_seed_families() {
    // Request namespaces must not land on the per-cluster fork streams the
    // ops themselves consume, or a request could correlate with one of its
    // own clusters.
    let mut seq = SeedSequence::new(0xBEEF);
    let mut seen = HashSet::new();
    for index in 0..10_000u64 {
        assert!(seen.insert(seq.fork(index).root()), "fork self-collision");
    }
    for step in 0..10_000u64 {
        assert!(seen.insert(seq.next_seed()), "next_seed collision at {step}");
    }
    let root = SeedSequence::new(0xBEEF);
    for tenant in 0..32u32 {
        let tenant_ns = root.derive_seq(&format!("tenant-{tenant}"));
        for request in 0..32u32 {
            let ns = tenant_ns.derive_seq(&format!("req-{request}"));
            assert!(
                seen.insert(ns.root()),
                "namespace tenant-{tenant}/req-{request} landed on an existing seed"
            );
        }
    }
}

#[test]
fn fork_family_avoids_next_seed_and_derive_families() {
    // The three derivation families (indexed fork, ordered next_seed,
    // labelled derive) partition the seed space in practice: no collisions
    // within a realistic budget of draws from each.
    let mut seq = SeedSequence::new(0xDEC0);
    let mut seen = HashSet::new();
    for index in 0..10_000u64 {
        assert!(seen.insert(seq.fork(index).root()), "fork self-collision");
    }
    for step in 0..10_000u64 {
        assert!(
            seen.insert(seq.next_seed()),
            "next_seed landed on a fork root at step {step}"
        );
    }
    for label in 0..1_000u32 {
        assert!(
            seen.insert(seq.derive(&format!("substream-{label}"))),
            "derive(\"substream-{label}\") landed on an existing seed"
        );
    }
}
