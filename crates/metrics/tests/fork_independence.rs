//! Statistical sanity checks for `SeedSequence::fork` — the per-item
//! stream derivation the parallel layer (`dnasim-par`) builds on.
//!
//! The fork contract: `fork(i)` is a pure function of `(root, i)`, distinct
//! across indices and across the `next_seed`/`derive` families, and the
//! resulting child streams are statistically independent. These tests use
//! the same χ² machinery as `rng_stats.rs` and fixed seeds throughout, so
//! they are deterministic pass/fail.

use std::collections::HashSet;

use dnasim_core::rng::{RngExt, SeedSequence};
use dnasim_metrics::{chi_square_distance, normalize_histogram};

/// χ² distance between an observed bucket histogram and the uniform
/// distribution over the same number of buckets.
fn chi2_vs_uniform(counts: &[usize]) -> f64 {
    let observed = normalize_histogram(counts);
    let uniform = vec![1.0 / counts.len() as f64; counts.len()];
    chi_square_distance(&observed, &uniform)
}

#[test]
fn fork_roots_never_collide_across_a_wide_index_range() {
    // 100k children per root, plus adversarially close roots: any collision
    // would hand two clusters identical randomness.
    for root in [0u64, 1, 42, u64::MAX] {
        let seq = SeedSequence::new(root);
        let mut seen = HashSet::with_capacity(100_000);
        for index in 0..100_000u64 {
            assert!(
                seen.insert(seq.fork(index).root()),
                "fork collision at root {root}, index {index}"
            );
        }
    }
}

#[test]
fn fork_roots_are_chi2_uniform_over_buckets() {
    const BUCKETS: usize = 32;
    const CHILDREN: u64 = 64_000;
    let seq = SeedSequence::new(0xF04C);
    let mut counts = [0usize; BUCKETS];
    for index in 0..CHILDREN {
        counts[(seq.fork(index).root() % BUCKETS as u64) as usize] += 1;
    }
    let distance = chi2_vs_uniform(&counts);
    assert!(distance < 1e-3, "fork roots χ² vs uniform: {distance}");
}

#[test]
fn sibling_streams_are_pairwise_decorrelated() {
    // Draw a histogram from each of two sibling streams; identical streams
    // give χ² = 0, healthy independent ones a clearly nonzero distance.
    let seq = SeedSequence::new(7);
    let histogram = |index: u64| {
        let mut rng = seq.fork_rng(index);
        let mut counts = [0usize; 64];
        for _ in 0..4096 {
            counts[rng.random_range(0..64)] += 1;
        }
        counts
    };
    for (a, b) in [(0u64, 1u64), (1, 2), (0, 1000), (999, 1000)] {
        let lhs = normalize_histogram(&histogram(a));
        let rhs = normalize_histogram(&histogram(b));
        assert!(
            chi_square_distance(&lhs, &rhs) > 0.0,
            "fork({a}) and fork({b}) streams coincide"
        );
    }
    // And the same index twice reproduces exactly.
    assert_eq!(histogram(5), histogram(5));
}

#[test]
fn fork_is_independent_of_sequence_state_and_order() {
    // Consuming next_seed()/derive() must not move fork(), and forking in
    // any order gives the same children — the property that makes
    // work-stealing schedules invisible to the output.
    let pristine = SeedSequence::new(123);
    let mut consumed = SeedSequence::new(123);
    let _ = consumed.next_seed();
    let _ = consumed.next_seed();
    let _ = consumed.derive("label");
    let forward: Vec<u64> = (0..50).map(|i| pristine.fork(i).root()).collect();
    let backward: Vec<u64> = (0..50).rev().map(|i| consumed.fork(i).root()).collect();
    assert_eq!(
        forward,
        backward.into_iter().rev().collect::<Vec<u64>>(),
        "fork depends on sequence state or call order"
    );
}

#[test]
fn fork_family_avoids_next_seed_and_derive_families() {
    // The three derivation families (indexed fork, ordered next_seed,
    // labelled derive) partition the seed space in practice: no collisions
    // within a realistic budget of draws from each.
    let mut seq = SeedSequence::new(0xDEC0);
    let mut seen = HashSet::new();
    for index in 0..10_000u64 {
        assert!(seen.insert(seq.fork(index).root()), "fork self-collision");
    }
    for step in 0..10_000u64 {
        assert!(
            seen.insert(seq.next_seed()),
            "next_seed landed on a fork root at step {step}"
        );
    }
    for label in 0..1_000u32 {
        assert!(
            seen.insert(seq.derive(&format!("substream-{label}"))),
            "derive(\"substream-{label}\") landed on an existing seed"
        );
    }
}
