//! Property-based tests for the metric axioms.

use dnasim_testkit::prelude::*;

use dnasim_core::{Base, Strand};
use dnasim_metrics::{
    chi_square_distance, gestalt_error_positions, gestalt_score, hamming,
    hamming_error_positions, levenshtein, levenshtein_within, matching_blocks,
    normalize_histogram, normalized_levenshtein, positional_matches,
};

fn strand(len: std::ops::Range<usize>) -> impl Strategy<Value = Strand> {
    dnasim_testkit::collection::vec(0usize..4, len).prop_map(|idx| {
        idx.into_iter()
            .map(|i| Base::from_index(i).expect("index < 4"))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn levenshtein_bounded_by_length_difference_and_max_len(
        a in strand(0..70),
        b in strand(0..70),
    ) {
        let d = levenshtein(a.as_bases(), b.as_bases());
        prop_assert!(d >= a.len().abs_diff(b.len()));
        prop_assert!(d <= a.len().max(b.len()));
    }

    #[test]
    fn normalized_levenshtein_in_unit_interval(a in strand(0..50), b in strand(0..50)) {
        let d = normalized_levenshtein(a.as_bases(), b.as_bases());
        prop_assert!((0.0..=1.0).contains(&d));
    }

    #[test]
    fn levenshtein_within_none_means_above_limit(
        a in strand(0..40),
        b in strand(0..40),
        limit in 0usize..20,
    ) {
        let full = levenshtein(a.as_bases(), b.as_bases());
        match levenshtein_within(a.as_bases(), b.as_bases(), limit) {
            Some(d) => {
                prop_assert_eq!(d, full);
                prop_assert!(d <= limit);
            }
            None => prop_assert!(full > limit),
        }
    }

    #[test]
    fn hamming_positions_count_matches_distance(a in strand(0..60), b in strand(0..60)) {
        prop_assert_eq!(hamming_error_positions(&a, &b).len(), hamming(&a, &b));
    }

    #[test]
    fn positional_matches_plus_hamming_covers_longer_strand(
        a in strand(0..60),
        b in strand(0..60),
    ) {
        // Every position of the longer strand is either a positional match
        // or a Hamming error.
        prop_assert_eq!(
            positional_matches(&a, &b) + hamming(&a, &b),
            a.len().max(b.len())
        );
    }

    #[test]
    fn matching_blocks_are_valid_and_monotone(a in strand(0..50), b in strand(0..50)) {
        let blocks = matching_blocks(a.as_bases(), b.as_bases());
        let mut last_a = 0usize;
        let mut last_b = 0usize;
        for m in &blocks {
            prop_assert!(m.len > 0);
            prop_assert!(m.a_start >= last_a);
            prop_assert!(m.b_start >= last_b);
            prop_assert_eq!(
                &a.as_bases()[m.a_start..m.a_start + m.len],
                &b.as_bases()[m.b_start..m.b_start + m.len]
            );
            last_a = m.a_start + m.len;
            last_b = m.b_start + m.len;
        }
    }

    #[test]
    fn gestalt_errors_bounded_by_reference_length(a in strand(0..50), b in strand(0..50)) {
        let errors = gestalt_error_positions(&a, &b);
        prop_assert!(errors.len() <= a.len());
        prop_assert!(errors.iter().all(|&p| p < a.len()));
        // Sorted ascending, no duplicates.
        prop_assert!(errors.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn gestalt_score_and_errors_are_consistent(a in strand(1..50)) {
        // Identity: score 1, no error positions.
        prop_assert_eq!(gestalt_score(a.as_bases(), a.as_bases()), 1.0);
        prop_assert!(gestalt_error_positions(&a, &a.clone()).is_empty());
    }

    #[test]
    fn chi_square_is_nonnegative_and_symmetric(
        xs in dnasim_testkit::collection::vec(0.0f64..1.0, 0..12),
        ys in dnasim_testkit::collection::vec(0.0f64..1.0, 0..12),
    ) {
        let d = chi_square_distance(&xs, &ys);
        prop_assert!(d >= 0.0);
        prop_assert!((d - chi_square_distance(&ys, &xs)).abs() < 1e-12);
        prop_assert!(chi_square_distance(&xs, &xs) < 1e-12);
    }

    #[test]
    fn normalize_histogram_is_a_distribution(
        counts in dnasim_testkit::collection::vec(0usize..1000, 1..16),
    ) {
        let h = normalize_histogram(&counts);
        let total: f64 = h.iter().sum();
        if counts.iter().sum::<usize>() == 0 {
            prop_assert!(total.abs() < 1e-12);
        } else {
            prop_assert!((total - 1.0).abs() < 1e-9);
            prop_assert!(h.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }
}
