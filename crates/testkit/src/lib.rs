//! `dnasim-testkit` — the workspace's hermetic test and benchmark substrate.
//!
//! The dnasim workspace builds and verifies with **zero registry
//! dependencies** (`CARGO_NET_OFFLINE=true`). This crate supplies the two
//! pieces of test infrastructure that used to come from crates.io, with
//! API-compatible surfaces so suites port mechanically:
//!
//! * a **property-testing harness** — the [`proptest!`] macro plus
//!   [`prop_assert!`]/[`prop_assert_eq!`], strategies ([`any`], numeric
//!   ranges, [`collection::vec`], [`collection::hash_set`], `prop_map`),
//!   seeded case generation, greedy input shrinking, and failure-seed
//!   reporting (replay with `DNASIM_PROPTEST_SEED=…`);
//! * a **benchmark harness** — [`criterion_group!`]/[`criterion_main!`],
//!   [`bench::Criterion`] with warmup and robust median/MAD reporting, and
//!   [`bench::black_box`].
//!
//! Randomness comes from `dnasim_core::rng` ([xoshiro256++ behind the
//! workspace's `Rng` trait](dnasim_core::rng)), so test-case streams obey
//! the same seed discipline as the simulator itself.
//!
//! # Writing a property
//!
//! ```
//! use dnasim_testkit::prelude::*;
//!
//! proptest! {
//!     #![proptest_config(ProptestConfig::with_cases(64))]
//!
//!     #[test]
//!     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! ```

// The doc example above must show `#[test]` — that is how `proptest!` is
// written in a real suite — even though doctests never run unit tests.
#![allow(clippy::test_attr_in_doctest)]

pub mod bench;
pub mod collection;
pub mod runner;
pub mod strategy;

pub use runner::{ProptestConfig, TestCaseError, TestCaseResult};
pub use strategy::{any, Strategy};

/// Everything a property-test file needs: `use dnasim_testkit::prelude::*;`.
pub mod prelude {
    pub use crate::runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::strategy::{any, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares a block of property tests (proptest-compatible syntax).
///
/// Each `#[test] fn name(arg in strategy, …) { body }` item becomes a
/// regular `#[test]` that runs the body against `cases` seeded random
/// inputs, shrinking and reporting the replay seed on failure. An optional
/// leading `#![proptest_config(…)]` sets the [`ProptestConfig`].
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_body! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let strategy = ($($strategy,)+);
            $crate::runner::run_property(
                stringify!($name),
                &config,
                strategy,
                |__dnasim_case| {
                    let ($($arg,)+) = ::std::clone::Clone::clone(__dnasim_case);
                    (move || -> $crate::TestCaseResult {
                        $body
                        ::std::result::Result::Ok(())
                    })()
                },
            );
        }
    )*};
}

/// Asserts a condition inside a property body, recording a failure (instead
/// of panicking) so the input can be shrunk.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts `left == right` inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`: {}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+),
            left,
            right
        );
    }};
}

/// Asserts `left != right` inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `left != right`\n  both: {:?}",
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `left != right`: {}\n  both: {:?}",
            format!($($fmt)+),
            left
        );
    }};
}

/// Declares a benchmark group (criterion-compatible syntax).
///
/// ```ignore
/// criterion_group! {
///     name = benches;
///     config = Criterion::default().sample_size(30);
///     targets = bench_a, bench_b
/// }
/// criterion_main!(benches);
/// ```
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion: $crate::bench::Criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::bench::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_runnable_tests(
            xs in crate::collection::vec(0usize..10, 0..8),
            flag in any::<bool>(),
        ) {
            prop_assert!(xs.len() < 8);
            if flag {
                prop_assert_eq!(xs.len(), xs.clone().len());
            }
            prop_assert_ne!(xs.len(), xs.len() + 1);
        }
    }

    proptest! {
        #[test]
        fn default_config_form_compiles(x in 0u8..5) {
            prop_assert!(x < 5);
        }
    }

    #[test]
    fn prop_assert_failure_shrinks_to_minimal_vec() {
        let result = std::panic::catch_unwind(|| {
            crate::runner::run_property(
                "vec_shorter_than_three",
                &ProptestConfig::with_cases(64),
                crate::collection::vec(0usize..100, 0..20),
                |xs| {
                    prop_assert!(xs.len() < 3, "too long: {}", xs.len());
                    Ok(())
                },
            );
        });
        let message = *result.unwrap_err().downcast::<String>().unwrap();
        // The structural shrinker should cut the counterexample down to
        // exactly the boundary length.
        assert!(message.contains("too long: 3"), "{message}");
    }
}
