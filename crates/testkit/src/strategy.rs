//! Value-generation strategies for the property-test harness.
//!
//! A [`Strategy`] knows how to *generate* a random value from a seeded
//! [`SimRng`] and how to propose *shrink candidates* — simpler variants of a
//! failing input that (if they still fail) make the counterexample easier to
//! read. The shrinking model is deliberately lighter than proptest's
//! value-tree design: strategies shrink finished values, and combinators
//! that lose provenance (like [`prop_map`]) simply stop shrinking below
//! themselves.
//!
//! [`prop_map`]: Strategy::prop_map

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use dnasim_core::rng::{RngExt, SimRng};

/// A generator of random test inputs, with optional shrinking.
///
/// The `Value` associated type mirrors proptest, so signatures like
/// `impl Strategy<Value = Strand>` port verbatim.
pub trait Strategy {
    /// The type of generated values.
    type Value: Clone + Debug;

    /// Generates one value from the given deterministic generator.
    fn generate(&self, rng: &mut SimRng) -> Self::Value;

    /// Proposes simpler variants of `value` to try during shrinking.
    ///
    /// Candidates should be *strictly simpler* (closer to the strategy's
    /// minimum) so the shrink loop terminates. An empty vector means the
    /// value cannot be simplified further.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Maps generated values through `f` (shrinking stops at the map
    /// boundary, since `f` is not invertible).
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: Clone + Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    U: Clone + Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut SimRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types generatable over their full domain with [`any`].
pub trait ArbitraryValue: Clone + Debug {
    /// Draws one value uniformly over the whole domain.
    fn arbitrary(rng: &mut SimRng) -> Self;

    /// Proposes simpler variants (toward zero / `false`).
    fn shrink_arbitrary(&self) -> Vec<Self> {
        Vec::new()
    }
}

macro_rules! arbitrary_uint {
    ($($ty:ty),* $(,)?) => {$(
        impl ArbitraryValue for $ty {
            fn arbitrary(rng: &mut SimRng) -> Self {
                rng.random()
            }

            fn shrink_arbitrary(&self) -> Vec<Self> {
                let v = *self;
                let mut out = Vec::new();
                if v > 0 {
                    out.push(0);
                    if v / 2 > 0 {
                        out.push(v / 2);
                    }
                    if v - 1 > v / 2 {
                        out.push(v - 1);
                    }
                }
                out
            }
        }
    )*};
}

arbitrary_uint!(u8, u16, u32, u64, usize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut SimRng) -> Self {
        rng.random()
    }

    fn shrink_arbitrary(&self) -> Vec<Self> {
        if *self { vec![false] } else { Vec::new() }
    }
}

impl ArbitraryValue for f64 {
    fn arbitrary(rng: &mut SimRng) -> Self {
        rng.random()
    }

    fn shrink_arbitrary(&self) -> Vec<Self> {
        if *self != 0.0 { vec![0.0, self / 2.0] } else { Vec::new() }
    }
}

macro_rules! arbitrary_int {
    ($($ty:ty),* $(,)?) => {$(
        impl ArbitraryValue for $ty {
            fn arbitrary(rng: &mut SimRng) -> Self {
                rng.random()
            }

            fn shrink_arbitrary(&self) -> Vec<Self> {
                let v = *self;
                let mut out = Vec::new();
                if v != 0 {
                    out.push(0);
                    if v / 2 != 0 {
                        out.push(v / 2);
                    }
                }
                out
            }
        }
    )*};
}

arbitrary_int!(i8, i16, i32, i64, isize);

/// Strategy over a type's full domain: `any::<u64>()`.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut SimRng) -> T {
        T::arbitrary(rng)
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        value.shrink_arbitrary()
    }
}

macro_rules! range_strategy_int {
    ($($ty:ty),* $(,)?) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut SimRng) -> $ty {
                rng.random_range(self.clone())
            }

            fn shrink(&self, value: &$ty) -> Vec<$ty> {
                shrink_toward(self.start, *value)
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut SimRng) -> $ty {
                rng.random_range(self.clone())
            }

            fn shrink(&self, value: &$ty) -> Vec<$ty> {
                shrink_toward(*self.start(), *value)
            }
        }
    )*};
}

range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Integer shrink candidates strictly between `low` and `value`.
fn shrink_toward<T>(low: T, value: T) -> Vec<T>
where
    T: Copy + PartialOrd + std::ops::Sub<Output = T> + std::ops::Add<Output = T> + HalfStep,
{
    let mut out = Vec::new();
    if value > low {
        out.push(low);
        let mid = low + (value - low).half();
        if mid > low && mid < value {
            out.push(mid);
        }
        let prev = value - T::one_step();
        if prev > low && prev != mid {
            out.push(prev);
        }
    }
    out
}

/// Helper arithmetic for [`shrink_toward`].
pub trait HalfStep {
    /// Half of `self` (integer division).
    fn half(self) -> Self;
    /// The smallest positive step of the type.
    fn one_step() -> Self;
}

macro_rules! half_step {
    ($($ty:ty),* $(,)?) => {$(
        impl HalfStep for $ty {
            fn half(self) -> Self {
                self / 2
            }

            fn one_step() -> Self {
                1 as $ty
            }
        }
    )*};
}

half_step!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_strategy_float {
    ($($ty:ty),* $(,)?) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut SimRng) -> $ty {
                rng.random_range(self.clone())
            }

            fn shrink(&self, value: &$ty) -> Vec<$ty> {
                let mut out = Vec::new();
                if *value > self.start {
                    out.push(self.start);
                    let mid = self.start + (*value - self.start) / 2.0;
                    if mid > self.start && mid < *value {
                        out.push(mid);
                    }
                }
                out
            }
        }
    )*};
}

range_strategy_float!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($S:ident . $idx:tt),+);)*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut SimRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = candidate;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )*};
}

tuple_strategy! {
    (S0.0);
    (S0.0, S1.1);
    (S0.0, S1.1, S2.2);
    (S0.0, S1.1, S2.2, S3.3);
    (S0.0, S1.1, S2.2, S3.3, S4.4);
    (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5);
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnasim_core::rng::seeded;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = seeded(1);
        for _ in 0..500 {
            let v = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let w = (1u8..=255).generate(&mut rng);
            assert!(w >= 1);
            let f = (0.0f64..0.3).generate(&mut rng);
            assert!((0.0..0.3).contains(&f));
        }
    }

    #[test]
    fn shrink_candidates_move_toward_minimum() {
        let strat = 2usize..100;
        for candidate in strat.shrink(&50) {
            assert!((2..50).contains(&candidate));
        }
        assert!(strat.shrink(&2).is_empty());
    }

    #[test]
    fn prop_map_transforms_values() {
        let strat = (0usize..10).prop_map(|v| v * 2);
        let mut rng = seeded(2);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!(v % 2 == 0 && v < 20);
        }
    }

    #[test]
    fn tuple_shrink_varies_one_component_at_a_time() {
        let strat = (0usize..10, 0usize..10);
        let candidates = strat.shrink(&(5, 7));
        assert!(!candidates.is_empty());
        for (a, b) in candidates {
            assert!((a, b) != (5, 7));
            assert!(a == 5 || b == 7);
        }
    }
}
