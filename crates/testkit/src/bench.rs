//! A minimal benchmark harness with a criterion-compatible API.
//!
//! Each benchmark runs a warmup phase (to stabilise caches and estimate the
//! per-iteration cost), then a fixed number of timed samples, each of a
//! batch of iterations sized so one sample is long enough to measure
//! reliably. Reported statistics are the **median** time per iteration and
//! the **MAD** (median absolute deviation) — both robust to scheduler
//! outliers, unlike mean/stddev.
//!
//! Environment knobs:
//!
//! * `DNASIM_BENCH_FAST=1` — shrink warmup/measurement to smoke-test levels
//!   (useful in CI, where only "compiles and runs" matters).
//! * `DNASIM_BENCH_JSON=<path>` — additionally append one JSON object per
//!   benchmark to `<path>` (JSON Lines), for machine consumers such as
//!   `scripts/bench.sh` / the `benchreport` aggregator.
//! * positional CLI argument — substring filter on benchmark ids, as with
//!   criterion (`cargo bench -p dnasim-bench --bench channel -- naive`).

pub use std::hint::black_box;

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver, configured per group via `criterion_group!`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    filter: Option<String>,
}

impl Criterion {
    /// Default settings: 50 samples, 2 s measurement, 1 s warmup.
    #[allow(clippy::should_implement_trait)]
    pub fn default() -> Criterion {
        Criterion {
            sample_size: 50,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_secs(1),
            filter: None,
        }
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the total time budget for the timed samples of one benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    /// Sets the warmup duration before timing starts.
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    /// Applies the CLI substring filter (set by `criterion_main!`).
    pub fn configure_from_args(mut self) -> Criterion {
        self.filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && !a.is_empty());
        self
    }

    fn effective(&self) -> (usize, Duration, Duration) {
        if std::env::var_os("DNASIM_BENCH_FAST").is_some_and(|v| v != "0" && !v.is_empty()) {
            (
                self.sample_size.min(10),
                Duration::from_millis(100),
                Duration::from_millis(50),
            )
        } else {
            (self.sample_size, self.measurement_time, self.warm_up_time)
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(&id.into(), &mut f);
        self
    }

    /// Records a pseudo-benchmark whose value is a raw gauge (a percentage,
    /// a ratio) rather than a timing: median/min/max all equal `value`, MAD
    /// is zero, one sample of one iteration. This lets non-timing metrics
    /// ride the same JSONL/`benchreport` pipeline as the timed records, so
    /// scripts can gate on them (e.g. the clustering prune rate).
    pub fn record_metric(&mut self, id: impl Into<String>, value: f64) -> &mut Criterion {
        let id = id.into();
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return self;
            }
        }
        let report = Report {
            median_ns: value,
            mad_ns: 0.0,
            min_ns: value,
            max_ns: value,
            samples: 1,
            iters_per_sample: 1,
        };
        println!("{id:<44} metric: {value:.3}");
        append_json_line(&id, &report);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    fn run_one<F>(&self, id: &str, f: &mut F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let (sample_size, measurement_time, warm_up_time) = self.effective();
        let mut bencher = Bencher {
            sample_size,
            measurement_time,
            warm_up_time,
            report: None,
        };
        f(&mut bencher);
        match bencher.report {
            Some(report) => {
                println!("{id:<44} {report}");
                append_json_line(id, &report);
            }
            None => println!("{id:<44} (no measurement — b.iter never called)"),
        }
    }
}

/// Appends one JSON Lines record for a finished benchmark to the file named
/// by `DNASIM_BENCH_JSON`, when set. Emission is best-effort: an unwritable
/// path only costs a warning on stderr, never the benchmark run.
fn append_json_line(id: &str, report: &Report) {
    let Some(path) = std::env::var_os("DNASIM_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let line = format!(
        "{{\"id\":\"{}\",\"median_ns\":{:.1},\"mad_ns\":{:.1},\"min_ns\":{:.1},\"max_ns\":{:.1},\"samples\":{},\"iters_per_sample\":{}}}\n",
        escape_json(id),
        report.median_ns,
        report.mad_ns,
        report.min_ns,
        report.max_ns,
        report.samples,
        report.iters_per_sample,
    );
    use std::io::Write;
    let result = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    if let Err(err) = result {
        eprintln!("warning: DNASIM_BENCH_JSON append failed for {path:?}: {err}");
    }
}

/// Escapes a benchmark id for embedding in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Handle passed to each benchmark closure; call [`iter`] with the routine
/// to measure.
///
/// [`iter`]: Bencher::iter
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    report: Option<Report>,
}

impl Bencher {
    /// Measures `routine`, consuming its output via [`black_box`] so the
    /// optimiser cannot elide the work.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warmup: run until the warmup budget elapses, counting iterations
        // to estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos().max(1) / u128::from(warm_iters);

        // Size one sample so that sample_size samples fill the measurement
        // budget, with at least one iteration per sample.
        let budget = self.measurement_time.as_nanos();
        let iters_per_sample =
            (budget / u128::from(self.sample_size as u64) / per_iter.max(1)).max(1) as u64;

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            samples_ns.push(start.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        self.report = Some(Report::from_samples(&mut samples_ns, iters_per_sample));
    }
}

/// Robust summary of one benchmark's samples.
#[derive(Debug, Clone, PartialEq)]
struct Report {
    median_ns: f64,
    mad_ns: f64,
    min_ns: f64,
    max_ns: f64,
    samples: usize,
    iters_per_sample: u64,
}

impl Report {
    fn from_samples(samples_ns: &mut [f64], iters_per_sample: u64) -> Report {
        let median = median_of(samples_ns);
        let mut deviations: Vec<f64> = samples_ns.iter().map(|s| (s - median).abs()).collect();
        let mad = median_of(&mut deviations);
        let min = samples_ns.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples_ns.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Report {
            median_ns: median,
            mad_ns: mad,
            min_ns: min,
            max_ns: max,
            samples: samples_ns.len(),
            iters_per_sample,
        }
    }
}

impl Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "time: [{} ±{} mad]  range: [{} .. {}]  ({} samples × {} iters)",
            format_ns(self.median_ns),
            format_ns(self.mad_ns),
            format_ns(self.min_ns),
            format_ns(self.max_ns),
            self.samples,
            self.iters_per_sample,
        )
    }
}

/// Median of a slice (sorts in place).
fn median_of(values: &mut [f64]) -> f64 {
    assert!(!values.is_empty());
    values.sort_by(|a, b| a.partial_cmp(b).expect("benchmark times are finite"));
    let mid = values.len() / 2;
    if values.len() % 2 == 1 {
        values[mid]
    } else {
        (values[mid - 1] + values[mid]) / 2.0
    }
}

/// Human-readable nanosecond quantity (`1.234 µs` style).
fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// A group of related benchmarks sharing an id prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        self.criterion.run_one(&full, &mut f);
        self
    }

    /// Runs one parameterised benchmark, passing `input` to the closure.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.render());
        self.criterion.run_one(&full, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Closes the group (kept for criterion API parity).
    pub fn finish(self) {}
}

/// A benchmark id of the form `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayed parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    fn render(&self) -> String {
        format!("{}/{}", self.function, self.parameter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast() -> Criterion {
        Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5))
    }

    #[test]
    fn bench_function_produces_a_report() {
        let mut c = fast();
        let mut ran = false;
        c.bench_function("smoke", |b| {
            ran = true;
            b.iter(|| (0..100u64).sum::<u64>())
        });
        assert!(ran);
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = fast();
        let mut group = c.benchmark_group("group");
        group.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
        for n in [2u64, 4] {
            group.bench_with_input(BenchmarkId::new("param", n), &n, |b, &n| {
                b.iter(|| (0..n).product::<u64>())
            });
        }
        group.finish();
    }

    #[test]
    fn filter_skips_non_matching_benchmarks() {
        let mut c = fast();
        c.filter = Some("nope".to_owned());
        let mut ran = false;
        c.bench_function("other", |b| {
            ran = true;
            b.iter(|| 1)
        });
        assert!(!ran);
    }

    #[test]
    fn median_and_mad_are_robust() {
        let mut xs = [1.0, 2.0, 3.0, 4.0, 100.0];
        let report = Report::from_samples(&mut xs, 1);
        assert_eq!(report.median_ns, 3.0);
        assert_eq!(report.mad_ns, 1.0);
        assert_eq!(report.min_ns, 1.0);
        assert_eq!(report.max_ns, 100.0);
    }

    #[test]
    fn format_ns_picks_sensible_units() {
        assert_eq!(format_ns(12.0), "12.0 ns");
        assert_eq!(format_ns(1_500.0), "1.500 µs");
        assert_eq!(format_ns(2_000_000.0), "2.000 ms");
    }

    #[test]
    fn escape_json_handles_specials() {
        assert_eq!(escape_json("plain/id-110"), "plain/id-110");
        assert_eq!(escape_json("a\"b"), "a\\\"b");
        assert_eq!(escape_json("a\\b"), "a\\\\b");
        assert_eq!(escape_json("a\nb"), "a\\u000ab");
    }

    #[test]
    fn json_lines_are_appended_when_env_set() {
        let path = std::env::temp_dir().join(format!(
            "dnasim-bench-jsonl-{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        std::env::set_var("DNASIM_BENCH_JSON", &path);
        let mut c = fast();
        c.bench_function("jsonline-smoke", |b| b.iter(|| black_box(2 + 2)));
        std::env::remove_var("DNASIM_BENCH_JSON");
        let contents = std::fs::read_to_string(&path).expect("JSONL file written");
        let _ = std::fs::remove_file(&path);
        let line = contents
            .lines()
            .find(|l| l.contains("\"id\":\"jsonline-smoke\""))
            .expect("record for jsonline-smoke present");
        for field in [
            "\"median_ns\":",
            "\"mad_ns\":",
            "\"min_ns\":",
            "\"max_ns\":",
            "\"samples\":",
            "\"iters_per_sample\":",
        ] {
            assert!(line.contains(field), "missing {field} in {line}");
        }
    }
}
