//! The property-test executor: seeded case generation, panic capture,
//! greedy shrinking, and failure-seed reporting.

use std::panic::{catch_unwind, AssertUnwindSafe};

use dnasim_core::rng::{seeded, SeedSequence};

use crate::strategy::Strategy;

/// Root seed used when `DNASIM_PROPTEST_SEED` is not set.
///
/// A fixed default makes every CI run reproduce the same cases; export the
/// env var to replay a reported failure or to rotate the exploration.
pub const DEFAULT_ROOT_SEED: u64 = 0x0d5a_51f7_7e57_5eed;

/// Environment variable overriding the root seed (decimal or `0x…` hex).
pub const SEED_ENV_VAR: &str = "DNASIM_PROPTEST_SEED";

/// Configuration block accepted by the `proptest!` macro.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Upper bound on shrink attempts after a failure.
    pub max_shrink_iters: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 1024,
        }
    }
}

/// A failed property assertion (produced by `prop_assert!` and friends).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Result type returned by property bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

fn root_seed() -> u64 {
    match std::env::var(SEED_ENV_VAR) {
        Ok(raw) => {
            let parsed = raw
                .strip_prefix("0x")
                .map(|hex| u64::from_str_radix(hex, 16))
                .unwrap_or_else(|| raw.parse());
            match parsed {
                Ok(seed) => seed,
                Err(_) => panic!("{SEED_ENV_VAR} must be a u64, got {raw:?}"),
            }
        }
        Err(_) => DEFAULT_ROOT_SEED,
    }
}

/// Runs one case, converting body panics into regular failures so the
/// shrinker can keep working on them.
fn run_case<V>(test: &impl Fn(&V) -> TestCaseResult, value: &V) -> Result<(), String> {
    match catch_unwind(AssertUnwindSafe(|| test(value))) {
        Ok(Ok(())) => Ok(()),
        Ok(Err(error)) => Err(error.to_string()),
        Err(panic) => {
            let message = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "test body panicked".to_owned());
            Err(format!("panic: {message}"))
        }
    }
}

/// Executes `config.cases` random cases of a property and panics with a
/// minimal counterexample and replay instructions on the first failure.
///
/// Case generation is deterministic: the stream is derived from the root
/// seed (see [`SEED_ENV_VAR`]) and the property's name, so properties are
/// independent of each other and of execution order.
pub fn run_property<S: Strategy>(
    name: &str,
    config: &ProptestConfig,
    strategy: S,
    test: impl Fn(&S::Value) -> TestCaseResult,
) {
    let root = root_seed();
    let mut stream = SeedSequence::new(SeedSequence::new(root).derive(name));
    for case_index in 0..config.cases {
        let case_seed = stream.next_seed();
        let value = strategy.generate(&mut seeded(case_seed));
        let Err(error) = run_case(&test, &value) else {
            continue;
        };
        let (minimal, final_error, shrink_steps) =
            shrink_failure(&strategy, &test, value, error, config.max_shrink_iters);
        panic!(
            "property `{name}` failed at case {case_index} (case seed {case_seed:#x})\n\
             minimal input (after {shrink_steps} shrink steps): {minimal:#?}\n\
             error: {final_error}\n\
             replay with: {SEED_ENV_VAR}={root:#x} cargo test {name}",
        );
    }
}

/// Greedily simplifies a failing input: repeatedly adopts the first shrink
/// candidate that still fails, until none fail or the iteration budget runs
/// out.
fn shrink_failure<S: Strategy>(
    strategy: &S,
    test: &impl Fn(&S::Value) -> TestCaseResult,
    mut current: S::Value,
    mut error: String,
    max_iters: u32,
) -> (S::Value, String, u32) {
    let mut iters = 0u32;
    let mut steps = 0u32;
    'search: while iters < max_iters {
        for candidate in strategy.shrink(&current) {
            iters += 1;
            if let Err(candidate_error) = run_case(test, &candidate) {
                current = candidate;
                error = candidate_error;
                steps += 1;
                continue 'search;
            }
            if iters >= max_iters {
                break 'search;
            }
        }
        break;
    }
    (current, error, steps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0u32;
        let counter = std::cell::Cell::new(0u32);
        run_property(
            "always_true",
            &ProptestConfig::with_cases(40),
            0usize..100,
            |_| {
                counter.set(counter.get() + 1);
                Ok(())
            },
        );
        count += counter.get();
        assert_eq!(count, 40);
    }

    #[test]
    fn failing_property_reports_and_shrinks() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_property(
                "fails_above_ten",
                &ProptestConfig::with_cases(200),
                (0usize..1000,),
                |&(v,)| {
                    if v > 10 {
                        Err(TestCaseError::fail(format!("{v} is too big")))
                    } else {
                        Ok(())
                    }
                },
            );
        }));
        let message = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(message.contains("fails_above_ten"), "{message}");
        assert!(message.contains("replay with"), "{message}");
        // Greedy shrinking must land on the boundary counterexample.
        assert!(message.contains("minimal input"), "{message}");
        assert!(message.contains("11"), "{message}");
    }

    #[test]
    fn panicking_bodies_are_caught_and_reported() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_property(
                "panics_always",
                &ProptestConfig::with_cases(1),
                0usize..10,
                |_| panic!("boom"),
            );
        }));
        let message = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(message.contains("panic: boom"), "{message}");
    }

    #[test]
    fn case_stream_is_deterministic_per_name() {
        let record = |name: &str| {
            let values = std::cell::RefCell::new(Vec::new());
            run_property(name, &ProptestConfig::with_cases(16), 0u64..1_000_000, |&v| {
                values.borrow_mut().push(v);
                Ok(())
            });
            values.into_inner()
        };
        assert_eq!(record("stream_a"), record("stream_a"));
        assert_ne!(record("stream_a"), record("stream_b"));
    }
}
