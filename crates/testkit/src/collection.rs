//! Collection strategies: `vec` and `hash_set`, mirroring
//! `proptest::collection`.

use std::collections::HashSet;
use std::fmt::Debug;
use std::hash::Hash;
use std::ops::{Range, RangeInclusive};

use dnasim_core::rng::{RngExt, SimRng};

use crate::strategy::Strategy;

/// An admissible size band for a generated collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut SimRng) -> usize {
        rng.random_range(self.min..=self.max)
    }

    /// The smallest admissible size.
    pub fn min(&self) -> usize {
        self.min
    }
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> SizeRange {
        SizeRange {
            min: exact,
            max: exact,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> SizeRange {
        assert!(!range.is_empty(), "collection size range must be non-empty");
        SizeRange {
            min: range.start,
            max: range.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> SizeRange {
        assert!(!range.is_empty(), "collection size range must be non-empty");
        SizeRange {
            min: *range.start(),
            max: *range.end(),
        }
    }
}

/// Strategy for `Vec`s whose length lies in `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut SimRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }

    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let mut out = Vec::new();
        let min = self.size.min;
        // Structural shrinks: cut the tail back toward the minimum length.
        if value.len() > min {
            out.push(value[..min].to_vec());
            let half = min + (value.len() - min) / 2;
            if half > min && half < value.len() {
                out.push(value[..half].to_vec());
            }
            out.push(value[..value.len() - 1].to_vec());
        }
        // Element-wise shrinks: simplify one position at a time (first
        // candidate only, to keep the candidate set small).
        for (i, item) in value.iter().enumerate() {
            if let Some(simpler) = self.element.shrink(item).into_iter().next() {
                let mut next = value.clone();
                next[i] = simpler;
                out.push(next);
            }
        }
        out
    }
}

/// Strategy for `HashSet`s with `size.min()..=max` *distinct* elements drawn
/// from `element`.
///
/// If the element domain is too small to reach the drawn size, the set is
/// returned at the largest size reachable within a bounded number of draws
/// (matching proptest's best-effort behaviour).
pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    HashSetStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`hash_set`].
#[derive(Debug, Clone)]
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    type Value = HashSet<S::Value>;

    fn generate(&self, rng: &mut SimRng) -> HashSet<S::Value> {
        let target = self.size.sample(rng);
        let mut set = HashSet::with_capacity(target);
        let mut attempts = 0usize;
        while set.len() < target && attempts < target.saturating_mul(20) + 100 {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }

    fn shrink(&self, value: &HashSet<S::Value>) -> Vec<HashSet<S::Value>> {
        let mut out = Vec::new();
        if value.len() > self.size.min {
            for drop in value.iter() {
                let mut next = value.clone();
                next.remove(drop);
                out.push(next);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnasim_core::rng::seeded;

    #[test]
    fn vec_lengths_respect_band() {
        let strat = vec(0usize..4, 2..5);
        let mut rng = seeded(3);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 4));
        }
    }

    #[test]
    fn exact_size_vec() {
        let strat = vec(crate::strategy::any::<u8>(), 16);
        let mut rng = seeded(4);
        assert_eq!(strat.generate(&mut rng).len(), 16);
    }

    #[test]
    fn vec_shrinks_respect_min_length() {
        let strat = vec(0usize..10, 2..8);
        let value = vec![5, 5, 5, 5, 5];
        for candidate in strat.shrink(&value) {
            assert!(candidate.len() >= 2);
        }
        // Values at minimum length still shrink element-wise only.
        let at_min = vec![5, 5];
        assert!(strat.shrink(&at_min).iter().all(|c| c.len() == 2));
    }

    #[test]
    fn hash_set_sizes_are_reachable() {
        let strat = hash_set(0usize..24, 0..4);
        let mut rng = seeded(5);
        for _ in 0..200 {
            let s = strat.generate(&mut rng);
            assert!(s.len() < 4);
            assert!(s.iter().all(|&x| x < 24));
        }
    }
}
