//! Data-driven error profiling for DNA-storage channels.
//!
//! Existing simulators hard-code their error dictionaries; this crate
//! implements the paper's data-driven alternative: given real clustered
//! sequencing data, recover the most-likely error sequence for every read
//! (the Appendix B edit-distance-operations algorithm), accumulate the
//! statistics that matter ([`ErrorStats`]), and distil them into a
//! [`LearnedModel`] that parameterises every simulator layer — conditional
//! per-base probabilities, long deletions, the spatial error distribution,
//! and second-order (base-specific) errors.
//!
//! # Examples
//!
//! ```
//! use dnasim_core::{rng::seeded, Cluster, Dataset, Strand};
//! use dnasim_profile::{ErrorStats, LearnedModel, TieBreak};
//!
//! let reference: Strand = "ACGTACGTAC".parse()?;
//! let cluster = Cluster::new(
//!     reference.clone(),
//!     vec!["ACGTACGTA".parse()?, "ACGTTACGTAC".parse()?],
//! );
//! let dataset = Dataset::from_clusters(vec![cluster]);
//!
//! let mut rng = seeded(7);
//! let stats = ErrorStats::from_dataset(&dataset, TieBreak::Random, &mut rng);
//! let model = LearnedModel::from_stats(&stats, 10);
//! assert!(model.aggregate_error_rate > 0.0);
//! # Ok::<(), dnasim_core::ParseStrandError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod editops;
mod model;
mod persist;
mod stats;

pub use editops::{
    edit_distance, edit_script, edit_script_with, EditScratch, PositionedBase, TieBreak,
};
pub use model::{
    BaseErrorRates, LearnedModel, LongDeletionParams, ModelValidationError, SecondOrderError,
};
pub use persist::ParseModelError;
pub use stats::{ErrorStats, SecondOrderStat};
