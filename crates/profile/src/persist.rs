//! Plain-text persistence for [`LearnedModel`].
//!
//! Profiling a large dataset is the expensive step of the workflow; saving
//! the distilled model lets the CLI (and downstream tools) resimulate many
//! times without re-profiling. The format is a simple line-oriented
//! `key value…` text — human-inspectable, diff-able, and dependency-free.
//!
//! Loading is hardened against hostile files: every defect maps to a
//! [`ParseModelError`] variant carrying the 1-based line number, and a
//! file that parses but encodes out-of-domain parameters (NaN rates,
//! negative weights) is rejected by [`LearnedModel::validate`] before it
//! can reach a simulator.

use std::fmt::Write as _;
use std::str::FromStr;

use dnasim_core::{Base, DnasimError, EditOp};

use crate::model::{
    BaseErrorRates, LearnedModel, LongDeletionParams, ModelValidationError, SecondOrderError,
};

/// Error returned when parsing a persisted [`LearnedModel`] fails.
///
/// Every variant that refers to file content carries the 1-based line
/// number of the defect (see [`line`](ParseModelError::line)).
#[derive(Debug, Clone, PartialEq)]
pub enum ParseModelError {
    /// The input was empty.
    Empty,
    /// The first line is not the expected format header.
    BadHeader {
        /// What the first line actually was.
        found: String,
    },
    /// A line ended before a required field.
    MissingField {
        /// 1-based line number.
        line: usize,
        /// The key of the truncated line.
        key: String,
    },
    /// A field failed to parse as its expected type.
    InvalidValue {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// A `second_order` line carried an unparsable op token.
    InvalidOp {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// A line started with an unrecognised key.
    UnknownKey {
        /// 1-based line number.
        line: usize,
        /// The unrecognised key.
        key: String,
    },
    /// A required field never appeared in the file.
    MissingRequired {
        /// The absent field.
        field: &'static str,
    },
    /// The file parsed, but a parameter is outside its valid domain.
    Validation(ModelValidationError),
}

impl ParseModelError {
    /// The 1-based line number of the failure, or 0 when the defect has no
    /// single location (empty input, a missing field, a domain violation).
    pub fn line(&self) -> usize {
        match self {
            ParseModelError::BadHeader { .. } => 1,
            ParseModelError::MissingField { line, .. }
            | ParseModelError::InvalidValue { line, .. }
            | ParseModelError::InvalidOp { line, .. }
            | ParseModelError::UnknownKey { line, .. } => *line,
            ParseModelError::Empty
            | ParseModelError::MissingRequired { .. }
            | ParseModelError::Validation(_) => 0,
        }
    }
}

impl std::fmt::Display for ParseModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseModelError::Empty => f.write_str("empty input"),
            ParseModelError::BadHeader { found } => {
                write!(f, "line 1: unexpected header '{found}', expected '{HEADER}'")
            }
            ParseModelError::MissingField { line, key } => {
                write!(f, "line {line}: '{key}' line ends before a required field")
            }
            ParseModelError::InvalidValue { line, token } => {
                write!(f, "line {line}: invalid value '{token}'")
            }
            ParseModelError::InvalidOp { line, token } => {
                write!(f, "line {line}: invalid op token '{token}'")
            }
            ParseModelError::UnknownKey { line, key } => {
                write!(f, "line {line}: unknown key '{key}'")
            }
            ParseModelError::MissingRequired { field } => {
                write!(f, "missing required field '{field}'")
            }
            ParseModelError::Validation(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ParseModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseModelError::Validation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseModelError> for DnasimError {
    fn from(e: ParseModelError) -> DnasimError {
        DnasimError::parse("learned model", e.line(), e.to_string())
    }
}

/// The format header; bump the version on breaking changes.
const HEADER: &str = "dnasim-learned-model v1";

impl LearnedModel {
    /// Serialises the model to the line-oriented text format.
    ///
    /// # Examples
    ///
    /// ```
    /// use dnasim_core::{rng::seeded, Cluster, Dataset, Strand};
    /// use dnasim_profile::{ErrorStats, LearnedModel, TieBreak};
    ///
    /// let reference: Strand = "ACGTACGT".parse()?;
    /// let cluster = Cluster::new(reference.clone(), vec!["ACGTACG".parse()?]);
    /// let dataset = Dataset::from_clusters(vec![cluster]);
    /// let mut rng = seeded(1);
    /// let stats = ErrorStats::from_dataset(&dataset, TieBreak::Random, &mut rng);
    /// let model = LearnedModel::from_stats(&stats, 10);
    ///
    /// let text = model.to_text();
    /// let back = LearnedModel::from_text(&text)?;
    /// assert_eq!(back, model);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{HEADER}");
        let _ = writeln!(out, "strand_len {}", self.strand_len);
        let _ = writeln!(out, "aggregate_error_rate {}", self.aggregate_error_rate);
        let _ = writeln!(out, "homopolymer_boost {}", self.homopolymer_boost);
        for base in Base::ALL {
            let r = self.per_base[base.index()];
            let _ = writeln!(
                out,
                "per_base {base} {} {} {}",
                r.substitution, r.deletion, r.insertion
            );
        }
        for orig in Base::ALL {
            let row = self.substitution[orig.index()];
            let _ = writeln!(
                out,
                "substitution {orig} {} {} {} {}",
                row[0], row[1], row[2], row[3]
            );
        }
        let _ = write!(out, "long_deletion {}", self.long_deletion.probability);
        for w in &self.long_deletion.length_weights {
            let _ = write!(out, " {w}");
        }
        out.push('\n');
        let _ = write!(out, "spatial");
        for m in &self.spatial_multipliers {
            let _ = write!(out, " {m}");
        }
        out.push('\n');
        for so in &self.second_order {
            let _ = write!(out, "second_order {} {}", op_token(so.op), so.share);
            for m in &so.positional_multipliers {
                let _ = write!(out, " {m}");
            }
            out.push('\n');
        }
        out
    }

    /// Parses a model previously written by [`to_text`](LearnedModel::to_text).
    ///
    /// # Errors
    ///
    /// [`ParseModelError`] for a missing/foreign header, malformed line,
    /// missing required field, or an out-of-domain parameter value.
    pub fn from_text(text: &str) -> Result<LearnedModel, ParseModelError> {
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, header)) if header.trim() == HEADER => {}
            Some((_, other)) => {
                return Err(ParseModelError::BadHeader {
                    found: other.to_owned(),
                })
            }
            None => return Err(ParseModelError::Empty),
        }

        let mut strand_len: Option<usize> = None;
        let mut aggregate: Option<f64> = None;
        let mut homopolymer_boost = 1.0f64;
        let mut per_base = [BaseErrorRates::default(); 4];
        let mut substitution = [[0.0f64; 4]; 4];
        let mut long_deletion = LongDeletionParams::default();
        let mut spatial: Vec<f64> = Vec::new();
        let mut second_order: Vec<SecondOrderError> = Vec::new();

        for (idx, raw) in lines {
            let line_no = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut fields = line.split_whitespace();
            let Some(key) = fields.next() else {
                continue;
            };
            match key {
                "strand_len" => {
                    strand_len = Some(parse_next(&mut fields, line_no, key)?);
                }
                "aggregate_error_rate" => {
                    aggregate = Some(parse_next(&mut fields, line_no, key)?);
                }
                "homopolymer_boost" => {
                    homopolymer_boost = parse_next(&mut fields, line_no, key)?;
                }
                "per_base" => {
                    let base: Base = parse_next(&mut fields, line_no, key)?;
                    per_base[base.index()] = BaseErrorRates {
                        substitution: parse_next(&mut fields, line_no, key)?,
                        deletion: parse_next(&mut fields, line_no, key)?,
                        insertion: parse_next(&mut fields, line_no, key)?,
                    };
                }
                "substitution" => {
                    let orig: Base = parse_next(&mut fields, line_no, key)?;
                    for slot in substitution[orig.index()].iter_mut() {
                        *slot = parse_next(&mut fields, line_no, key)?;
                    }
                }
                "long_deletion" => {
                    long_deletion.probability = parse_next(&mut fields, line_no, key)?;
                    long_deletion.length_weights = parse_rest(&mut fields, line_no)?;
                }
                "spatial" => {
                    spatial = parse_rest(&mut fields, line_no)?;
                }
                "second_order" => {
                    let op_text =
                        fields
                            .next()
                            .ok_or_else(|| ParseModelError::MissingField {
                                line: line_no,
                                key: key.to_owned(),
                            })?;
                    let op = parse_op(op_text).ok_or_else(|| ParseModelError::InvalidOp {
                        line: line_no,
                        token: op_text.to_owned(),
                    })?;
                    let share: f64 = parse_next(&mut fields, line_no, key)?;
                    let positional_multipliers = parse_rest(&mut fields, line_no)?;
                    second_order.push(SecondOrderError {
                        op,
                        share,
                        positional_multipliers,
                    });
                }
                other => {
                    return Err(ParseModelError::UnknownKey {
                        line: line_no,
                        key: other.to_owned(),
                    })
                }
            }
        }

        let model = LearnedModel {
            strand_len: strand_len
                .ok_or(ParseModelError::MissingRequired { field: "strand_len" })?,
            per_base,
            substitution,
            long_deletion,
            spatial_multipliers: spatial,
            second_order,
            aggregate_error_rate: aggregate.ok_or(ParseModelError::MissingRequired {
                field: "aggregate_error_rate",
            })?,
            homopolymer_boost,
        };
        model.validate().map_err(ParseModelError::Validation)?;
        Ok(model)
    }
}

fn parse_next<'a, T: FromStr, I: Iterator<Item = &'a str>>(
    fields: &mut I,
    line: usize,
    key: &str,
) -> Result<T, ParseModelError> {
    let token = fields.next().ok_or_else(|| ParseModelError::MissingField {
        line,
        key: key.to_owned(),
    })?;
    token.parse().map_err(|_| ParseModelError::InvalidValue {
        line,
        token: token.to_owned(),
    })
}

fn parse_rest<'a, I: Iterator<Item = &'a str>>(
    fields: &mut I,
    line: usize,
) -> Result<Vec<f64>, ParseModelError> {
    fields
        .map(|t| {
            t.parse().map_err(|_| ParseModelError::InvalidValue {
                line,
                token: t.to_owned(),
            })
        })
        .collect()
}

/// Compact token for a specific error op (`-A`, `+G`, `T>C`).
fn op_token(op: EditOp) -> String {
    op.to_string()
}

fn parse_op(token: &str) -> Option<EditOp> {
    let chars: Vec<char> = token.chars().collect();
    match chars.as_slice() {
        ['-', b] => Base::try_from(*b).ok().map(EditOp::Delete),
        ['+', b] => Base::try_from(*b).ok().map(EditOp::Insert),
        [orig, '>', new] => {
            let orig = Base::try_from(*orig).ok()?;
            let new = Base::try_from(*new).ok()?;
            Some(EditOp::Subst { orig, new })
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ErrorStats, TieBreak};
    use dnasim_channel::{ErrorModel, NaiveModel};
    use dnasim_core::rng::seeded;
    use dnasim_core::Strand;

    fn learned_from_noise(seed: u64) -> LearnedModel {
        let model = NaiveModel::with_total_rate(0.08);
        let mut rng = seeded(seed);
        let mut stats = ErrorStats::new();
        for _ in 0..40 {
            let reference = Strand::random(60, &mut rng);
            for _ in 0..3 {
                let read = model.corrupt(&reference, &mut rng);
                stats.record_pair(&reference, &read, TieBreak::Random, &mut rng);
            }
        }
        LearnedModel::from_stats(&stats, 8)
    }

    #[test]
    fn round_trip_preserves_everything() {
        let model = learned_from_noise(1);
        let text = model.to_text();
        let back = LearnedModel::from_text(&text).unwrap();
        assert_eq!(back, model);
    }

    #[test]
    fn op_tokens_round_trip() {
        for op in [
            EditOp::Delete(Base::A),
            EditOp::Insert(Base::T),
            EditOp::Subst {
                orig: Base::G,
                new: Base::C,
            },
        ] {
            assert_eq!(parse_op(&op_token(op)), Some(op));
        }
        assert_eq!(parse_op("=A"), None);
        assert_eq!(parse_op("junk"), None);
    }

    #[test]
    fn rejects_foreign_header() {
        let err = LearnedModel::from_text("something else\n").unwrap_err();
        assert_eq!(err.line(), 1);
        assert!(err.to_string().contains("unexpected header"));
        assert_eq!(LearnedModel::from_text(""), Err(ParseModelError::Empty));
    }

    #[test]
    fn rejects_malformed_lines_with_location() {
        let model = learned_from_noise(2);
        let mut text = model.to_text();
        text.push_str("per_base X 0.1 0.1 0.1\n");
        let lines = text.trim_end().lines().count();
        let err = LearnedModel::from_text(&text).unwrap_err();
        assert_eq!(err.line(), lines);
        assert!(matches!(err, ParseModelError::InvalidValue { .. }));
    }

    #[test]
    fn missing_required_fields_are_reported() {
        let err = LearnedModel::from_text("dnasim-learned-model v1\n").unwrap_err();
        assert_eq!(err, ParseModelError::MissingRequired { field: "strand_len" });
        assert!(err.to_string().contains("strand_len"));
    }

    #[test]
    fn truncated_lines_report_key_and_line() {
        let err = LearnedModel::from_text("dnasim-learned-model v1\nstrand_len\n").unwrap_err();
        match err {
            ParseModelError::MissingField { line, ref key } => {
                assert_eq!(line, 2);
                assert_eq!(key, "strand_len");
            }
            other => panic!("unexpected: {other}"),
        }
    }

    #[test]
    fn unknown_keys_are_rejected_with_line() {
        let text = "dnasim-learned-model v1\nfrobnicate 1 2 3\n";
        let err = LearnedModel::from_text(text).unwrap_err();
        assert_eq!(
            err,
            ParseModelError::UnknownKey {
                line: 2,
                key: "frobnicate".to_owned()
            }
        );
    }

    #[test]
    fn nan_and_out_of_range_parameters_are_rejected() {
        let model = learned_from_noise(4);
        for (needle, replacement) in [
            ("aggregate_error_rate ", "aggregate_error_rate NaN #"),
            ("aggregate_error_rate ", "aggregate_error_rate inf #"),
            ("aggregate_error_rate ", "aggregate_error_rate -0.5 #"),
            ("aggregate_error_rate ", "aggregate_error_rate 1.5 #"),
            ("homopolymer_boost ", "homopolymer_boost NaN #"),
        ] {
            let mut text = model.to_text();
            let start = text.find(needle).unwrap();
            let end = start + text[start..].find('\n').unwrap();
            text.replace_range(start..end, replacement);
            let err = LearnedModel::from_text(&text).unwrap_err();
            assert!(
                matches!(err, ParseModelError::Validation(_)),
                "{replacement}: got {err:?}"
            );
        }
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let model = learned_from_noise(3);
        let mut text = String::from("dnasim-learned-model v1\n\n# a comment\n");
        text.push_str(model.to_text().split_once('\n').unwrap().1);
        let back = LearnedModel::from_text(&text).unwrap();
        assert_eq!(back, model);
    }
}
