//! Plain-text persistence for [`LearnedModel`].
//!
//! Profiling a large dataset is the expensive step of the workflow; saving
//! the distilled model lets the CLI (and downstream tools) resimulate many
//! times without re-profiling. The format is a simple line-oriented
//! `key value…` text — human-inspectable, diff-able, and dependency-free.

use std::fmt::Write as _;
use std::str::FromStr;

use dnasim_core::{Base, EditOp};

use crate::model::{BaseErrorRates, LearnedModel, LongDeletionParams, SecondOrderError};

/// Error returned when parsing a persisted [`LearnedModel`] fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseModelError {
    /// 1-based line number of the failure (0 for end-of-input).
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl std::fmt::Display for ParseModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseModelError {}

/// The format header; bump the version on breaking changes.
const HEADER: &str = "dnasim-learned-model v1";

impl LearnedModel {
    /// Serialises the model to the line-oriented text format.
    ///
    /// # Examples
    ///
    /// ```
    /// use dnasim_core::{rng::seeded, Cluster, Dataset, Strand};
    /// use dnasim_profile::{ErrorStats, LearnedModel, TieBreak};
    ///
    /// let reference: Strand = "ACGTACGT".parse()?;
    /// let cluster = Cluster::new(reference.clone(), vec!["ACGTACG".parse()?]);
    /// let dataset = Dataset::from_clusters(vec![cluster]);
    /// let mut rng = seeded(1);
    /// let stats = ErrorStats::from_dataset(&dataset, TieBreak::Random, &mut rng);
    /// let model = LearnedModel::from_stats(&stats, 10);
    ///
    /// let text = model.to_text();
    /// let back = LearnedModel::from_text(&text)?;
    /// assert_eq!(back, model);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{HEADER}");
        let _ = writeln!(out, "strand_len {}", self.strand_len);
        let _ = writeln!(out, "aggregate_error_rate {}", self.aggregate_error_rate);
        let _ = writeln!(out, "homopolymer_boost {}", self.homopolymer_boost);
        for base in Base::ALL {
            let r = self.per_base[base.index()];
            let _ = writeln!(
                out,
                "per_base {base} {} {} {}",
                r.substitution, r.deletion, r.insertion
            );
        }
        for orig in Base::ALL {
            let row = self.substitution[orig.index()];
            let _ = writeln!(
                out,
                "substitution {orig} {} {} {} {}",
                row[0], row[1], row[2], row[3]
            );
        }
        let _ = write!(out, "long_deletion {}", self.long_deletion.probability);
        for w in &self.long_deletion.length_weights {
            let _ = write!(out, " {w}");
        }
        out.push('\n');
        let _ = write!(out, "spatial");
        for m in &self.spatial_multipliers {
            let _ = write!(out, " {m}");
        }
        out.push('\n');
        for so in &self.second_order {
            let _ = write!(out, "second_order {} {}", op_token(so.op), so.share);
            for m in &so.positional_multipliers {
                let _ = write!(out, " {m}");
            }
            out.push('\n');
        }
        out
    }

    /// Parses a model previously written by [`to_text`](LearnedModel::to_text).
    ///
    /// # Errors
    ///
    /// [`ParseModelError`] for a missing/foreign header, malformed line, or
    /// missing required field.
    pub fn from_text(text: &str) -> Result<LearnedModel, ParseModelError> {
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, header)) if header.trim() == HEADER => {}
            Some((_, other)) => {
                return Err(ParseModelError {
                    line: 1,
                    message: format!("unexpected header '{other}', expected '{HEADER}'"),
                })
            }
            None => {
                return Err(ParseModelError {
                    line: 0,
                    message: "empty input".to_owned(),
                })
            }
        }

        let mut strand_len: Option<usize> = None;
        let mut aggregate: Option<f64> = None;
        let mut homopolymer_boost = 1.0f64;
        let mut per_base = [BaseErrorRates::default(); 4];
        let mut substitution = [[0.0f64; 4]; 4];
        let mut long_deletion = LongDeletionParams::default();
        let mut spatial: Vec<f64> = Vec::new();
        let mut second_order: Vec<SecondOrderError> = Vec::new();

        for (idx, raw) in lines {
            let line_no = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut fields = line.split_whitespace();
            let key = fields.next().expect("non-empty line has a first token");
            let err = |message: String| ParseModelError {
                line: line_no,
                message,
            };
            match key {
                "strand_len" => {
                    strand_len = Some(parse_next(&mut fields).map_err(err)?);
                }
                "aggregate_error_rate" => {
                    aggregate = Some(parse_next(&mut fields).map_err(err)?);
                }
                "homopolymer_boost" => {
                    homopolymer_boost = parse_next(&mut fields).map_err(err)?;
                }
                "per_base" => {
                    let base: Base = parse_next(&mut fields).map_err(err)?;
                    per_base[base.index()] = BaseErrorRates {
                        substitution: parse_next(&mut fields).map_err(err)?,
                        deletion: parse_next(&mut fields).map_err(err)?,
                        insertion: parse_next(&mut fields).map_err(err)?,
                    };
                }
                "substitution" => {
                    let orig: Base = parse_next(&mut fields).map_err(err)?;
                    for slot in substitution[orig.index()].iter_mut() {
                        *slot = parse_next(&mut fields).map_err(err)?;
                    }
                }
                "long_deletion" => {
                    long_deletion.probability = parse_next(&mut fields).map_err(err)?;
                    long_deletion.length_weights = parse_rest(&mut fields).map_err(err)?;
                }
                "spatial" => {
                    spatial = parse_rest(&mut fields).map_err(err)?;
                }
                "second_order" => {
                    let op_text = fields
                        .next()
                        .ok_or_else(|| err("missing op token".to_owned()))?;
                    let op = parse_op(op_text)
                        .ok_or_else(|| err(format!("invalid op token '{op_text}'")))?;
                    let share: f64 = parse_next(&mut fields).map_err(err)?;
                    let positional_multipliers = parse_rest(&mut fields).map_err(err)?;
                    second_order.push(SecondOrderError {
                        op,
                        share,
                        positional_multipliers,
                    });
                }
                other => return Err(err(format!("unknown key '{other}'"))),
            }
        }

        Ok(LearnedModel {
            strand_len: strand_len.ok_or(ParseModelError {
                line: 0,
                message: "missing strand_len".to_owned(),
            })?,
            per_base,
            substitution,
            long_deletion,
            spatial_multipliers: spatial,
            second_order,
            aggregate_error_rate: aggregate.ok_or(ParseModelError {
                line: 0,
                message: "missing aggregate_error_rate".to_owned(),
            })?,
            homopolymer_boost,
        })
    }
}

fn parse_next<'a, T: FromStr, I: Iterator<Item = &'a str>>(
    fields: &mut I,
) -> Result<T, String> {
    let token = fields.next().ok_or("missing field")?;
    token
        .parse()
        .map_err(|_| format!("invalid value '{token}'"))
}

fn parse_rest<'a, I: Iterator<Item = &'a str>>(fields: &mut I) -> Result<Vec<f64>, String> {
    fields
        .map(|t| t.parse().map_err(|_| format!("invalid value '{t}'")))
        .collect()
}

/// Compact token for a specific error op (`-A`, `+G`, `T>C`).
fn op_token(op: EditOp) -> String {
    op.to_string()
}

fn parse_op(token: &str) -> Option<EditOp> {
    let chars: Vec<char> = token.chars().collect();
    match chars.as_slice() {
        ['-', b] => Base::try_from(*b).ok().map(EditOp::Delete),
        ['+', b] => Base::try_from(*b).ok().map(EditOp::Insert),
        [orig, '>', new] => {
            let orig = Base::try_from(*orig).ok()?;
            let new = Base::try_from(*new).ok()?;
            Some(EditOp::Subst { orig, new })
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ErrorStats, TieBreak};
    use dnasim_channel::{ErrorModel, NaiveModel};
    use dnasim_core::rng::seeded;
    use dnasim_core::Strand;

    fn learned_from_noise(seed: u64) -> LearnedModel {
        let model = NaiveModel::with_total_rate(0.08);
        let mut rng = seeded(seed);
        let mut stats = ErrorStats::new();
        for _ in 0..40 {
            let reference = Strand::random(60, &mut rng);
            for _ in 0..3 {
                let read = model.corrupt(&reference, &mut rng);
                stats.record_pair(&reference, &read, TieBreak::Random, &mut rng);
            }
        }
        LearnedModel::from_stats(&stats, 8)
    }

    #[test]
    fn round_trip_preserves_everything() {
        let model = learned_from_noise(1);
        let text = model.to_text();
        let back = LearnedModel::from_text(&text).unwrap();
        assert_eq!(back, model);
    }

    #[test]
    fn op_tokens_round_trip() {
        for op in [
            EditOp::Delete(Base::A),
            EditOp::Insert(Base::T),
            EditOp::Subst {
                orig: Base::G,
                new: Base::C,
            },
        ] {
            assert_eq!(parse_op(&op_token(op)), Some(op));
        }
        assert_eq!(parse_op("=A"), None);
        assert_eq!(parse_op("junk"), None);
    }

    #[test]
    fn rejects_foreign_header() {
        let err = LearnedModel::from_text("something else\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("unexpected header"));
        assert!(LearnedModel::from_text("").is_err());
    }

    #[test]
    fn rejects_malformed_lines_with_location() {
        let model = learned_from_noise(2);
        let mut text = model.to_text();
        text.push_str("per_base X 0.1 0.1 0.1\n");
        let lines = text.trim_end().lines().count();
        let err = LearnedModel::from_text(&text).unwrap_err();
        assert_eq!(err.line, lines);
    }

    #[test]
    fn missing_required_fields_are_reported() {
        let err = LearnedModel::from_text("dnasim-learned-model v1\n").unwrap_err();
        assert!(err.message.contains("strand_len"));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let model = learned_from_noise(3);
        let mut text = String::from("dnasim-learned-model v1\n\n# a comment\n");
        text.push_str(model.to_text().split_once('\n').unwrap().1);
        let back = LearnedModel::from_text(&text).unwrap();
        assert_eq!(back, model);
    }

}
