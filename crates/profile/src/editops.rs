//! Recovering the most-likely error sequence from a (reference, read) pair
//! — the paper's Appendix B algorithm.
//!
//! The true sequence of channel errors is unobservable: several different
//! error sequences can map a reference to the same read. Following the
//! paper, we use the *minimum edit-distance operations* as a
//! maximum-likelihood proxy, and break ties between equal-cost operation
//! sequences **randomly** so that no error kind is systematically
//! over-counted (the deterministic alternative is kept for ablation).

use dnasim_core::{Base, EditOp, EditScript, Strand};
use dnasim_core::rng::{Rng, RngExt};

/// Tie-breaking policy when several minimal edit paths exist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TieBreak {
    /// Choose uniformly at random among minimal predecessors (paper
    /// behaviour, `ChooseRandomAndInsertOp`).
    Random,
    /// Prefer substitution, then deletion, then insertion — a fixed order
    /// that biases the recovered statistics (used to ablate the effect of
    /// randomisation).
    PreferSubstitution,
}

/// Reusable DP-matrix buffer for [`edit_script_with`].
///
/// The edit-script DP allocates an `O(m·n)` matrix per (reference, read)
/// pair; profiling a dataset or refining a consensus calls it once per
/// read, so hot loops allocate one scratch and thread it through every
/// call. The buffer only ever grows, to the largest pair seen.
#[derive(Debug, Clone, Default)]
pub struct EditScratch {
    dp: Vec<u32>,
}

impl EditScratch {
    /// Creates an empty scratch; the matrix grows on first use.
    pub fn new() -> EditScratch {
        EditScratch::default()
    }
}

/// Computes a minimal [`EditScript`] transforming `reference` into `read`.
///
/// The returned script's [`error_count`](EditScript::error_count) equals
/// the Levenshtein distance between the two strands, and applying the
/// script to `reference` reproduces `read` exactly.
///
/// Allocates a fresh DP matrix per call; loops over many reads should use
/// [`edit_script_with`] with a shared [`EditScratch`].
///
/// # Examples
///
/// ```
/// use dnasim_core::{rng::seeded, Strand};
/// use dnasim_profile::{edit_script, TieBreak};
///
/// let reference: Strand = "AGCG".parse()?;
/// let read: Strand = "AGG".parse()?;
/// let mut rng = seeded(1);
/// let script = edit_script(&reference, &read, TieBreak::Random, &mut rng);
/// assert_eq!(script.error_count(), 1);
/// assert_eq!(script.apply(&reference).unwrap(), read);
/// # Ok::<(), dnasim_core::ParseStrandError>(())
/// ```
pub fn edit_script<R: Rng + ?Sized>(
    reference: &Strand,
    read: &Strand,
    tie_break: TieBreak,
    rng: &mut R,
) -> EditScript {
    edit_script_with(&mut EditScratch::new(), reference, read, tie_break, rng)
}

/// [`edit_script`] with a caller-provided scratch buffer — identical
/// output, no per-call matrix allocation once the scratch has grown.
pub fn edit_script_with<R: Rng + ?Sized>(
    scratch: &mut EditScratch,
    reference: &Strand,
    read: &Strand,
    tie_break: TieBreak,
    rng: &mut R,
) -> EditScript {
    let a = reference.as_bases();
    let b = read.as_bases();
    let (m, n) = (a.len(), b.len());

    // Full DP matrix: dp[i][j] = Levenshtein distance between a[..i], b[..j].
    // Strands are short (~100s of bases), so the O(m·n) matrix is cheap and
    // lets the traceback consider every minimal predecessor. Every cell in
    // the active window is written before it is read, so stale contents
    // from a previous call never leak into the result.
    let width = n + 1;
    let size = (m + 1) * width;
    if scratch.dp.len() < size {
        scratch.dp.resize(size, 0);
    }
    let dp = &mut scratch.dp[..size];
    for (j, cell) in dp.iter_mut().enumerate().take(n + 1) {
        *cell = j as u32;
    }
    for i in 1..=m {
        dp[i * width] = i as u32;
        for j in 1..=n {
            let cost = if a[i - 1] == b[j - 1] { 0 } else { 1 };
            let diag = dp[(i - 1) * width + (j - 1)] + cost;
            let up = dp[(i - 1) * width + j] + 1;
            let left = dp[i * width + (j - 1)] + 1;
            dp[i * width + j] = diag.min(up).min(left);
        }
    }

    // Traceback from (m, n), collecting ops in reverse.
    let mut ops: Vec<EditOp> = Vec::with_capacity(m.max(n));
    let (mut i, mut j) = (m, n);
    // Reused candidate buffer for the ≤3 minimal predecessors at each cell.
    let mut candidates: [Option<EditOp>; 3] = [None; 3];
    while i > 0 || j > 0 {
        let here = dp[i * width + j];
        if i > 0 && j > 0 && a[i - 1] == b[j - 1] {
            // Matching characters always admit the zero-cost diagonal (the
            // paper's EQUAL branch is unconditional).
            ops.push(EditOp::Equal(a[i - 1]));
            i -= 1;
            j -= 1;
            continue;
        }
        let mut count = 0;
        if i > 0 && j > 0 && dp[(i - 1) * width + (j - 1)] + 1 == here {
            candidates[count] = Some(EditOp::Subst {
                orig: a[i - 1],
                new: b[j - 1],
            });
            count += 1;
        }
        if i > 0 && dp[(i - 1) * width + j] + 1 == here {
            candidates[count] = Some(EditOp::Delete(a[i - 1]));
            count += 1;
        }
        if j > 0 && dp[i * width + (j - 1)] + 1 == here {
            candidates[count] = Some(EditOp::Insert(b[j - 1]));
            count += 1;
        }
        debug_assert!(count > 0, "traceback stuck at ({i}, {j})");
        let pick = match tie_break {
            TieBreak::Random => rng.random_range(0..count),
            TieBreak::PreferSubstitution => 0,
        };
        let Some(op) = candidates.get(pick).copied().flatten() else {
            // A well-formed DP table always admits a predecessor; if the
            // invariant is ever violated, stop the traceback rather than
            // panic — the partial script is still a valid edit script.
            break;
        };
        match op {
            EditOp::Subst { .. } | EditOp::Equal(_) => {
                i = i.saturating_sub(1);
                j = j.saturating_sub(1);
            }
            EditOp::Delete(_) => i = i.saturating_sub(1),
            EditOp::Insert(_) => j = j.saturating_sub(1),
        }
        ops.push(op);
    }
    ops.reverse();
    EditScript::from_ops(ops)
}

/// Convenience wrapper: the Levenshtein distance via the edit-script DP.
///
/// Exposed so callers that already pay for the script can assert
/// consistency with `dnasim_metrics::levenshtein` cheaply in tests.
pub fn edit_distance(reference: &Strand, read: &Strand) -> usize {
    let a = reference.as_bases();
    let b = read.as_bases();
    let mut row: Vec<usize> = (0..=b.len()).collect();
    for (i, ax) in a.iter().enumerate() {
        let mut diag = row[0];
        row[0] = i + 1;
        for (j, bx) in b.iter().enumerate() {
            let cost = if ax == bx { 0 } else { 1 };
            let next = (diag + cost).min(row[j] + 1).min(row[j + 1] + 1);
            diag = row[j + 1];
            row[j + 1] = next;
        }
    }
    row[b.len()]
}

/// A base paired with its position, used when reporting recovered errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PositionedBase {
    /// 0-based position in the reference strand.
    pub position: usize,
    /// The base at that position.
    pub base: Base,
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnasim_core::rng::seeded;

    fn s(text: &str) -> Strand {
        text.parse().unwrap()
    }

    #[test]
    fn identity_yields_all_equal() {
        let r = s("ACGTACGT");
        let mut rng = seeded(1);
        let script = edit_script(&r, &r.clone(), TieBreak::Random, &mut rng);
        assert_eq!(script.error_count(), 0);
        assert_eq!(script.len(), 8);
        assert_eq!(script.apply(&r).unwrap(), r);
    }

    #[test]
    fn paper_example_agcg_agg() {
        // Reference AGCG, read AGG: minimal script has exactly one error.
        let mut rng = seeded(2);
        let script = edit_script(&s("AGCG"), &s("AGG"), TieBreak::Random, &mut rng);
        assert_eq!(script.error_count(), 1);
        assert_eq!(script.apply(&s("AGCG")).unwrap(), s("AGG"));
    }

    #[test]
    fn script_applies_back_to_read() {
        let cases = [
            ("ACGT", "ACGT"),
            ("ACGT", ""),
            ("", "ACGT"),
            ("AGCG", "AGG"),
            ("AAAA", "TTTT"),
            ("GATTACA", "GCATGCT"),
            ("ACGTACGTACGT", "AGTACGGTACT"),
        ];
        let mut rng = seeded(3);
        for (a, b) in cases {
            let (a, b) = (s(a), s(b));
            for tb in [TieBreak::Random, TieBreak::PreferSubstitution] {
                let script = edit_script(&a, &b, tb, &mut rng);
                assert_eq!(script.apply(&a).unwrap(), b, "{a} -> {b}");
                assert_eq!(script.error_count(), edit_distance(&a, &b), "{a} -> {b}");
            }
        }
    }

    #[test]
    fn pure_insertions_and_deletions() {
        let mut rng = seeded(4);
        let script = edit_script(&s("ACGT"), &Strand::new(), TieBreak::Random, &mut rng);
        assert_eq!(script.error_kind_counts(), [0, 4, 0]);
        let script = edit_script(&Strand::new(), &s("AC"), TieBreak::Random, &mut rng);
        assert_eq!(script.error_kind_counts(), [0, 0, 2]);
    }

    #[test]
    fn deterministic_tiebreak_is_reproducible() {
        let a = s("ACGTACGT");
        let b = s("TGCATGCA");
        let mut r1 = seeded(7);
        let mut r2 = seeded(99); // different rng: deterministic mode must not consult it
        let s1 = edit_script(&a, &b, TieBreak::PreferSubstitution, &mut r1);
        let s2 = edit_script(&a, &b, TieBreak::PreferSubstitution, &mut r2);
        assert_eq!(s1, s2);
    }

    #[test]
    fn random_tiebreak_is_seed_deterministic() {
        let a = s("ACGTAACGGT");
        let b = s("AGTACGT");
        let s1 = edit_script(&a, &b, TieBreak::Random, &mut seeded(5));
        let s2 = edit_script(&a, &b, TieBreak::Random, &mut seeded(5));
        assert_eq!(s1, s2);
    }

    #[test]
    fn random_tiebreak_explores_alternatives() {
        // AT -> TA admits three distinct minimal scripts (two substitutions,
        // or delete-then-insert in either order has cost 2 as well via
        // Subst+Subst vs Del+Ins combinations). Over many seeds the random
        // tie-break should produce more than one distinct script, while the
        // deterministic mode always produces the same one.
        let a = s("AT");
        let b = s("TA");
        let mut seen = std::collections::HashSet::new();
        for seed in 0..64 {
            let script = edit_script(&a, &b, TieBreak::Random, &mut seeded(seed));
            assert_eq!(script.error_count(), 2);
            seen.insert(format!("{:?}", script.ops()));
        }
        assert!(
            seen.len() > 1,
            "random tie-break never varied the script: {seen:?}"
        );
    }

    #[test]
    fn long_deletion_recovered_as_run() {
        let a = s("ACGTTTTACG");
        let b = s("ACGACG"); // TTTT deleted
        let mut rng = seeded(8);
        let script = edit_script(&a, &b, TieBreak::Random, &mut rng);
        assert_eq!(script.error_count(), 4);
        assert_eq!(script.deletion_run_lengths(), vec![4]);
    }

    #[test]
    fn substitution_preferred_mode_counts() {
        // Same-length unequal strands: PreferSubstitution yields pure subs.
        let a = s("AAAA");
        let b = s("TTTT");
        let mut rng = seeded(9);
        let script = edit_script(&a, &b, TieBreak::PreferSubstitution, &mut rng);
        assert_eq!(script.error_kind_counts(), [4, 0, 0]);
    }
}
