//! The distilled, data-driven channel parameterisation.
//!
//! [`LearnedModel`] packages everything [`ErrorStats`](crate::ErrorStats)
//! recovered from real data into the exact parameters the simulator layers
//! consume: conditional per-base error rates, the substitution confusion
//! matrix, long-deletion statistics, the spatial multiplier curve, and the
//! top-k second-order errors with their positional skews.

use dnasim_core::{Base, EditOp, ErrorKind};

use crate::stats::ErrorStats;

/// Conditional error rates for one reference base.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BaseErrorRates {
    /// `P(substitution | base)`.
    pub substitution: f64,
    /// `P(deletion | base)` (single-base deletions).
    pub deletion: f64,
    /// `P(insertion | base)` (insertion before this base).
    pub insertion: f64,
}

impl BaseErrorRates {
    /// Sum of the three conditional rates.
    pub fn total(&self) -> f64 {
        self.substitution + self.deletion + self.insertion
    }

    /// The rate for a given error kind.
    pub fn rate(&self, kind: ErrorKind) -> f64 {
        match kind {
            ErrorKind::Substitution => self.substitution,
            ErrorKind::Deletion => self.deletion,
            ErrorKind::Insertion => self.insertion,
        }
    }
}

/// Long-deletion (run length ≥ 2) parameters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LongDeletionParams {
    /// Probability per reference base of starting a long deletion.
    pub probability: f64,
    /// `weights[i]` is the relative frequency of runs of length `i + 2`
    /// (the paper reports 2: 84%, 3: 13%, 4: 1.8%, 5: 0.2%, 6: 0.02%).
    pub length_weights: Vec<f64>,
}

impl LongDeletionParams {
    /// Mean run length under `length_weights`; 0.0 if empty.
    pub fn mean_length(&self) -> f64 {
        let total: f64 = self.length_weights.iter().sum();
        if total <= 0.0 {
            return 0.0;
        }
        self.length_weights
            .iter()
            .enumerate()
            .map(|(i, w)| (i + 2) as f64 * w)
            .sum::<f64>()
            / total
    }
}

/// One of the top-k specific (second-order) errors with its spatial skew.
#[derive(Debug, Clone, PartialEq)]
pub struct SecondOrderError {
    /// The specific error, e.g. `Insert(A)` or `Subst{T→C}`.
    pub op: EditOp,
    /// Fraction of *all* errors this specific error accounts for.
    pub share: f64,
    /// Positional multipliers (mean 1.0 over the strand): where this
    /// specific error concentrates relative to uniform.
    pub positional_multipliers: Vec<f64>,
}

/// A fully data-driven channel parameterisation learned from real data.
///
/// # Examples
///
/// ```
/// use dnasim_core::{rng::seeded, Cluster, Dataset, Strand};
/// use dnasim_profile::{ErrorStats, LearnedModel, TieBreak};
///
/// let reference: Strand = "ACGTACGT".parse()?;
/// let cluster = Cluster::new(reference.clone(), vec!["ACGTACG".parse()?]);
/// let dataset = Dataset::from_clusters(vec![cluster]);
/// let mut rng = seeded(1);
/// let stats = ErrorStats::from_dataset(&dataset, TieBreak::Random, &mut rng);
/// let model = LearnedModel::from_stats(&stats, 10);
/// assert_eq!(model.strand_len, 8);
/// assert!(model.aggregate_error_rate > 0.0);
/// # Ok::<(), dnasim_core::ParseStrandError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LearnedModel {
    /// Reference strand length the model was learned on.
    pub strand_len: usize,
    /// Conditional error rates per reference base (`[A, C, G, T]` order).
    pub per_base: [BaseErrorRates; 4],
    /// `substitution[orig][new]` = `P(new | substitution at orig)`.
    pub substitution: [[f64; 4]; 4],
    /// Long-deletion parameters.
    pub long_deletion: LongDeletionParams,
    /// Spatial multipliers per position (mean 1.0): how much more/less
    /// error-prone each position is than the strand average.
    pub spatial_multipliers: Vec<f64>,
    /// The top-k specific errors with their own positional skews.
    pub second_order: Vec<SecondOrderError>,
    /// Overall errors per reference base.
    pub aggregate_error_rate: f64,
    /// Error-rate multiplier inside homopolymer runs (≥ 3) relative to the
    /// rest of the strand.
    pub homopolymer_boost: f64,
}

impl LearnedModel {
    /// Distils `stats` into channel parameters, keeping the `top_k` most
    /// common second-order errors.
    pub fn from_stats(stats: &ErrorStats, top_k: usize) -> LearnedModel {
        let mut per_base = [BaseErrorRates::default(); 4];
        for b in Base::ALL {
            per_base[b.index()] = BaseErrorRates {
                substitution: stats.conditional_probability(b, ErrorKind::Substitution),
                deletion: stats.conditional_probability(b, ErrorKind::Deletion),
                insertion: stats.conditional_probability(b, ErrorKind::Insertion),
            };
        }
        let mut substitution = [[0.0f64; 4]; 4];
        for b in Base::ALL {
            substitution[b.index()] = stats.substitution_distribution(b);
        }
        let hist = stats.deletion_run_histogram();
        let long_total: usize = hist.iter().skip(2).sum();
        let length_weights: Vec<f64> = if long_total == 0 {
            Vec::new()
        } else {
            hist.iter()
                .skip(2)
                .map(|&n| n as f64 / long_total as f64)
                .collect()
        };
        let long_deletion = LongDeletionParams {
            probability: stats.long_deletion_probability(),
            length_weights,
        };
        let spatial_multipliers = normalize_to_mean_one(&stats.positional_rates());
        let (top, _) = stats.top_second_order(top_k);
        let total_errors = stats.total_errors().max(1);
        let second_order = top
            .into_iter()
            .map(|(op, stat)| SecondOrderError {
                op,
                share: stat.count as f64 / total_errors as f64,
                positional_multipliers: normalize_to_mean_one(
                    &stat.positional.iter().map(|&c| c as f64).collect::<Vec<_>>(),
                ),
            })
            .collect();
        LearnedModel {
            strand_len: stats.strand_len(),
            per_base,
            substitution,
            long_deletion,
            spatial_multipliers,
            second_order,
            aggregate_error_rate: stats.aggregate_error_rate(),
            homopolymer_boost: stats.homopolymer_boost(),
        }
    }

    /// Mean conditional error rate across the four bases, weighting bases
    /// equally.
    pub fn mean_base_error_rate(&self) -> f64 {
        self.per_base.iter().map(BaseErrorRates::total).sum::<f64>() / 4.0
    }

    /// The spatial multiplier at `position`, defaulting to 1.0 beyond the
    /// learned strand length.
    pub fn spatial_multiplier(&self, position: usize) -> f64 {
        self.spatial_multipliers.get(position).copied().unwrap_or(1.0)
    }

    /// Fraction of all errors covered by the retained second-order errors.
    pub fn second_order_share(&self) -> f64 {
        self.second_order.iter().map(|e| e.share).sum()
    }

    /// Checks every learned parameter is inside its valid domain:
    /// probabilities finite and in `[0, 1]`, multipliers and weights finite
    /// and non-negative.
    ///
    /// Models learned by [`from_stats`](LearnedModel::from_stats) always
    /// pass; this guards models loaded from disk (or synthesized by a fault
    /// injector) before they reach a simulator, where a NaN would silently
    /// disable error injection and an out-of-range rate would distort every
    /// downstream statistic.
    ///
    /// # Errors
    ///
    /// [`ModelValidationError`] naming the first offending parameter.
    pub fn validate(&self) -> Result<(), ModelValidationError> {
        let probability = |field: &str, value: f64| {
            if value.is_finite() && (0.0..=1.0).contains(&value) {
                Ok(())
            } else {
                Err(ModelValidationError {
                    field: field.to_owned(),
                    value,
                })
            }
        };
        let non_negative = |field: &str, value: f64| {
            if value.is_finite() && value >= 0.0 {
                Ok(())
            } else {
                Err(ModelValidationError {
                    field: field.to_owned(),
                    value,
                })
            }
        };
        probability("aggregate_error_rate", self.aggregate_error_rate)?;
        non_negative("homopolymer_boost", self.homopolymer_boost)?;
        for (base, rates) in Base::ALL.into_iter().zip(&self.per_base) {
            probability(&format!("per_base[{base}].substitution"), rates.substitution)?;
            probability(&format!("per_base[{base}].deletion"), rates.deletion)?;
            probability(&format!("per_base[{base}].insertion"), rates.insertion)?;
        }
        for (orig, row) in Base::ALL.into_iter().zip(&self.substitution) {
            for (new, &p) in Base::ALL.into_iter().zip(row) {
                non_negative(&format!("substitution[{orig}][{new}]"), p)?;
            }
        }
        probability("long_deletion.probability", self.long_deletion.probability)?;
        for (i, &w) in self.long_deletion.length_weights.iter().enumerate() {
            non_negative(&format!("long_deletion.length_weights[{i}]"), w)?;
        }
        for (i, &m) in self.spatial_multipliers.iter().enumerate() {
            non_negative(&format!("spatial_multipliers[{i}]"), m)?;
        }
        for (i, so) in self.second_order.iter().enumerate() {
            probability(&format!("second_order[{i}].share"), so.share)?;
            for (j, &m) in so.positional_multipliers.iter().enumerate() {
                non_negative(&format!("second_order[{i}].positional_multipliers[{j}]"), m)?;
            }
        }
        Ok(())
    }
}

/// A learned-model parameter outside its valid domain (NaN, infinite, a
/// negative weight, or a probability beyond `[0, 1]`).
#[derive(Debug, Clone, PartialEq)]
pub struct ModelValidationError {
    /// The rejected parameter.
    pub field: String,
    /// Its offending value.
    pub value: f64,
}

impl std::fmt::Display for ModelValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "model parameter {} has out-of-domain value {}",
            self.field, self.value
        )
    }
}

impl std::error::Error for ModelValidationError {}

impl From<ModelValidationError> for dnasim_core::DnasimError {
    fn from(e: ModelValidationError) -> dnasim_core::DnasimError {
        dnasim_core::DnasimError::config(e.field, format!("out-of-domain value {}", e.value))
    }
}

/// Scales a non-negative vector so its mean is 1.0 (all-ones if the input
/// sums to zero or is empty).
fn normalize_to_mean_one(values: &[f64]) -> Vec<f64> {
    if values.is_empty() {
        return Vec::new();
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    if mean <= 0.0 {
        return vec![1.0; values.len()];
    }
    values.iter().map(|&v| v / mean).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::editops::TieBreak;
    use dnasim_core::rng::seeded;
    use dnasim_core::Strand;

    fn s(text: &str) -> Strand {
        text.parse().unwrap()
    }

    fn stats_from(pairs: &[(&str, &str)]) -> ErrorStats {
        let mut stats = ErrorStats::new();
        let mut rng = seeded(1);
        for (a, b) in pairs {
            stats.record_pair(&s(a), &s(b), TieBreak::Random, &mut rng);
        }
        stats
    }

    #[test]
    fn clean_data_yields_zero_rates() {
        let stats = stats_from(&[("ACGTACGT", "ACGTACGT")]);
        let model = LearnedModel::from_stats(&stats, 10);
        assert_eq!(model.aggregate_error_rate, 0.0);
        assert_eq!(model.mean_base_error_rate(), 0.0);
        assert!(model.second_order.is_empty());
        // Spatial multipliers fall back to uniform.
        assert!(model.spatial_multipliers.iter().all(|&m| (m - 1.0).abs() < 1e-12));
    }

    #[test]
    fn spatial_multipliers_have_mean_one() {
        let stats = stats_from(&[
            ("AACC", "AACT"),
            ("AACC", "AACG"),
            ("AACC", "AACC"),
            ("AACC", "TACC"),
        ]);
        let model = LearnedModel::from_stats(&stats, 10);
        let mean =
            model.spatial_multipliers.iter().sum::<f64>() / model.spatial_multipliers.len() as f64;
        assert!((mean - 1.0).abs() < 1e-9);
        // Errors concentrated at the last position → multiplier > 1 there.
        assert!(model.spatial_multiplier(3) > model.spatial_multiplier(1));
    }

    #[test]
    fn long_deletion_params_learned() {
        let stats = stats_from(&[("ACTTGG", "ACGG"), ("ACTTGG", "ACTTGG")]);
        let model = LearnedModel::from_stats(&stats, 10);
        assert!(model.long_deletion.probability > 0.0);
        assert_eq!(model.long_deletion.length_weights, vec![1.0]);
        assert_eq!(model.long_deletion.mean_length(), 2.0);
    }

    #[test]
    fn long_deletion_mean_empty_is_zero() {
        let params = LongDeletionParams::default();
        assert_eq!(params.mean_length(), 0.0);
    }

    #[test]
    fn second_order_shares_sum_to_at_most_one() {
        let stats = stats_from(&[
            ("AAAA", "AGAA"),
            ("AAAA", "AGAA"),
            ("CCCC", "CCC"),
            ("GGGG", "GGGGT"),
        ]);
        let model = LearnedModel::from_stats(&stats, 2);
        assert_eq!(model.second_order.len(), 2);
        assert!(model.second_order_share() <= 1.0 + 1e-12);
        assert!(model.second_order[0].share >= model.second_order[1].share);
    }

    #[test]
    fn substitution_rows_are_distributions() {
        let stats = stats_from(&[("AAAA", "AGAA"), ("TTTT", "TCTT")]);
        let model = LearnedModel::from_stats(&stats, 10);
        for b in Base::ALL {
            let row = model.substitution[b.index()];
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert_eq!(row[b.index()], 0.0);
        }
    }

    #[test]
    fn spatial_multiplier_defaults_past_end() {
        let stats = stats_from(&[("AC", "AT")]);
        let model = LearnedModel::from_stats(&stats, 10);
        assert_eq!(model.spatial_multiplier(100), 1.0);
    }

    #[test]
    fn base_error_rates_accessor() {
        let rates = BaseErrorRates {
            substitution: 0.01,
            deletion: 0.02,
            insertion: 0.03,
        };
        assert!((rates.total() - 0.06).abs() < 1e-12);
        assert_eq!(rates.rate(ErrorKind::Deletion), 0.02);
    }
}
