//! Error-statistics extraction from clustered sequencing data.
//!
//! Given a dataset of (reference, noisy reads) clusters, [`ErrorStats`]
//! recovers a per-read edit script (Appendix B) and accumulates every
//! statistic the paper's simulator layers are parameterised by:
//! conditional per-base error probabilities, the substitution confusion
//! matrix, long-deletion run lengths, the spatial (positional) error
//! distribution, and the second-order (base-specific) error spectrum.

use std::collections::HashMap;

use dnasim_core::{
    Base, Cluster, ClusterSource, Dataset, DnasimError, EditOp, EditScript, ErrorKind, Strand,
    WindowStats,
};
use dnasim_core::rng::Rng;

use crate::editops::{edit_script_with, EditScratch, TieBreak};

/// Accumulated error statistics over a clustered dataset.
///
/// # Examples
///
/// ```
/// use dnasim_core::{rng::seeded, Cluster, Dataset, Strand};
/// use dnasim_profile::{ErrorStats, TieBreak};
///
/// let reference: Strand = "ACGTACGT".parse()?;
/// let cluster = Cluster::new(reference.clone(), vec!["ACGTACG".parse()?]);
/// let dataset = Dataset::from_clusters(vec![cluster]);
/// let mut rng = seeded(1);
/// let stats = ErrorStats::from_dataset(&dataset, TieBreak::Random, &mut rng);
/// assert_eq!(stats.total_errors(), 1);
/// assert!(stats.aggregate_error_rate() > 0.0);
/// # Ok::<(), dnasim_core::ParseStrandError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ErrorStats {
    strand_len: usize,
    reads: usize,
    total_ref_bases: usize,
    /// Reference-position occurrences per base (denominator for
    /// conditional probabilities).
    base_occurrences: [usize; 4],
    /// `[base][kind]` error counts, with insertions attributed to the base
    /// *before which* they occurred.
    base_errors: [[usize; 3]; 4],
    /// `[orig][new]` substitution counts.
    subst_matrix: [[usize; 4]; 4],
    /// `histogram[len]` = number of deletion runs of exactly `len` bases.
    deletion_run_histogram: Vec<usize>,
    /// Errors observed at each reference position.
    positional_errors: Vec<usize>,
    /// Reads covering each reference position (reads of references at least
    /// that long).
    positional_sites: Vec<usize>,
    /// Specific (second-order) error spectrum with per-error positions.
    second_order: HashMap<EditOp, SecondOrderStat>,
    /// `histogram[len]` = number of maximal consecutive-error runs of
    /// exactly `len` ops (any error kind) — the burst spectrum.
    burst_histogram: Vec<usize>,
    /// (sites, errors) at positions inside homopolymer runs of length ≥ 3.
    homopolymer: (usize, usize),
    /// (sites, errors) at all other positions.
    non_homopolymer: (usize, usize),
}

/// Counts for one specific (second-order) error, e.g. `Insert(A)` or
/// `Subst{G→C}`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SecondOrderStat {
    /// Total occurrences.
    pub count: usize,
    /// Occurrences per reference position.
    pub positional: Vec<usize>,
}

impl ErrorStats {
    /// Creates an empty accumulator.
    pub fn new() -> ErrorStats {
        ErrorStats::default()
    }

    /// Profiles an entire dataset.
    pub fn from_dataset<R: Rng + ?Sized>(
        dataset: &Dataset,
        tie_break: TieBreak,
        rng: &mut R,
    ) -> ErrorStats {
        let mut stats = ErrorStats::new();
        // One DP scratch for the whole dataset: the edit-script matrix is
        // the profiler's dominant allocation.
        let mut scratch = EditScratch::new();
        for cluster in dataset.iter() {
            stats.record_cluster_with(&mut scratch, cluster, tie_break, rng);
        }
        stats
    }

    /// Streaming counterpart of [`ErrorStats::from_dataset`]: pulls
    /// clusters from `source` in bounded batches of at most `batch_size`,
    /// profiles each batch into a batch-local accumulator, and
    /// [`merge`](ErrorStats::merge)s it into the running total.
    ///
    /// The RNG is threaded serially through clusters in global order —
    /// exactly as [`ErrorStats::from_dataset`] threads it — so the result
    /// is identical for every batch size (tie-break draws see the same
    /// RNG state either way).
    ///
    /// # Errors
    ///
    /// [`DnasimError::Config`] for `batch_size == 0`, or whatever the
    /// source reports.
    pub fn from_source<S, R>(
        source: &mut S,
        batch_size: usize,
        tie_break: TieBreak,
        rng: &mut R,
    ) -> Result<(ErrorStats, WindowStats), DnasimError>
    where
        S: ClusterSource + ?Sized,
        R: Rng + ?Sized,
    {
        if batch_size == 0 {
            return Err(DnasimError::config(
                "batch_size",
                "streaming batch size must be at least 1",
            ));
        }
        let mut total = ErrorStats::new();
        let mut window = WindowStats::default();
        let mut scratch = EditScratch::new();
        while let Some(batch) = source.next_batch(batch_size)? {
            if batch.is_empty() {
                continue;
            }
            window.record_window(batch.len(), dnasim_core::resident_reads(batch.clusters()));
            let mut partial = ErrorStats::new();
            for cluster in batch.clusters() {
                partial.record_cluster_with(&mut scratch, cluster, tie_break, rng);
            }
            total.merge(&partial);
        }
        Ok((total, window))
    }

    /// Records every read of one cluster.
    pub fn record_cluster<R: Rng + ?Sized>(
        &mut self,
        cluster: &Cluster,
        tie_break: TieBreak,
        rng: &mut R,
    ) {
        self.record_cluster_with(&mut EditScratch::new(), cluster, tie_break, rng);
    }

    /// [`record_cluster`](ErrorStats::record_cluster) with a shared DP
    /// scratch, for callers that profile many clusters.
    pub fn record_cluster_with<R: Rng + ?Sized>(
        &mut self,
        scratch: &mut EditScratch,
        cluster: &Cluster,
        tie_break: TieBreak,
        rng: &mut R,
    ) {
        for read in cluster.reads() {
            self.record_pair_with(scratch, cluster.reference(), read, tie_break, rng);
        }
    }

    /// Recovers an edit script for one (reference, read) pair and records it.
    pub fn record_pair<R: Rng + ?Sized>(
        &mut self,
        reference: &Strand,
        read: &Strand,
        tie_break: TieBreak,
        rng: &mut R,
    ) {
        self.record_pair_with(&mut EditScratch::new(), reference, read, tie_break, rng);
    }

    /// [`record_pair`](ErrorStats::record_pair) with a shared DP scratch.
    pub fn record_pair_with<R: Rng + ?Sized>(
        &mut self,
        scratch: &mut EditScratch,
        reference: &Strand,
        read: &Strand,
        tie_break: TieBreak,
        rng: &mut R,
    ) {
        let script = edit_script_with(scratch, reference, read, tie_break, rng);
        self.record_script(reference, &script);
    }

    /// Records a pre-computed edit script for `reference`.
    pub fn record_script(&mut self, reference: &Strand, script: &EditScript) {
        let len = reference.len();
        self.reads += 1;
        self.total_ref_bases += len;
        if len > self.strand_len {
            self.strand_len = len;
            self.positional_errors.resize(len, 0);
            self.positional_sites.resize(len, 0);
        }
        for site in self.positional_sites.iter_mut().take(len) {
            *site += 1;
        }
        for b in reference.iter() {
            self.base_occurrences[b.index()] += 1;
        }

        // Positions inside homopolymer runs of length ≥ 3 (sequencers are
        // disproportionately error-prone there; DNASimulator ignores this).
        let homopolymer_mask = homopolymer_mask(reference);
        for &inside in &homopolymer_mask {
            if inside {
                self.homopolymer.0 += 1;
            } else {
                self.non_homopolymer.0 += 1;
            }
        }

        let mut pos = 0usize;
        for &op in script.ops() {
            if let Some(kind) = op.kind() {
                // Attribute the error to the reference position it touches;
                // insertions to the base before which they occur, clamped
                // for end-of-strand inserts.
                let attributed = pos.min(len.saturating_sub(1));
                if len > 0 {
                    self.positional_errors[attributed] += 1;
                    if homopolymer_mask[attributed] {
                        self.homopolymer.1 += 1;
                    } else {
                        self.non_homopolymer.1 += 1;
                    }
                }
                let owner = match op {
                    EditOp::Subst { orig, .. } | EditOp::Delete(orig) => orig,
                    // Equal has kind() == None and never reaches here; fold
                    // it into the insertion attribution rather than panic.
                    EditOp::Insert(_) | EditOp::Equal(_) => {
                        reference.get(attributed).unwrap_or(Base::A)
                    }
                };
                self.base_errors[owner.index()][kind.index()] += 1;
                if let EditOp::Subst { orig, new } = op {
                    self.subst_matrix[orig.index()][new.index()] += 1;
                }
                let entry = self.second_order.entry(op).or_default();
                entry.count += 1;
                if entry.positional.len() < self.strand_len {
                    entry.positional.resize(self.strand_len, 0);
                }
                if len > 0 {
                    entry.positional[attributed] += 1;
                }
            }
            pos += op.reference_advance();
        }
        for run in script.error_run_lengths() {
            if self.burst_histogram.len() <= run {
                self.burst_histogram.resize(run + 1, 0);
            }
            self.burst_histogram[run] += 1;
        }
        for run in script.deletion_run_lengths() {
            if self.deletion_run_histogram.len() <= run {
                self.deletion_run_histogram.resize(run + 1, 0);
            }
            self.deletion_run_histogram[run] += 1;
        }
    }

    /// The longest reference length seen.
    pub fn strand_len(&self) -> usize {
        self.strand_len
    }

    /// Number of reads profiled.
    pub fn read_count(&self) -> usize {
        self.reads
    }

    /// Total errors of all kinds.
    pub fn total_errors(&self) -> usize {
        self.base_errors.iter().flatten().sum()
    }

    /// Aggregate error rate: errors per reference base (0.0 if empty).
    pub fn aggregate_error_rate(&self) -> f64 {
        if self.total_ref_bases == 0 {
            return 0.0;
        }
        self.total_errors() as f64 / self.total_ref_bases as f64
    }

    /// Conditional probability of error `kind` given reference base `base`:
    /// `P(kind | base)` per base occurrence.
    pub fn conditional_probability(&self, base: Base, kind: ErrorKind) -> f64 {
        let occ = self.base_occurrences[base.index()];
        if occ == 0 {
            return 0.0;
        }
        self.base_errors[base.index()][kind.index()] as f64 / occ as f64
    }

    /// `P(new | substitution at orig)`: the substitution confusion row for
    /// `orig`, normalised over the three possible targets. Uniform if no
    /// substitutions of `orig` were seen.
    pub fn substitution_distribution(&self, orig: Base) -> [f64; 4] {
        let row = &self.subst_matrix[orig.index()];
        let total: usize = row.iter().sum();
        let mut out = [0.0f64; 4];
        if total == 0 {
            for b in Base::ALL {
                if b != orig {
                    out[b.index()] = 1.0 / 3.0;
                }
            }
            return out;
        }
        for i in 0..4 {
            out[i] = row[i] as f64 / total as f64;
        }
        out
    }

    /// `histogram[len]` = number of deletion runs of exactly `len` deleted
    /// bases (index 0 and 1 cover "no run"/singletons).
    pub fn deletion_run_histogram(&self) -> &[usize] {
        &self.deletion_run_histogram
    }

    /// Probability per reference base of *starting* a long deletion
    /// (a run of length ≥ 2).
    pub fn long_deletion_probability(&self) -> f64 {
        if self.total_ref_bases == 0 {
            return 0.0;
        }
        let long_runs: usize = self
            .deletion_run_histogram
            .iter()
            .skip(2)
            .sum();
        long_runs as f64 / self.total_ref_bases as f64
    }

    /// Mean length of long-deletion runs (length ≥ 2); 0.0 if none.
    pub fn long_deletion_mean_length(&self) -> f64 {
        let (mut total, mut count) = (0usize, 0usize);
        for (len, &n) in self.deletion_run_histogram.iter().enumerate().skip(2) {
            total += len * n;
            count += n;
        }
        if count == 0 {
            return 0.0;
        }
        total as f64 / count as f64
    }

    /// Errors observed per reference position.
    pub fn positional_errors(&self) -> &[usize] {
        &self.positional_errors
    }

    /// Number of reads covering each reference position (the denominator
    /// of [`positional_rates`](ErrorStats::positional_rates)).
    pub fn positional_sites(&self) -> &[usize] {
        &self.positional_sites
    }

    /// Per-position error *rate*: errors at position `i` divided by reads
    /// covering position `i`.
    pub fn positional_rates(&self) -> Vec<f64> {
        self.positional_errors
            .iter()
            .zip(&self.positional_sites)
            .map(|(&e, &s)| if s == 0 { 0.0 } else { e as f64 / s as f64 })
            .collect()
    }

    /// `histogram[len]` = number of maximal consecutive-error runs of
    /// exactly `len` operations.
    pub fn burst_histogram(&self) -> &[usize] {
        &self.burst_histogram
    }

    /// Fraction of reads containing a burst of at least `min_len`
    /// consecutive errors. The paper's §1.2 defines Nanopore bursts as 5+
    /// consecutive corrupted bases.
    pub fn burst_read_fraction(&self, min_len: usize) -> f64 {
        if self.reads == 0 {
            return 0.0;
        }
        // Upper bound: each qualifying run is in some read; a read with two
        // bursts is counted twice, so clamp to 1.0.
        let bursts: usize = self
            .burst_histogram
            .iter()
            .skip(min_len)
            .sum();
        (bursts as f64 / self.reads as f64).min(1.0)
    }

    /// How much more error-prone homopolymer positions (runs ≥ 3) are than
    /// the rest of the strand: `rate(homopolymer) / rate(other)`. Returns
    /// 1.0 when either class has no observations.
    pub fn homopolymer_boost(&self) -> f64 {
        let (h_sites, h_errors) = self.homopolymer;
        let (o_sites, o_errors) = self.non_homopolymer;
        if h_sites == 0 || o_sites == 0 {
            return 1.0;
        }
        // Laplace-smoothed rates keep the ratio finite when one class saw
        // no errors.
        let h_rate = (h_errors as f64 + 0.5) / (h_sites as f64 + 1.0);
        let o_rate = (o_errors as f64 + 0.5) / (o_sites as f64 + 1.0);
        h_rate / o_rate
    }

    /// The second-order error spectrum, most frequent first.
    pub fn second_order_errors(&self) -> Vec<(EditOp, &SecondOrderStat)> {
        let mut v: Vec<(EditOp, &SecondOrderStat)> =
            self.second_order.iter().map(|(&k, v)| (k, v)).collect();
        v.sort_by(|a, b| b.1.count.cmp(&a.1.count).then(a.0.cmp(&b.0)));
        v
    }

    /// The `k` most common specific errors and the fraction of all errors
    /// they jointly account for.
    pub fn top_second_order(&self, k: usize) -> (Vec<(EditOp, &SecondOrderStat)>, f64) {
        let all = self.second_order_errors();
        let total = self.total_errors();
        let top: Vec<_> = all.into_iter().take(k).collect();
        let covered: usize = top.iter().map(|(_, s)| s.count).sum();
        let share = if total == 0 {
            0.0
        } else {
            covered as f64 / total as f64
        };
        (top, share)
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &ErrorStats) {
        self.reads += other.reads;
        self.total_ref_bases += other.total_ref_bases;
        if other.strand_len > self.strand_len {
            self.strand_len = other.strand_len;
            self.positional_errors.resize(other.strand_len, 0);
            self.positional_sites.resize(other.strand_len, 0);
        }
        for (a, b) in self.positional_errors.iter_mut().zip(&other.positional_errors) {
            *a += b;
        }
        for (a, b) in self.positional_sites.iter_mut().zip(&other.positional_sites) {
            *a += b;
        }
        for i in 0..4 {
            self.base_occurrences[i] += other.base_occurrences[i];
            for k in 0..3 {
                self.base_errors[i][k] += other.base_errors[i][k];
            }
            for j in 0..4 {
                self.subst_matrix[i][j] += other.subst_matrix[i][j];
            }
        }
        if other.burst_histogram.len() > self.burst_histogram.len() {
            self.burst_histogram.resize(other.burst_histogram.len(), 0);
        }
        for (len, &n) in other.burst_histogram.iter().enumerate() {
            self.burst_histogram[len] += n;
        }
        if other.deletion_run_histogram.len() > self.deletion_run_histogram.len() {
            self.deletion_run_histogram
                .resize(other.deletion_run_histogram.len(), 0);
        }
        for (len, &n) in other.deletion_run_histogram.iter().enumerate() {
            self.deletion_run_histogram[len] += n;
        }
        self.homopolymer.0 += other.homopolymer.0;
        self.homopolymer.1 += other.homopolymer.1;
        self.non_homopolymer.0 += other.non_homopolymer.0;
        self.non_homopolymer.1 += other.non_homopolymer.1;
        for (&op, stat) in &other.second_order {
            let entry = self.second_order.entry(op).or_default();
            entry.count += stat.count;
            if entry.positional.len() < stat.positional.len() {
                entry.positional.resize(stat.positional.len(), 0);
            }
            for (a, b) in entry.positional.iter_mut().zip(&stat.positional) {
                *a += b;
            }
        }
    }
}

/// `mask[i]` is true when reference position `i` sits inside a homopolymer
/// run of length ≥ 3.
fn homopolymer_mask(reference: &Strand) -> Vec<bool> {
    let bases = reference.as_bases();
    let mut mask = vec![false; bases.len()];
    let mut run_start = 0usize;
    for i in 1..=bases.len() {
        if i == bases.len() || bases[i] != bases[run_start] {
            if i - run_start >= 3 {
                mask[run_start..i].iter_mut().for_each(|m| *m = true);
            }
            run_start = i;
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnasim_core::rng::seeded;

    fn s(text: &str) -> Strand {
        text.parse().unwrap()
    }

    #[test]
    fn clean_reads_yield_zero_rates() {
        let mut stats = ErrorStats::new();
        let mut rng = seeded(1);
        let r = s("ACGTACGT");
        stats.record_pair(&r, &r.clone(), TieBreak::Random, &mut rng);
        assert_eq!(stats.total_errors(), 0);
        assert_eq!(stats.aggregate_error_rate(), 0.0);
        for b in Base::ALL {
            for k in ErrorKind::ALL {
                assert_eq!(stats.conditional_probability(b, k), 0.0);
            }
        }
    }

    #[test]
    fn single_deletion_is_attributed() {
        let mut stats = ErrorStats::new();
        let mut rng = seeded(2);
        stats.record_pair(&s("AGCG"), &s("AGG"), TieBreak::Random, &mut rng);
        assert_eq!(stats.total_errors(), 1);
        // The deleted base is C (minimal script deletes the C).
        assert!(stats.conditional_probability(Base::C, ErrorKind::Deletion) > 0.0);
        assert_eq!(stats.deletion_run_histogram()[1], 1);
        assert_eq!(stats.long_deletion_probability(), 0.0);
    }

    #[test]
    fn substitution_matrix_is_recorded() {
        let mut stats = ErrorStats::new();
        let mut rng = seeded(3);
        // AAAA -> AGAA is a single A->G substitution.
        stats.record_pair(&s("AAAA"), &s("AGAA"), TieBreak::Random, &mut rng);
        let dist = stats.substitution_distribution(Base::A);
        assert!((dist[Base::G.index()] - 1.0).abs() < 1e-12);
        assert_eq!(dist[Base::A.index()], 0.0);
    }

    #[test]
    fn unseen_substitution_distribution_is_uniform() {
        let stats = ErrorStats::new();
        let dist = stats.substitution_distribution(Base::T);
        assert_eq!(dist[Base::T.index()], 0.0);
        assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn long_deletion_statistics() {
        let mut stats = ErrorStats::new();
        let mut rng = seeded(4);
        // Two bases deleted in a run: TT missing.
        stats.record_pair(&s("ACTTGG"), &s("ACGG"), TieBreak::Random, &mut rng);
        assert_eq!(stats.deletion_run_histogram()[2], 1);
        assert!(stats.long_deletion_probability() > 0.0);
        assert_eq!(stats.long_deletion_mean_length(), 2.0);
    }

    #[test]
    fn positional_rates_track_error_location() {
        let mut stats = ErrorStats::new();
        let mut rng = seeded(5);
        // Error always at the last position.
        for _ in 0..10 {
            stats.record_pair(&s("AACC"), &s("AACT"), TieBreak::Random, &mut rng);
        }
        let rates = stats.positional_rates();
        assert_eq!(rates.len(), 4);
        assert!(rates[3] > 0.9);
        assert!(rates[0] < 0.1);
    }

    #[test]
    fn second_order_spectrum_ranks_by_count() {
        let mut stats = ErrorStats::new();
        let mut rng = seeded(6);
        for _ in 0..5 {
            stats.record_pair(&s("AAAA"), &s("AGAA"), TieBreak::Random, &mut rng);
        }
        stats.record_pair(&s("CCCC"), &s("CCC"), TieBreak::Random, &mut rng);
        let (top, share) = stats.top_second_order(1);
        assert_eq!(top.len(), 1);
        assert_eq!(
            top[0].0,
            EditOp::Subst {
                orig: Base::A,
                new: Base::G
            }
        );
        assert_eq!(top[0].1.count, 5);
        assert!((share - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn aggregate_rate_counts_all_kinds() {
        let mut stats = ErrorStats::new();
        let mut rng = seeded(7);
        stats.record_pair(&s("ACGT"), &s("AACGT"), TieBreak::Random, &mut rng); // insertion
        stats.record_pair(&s("ACGT"), &s("ACG"), TieBreak::Random, &mut rng); // deletion
        assert_eq!(stats.total_errors(), 2);
        assert!((stats.aggregate_error_rate() - 2.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn merge_matches_sequential_recording() {
        let mut rng = seeded(8);
        let pairs = [("ACGT", "ACG"), ("AAAA", "AGAA"), ("CCCC", "CCCCC")];
        let mut all = ErrorStats::new();
        for (a, b) in pairs {
            all.record_pair(&s(a), &s(b), TieBreak::PreferSubstitution, &mut rng);
        }
        let mut first = ErrorStats::new();
        first.record_pair(&s(pairs[0].0), &s(pairs[0].1), TieBreak::PreferSubstitution, &mut rng);
        let mut rest = ErrorStats::new();
        for (a, b) in &pairs[1..] {
            rest.record_pair(&s(a), &s(b), TieBreak::PreferSubstitution, &mut rng);
        }
        first.merge(&rest);
        assert_eq!(first, all);
    }

    #[test]
    fn dataset_profiling_visits_every_read() {
        let cluster = Cluster::new(
            s("ACGTACGT"),
            vec![s("ACGTACGT"), s("ACGTACG"), s("ACGTTACGT")],
        );
        let dataset = Dataset::from_clusters(vec![cluster]);
        let mut rng = seeded(9);
        let stats = ErrorStats::from_dataset(&dataset, TieBreak::Random, &mut rng);
        assert_eq!(stats.read_count(), 3);
        assert_eq!(stats.total_errors(), 2);
        assert_eq!(stats.strand_len(), 8);
    }

    #[test]
    fn from_source_matches_from_dataset_at_any_batch_size() {
        let clusters = vec![
            Cluster::new(s("ACGTACGT"), vec![s("ACGTACG"), s("ACGTTACGT")]),
            Cluster::new(s("TTTTCCCC"), vec![s("TTTCCCC"), s("TTTTCCCC")]),
            Cluster::erasure(s("GGGGGGGG")),
            Cluster::new(s("ACACACAC"), vec![s("ACACAAC")]),
        ];
        let dataset = Dataset::from_clusters(clusters);
        let mut rng = seeded(10);
        let whole = ErrorStats::from_dataset(&dataset, TieBreak::Random, &mut rng);
        for batch_size in [1, 2, 3, usize::MAX] {
            let mut rng = seeded(10);
            let (streamed, window) =
                ErrorStats::from_source(&mut dataset.stream(), batch_size, TieBreak::Random, &mut rng)
                    .unwrap();
            assert_eq!(streamed, whole, "batch_size={batch_size}");
            assert_eq!(window.clusters, dataset.len());
            assert!(window.high_watermark <= batch_size);
        }
    }

    #[test]
    fn from_source_rejects_zero_batch() {
        let dataset = Dataset::from_clusters(vec![Cluster::erasure(s("ACGT"))]);
        let mut rng = seeded(1);
        assert!(
            ErrorStats::from_source(&mut dataset.stream(), 0, TieBreak::Random, &mut rng).is_err()
        );
    }
}

#[cfg(test)]
mod ablation_tests {
    use super::*;
    use crate::editops::TieBreak;
    use dnasim_core::rng::seeded;
    use dnasim_core::{ErrorKind, Strand};

    /// DESIGN.md ablation 2: deterministic substitution-preferring
    /// tie-break inflates the recovered substitution share relative to the
    /// randomised tie-break the paper uses, on ambiguous (same-length,
    /// shuffled) noisy pairs.
    #[test]
    fn deterministic_tiebreak_biases_toward_substitutions() {
        let mut rng = seeded(42);
        let mut random_stats = ErrorStats::new();
        let mut prefer_stats = ErrorStats::new();
        for _ in 0..200 {
            let reference = Strand::random(60, &mut rng);
            // A deletion followed by an insertion elsewhere keeps the
            // length equal, making sub-vs-indel attribution ambiguous.
            let mut bases = reference.clone().into_bases();
            use dnasim_core::rng::RngExt;
            let del_at = rng.random_range(0..bases.len());
            bases.remove(del_at);
            let ins_at = rng.random_range(0..bases.len());
            bases.insert(ins_at, dnasim_core::Base::random(&mut rng));
            let read = Strand::from_bases(bases);
            random_stats.record_pair(&reference, &read, TieBreak::Random, &mut rng);
            prefer_stats.record_pair(&reference, &read, TieBreak::PreferSubstitution, &mut rng);
        }
        let share = |stats: &ErrorStats| {
            let total = stats.total_errors().max(1);
            let subs: usize = dnasim_core::Base::ALL
                .iter()
                .map(|&b| {
                    (stats.conditional_probability(b, ErrorKind::Substitution)
                        * stats.read_count() as f64
                        * 60.0
                        / 4.0) as usize
                })
                .sum();
            subs as f64 / total as f64
        };
        assert!(
            share(&prefer_stats) > share(&random_stats),
            "prefer-substitution should inflate substitution share: {} vs {}",
            share(&prefer_stats),
            share(&random_stats)
        );
    }
}

#[cfg(test)]
mod homopolymer_tests {
    use super::*;
    use crate::editops::TieBreak;
    use dnasim_core::rng::seeded;

    fn s(text: &str) -> Strand {
        text.parse().unwrap()
    }

    #[test]
    fn mask_flags_runs_of_three_or_more() {
        let mask = homopolymer_mask(&s("AACCCGTTTT"));
        assert_eq!(
            mask,
            vec![false, false, true, true, true, false, true, true, true, true]
        );
        assert!(homopolymer_mask(&Strand::new()).is_empty());
    }

    #[test]
    fn boost_defaults_to_one_without_data() {
        assert_eq!(ErrorStats::new().homopolymer_boost(), 1.0);
    }

    #[test]
    fn boost_detects_homopolymer_concentration() {
        let mut stats = ErrorStats::new();
        let mut rng = seeded(1);
        // Errors only inside the CCC run of ACCCGT.
        for _ in 0..20 {
            stats.record_pair(&s("ACCCGT"), &s("ACTCGT"), TieBreak::Random, &mut rng);
            stats.record_pair(&s("ACCCGT"), &s("ACCCGT"), TieBreak::Random, &mut rng);
        }
        assert!(stats.homopolymer_boost() > 3.0, "{}", stats.homopolymer_boost());
    }

    #[test]
    fn boost_is_one_for_uniform_errors() {
        // Errors at a non-homopolymer position only.
        let mut stats = ErrorStats::new();
        let mut rng = seeded(2);
        stats.record_pair(&s("ACCCGT"), &s("TCCCGT"), TieBreak::Random, &mut rng);
        assert!(stats.homopolymer_boost() < 1.0 + 1e-9);
    }
}

#[cfg(test)]
mod burst_tests {
    use super::*;
    use crate::editops::TieBreak;
    use dnasim_core::rng::seeded;

    fn s(text: &str) -> Strand {
        text.parse().unwrap()
    }

    #[test]
    fn burst_histogram_counts_consecutive_errors() {
        let mut stats = ErrorStats::new();
        let mut rng = seeded(1);
        // AAAACCCC -> TTTTCCCC: a burst of four substitutions.
        stats.record_pair(&s("AAAACCCC"), &s("TTTTCCCC"), TieBreak::Random, &mut rng);
        assert_eq!(stats.burst_histogram().get(4), Some(&1));
        assert!((stats.burst_read_fraction(4) - 1.0).abs() < 1e-12);
        assert_eq!(stats.burst_read_fraction(5), 0.0);
    }

    #[test]
    fn scattered_errors_are_not_bursts() {
        let mut stats = ErrorStats::new();
        let mut rng = seeded(2);
        stats.record_pair(&s("ACGTACGT"), &s("TCGTACGA"), TieBreak::Random, &mut rng);
        assert_eq!(stats.burst_read_fraction(2), 0.0);
        assert_eq!(stats.burst_histogram().get(1), Some(&2));
    }

    #[test]
    fn twin_bursts_are_detectable() {
        use dnasim_dataset::NanoporeTwinConfig;
        let mut config = NanoporeTwinConfig::small();
        config.cluster_count = 60;
        let ds = config.generate();
        let mut rng = seeded(3);
        let stats = ErrorStats::from_dataset(&ds, TieBreak::Random, &mut rng);
        // The twin injects bursts at ~2% of reads; minimal-edit alignment
        // splits and shortens the recovered runs, but long error runs must
        // still be far above what independent errors at 5.9% produce
        // (P(5 consecutive) ≈ 0.059⁵ ≈ 7e-7 per site).
        let fraction = stats.burst_read_fraction(5);
        assert!(
            fraction > 0.002 && fraction < 0.10,
            "burst fraction {fraction}"
        );
    }
}
