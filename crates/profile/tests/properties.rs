//! Property-based tests for the profiler: the Appendix-B edit-script
//! recovery and the statistics built on it.

use dnasim_testkit::prelude::*;

use dnasim_channel::{ErrorModel, NaiveModel};
use dnasim_core::rng::seeded;
use dnasim_core::{Base, Strand};
use dnasim_profile::{edit_script, ErrorStats, LearnedModel, TieBreak};

fn strand(len: std::ops::Range<usize>) -> impl Strategy<Value = Strand> {
    dnasim_testkit::collection::vec(0usize..4, len).prop_map(|idx| {
        idx.into_iter()
            .map(|i| Base::from_index(i).expect("index < 4"))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn scripts_reproduce_reads_for_both_tiebreaks(
        a in strand(0..60),
        b in strand(0..60),
        seed in any::<u64>(),
    ) {
        for tb in [TieBreak::Random, TieBreak::PreferSubstitution] {
            let mut rng = seeded(seed);
            let script = edit_script(&a, &b, tb, &mut rng);
            prop_assert_eq!(script.apply(&a).unwrap(), b.clone());
            // Minimality: op count never exceeds the trivial bound.
            prop_assert!(script.error_count() <= a.len() + b.len());
        }
    }

    #[test]
    fn script_positions_are_within_reference(
        a in strand(1..50),
        b in strand(0..50),
        seed in any::<u64>(),
    ) {
        let mut rng = seeded(seed);
        let script = edit_script(&a, &b, TieBreak::Random, &mut rng);
        for (pos, _) in script.positioned_errors() {
            prop_assert!(pos <= a.len());
        }
    }

    #[test]
    fn stats_error_count_matches_script_errors(
        reference in strand(10..60),
        seed in any::<u64>(),
        rate in 0.0f64..0.2,
    ) {
        let model = NaiveModel::with_total_rate(rate);
        let mut rng = seeded(seed);
        let reads: Vec<Strand> =
            (0..4).map(|_| model.corrupt(&reference, &mut rng)).collect();
        let mut stats = ErrorStats::new();
        let mut expected = 0usize;
        for read in &reads {
            let script = edit_script(&reference, read, TieBreak::PreferSubstitution, &mut rng);
            expected += script.error_count();
            stats.record_script(&reference, &script);
        }
        prop_assert_eq!(stats.total_errors(), expected);
        prop_assert_eq!(stats.read_count(), 4);
    }

    #[test]
    fn conditional_probabilities_are_probabilities(
        reference in strand(20..60),
        seed in any::<u64>(),
    ) {
        let model = NaiveModel::with_total_rate(0.2);
        let mut rng = seeded(seed);
        let mut stats = ErrorStats::new();
        for _ in 0..5 {
            let read = model.corrupt(&reference, &mut rng);
            stats.record_pair(&reference, &read, TieBreak::Random, &mut rng);
        }
        use dnasim_core::ErrorKind;
        for base in Base::ALL {
            for kind in ErrorKind::ALL {
                let p = stats.conditional_probability(base, kind);
                prop_assert!((0.0..=1.0).contains(&p), "{base} {kind}: {p}");
            }
            let dist = stats.substitution_distribution(base);
            let total: f64 = dist.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-9 || total.abs() < 1e-9);
        }
    }

    #[test]
    fn learned_model_fields_are_finite_and_bounded(
        reference in strand(20..60),
        seed in any::<u64>(),
    ) {
        let model = NaiveModel::with_total_rate(0.15);
        let mut rng = seeded(seed);
        let mut stats = ErrorStats::new();
        for _ in 0..6 {
            let read = model.corrupt(&reference, &mut rng);
            stats.record_pair(&reference, &read, TieBreak::Random, &mut rng);
        }
        let learned = LearnedModel::from_stats(&stats, 5);
        prop_assert!(learned.aggregate_error_rate.is_finite());
        prop_assert!(learned.aggregate_error_rate >= 0.0);
        prop_assert!(learned.second_order.len() <= 5);
        prop_assert!(learned.second_order_share() <= 1.0 + 1e-9);
        prop_assert!(learned.homopolymer_boost.is_finite());
        prop_assert!(learned.homopolymer_boost > 0.0);
        for m in &learned.spatial_multipliers {
            prop_assert!(m.is_finite() && *m >= 0.0);
        }
        // Spatial multipliers have mean 1.0 (or are all 1.0 when no errors).
        if !learned.spatial_multipliers.is_empty() {
            let mean = learned.spatial_multipliers.iter().sum::<f64>()
                / learned.spatial_multipliers.len() as f64;
            prop_assert!((mean - 1.0).abs() < 1e-6, "mean {mean}");
        }
    }

    #[test]
    fn merge_is_equivalent_to_sequential_recording(
        reference in strand(10..40),
        seed in any::<u64>(),
    ) {
        let model = NaiveModel::with_total_rate(0.1);
        let mut rng = seeded(seed);
        let reads: Vec<Strand> =
            (0..6).map(|_| model.corrupt(&reference, &mut rng)).collect();
        // Deterministic tie-break so both paths see identical scripts.
        let mut all = ErrorStats::new();
        for read in &reads {
            all.record_pair(&reference, read, TieBreak::PreferSubstitution, &mut rng);
        }
        let mut left = ErrorStats::new();
        for read in &reads[..3] {
            left.record_pair(&reference, read, TieBreak::PreferSubstitution, &mut rng);
        }
        let mut right = ErrorStats::new();
        for read in &reads[3..] {
            right.record_pair(&reference, read, TieBreak::PreferSubstitution, &mut rng);
        }
        left.merge(&right);
        prop_assert_eq!(left, all);
    }
}
