//! Property tests for the incremental accumulators behind the streaming
//! pipeline (DESIGN.md §11): recording a dataset in **arbitrary partitions**
//! and merging the partials must equal one single-pass accumulation —
//! [`ErrorStats::merge`] and [`PositionalProfile::merge`] are exactly the
//! operations that make batch boundaries invisible.

use dnasim_testkit::prelude::*;

use dnasim_channel::{ErrorModel, NaiveModel};
use dnasim_core::rng::seeded;
use dnasim_core::{Base, Strand};
use dnasim_metrics::{PositionalProfile, ProfileKind};
use dnasim_profile::{ErrorStats, TieBreak};

fn strand(len: std::ops::Range<usize>) -> impl Strategy<Value = Strand> {
    dnasim_testkit::collection::vec(0usize..4, len).prop_map(|idx| {
        idx.into_iter()
            .map(|i| Base::from_index(i).expect("index < 4"))
            .collect()
    })
}

/// (reference, read) pairs simulated through the naive channel.
fn corrupted_pairs(reference: &Strand, count: usize, seed: u64) -> Vec<(Strand, Strand)> {
    let model = NaiveModel::with_total_rate(0.12);
    let mut rng = seeded(seed);
    (0..count)
        .map(|_| (reference.clone(), model.corrupt(reference, &mut rng)))
        .collect()
}

/// Splits `len` items into chunk lengths decided by `cuts` (any u8 noise
/// maps to a valid partition; every partition shape is reachable).
fn partition_lens(len: usize, cuts: &[u8]) -> Vec<usize> {
    let mut lens = Vec::new();
    let mut remaining = len;
    let mut i = 0;
    while remaining > 0 {
        let take = (cuts.get(i).copied().unwrap_or(1) as usize % remaining) + 1;
        lens.push(take);
        remaining -= take;
        i += 1;
    }
    lens
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn error_stats_partitioned_merge_equals_single_pass(
        reference in strand(10..50),
        seed in any::<u64>(),
        cuts in dnasim_testkit::collection::vec(any::<u8>(), 0..12),
    ) {
        let pairs = corrupted_pairs(&reference, 9, seed);
        // Deterministic tie-break: both paths must see identical scripts
        // regardless of how many rng draws happened before each pair.
        let mut rng = seeded(seed ^ 0xABCD);
        let mut single = ErrorStats::new();
        for (reference, read) in &pairs {
            single.record_pair(reference, read, TieBreak::PreferSubstitution, &mut rng);
        }
        let mut merged = ErrorStats::new();
        let mut offset = 0;
        for len in partition_lens(pairs.len(), &cuts) {
            let mut partial = ErrorStats::new();
            for (reference, read) in &pairs[offset..offset + len] {
                partial.record_pair(reference, read, TieBreak::PreferSubstitution, &mut rng);
            }
            merged.merge(&partial);
            offset += len;
        }
        prop_assert_eq!(merged, single);
    }

    #[test]
    fn error_stats_merge_with_empty_is_identity(
        reference in strand(10..40),
        seed in any::<u64>(),
    ) {
        let pairs = corrupted_pairs(&reference, 4, seed);
        let mut rng = seeded(seed);
        let mut stats = ErrorStats::new();
        for (reference, read) in &pairs {
            stats.record_pair(reference, read, TieBreak::PreferSubstitution, &mut rng);
        }
        let baseline = stats.clone();
        stats.merge(&ErrorStats::new());
        prop_assert_eq!(&stats, &baseline);
        let mut empty = ErrorStats::new();
        empty.merge(&baseline);
        prop_assert_eq!(empty, baseline);
    }

    #[test]
    fn positional_profile_partitioned_merge_equals_single_pass(
        reference in strand(10..50),
        seed in any::<u64>(),
        cuts in dnasim_testkit::collection::vec(any::<u8>(), 0..12),
        pre in any::<bool>(),
    ) {
        let kind = if pre { ProfileKind::Hamming } else { ProfileKind::GestaltAligned };
        let pairs = corrupted_pairs(&reference, 9, seed);
        let mut single = PositionalProfile::new(kind, reference.len());
        for (reference, read) in &pairs {
            single.record(reference, read);
        }
        let mut merged = PositionalProfile::new(kind, reference.len());
        let mut offset = 0;
        for len in partition_lens(pairs.len(), &cuts) {
            let mut partial = PositionalProfile::new(kind, reference.len());
            for (reference, read) in &pairs[offset..offset + len] {
                partial.record(reference, read);
            }
            merged.merge(&partial);
            offset += len;
        }
        prop_assert_eq!(merged.counts(), single.counts());
        prop_assert_eq!(merged.comparisons(), single.comparisons());
        prop_assert_eq!(merged.total_errors(), single.total_errors());
    }

    #[test]
    fn positional_profile_merge_grows_to_longest(
        short_len in 0usize..20,
        long_len in 20usize..60,
        reference in strand(20..60),
    ) {
        // Streamed erasure-only batches yield length-0 partials; merge must
        // adopt the longer histogram rather than reject it.
        let mut short = PositionalProfile::new(ProfileKind::Hamming, short_len);
        let mut long = PositionalProfile::new(ProfileKind::Hamming, long_len.min(reference.len()));
        long.record(&reference, &reference);
        let expected = long.counts().to_vec();
        short.merge(&long);
        prop_assert_eq!(short.counts().len(), expected.len().max(short_len));
        prop_assert_eq!(&short.counts()[..expected.len()], &expected[..]);
        prop_assert_eq!(short.comparisons(), long.comparisons());
    }
}
