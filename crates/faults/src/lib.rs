//! Deterministic fault injection for the dnasim write→store→read pipeline.
//!
//! Real cluster files arrive truncated, bit-flipped, CRLF-mangled, and
//! sprinkled with garbage; learned models arrive with NaN or out-of-range
//! parameters; users configure degenerate Reed–Solomon codes. A robust
//! simulator must answer every one of those with a typed error or a
//! quarantined cluster — never a panic. This crate makes that property
//! testable:
//!
//! * [`FaultKind`] — a closed grid of adversarial conditions, each injected
//!   deterministically from a seed;
//! * [`corrupt_cluster_text`] / [`corrupt_model_text`] /
//!   [`degenerate_rs_params`] — the injectors themselves, usable directly
//!   in tests;
//! * [`FaultyReader`] — an [`std::io::Read`] wrapper that truncates, flips
//!   bits in, or injects I/O errors into any byte stream;
//! * [`ChaosSuite`] — a runner sweeping the full fault × seed grid and
//!   classifying every case as tolerated, typed error, quarantined, or
//!   (the bug being hunted) a panic.
//!
//! # Examples
//!
//! ```
//! use dnasim_faults::ChaosSuite;
//!
//! let report = ChaosSuite::smoke().run();
//! assert!(report.is_clean(), "{}", report.summary());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod chaos;
mod corpus;
mod inject;
mod reader;
mod stream_faults;

pub use chaos::{ChaosOutcome, ChaosReport, ChaosSuite, Verdict};
pub use corpus::{
    fuzz_binary_corpus, CorpusFuzzOutcome, CorpusFuzzReport, CorpusMutation, CorpusVerdict,
};
pub use inject::{
    corrupt_cluster_text, corrupt_model_text, degenerate_rs_params, FaultCategory, FaultKind,
};
pub use reader::{FaultyReader, ReaderFaultPlan};
pub use stream_faults::{FailingSink, StallingSource};
