//! Mid-stream fault injectors: sources that stall and sinks whose writes
//! fail.
//!
//! The text and byte-stream injectors in [`inject`](crate::inject) attack
//! data *at rest*; these attack the streaming pipeline *in motion*. A
//! [`StallingSource`] models an upstream that stops making progress
//! without closing (a wedged pipe, a hung network fetch): it keeps
//! returning empty batches instead of `None`. A [`FailingSink`] models a
//! downstream that dies mid-write (full disk, closed pipe). Both are
//! deterministic, so a chaos failure against them is a one-line
//! reproduction.

use dnasim_core::{Batch, Cluster, ClusterSink, ClusterSource, DnasimError};

/// A [`ClusterSource`] that emits a fixed prefix of clusters and then
/// stalls: every later `next_batch` call returns an *empty* batch rather
/// than `None`, forever.
///
/// An unmetered pump over a stalled source would spin; a budgeted pump
/// charges one work unit per empty batch, so the stall deterministically
/// trips the deadline instead.
#[derive(Debug, Clone)]
pub struct StallingSource {
    clusters: Vec<Cluster>,
    emitted: usize,
}

impl StallingSource {
    /// A source that yields `clusters` in order, then stalls.
    pub fn new(clusters: Vec<Cluster>) -> StallingSource {
        StallingSource {
            clusters,
            emitted: 0,
        }
    }
}

impl ClusterSource for StallingSource {
    fn next_batch(&mut self, max: usize) -> Result<Option<Batch>, DnasimError> {
        if max == 0 {
            return Err(DnasimError::config(
                "batch_size",
                "batch size must be at least 1",
            ));
        }
        if self.emitted >= self.clusters.len() {
            // The stall: progress stops but the stream never closes.
            return Ok(Some(Batch::new(self.emitted, Vec::new())));
        }
        let end = (self.emitted + max).min(self.clusters.len());
        let batch = Batch::new(self.emitted, self.clusters[self.emitted..end].to_vec());
        self.emitted = end;
        Ok(Some(batch))
    }
}

/// A [`ClusterSink`] that accepts at most `capacity` clusters and then
/// fails every subsequent write with a typed I/O error — a full disk or a
/// consumer that hung up mid-stream.
#[derive(Debug, Clone)]
pub struct FailingSink {
    capacity: usize,
    accepted: usize,
}

impl FailingSink {
    /// A sink whose writes fail once `capacity` clusters have been
    /// accepted.
    pub fn new(capacity: usize) -> FailingSink {
        FailingSink {
            capacity,
            accepted: 0,
        }
    }

    /// Clusters successfully accepted before any failure.
    pub fn accepted(&self) -> usize {
        self.accepted
    }
}

impl ClusterSink for FailingSink {
    fn accept(&mut self, batch: Batch) -> Result<(), DnasimError> {
        if self.accepted + batch.len() > self.capacity {
            return Err(DnasimError::Io(std::io::Error::new(
                std::io::ErrorKind::WriteZero,
                "sink write failure: device out of space",
            )));
        }
        self.accepted += batch.len();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnasim_core::{pump, pump_budgeted, Budget, NullSink, Strand};

    fn clusters(n: usize) -> Vec<Cluster> {
        (0..n)
            .map(|i| {
                let reference: Strand = "ACGT".repeat(i + 1).parse().expect("valid strand");
                Cluster::new(reference, Vec::new())
            })
            .collect()
    }

    #[test]
    fn stalling_source_trips_a_budget_instead_of_spinning() {
        let mut source = StallingSource::new(clusters(6));
        let mut sink = NullSink::new();
        let budget = Budget::limited(10);
        let err = pump_budgeted(&mut source, &mut sink, 4, &budget, "pump", Ok).unwrap_err();
        assert!(
            matches!(err, DnasimError::DeadlineExceeded { .. }),
            "{err}"
        );
        // All six real clusters made it through before the stall.
        assert_eq!(sink.clusters(), 6);
    }

    #[test]
    fn failing_sink_surfaces_a_typed_io_error() {
        let mut source = StallingSource::new(clusters(8));
        let mut sink = FailingSink::new(5);
        let budget = Budget::limited(64);
        let err = pump_budgeted(&mut source, &mut sink, 2, &budget, "pump", Ok).unwrap_err();
        assert!(matches!(err, DnasimError::Io(_)), "{err}");
        assert!(sink.accepted() <= 5);
    }

    #[test]
    fn a_sink_with_room_never_fails() {
        let mut all = StallingSource::new(clusters(4));
        let mut sink = FailingSink::new(4);
        let budget = Budget::limited(8);
        // The source stalls after its 4 clusters, so the run still ends in
        // a deadline — but not in a sink failure.
        let err = pump_budgeted(&mut all, &mut sink, 2, &budget, "pump", Ok).unwrap_err();
        assert!(matches!(err, DnasimError::DeadlineExceeded { .. }));
        assert_eq!(sink.accepted(), 4);
    }

    #[test]
    fn unmetered_pump_over_a_closing_source_is_unaffected() {
        // A plain Vec-backed source (capacity never exceeded, no stall):
        // pump's behaviour is the baseline these injectors perturb.
        struct Closing(StallingSource, usize);
        impl ClusterSource for Closing {
            fn next_batch(&mut self, max: usize) -> Result<Option<Batch>, DnasimError> {
                let batch = self.0.next_batch(max)?;
                match batch {
                    Some(b) if b.is_empty() => Ok(None),
                    other => {
                        self.1 += other.as_ref().map_or(0, Batch::len);
                        Ok(other)
                    }
                }
            }
        }
        let mut source = Closing(StallingSource::new(clusters(5)), 0);
        let mut sink = NullSink::new();
        let stats = pump(&mut source, &mut sink, 2, Ok).expect("clean pump");
        assert_eq!(stats.clusters, 5);
    }
}
