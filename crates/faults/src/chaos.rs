//! The chaos-suite runner: sweep the fault × seed grid and classify what
//! each injected fault did to the pipeline.
//!
//! The contract under test is the workspace's robustness invariant: an
//! adversarial input may be *tolerated* (parsed and processed anyway),
//! *rejected* with a typed error, or *quarantined* (erasure clusters
//! handed to the outer code) — but it must never panic. Each case is
//! wrapped in [`std::panic::catch_unwind`], so a regression shows up as a
//! [`Verdict::Panicked`] entry naming the exact `(fault, seed)` pair to
//! reproduce it.

use std::panic::{catch_unwind, AssertUnwindSafe};

use dnasim_channel::{CoverageModel, KeoliyaModel, NaiveModel, Simulator, SimulatorLayer};
use dnasim_cluster::{GreedyClusterer, StreamingClusterer};
use dnasim_codec::{OuterRsCode, ReedSolomon, StrandLayout};
use dnasim_core::rng::{seeded, RngExt};
use dnasim_core::{pump_budgeted, Budget, Cluster, Dataset, DnasimError, NullSink, Strand};
use dnasim_dataset::{
    generate_references, read_dataset, write_dataset, ReadDatasetError, ReferenceStyle,
};
use dnasim_par::ThreadPool;
use dnasim_profile::{ErrorStats, LearnedModel, TieBreak};
use dnasim_reconstruct::{MajorityVote, TraceReconstructor};

use crate::inject::{
    corrupt_cluster_text, corrupt_model_text, degenerate_rs_params, FaultCategory, FaultKind,
};
use crate::reader::{FaultyReader, ReaderFaultPlan};
use crate::stream_faults::{FailingSink, StallingSource};

/// Seed-mixing constant so injection randomness differs from data
/// generation randomness for the same case seed.
const SEED_MIX: u64 = 0x9e37_79b9_7f4a_7c15;

/// How the pipeline answered one injected fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The stage absorbed the fault and produced a result.
    Tolerated,
    /// The stage rejected the input with a typed error.
    TypedError(String),
    /// Clusters were quarantined as erasures (graceful degradation).
    Quarantined(usize),
    /// The stage panicked — the bug class this suite exists to catch.
    Panicked(String),
}

/// One `(fault, seed)` case and its verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosOutcome {
    /// The injected fault.
    pub fault: FaultKind,
    /// The case seed; replaying the same seed reproduces the case.
    pub seed: u64,
    /// What the pipeline did.
    pub verdict: Verdict,
}

/// The outcome of a full chaos sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosReport {
    outcomes: Vec<ChaosOutcome>,
}

impl ChaosReport {
    /// Every case outcome, in grid order.
    pub fn outcomes(&self) -> &[ChaosOutcome] {
        &self.outcomes
    }

    /// Total cases run.
    pub fn cases(&self) -> usize {
        self.outcomes.len()
    }

    /// The cases that panicked.
    pub fn panicked(&self) -> Vec<&ChaosOutcome> {
        self.outcomes
            .iter()
            .filter(|o| matches!(o.verdict, Verdict::Panicked(_)))
            .collect()
    }

    /// True when no case panicked — the suite's pass condition.
    pub fn is_clean(&self) -> bool {
        self.panicked().is_empty()
    }

    /// A one-paragraph human-readable summary (used by `dnasim chaos`).
    pub fn summary(&self) -> String {
        let mut tolerated = 0usize;
        let mut typed = 0usize;
        let mut quarantined = 0usize;
        let mut panicked = 0usize;
        for outcome in &self.outcomes {
            match outcome.verdict {
                Verdict::Tolerated => tolerated += 1,
                Verdict::TypedError(_) => typed += 1,
                Verdict::Quarantined(_) => quarantined += 1,
                Verdict::Panicked(_) => panicked += 1,
            }
        }
        let mut out = format!(
            "chaos: {} cases — {tolerated} tolerated, {typed} typed errors, \
             {quarantined} quarantined, {panicked} panicked",
            self.cases()
        );
        for bad in self.panicked() {
            out.push_str(&format!(
                "\n  PANIC fault={} seed={}: {}",
                bad.fault.name(),
                bad.seed,
                match &bad.verdict {
                    Verdict::Panicked(msg) => msg.as_str(),
                    _ => "",
                }
            ));
        }
        out
    }

    /// A machine-readable summary (used by `dnasim chaos --json`):
    /// aggregate verdict counts, per-fault-kind counts in grid order, and
    /// the full reproduction coordinates of any panic. Key order is
    /// deterministic, so the output is diffable across runs.
    pub fn to_json(&self) -> String {
        let mut tolerated = 0usize;
        let mut typed = 0usize;
        let mut quarantined = 0usize;
        let mut panicked = 0usize;
        for outcome in &self.outcomes {
            match outcome.verdict {
                Verdict::Tolerated => tolerated += 1,
                Verdict::TypedError(_) => typed += 1,
                Verdict::Quarantined(_) => quarantined += 1,
                Verdict::Panicked(_) => panicked += 1,
            }
        }
        let mut out = format!(
            "{{\"cases\":{},\"clean\":{},\"verdicts\":{{\"tolerated\":{tolerated},\
             \"typed_error\":{typed},\"quarantined\":{quarantined},\
             \"panicked\":{panicked}}},\"faults\":{{",
            self.cases(),
            self.is_clean(),
        );
        let mut first = true;
        for fault in FaultKind::ALL {
            let mut cases = 0usize;
            let mut bad = 0usize;
            for outcome in self.outcomes.iter().filter(|o| o.fault == fault) {
                cases += 1;
                if matches!(outcome.verdict, Verdict::Panicked(_)) {
                    bad += 1;
                }
            }
            if cases == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\"{}\":{{\"cases\":{cases},\"panicked\":{bad}}}",
                fault.name()
            ));
        }
        out.push_str("},\"panics\":[");
        for (i, bad) in self.panicked().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let message = match &bad.verdict {
                Verdict::Panicked(msg) => msg.as_str(),
                _ => "",
            };
            out.push_str(&format!(
                "{{\"fault\":\"{}\",\"seed\":{},\"message\":\"{}\"}}",
                bad.fault.name(),
                bad.seed,
                escape_json(message),
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Minimal JSON string escaping for panic messages.
fn escape_json(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Sweeps every [`FaultKind`] over a seed grid.
///
/// # Examples
///
/// ```
/// use dnasim_faults::{ChaosSuite, Verdict};
///
/// let report = ChaosSuite::new(1).run();
/// assert!(report.is_clean(), "{}", report.summary());
/// assert!(report
///     .outcomes()
///     .iter()
///     .any(|o| matches!(o.verdict, Verdict::TypedError(_))));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosSuite {
    seeds_per_fault: u64,
}

impl ChaosSuite {
    /// A suite running `seeds_per_fault` seeds for each fault kind.
    pub fn new(seeds_per_fault: u64) -> ChaosSuite {
        ChaosSuite {
            seeds_per_fault: seeds_per_fault.max(1),
        }
    }

    /// The full grid: enough cases (≥ 200) for release verification.
    pub fn full() -> ChaosSuite {
        ChaosSuite::new(14)
    }

    /// A quick smoke grid for fast CI loops.
    pub fn smoke() -> ChaosSuite {
        ChaosSuite::new(2)
    }

    /// [`smoke`](ChaosSuite::smoke) when `DNASIM_BENCH_FAST` is set (and
    /// not `"0"`), [`full`](ChaosSuite::full) otherwise.
    pub fn from_env() -> ChaosSuite {
        let fast = std::env::var_os("DNASIM_BENCH_FAST")
            .is_some_and(|v| !v.is_empty() && v != "0");
        if fast {
            ChaosSuite::smoke()
        } else {
            ChaosSuite::full()
        }
    }

    /// Cases the sweep will run.
    pub fn planned_cases(&self) -> usize {
        FaultKind::ALL.len() * self.seeds_per_fault as usize
    }

    /// Runs the sweep. Panics raised by faulty stages are caught and
    /// recorded as [`Verdict::Panicked`]; the default panic hook is
    /// silenced for the duration so expected-to-be-absent backtraces don't
    /// flood the output of a failing run.
    pub fn run(&self) -> ChaosReport {
        self.run_on(&ThreadPool::serial())
    }

    /// Runs the sweep with cases fanned out on `pool`.
    ///
    /// Each case's seed depends only on its grid position and the report
    /// keeps grid order, so the verdicts are identical to
    /// [`ChaosSuite::run`] for any thread count. Worker panics cannot
    /// happen in practice — [`run_case`] already wraps every case in
    /// `catch_unwind` — but if the pool reports one anyway the grid is
    /// re-run serially, keeping this method infallible.
    pub fn run_on(&self, pool: &ThreadPool) -> ChaosReport {
        let previous_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let grid: Vec<(FaultKind, u64)> = FaultKind::ALL
            .iter()
            .flat_map(|&fault| {
                (0..self.seeds_per_fault)
                    .map(move |round| (fault, round.wrapping_mul(SEED_MIX).wrapping_add(round + 1)))
            })
            .collect();
        let outcomes = pool
            .par_map_indexed(&grid, |_, &(fault, seed)| run_case(fault, seed))
            .unwrap_or_else(|_| grid.iter().map(|&(f, s)| run_case(f, s)).collect());
        std::panic::set_hook(previous_hook);
        ChaosReport { outcomes }
    }
}

/// Runs one `(fault, seed)` case under `catch_unwind`.
pub fn run_case(fault: FaultKind, seed: u64) -> ChaosOutcome {
    let verdict = match catch_unwind(AssertUnwindSafe(|| exercise(fault, seed))) {
        Ok(verdict) => verdict,
        Err(payload) => Verdict::Panicked(panic_message(payload)),
    };
    ChaosOutcome {
        fault,
        seed,
        verdict,
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

fn exercise(fault: FaultKind, seed: u64) -> Verdict {
    match fault.category() {
        FaultCategory::DatasetText => exercise_dataset_text(fault, seed),
        FaultCategory::ByteStream => exercise_byte_stream(fault, seed),
        FaultCategory::ModelParams => exercise_model_params(fault, seed),
        FaultCategory::CodecParams => exercise_codec_params(seed),
        FaultCategory::Streaming => exercise_streaming(fault, seed),
    }
}

/// A small clean dataset, deterministic in the seed.
fn base_dataset(seed: u64) -> Dataset {
    let mut rng = seeded(seed);
    let references = generate_references(5, 48, ReferenceStyle::Uniform, &mut rng);
    let simulator = Simulator::new(
        NaiveModel::with_total_rate(0.05),
        CoverageModel::Fixed(4),
    );
    simulator.simulate(&references, &mut rng)
}

/// A small clean cluster file to corrupt, deterministic in the seed.
fn base_dataset_text(seed: u64) -> String {
    let dataset = base_dataset(seed);
    let mut buf = Vec::new();
    // Writes to a Vec are infallible; a failure here would surface as an
    // empty corpus, which every injector handles.
    let _ = write_dataset(&dataset, &mut buf);
    String::from_utf8_lossy(&buf).into_owned()
}

/// A small learned model to corrupt, deterministic in the seed.
fn base_model_text(seed: u64) -> String {
    let mut rng = seeded(seed);
    let references = generate_references(4, 40, ReferenceStyle::Uniform, &mut rng);
    let simulator = Simulator::new(
        NaiveModel::with_total_rate(0.08),
        CoverageModel::Fixed(3),
    );
    let dataset = simulator.simulate(&references, &mut rng);
    let stats = ErrorStats::from_dataset(&dataset, TieBreak::Random, &mut rng);
    LearnedModel::from_stats(&stats, 40).to_text()
}

/// Parse the corrupted bytes, then push every surviving cluster through
/// reconstruction — the stage that meets monster reads and stub reads.
fn digest_parse_result(
    parsed: Result<dnasim_core::Dataset, ReadDatasetError>,
) -> Verdict {
    match parsed {
        Err(e) => Verdict::TypedError(DnasimError::from(e).to_string()),
        Ok(dataset) => {
            let mut quarantined = 0usize;
            for cluster in dataset.iter() {
                if cluster.is_erasure() {
                    quarantined += 1;
                    continue;
                }
                let _ = MajorityVote.reconstruct(cluster.reads(), cluster.reference().len());
            }
            if quarantined > 0 {
                Verdict::Quarantined(quarantined)
            } else {
                Verdict::Tolerated
            }
        }
    }
}

fn exercise_dataset_text(fault: FaultKind, seed: u64) -> Verdict {
    let text = base_dataset_text(seed);
    let mut rng = seeded(seed ^ SEED_MIX);
    let corrupted = corrupt_cluster_text(fault, &text, &mut rng);
    digest_parse_result(read_dataset(corrupted.as_slice()))
}

fn exercise_byte_stream(fault: FaultKind, seed: u64) -> Verdict {
    let text = base_dataset_text(seed);
    let len = text.len() as u64;
    let mut rng = seeded(seed ^ SEED_MIX);
    let at = rng.random_range(0..len.max(1));
    let plan = match fault {
        FaultKind::StreamIoError => ReaderFaultPlan::io_error(at),
        _ => ReaderFaultPlan::truncation(at),
    };
    let reader = std::io::BufReader::new(FaultyReader::new(text.as_bytes(), plan));
    digest_parse_result(read_dataset(reader))
}

fn exercise_model_params(fault: FaultKind, seed: u64) -> Verdict {
    let text = base_model_text(seed);
    let mut rng = seeded(seed ^ SEED_MIX);
    let corrupted = corrupt_model_text(fault, &text, &mut rng);
    match LearnedModel::from_text(&corrupted) {
        Err(e) => Verdict::TypedError(DnasimError::from(e).to_string()),
        // Parsing admitted the value; the simulator constructor is the
        // second gate and must also hold.
        Ok(model) => match KeoliyaModel::try_new(model, SimulatorLayer::SecondOrder) {
            Err(e) => Verdict::TypedError(DnasimError::from(e).to_string()),
            Ok(_) => Verdict::Tolerated,
        },
    }
}

/// Push a pump through a stalled source, a failing sink, or an exhausted
/// budget and classify the answer. The robustness contract for each:
/// stalls and mid-batch exhaustion must surface a typed
/// `DeadlineExceeded` (the already-pumped prefix is intact in the sink —
/// the quarantine shape), and a failing sink must surface its typed I/O
/// error — never a panic, never a spin.
fn exercise_streaming(fault: FaultKind, seed: u64) -> Verdict {
    let dataset = base_dataset(seed);
    let clusters: Vec<Cluster> = dataset.iter().cloned().collect();
    let total = clusters.len() as u64;
    let mut rng = seeded(seed ^ SEED_MIX);
    match fault {
        FaultKind::StalledSource => {
            // The source wedges after a random prefix; the budget has
            // room for every real cluster plus a little slack, so only
            // the stall can exhaust it.
            let keep = rng.random_range(0..=clusters.len());
            let mut source = StallingSource::new(clusters[..keep].to_vec());
            let mut sink = NullSink::new();
            let budget = Budget::limited(total + 4);
            match pump_budgeted(&mut source, &mut sink, 3, &budget, "pump", Ok) {
                Err(e) => Verdict::TypedError(e.to_string()),
                Ok(_) => Verdict::Tolerated,
            }
        }
        FaultKind::SinkWriteFailure => {
            let capacity = rng.random_range(0..clusters.len().max(1));
            let mut source = dataset.stream();
            let mut sink = FailingSink::new(capacity);
            match pump_budgeted(&mut source, &mut sink, 2, &Budget::unlimited(), "pump", Ok) {
                Err(e) => Verdict::TypedError(e.to_string()),
                Ok(_) => Verdict::Tolerated,
            }
        }
        FaultKind::DegenerateClusterReads => {
            // Splice hostile reads — empty strands, single-base stubs and
            // monster reads — into an otherwise clean pool and stream the
            // lot through the online clusterer. Every read must be
            // assigned or must found a group: nothing dropped, no panic.
            let references: Vec<Strand> =
                dataset.iter().map(|c| c.reference().clone()).collect();
            let mut reads: Vec<Strand> = dataset
                .iter()
                .flat_map(|c| c.reads().iter().cloned())
                .collect();
            for _ in 0..1 + rng.random_range(0..4usize) {
                let hostile = match rng.random_range(0..3usize) {
                    0 => Strand::new(),
                    1 => Strand::random(1, &mut rng),
                    _ => Strand::random(4_000, &mut rng),
                };
                let at = rng.random_range(0..=reads.len());
                reads.insert(at, hostile);
            }
            let mut clusterer =
                StreamingClusterer::with_references(GreedyClusterer::default(), &references);
            let mut assigned = 0usize;
            for window in reads.chunks(5) {
                assigned += clusterer.push_batch(window).len();
            }
            if clusterer.reads_seen() == reads.len() && assigned == reads.len() {
                Verdict::Tolerated
            } else {
                Verdict::TypedError(format!(
                    "clusterer accounting drifted: saw {} and assigned {} of {} reads",
                    clusterer.reads_seen(),
                    assigned,
                    reads.len()
                ))
            }
        }
        _ => {
            // BudgetExhaustion: a budget strictly smaller than the corpus
            // runs out mid-stream; the admitted prefix reaches the sink
            // and the remainder is quarantined behind a typed error.
            let limit = rng.random_range(0..total.max(1));
            let mut source = dataset.stream();
            let mut sink = NullSink::new();
            let budget = Budget::limited(limit);
            match pump_budgeted(&mut source, &mut sink, 4, &budget, "pump", Ok) {
                Err(DnasimError::DeadlineExceeded { spent, .. }) => {
                    debug_assert_eq!(sink.clusters() as u64, spent);
                    Verdict::Quarantined((total - spent.min(total)) as usize)
                }
                Err(e) => Verdict::TypedError(e.to_string()),
                Ok(_) => Verdict::Tolerated,
            }
        }
    }
}

fn exercise_codec_params(seed: u64) -> Verdict {
    let mut rng = seeded(seed ^ SEED_MIX);
    let (n, k) = degenerate_rs_params(&mut rng);
    let rs = ReedSolomon::new(n, k);
    let outer = OuterRsCode::new(n, k);
    let layout = StrandLayout::new(n, k, &mut rng);
    match (&rs, &outer, &layout) {
        (Ok(_), Ok(_), Ok(_)) => Verdict::Tolerated,
        (Err(e), _, _) => Verdict::TypedError(e.to_string()),
        (_, Err(e), _) => Verdict::TypedError(e.to_string()),
        (_, _, Err(e)) => Verdict::TypedError(e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_seed_grid_is_panic_free() {
        let report = ChaosSuite::new(1).run();
        assert_eq!(report.cases(), FaultKind::ALL.len());
        assert!(report.is_clean(), "{}", report.summary());
    }

    #[test]
    fn parallel_sweep_matches_serial() {
        let suite = ChaosSuite::new(2);
        let serial = suite.run();
        for threads in [2, 4] {
            let par = suite.run_on(&ThreadPool::new(threads));
            assert_eq!(par, serial);
        }
    }

    #[test]
    fn nan_model_case_yields_typed_error() {
        let outcome = run_case(FaultKind::NanModelParam, 1);
        assert!(
            matches!(outcome.verdict, Verdict::TypedError(_)),
            "{:?}",
            outcome.verdict
        );
    }

    #[test]
    fn degenerate_rs_case_never_panics() {
        for seed in 0..16 {
            let outcome = run_case(FaultKind::DegenerateRsParams, seed);
            assert!(
                !matches!(outcome.verdict, Verdict::Panicked(_)),
                "seed {seed}: {:?}",
                outcome.verdict
            );
        }
    }

    #[test]
    fn summary_counts_every_case() {
        let report = ChaosSuite::smoke().run();
        let summary = report.summary();
        assert!(summary.contains(&format!("{} cases", report.cases())), "{summary}");
    }

    #[test]
    fn streaming_faults_yield_typed_or_quarantined_verdicts() {
        for seed in 0..8 {
            let stalled = run_case(FaultKind::StalledSource, seed);
            assert!(
                matches!(stalled.verdict, Verdict::TypedError(ref m) if m.contains("deadline")),
                "seed {seed}: {:?}",
                stalled.verdict
            );
            let sink = run_case(FaultKind::SinkWriteFailure, seed);
            assert!(
                matches!(sink.verdict, Verdict::TypedError(_)),
                "seed {seed}: {:?}",
                sink.verdict
            );
            let exhausted = run_case(FaultKind::BudgetExhaustion, seed);
            assert!(
                matches!(exhausted.verdict, Verdict::Quarantined(n) if n > 0),
                "seed {seed}: {:?}",
                exhausted.verdict
            );
            let degenerate = run_case(FaultKind::DegenerateClusterReads, seed);
            assert_eq!(
                degenerate.verdict,
                Verdict::Tolerated,
                "seed {seed}: hostile reads must stream through the clusterer"
            );
        }
    }

    #[test]
    fn json_summary_is_deterministic_and_counts_match() {
        let report = ChaosSuite::smoke().run();
        let json = report.to_json();
        assert_eq!(json, ChaosSuite::smoke().run().to_json());
        assert!(json.starts_with(&format!("{{\"cases\":{}", report.cases())), "{json}");
        assert!(json.contains("\"clean\":true"), "{json}");
        assert!(json.contains("\"stalled-source\":{\"cases\":2,\"panicked\":0}"), "{json}");
        assert!(json.ends_with("\"panics\":[]}"), "{json}");
        // Every fault kind appears exactly once.
        for fault in FaultKind::ALL {
            assert_eq!(json.matches(&format!("\"{}\"", fault.name())).count(), 1, "{json}");
        }
    }
}
