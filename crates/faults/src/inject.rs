//! The fault grid and its injectors.
//!
//! Every injector is a pure function of `(fault, input, rng)` — the same
//! seed always produces the same corruption, so a chaos failure is a
//! one-line reproduction, not a flake.

use dnasim_core::rng::{RngExt, SimRng};

/// One adversarial condition the pipeline must survive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The cluster file is cut off mid-byte-stream (partial download,
    /// full disk).
    TruncatedFile,
    /// Random bits of the cluster file are flipped (storage rot).
    BitFlips,
    /// Unix newlines become CRLF and blank padding appears (Windows
    /// tooling touched the file).
    CrlfLineEndings,
    /// Non-DNA garbage lines are spliced between reads.
    GarbageLines,
    /// A reference with zero reads is inserted (a cluster every copy of
    /// which was lost).
    EmptyCluster,
    /// Every read is stripped, leaving only reference lines.
    ZeroCoverageEverywhere,
    /// One read is vastly longer than its reference (chimeric or
    /// concatemer read).
    MonsterRead,
    /// Reads far shorter than the reference, down to a single base and
    /// the `-` empty-read sentinel.
    StubRead,
    /// The byte stream truncates silently partway through a read.
    StreamTruncation,
    /// The byte stream returns an I/O error partway through.
    StreamIoError,
    /// A learned-model parameter becomes NaN.
    NanModelParam,
    /// A learned-model parameter becomes infinite.
    InfModelParam,
    /// A learned-model probability goes negative.
    NegativeModelParam,
    /// A learned-model probability exceeds 1.
    OutOfRangeModelParam,
    /// Reed–Solomon / layout parameters are degenerate (k = 0, n < k,
    /// n > field size).
    DegenerateRsParams,
    /// A streaming source stops making progress without closing (wedged
    /// pipe, hung fetch): empty batches forever.
    StalledSource,
    /// A streaming sink starts failing writes mid-stream (full disk,
    /// consumer hang-up).
    SinkWriteFailure,
    /// The work budget metering a streaming stage runs out mid-batch.
    BudgetExhaustion,
    /// Degenerate reads — empty strands, stubs, and monster reads — are
    /// pushed through the online streaming clusterer mid-stream.
    DegenerateClusterReads,
}

/// Which pipeline surface a [`FaultKind`] attacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultCategory {
    /// Cluster-file text corruption, parsed via `read_dataset`.
    DatasetText,
    /// Byte-stream faults delivered through [`FaultyReader`](crate::FaultyReader).
    ByteStream,
    /// Learned-model parameter corruption.
    ModelParams,
    /// Degenerate codec parameters.
    CodecParams,
    /// Mid-stream faults against the pump/budget machinery, delivered
    /// through [`StallingSource`](crate::StallingSource) and
    /// [`FailingSink`](crate::FailingSink).
    Streaming,
}

impl FaultKind {
    /// Every fault in the grid.
    pub const ALL: [FaultKind; 19] = [
        FaultKind::TruncatedFile,
        FaultKind::BitFlips,
        FaultKind::CrlfLineEndings,
        FaultKind::GarbageLines,
        FaultKind::EmptyCluster,
        FaultKind::ZeroCoverageEverywhere,
        FaultKind::MonsterRead,
        FaultKind::StubRead,
        FaultKind::StreamTruncation,
        FaultKind::StreamIoError,
        FaultKind::NanModelParam,
        FaultKind::InfModelParam,
        FaultKind::NegativeModelParam,
        FaultKind::OutOfRangeModelParam,
        FaultKind::DegenerateRsParams,
        FaultKind::StalledSource,
        FaultKind::SinkWriteFailure,
        FaultKind::BudgetExhaustion,
        FaultKind::DegenerateClusterReads,
    ];

    /// The surface this fault attacks.
    pub fn category(self) -> FaultCategory {
        match self {
            FaultKind::TruncatedFile
            | FaultKind::BitFlips
            | FaultKind::CrlfLineEndings
            | FaultKind::GarbageLines
            | FaultKind::EmptyCluster
            | FaultKind::ZeroCoverageEverywhere
            | FaultKind::MonsterRead
            | FaultKind::StubRead => FaultCategory::DatasetText,
            FaultKind::StreamTruncation | FaultKind::StreamIoError => FaultCategory::ByteStream,
            FaultKind::NanModelParam
            | FaultKind::InfModelParam
            | FaultKind::NegativeModelParam
            | FaultKind::OutOfRangeModelParam => FaultCategory::ModelParams,
            FaultKind::DegenerateRsParams => FaultCategory::CodecParams,
            FaultKind::StalledSource
            | FaultKind::SinkWriteFailure
            | FaultKind::BudgetExhaustion
            | FaultKind::DegenerateClusterReads => FaultCategory::Streaming,
        }
    }

    /// A stable lowercase name for reports and CLI output.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::TruncatedFile => "truncated-file",
            FaultKind::BitFlips => "bit-flips",
            FaultKind::CrlfLineEndings => "crlf-line-endings",
            FaultKind::GarbageLines => "garbage-lines",
            FaultKind::EmptyCluster => "empty-cluster",
            FaultKind::ZeroCoverageEverywhere => "zero-coverage",
            FaultKind::MonsterRead => "monster-read",
            FaultKind::StubRead => "stub-read",
            FaultKind::StreamTruncation => "stream-truncation",
            FaultKind::StreamIoError => "stream-io-error",
            FaultKind::NanModelParam => "nan-model-param",
            FaultKind::InfModelParam => "inf-model-param",
            FaultKind::NegativeModelParam => "negative-model-param",
            FaultKind::OutOfRangeModelParam => "out-of-range-model-param",
            FaultKind::DegenerateRsParams => "degenerate-rs-params",
            FaultKind::StalledSource => "stalled-source",
            FaultKind::SinkWriteFailure => "sink-write-failure",
            FaultKind::BudgetExhaustion => "budget-exhaustion",
            FaultKind::DegenerateClusterReads => "degenerate-cluster-reads",
        }
    }
}

/// Applies a [`FaultCategory::DatasetText`] fault to cluster-file text,
/// returning the corrupted bytes. Other fault kinds return the text
/// unchanged.
pub fn corrupt_cluster_text(fault: FaultKind, text: &str, rng: &mut SimRng) -> Vec<u8> {
    let bytes = text.as_bytes().to_vec();
    match fault {
        FaultKind::TruncatedFile => {
            let cut = if bytes.is_empty() {
                0
            } else {
                rng.random_range(0..bytes.len())
            };
            bytes[..cut].to_vec()
        }
        FaultKind::BitFlips => {
            let mut out = bytes;
            if !out.is_empty() {
                let flips = 1 + rng.random_range(0..8usize);
                for _ in 0..flips {
                    let at = rng.random_range(0..out.len());
                    let bit = rng.random_range(0..8u32);
                    out[at] ^= 1 << bit;
                }
            }
            out
        }
        FaultKind::CrlfLineEndings => {
            let mut out = text.replace('\n', "\r\n");
            out.push_str("\r\n\r\n \t\r\n");
            out.into_bytes()
        }
        FaultKind::GarbageLines => {
            let garbage = ["@@##!!", "1234567", "ACGTXQ", "\u{fffd}\u{fffd}", "NNNNNN"];
            let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
            let insertions = 1 + rng.random_range(0..3usize);
            for _ in 0..insertions {
                let at = rng.random_range(0..=lines.len());
                let pick = garbage[rng.random_range(0..garbage.len())];
                lines.insert(at, pick.to_owned());
            }
            let mut out = lines.join("\n");
            out.push('\n');
            out.into_bytes()
        }
        FaultKind::EmptyCluster => {
            let mut out = String::with_capacity(text.len() + 16);
            out.push_str(">ACGTACGTAC\n\n");
            out.push_str(text);
            out.push_str("\n>TTGGCCAATT\n");
            out.into_bytes()
        }
        FaultKind::ZeroCoverageEverywhere => {
            let mut out = String::new();
            for line in text.lines() {
                if line.trim_start().starts_with('>') {
                    out.push_str(line);
                    out.push('\n');
                    out.push('\n');
                }
            }
            out.into_bytes()
        }
        FaultKind::MonsterRead => {
            let monster_len = 2_000 + rng.random_range(0..6_000usize);
            let monster: String = (0..monster_len)
                .map(|_| ['A', 'C', 'G', 'T'][rng.random_range(0..4usize)])
                .collect();
            splice_read_after_first_reference(text, &monster)
        }
        FaultKind::StubRead => {
            let stub = ["A", "-", "GT"][rng.random_range(0..3usize)];
            splice_read_after_first_reference(text, stub)
        }
        _ => bytes,
    }
}

/// Inserts `read` as a new line directly after the first `>` reference
/// line; appends a whole stub cluster when the text has no reference.
fn splice_read_after_first_reference(text: &str, read: &str) -> Vec<u8> {
    let mut out = String::with_capacity(text.len() + read.len() + 16);
    let mut spliced = false;
    for line in text.lines() {
        out.push_str(line);
        out.push('\n');
        if !spliced && line.trim_start().starts_with('>') {
            out.push_str(read);
            out.push('\n');
            spliced = true;
        }
    }
    if !spliced {
        out.push_str(">ACGT\n");
        out.push_str(read);
        out.push('\n');
    }
    out.into_bytes()
}

/// Applies a [`FaultCategory::ModelParams`] fault to learned-model text by
/// replacing the final numeric token of a parameter line with a hostile
/// value. Other fault kinds return the text unchanged.
pub fn corrupt_model_text(fault: FaultKind, text: &str, rng: &mut SimRng) -> String {
    let token = match fault {
        FaultKind::NanModelParam => "NaN",
        FaultKind::InfModelParam => "inf",
        FaultKind::NegativeModelParam => "-0.25",
        FaultKind::OutOfRangeModelParam => "1.75",
        _ => return text.to_owned(),
    };
    // `> 1` is only out-of-domain for probability fields; the other
    // hostile values are rejected everywhere a validator looks.
    let keys: &[&str] = match fault {
        FaultKind::OutOfRangeModelParam => &["aggregate_error_rate", "per_base"],
        _ => &["aggregate_error_rate", "per_base", "long_deletion", "spatial"],
    };
    let key = keys[rng.random_range(0..keys.len())];
    let mut out = String::with_capacity(text.len() + 8);
    let mut corrupted = false;
    for line in text.lines() {
        if !corrupted && line.starts_with(key) {
            match line.rsplit_once(char::is_whitespace) {
                Some((head, _last)) => {
                    out.push_str(head);
                    out.push(' ');
                    out.push_str(token);
                    corrupted = true;
                }
                None => out.push_str(line),
            }
        } else {
            out.push_str(line);
        }
        out.push('\n');
    }
    out
}

/// Returns a degenerate Reed–Solomon `(n, k)` pair drawn from the seed:
/// zero dimensions, `n < k`, codewords beyond the GF(256) field, and
/// parity-free codes.
pub fn degenerate_rs_params(rng: &mut SimRng) -> (usize, usize) {
    const DEGENERATE: [(usize, usize); 7] =
        [(0, 0), (1, 0), (0, 4), (4, 8), (300, 8), (256, 255), (8, 8)];
    DEGENERATE[rng.random_range(0..DEGENERATE.len())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnasim_core::rng::seeded;

    const TEXT: &str = ">ACGT\nACG\nACGT\n\n>TTTT\nTTT\n";

    #[test]
    fn injection_is_deterministic_per_seed() {
        for fault in FaultKind::ALL {
            let a = corrupt_cluster_text(fault, TEXT, &mut seeded(9));
            let b = corrupt_cluster_text(fault, TEXT, &mut seeded(9));
            assert_eq!(a, b, "{}", fault.name());
        }
    }

    #[test]
    fn truncation_shortens_the_file() {
        let out = corrupt_cluster_text(FaultKind::TruncatedFile, TEXT, &mut seeded(3));
        assert!(out.len() < TEXT.len());
    }

    #[test]
    fn zero_coverage_keeps_only_references() {
        let out = corrupt_cluster_text(FaultKind::ZeroCoverageEverywhere, TEXT, &mut seeded(1));
        let text = String::from_utf8(out).unwrap();
        assert!(text.lines().all(|l| l.is_empty() || l.starts_with('>')));
    }

    #[test]
    fn monster_read_is_much_longer_than_any_reference() {
        let out = corrupt_cluster_text(FaultKind::MonsterRead, TEXT, &mut seeded(2));
        let text = String::from_utf8(out).unwrap();
        let longest = text.lines().map(str::len).max().unwrap_or(0);
        assert!(longest >= 2_000);
    }

    #[test]
    fn model_corruption_replaces_one_token() {
        let model = "dnasim-model v1\naggregate_error_rate 0.03\n";
        let out = corrupt_model_text(FaultKind::NanModelParam, model, &mut seeded(4));
        assert!(out.contains("NaN"), "{out}");
        assert!(!out.contains("0.03"));
    }

    #[test]
    fn non_model_faults_leave_model_text_alone() {
        let model = "dnasim-model v1\naggregate_error_rate 0.03\n";
        let out = corrupt_model_text(FaultKind::BitFlips, model, &mut seeded(4));
        assert_eq!(out, model);
    }

    #[test]
    fn every_fault_has_a_category_and_name() {
        for fault in FaultKind::ALL {
            assert!(!fault.name().is_empty());
            let _ = fault.category();
        }
    }
}
