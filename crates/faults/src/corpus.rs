//! Seeded corpus-mutation fuzzing for binary cluster files.
//!
//! The binary codec's robustness contract is sharper than the text
//! parser's: every frame is length-prefixed and checksummed, so a
//! truncated, bit-flipped, or length-lying file must yield a typed
//! [`ReadDatasetError`](dnasim_dataset::ReadDatasetError) — never a panic
//! and never a *silently wrong read* (a decode that succeeds but returns
//! clusters that differ from the clean corpus). This module makes that
//! contract sweepable: start from a known-clean binary corpus, apply one
//! seeded [`CorpusMutation`] per case, and classify what the decoder did.

use std::panic::{catch_unwind, AssertUnwindSafe};

use dnasim_core::rng::{seeded, RngExt};
use dnasim_core::Dataset;
use dnasim_dataset::{read_dataset_auto, write_dataset_format, Format};

/// Seed-mixing constant so each case's mutation randomness is independent
/// of its neighbours (same constant family as the chaos suite).
const SEED_MIX: u64 = 0x9e37_79b9_7f4a_7c15;

/// One seeded mutation of a binary cluster corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorpusMutation {
    /// Cut the file to `at` bytes (mid-header, mid-frame, anywhere).
    Truncate {
        /// New file length in bytes.
        at: usize,
    },
    /// XOR `mask` into the byte at `at`.
    BitFlip {
        /// Byte position to corrupt.
        at: usize,
        /// Non-zero XOR mask.
        mask: u8,
    },
    /// Overwrite a frame's `payload_len` field with a lie.
    LengthLie {
        /// Byte position of the 4-byte length field.
        field_at: usize,
        /// The lying value written in its place.
        value: u32,
    },
}

impl CorpusMutation {
    /// The mutation family name (for summaries).
    pub fn name(&self) -> &'static str {
        match self {
            CorpusMutation::Truncate { .. } => "truncate",
            CorpusMutation::BitFlip { .. } => "bit-flip",
            CorpusMutation::LengthLie { .. } => "length-lie",
        }
    }

    /// Derives a mutation for `corpus` from a seed. The corpus must be a
    /// clean binary cluster file — frame boundaries are walked from its
    /// own length fields so a length-lie lands exactly on a real field.
    pub fn from_seed(seed: u64, corpus: &[u8]) -> CorpusMutation {
        let mut rng = seeded(seed);
        let len = corpus.len().max(1) as u64;
        match rng.random_range(0..3u32) {
            0 => CorpusMutation::Truncate {
                at: rng.random_range(0..len) as usize,
            },
            1 => CorpusMutation::BitFlip {
                at: rng.random_range(0..len) as usize,
                mask: 1u8 << rng.random_range(0..8u64),
            },
            _ => {
                let fields = frame_length_offsets(corpus);
                match fields.is_empty() {
                    // Header-only corpus: no length field to lie in; fall
                    // back to a truncation so the case still exercises
                    // something.
                    true => CorpusMutation::Truncate {
                        at: rng.random_range(0..len) as usize,
                    },
                    false => {
                        let pick = rng.random_range(0..fields.len() as u64) as usize;
                        CorpusMutation::LengthLie {
                            field_at: fields[pick],
                            value: rng.random_range(0..u64::from(u32::MAX)) as u32,
                        }
                    }
                }
            }
        }
    }

    /// Applies the mutation to a copy of `corpus`.
    pub fn apply(&self, corpus: &[u8]) -> Vec<u8> {
        let mut bytes = corpus.to_vec();
        match *self {
            CorpusMutation::Truncate { at } => bytes.truncate(at.min(bytes.len())),
            CorpusMutation::BitFlip { at, mask } => {
                let at = at.min(bytes.len().saturating_sub(1));
                if let Some(byte) = bytes.get_mut(at) {
                    *byte ^= mask.max(1);
                }
            }
            CorpusMutation::LengthLie { field_at, value } => {
                if field_at + 4 <= bytes.len() {
                    bytes[field_at..field_at + 4].copy_from_slice(&value.to_le_bytes());
                }
            }
        }
        bytes
    }
}

/// Walks a clean binary corpus and returns the byte offset of every
/// frame's `payload_len` field. Stops at the first structural
/// inconsistency (the corpus is expected to be clean).
fn frame_length_offsets(corpus: &[u8]) -> Vec<usize> {
    let mut offsets = Vec::new();
    let mut pos = 8usize; // past the header
    while pos + 4 <= corpus.len() {
        offsets.push(pos);
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&corpus[pos..pos + 4]);
        let payload_len = u32::from_le_bytes(raw) as usize;
        match pos.checked_add(4 + payload_len + 8) {
            Some(next) if next <= corpus.len() => pos = next,
            _ => break,
        }
    }
    offsets
}

/// How the decoder answered one mutated corpus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CorpusVerdict {
    /// Decoded successfully to an exact prefix of the clean corpus
    /// (`n` clusters) — the only acceptable success.
    CleanPrefix(usize),
    /// Rejected with a typed error — the expected answer to corruption.
    TypedError(String),
    /// Decoded successfully but to the *wrong* clusters — the silent
    /// corruption bug class this harness exists to catch.
    Misread(String),
    /// The decoder panicked.
    Panicked(String),
}

/// One `(seed, mutation)` case and its verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusFuzzOutcome {
    /// The case seed; replaying it reproduces the mutation exactly.
    pub seed: u64,
    /// The mutation applied.
    pub mutation: CorpusMutation,
    /// What the decoder did.
    pub verdict: CorpusVerdict,
}

/// The outcome of a corpus-mutation sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusFuzzReport {
    outcomes: Vec<CorpusFuzzOutcome>,
}

impl CorpusFuzzReport {
    /// Every case outcome, in seed order.
    pub fn outcomes(&self) -> &[CorpusFuzzOutcome] {
        &self.outcomes
    }

    /// Total cases run.
    pub fn cases(&self) -> usize {
        self.outcomes.len()
    }

    /// Cases that panicked or silently misread — the failures.
    pub fn failures(&self) -> Vec<&CorpusFuzzOutcome> {
        self.outcomes
            .iter()
            .filter(|o| {
                matches!(
                    o.verdict,
                    CorpusVerdict::Panicked(_) | CorpusVerdict::Misread(_)
                )
            })
            .collect()
    }

    /// True when no case panicked or misread — the pass condition.
    pub fn is_clean(&self) -> bool {
        self.failures().is_empty()
    }

    /// A one-paragraph human-readable summary.
    pub fn summary(&self) -> String {
        let mut prefix = 0usize;
        let mut typed = 0usize;
        let mut misread = 0usize;
        let mut panicked = 0usize;
        for outcome in &self.outcomes {
            match outcome.verdict {
                CorpusVerdict::CleanPrefix(_) => prefix += 1,
                CorpusVerdict::TypedError(_) => typed += 1,
                CorpusVerdict::Misread(_) => misread += 1,
                CorpusVerdict::Panicked(_) => panicked += 1,
            }
        }
        let mut out = format!(
            "corpus-fuzz: {} cases — {prefix} clean prefixes, {typed} typed errors, \
             {misread} misread, {panicked} panicked",
            self.cases()
        );
        for bad in self.failures() {
            let detail = match &bad.verdict {
                CorpusVerdict::Misread(msg) | CorpusVerdict::Panicked(msg) => msg.as_str(),
                _ => "",
            };
            out.push_str(&format!(
                "\n  FAIL mutation={} seed={}: {detail}",
                bad.mutation.name(),
                bad.seed
            ));
        }
        out
    }
}

/// Encodes `dataset` as a clean binary corpus and sweeps `cases` seeded
/// mutations over it, classifying every decode.
///
/// # Examples
///
/// ```
/// use dnasim_core::rng::seeded;
/// use dnasim_core::{Cluster, Dataset, Strand};
/// use dnasim_faults::fuzz_binary_corpus;
///
/// let mut rng = seeded(1);
/// let mut ds = Dataset::new();
/// for _ in 0..4 {
///     let reference = Strand::random(30, &mut rng);
///     ds.push(Cluster::new(reference.clone(), vec![reference]));
/// }
/// let report = fuzz_binary_corpus(&ds, 32, 7);
/// assert_eq!(report.cases(), 32);
/// assert!(report.is_clean(), "{}", report.summary());
/// ```
pub fn fuzz_binary_corpus(dataset: &Dataset, cases: usize, seed: u64) -> CorpusFuzzReport {
    let mut corpus = Vec::new();
    // Writes to a Vec are infallible; a failure would surface as an empty
    // corpus, which every mutation and the decoder handle.
    let _ = write_dataset_format(dataset, &mut corpus, Format::Binary);
    let previous_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let outcomes = (0..cases as u64)
        .map(|i| {
            let case_seed = seed ^ i.wrapping_mul(SEED_MIX).wrapping_add(i + 1);
            run_corpus_case(dataset, &corpus, case_seed)
        })
        .collect();
    std::panic::set_hook(previous_hook);
    CorpusFuzzReport { outcomes }
}

/// Runs one mutation case under `catch_unwind`.
fn run_corpus_case(dataset: &Dataset, corpus: &[u8], seed: u64) -> CorpusFuzzOutcome {
    let mutation = CorpusMutation::from_seed(seed, corpus);
    let mutated = mutation.apply(corpus);
    let verdict = match catch_unwind(AssertUnwindSafe(|| classify(dataset, &mutated))) {
        Ok(verdict) => verdict,
        Err(payload) => CorpusVerdict::Panicked(panic_message(payload)),
    };
    CorpusFuzzOutcome {
        seed,
        mutation,
        verdict,
    }
}

fn classify(dataset: &Dataset, mutated: &[u8]) -> CorpusVerdict {
    match read_dataset_auto(mutated) {
        Err(e) => CorpusVerdict::TypedError(e.to_string()),
        Ok(decoded) => {
            let clean = dataset.clusters();
            if decoded.len() <= clean.len() && decoded.clusters() == &clean[..decoded.len()] {
                CorpusVerdict::CleanPrefix(decoded.len())
            } else {
                CorpusVerdict::Misread(format!(
                    "decoded {} clusters that are not a prefix of the {}-cluster corpus",
                    decoded.len(),
                    clean.len()
                ))
            }
        }
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnasim_core::{Cluster, Strand};

    fn corpus_dataset(clusters: usize, seed: u64) -> Dataset {
        let mut rng = seeded(seed);
        let mut ds = Dataset::new();
        for i in 0..clusters {
            let reference = Strand::random(40, &mut rng);
            let reads = (0..i % 4).map(|_| Strand::random(38, &mut rng)).collect();
            ds.push(Cluster::new(reference, reads));
        }
        ds
    }

    #[test]
    fn smoke_sweep_of_128_mutations_is_clean() {
        // The ≥100-case smoke the verify script runs: truncations,
        // bit flips, and length lies must all yield typed errors or
        // clean prefixes — never a panic, never a misread.
        let ds = corpus_dataset(8, 42);
        let report = fuzz_binary_corpus(&ds, 128, 0x00D_15EA5E);
        assert_eq!(report.cases(), 128);
        assert!(report.is_clean(), "{}", report.summary());
        // The sweep must actually exercise the rejection path.
        let typed = report
            .outcomes()
            .iter()
            .filter(|o| matches!(o.verdict, CorpusVerdict::TypedError(_)))
            .count();
        assert!(typed > 20, "{}", report.summary());
    }

    #[test]
    fn mutations_are_reproducible_from_their_seed() {
        let ds = corpus_dataset(4, 9);
        let a = fuzz_binary_corpus(&ds, 16, 77);
        let b = fuzz_binary_corpus(&ds, 16, 77);
        assert_eq!(a, b);
    }

    #[test]
    fn all_three_mutation_families_appear() {
        let ds = corpus_dataset(6, 3);
        let report = fuzz_binary_corpus(&ds, 64, 5);
        for family in ["truncate", "bit-flip", "length-lie"] {
            assert!(
                report.outcomes().iter().any(|o| o.mutation.name() == family),
                "missing {family} in 64 cases"
            );
        }
    }

    #[test]
    fn length_lie_lands_on_real_frame_fields() {
        let ds = corpus_dataset(5, 21);
        let mut corpus = Vec::new();
        write_dataset_format(&ds, &mut corpus, Format::Binary).unwrap();
        let fields = frame_length_offsets(&corpus);
        assert_eq!(fields.len(), ds.len());
        assert_eq!(fields[0], 8);
    }

    #[test]
    fn empty_corpus_is_fuzzable() {
        let report = fuzz_binary_corpus(&Dataset::new(), 32, 1);
        assert!(report.is_clean(), "{}", report.summary());
    }
}
