//! A fault-injecting [`io::Read`] wrapper.

use std::io::{self, Read};

use dnasim_core::rng::{seeded, RngExt};

/// What a [`FaultyReader`] does to the byte stream, decided up front so a
/// failing case reproduces from its seed alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReaderFaultPlan {
    /// End-of-file after this many bytes (silent truncation).
    pub truncate_after: Option<u64>,
    /// Return an I/O error once this many bytes have been delivered.
    pub io_error_after: Option<u64>,
    /// XOR one bit into every `n`-th byte delivered.
    pub bitflip_every: Option<u64>,
}

impl ReaderFaultPlan {
    /// A silent truncation after `bytes`.
    pub fn truncation(bytes: u64) -> ReaderFaultPlan {
        ReaderFaultPlan {
            truncate_after: Some(bytes),
            io_error_after: None,
            bitflip_every: None,
        }
    }

    /// An I/O error after `bytes`.
    pub fn io_error(bytes: u64) -> ReaderFaultPlan {
        ReaderFaultPlan {
            truncate_after: None,
            io_error_after: Some(bytes),
            bitflip_every: None,
        }
    }

    /// Derives a random plan (one of the fault shapes, offsets ≤ `len`)
    /// from a seed.
    pub fn from_seed(seed: u64, len: u64) -> ReaderFaultPlan {
        let mut rng = seeded(seed);
        let at = rng.random_range(0..len.max(1));
        match rng.random_range(0..3u32) {
            0 => ReaderFaultPlan::truncation(at),
            1 => ReaderFaultPlan::io_error(at),
            _ => ReaderFaultPlan {
                truncate_after: None,
                io_error_after: None,
                bitflip_every: Some(rng.random_range(1..64u64)),
            },
        }
    }
}

/// Wraps any reader and injects the faults of a [`ReaderFaultPlan`].
///
/// # Examples
///
/// ```
/// use std::io::Read;
/// use dnasim_faults::{FaultyReader, ReaderFaultPlan};
///
/// let mut reader = FaultyReader::new(&b"hello world"[..], ReaderFaultPlan::truncation(5));
/// let mut out = String::new();
/// reader.read_to_string(&mut out)?;
/// assert_eq!(out, "hello");
/// # Ok::<(), std::io::Error>(())
/// ```
#[derive(Debug)]
pub struct FaultyReader<R> {
    inner: R,
    plan: ReaderFaultPlan,
    delivered: u64,
}

impl<R: Read> FaultyReader<R> {
    /// Wraps `inner` with the given fault plan.
    pub fn new(inner: R, plan: ReaderFaultPlan) -> FaultyReader<R> {
        FaultyReader {
            inner,
            plan,
            delivered: 0,
        }
    }
}

impl<R: Read> Read for FaultyReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let mut budget = buf.len() as u64;
        if let Some(cut) = self.plan.truncate_after {
            budget = budget.min(cut.saturating_sub(self.delivered));
            if budget == 0 {
                return Ok(0);
            }
        }
        if let Some(err_at) = self.plan.io_error_after {
            if self.delivered >= err_at {
                return Err(io::Error::other("injected stream fault"));
            }
            budget = budget.min((err_at - self.delivered).max(1));
        }
        let upto = (budget as usize).min(buf.len());
        let n = self.inner.read(&mut buf[..upto])?;
        if let Some(every) = self.plan.bitflip_every.filter(|&e| e > 0) {
            for i in 0..n as u64 {
                if (self.delivered + i) % every == every - 1 {
                    buf[i as usize] ^= 0b0100;
                }
            }
        }
        self.delivered += n as u64;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncation_stops_exactly_at_the_cut() {
        let data = vec![7u8; 100];
        let mut reader = FaultyReader::new(data.as_slice(), ReaderFaultPlan::truncation(37));
        let mut out = Vec::new();
        reader.read_to_end(&mut out).unwrap();
        assert_eq!(out.len(), 37);
    }

    #[test]
    fn io_error_fires_after_the_offset() {
        let data = vec![7u8; 100];
        let mut reader = FaultyReader::new(data.as_slice(), ReaderFaultPlan::io_error(10));
        let mut out = Vec::new();
        let err = reader.read_to_end(&mut out).unwrap_err();
        assert_eq!(err.to_string(), "injected stream fault");
        assert!(out.len() >= 10);
    }

    #[test]
    fn bitflips_alter_the_payload_deterministically() {
        let data = vec![0u8; 64];
        let plan = ReaderFaultPlan {
            truncate_after: None,
            io_error_after: None,
            bitflip_every: Some(8),
        };
        let mut reader = FaultyReader::new(data.as_slice(), plan);
        let mut out = Vec::new();
        reader.read_to_end(&mut out).unwrap();
        assert_eq!(out.iter().filter(|&&b| b != 0).count(), 8);
    }

    #[test]
    fn seeded_plans_are_reproducible() {
        assert_eq!(
            ReaderFaultPlan::from_seed(5, 100),
            ReaderFaultPlan::from_seed(5, 100)
        );
    }
}
