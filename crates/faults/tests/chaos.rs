//! The release chaos gate: sweep the full fault × seed grid and require
//! that not one case panics — every injected fault must end in a typed
//! error, a quarantined cluster, or be tolerated outright.
//!
//! Set `DNASIM_BENCH_FAST=1` to run the reduced smoke grid instead (used
//! by `scripts/verify.sh`).

use dnasim_faults::{ChaosSuite, FaultKind, Verdict};

fn suite() -> ChaosSuite {
    ChaosSuite::from_env()
}

#[test]
fn chaos_grid_is_panic_free() {
    let picked = suite();
    let report = picked.run();
    if picked == ChaosSuite::full() {
        assert!(
            report.cases() >= 200,
            "full grid must exercise at least 200 cases, got {}",
            report.cases()
        );
    }
    assert!(report.is_clean(), "{}", report.summary());
}

#[test]
fn every_fault_kind_is_exercised() {
    let report = suite().run();
    for fault in FaultKind::ALL {
        assert!(
            report.outcomes().iter().any(|o| o.fault == fault),
            "fault {} missing from the sweep",
            fault.name()
        );
    }
}

#[test]
fn hostile_model_parameters_always_yield_typed_errors() {
    let report = suite().run();
    let model_faults = [
        FaultKind::NanModelParam,
        FaultKind::InfModelParam,
        FaultKind::NegativeModelParam,
        FaultKind::OutOfRangeModelParam,
    ];
    for outcome in report.outcomes() {
        if model_faults.contains(&outcome.fault) {
            assert!(
                matches!(outcome.verdict, Verdict::TypedError(_)),
                "fault {} seed {} slipped through: {:?}",
                outcome.fault.name(),
                outcome.seed,
                outcome.verdict
            );
        }
    }
}

#[test]
fn zero_coverage_faults_are_quarantined_not_fatal() {
    let report = suite().run();
    let quarantine_cases: Vec<_> = report
        .outcomes()
        .iter()
        .filter(|o| o.fault == FaultKind::ZeroCoverageEverywhere)
        .collect();
    assert!(!quarantine_cases.is_empty());
    for outcome in quarantine_cases {
        assert!(
            matches!(outcome.verdict, Verdict::Quarantined(_)),
            "seed {}: {:?}",
            outcome.seed,
            outcome.verdict
        );
    }
}
