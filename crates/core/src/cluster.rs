//! Clusters: a reference strand together with its noisy copies.

use crate::rng::SliceRandom;
use crate::rng::Rng;

use crate::strand::Strand;

/// A reference strand paired with the noisy reads that sequenced from it.
///
/// Under perfect (pseudo-)clustering, the simulator's ordered output is
/// taken as already clustered; under imperfect clustering, reads are
/// assigned by a clustering algorithm and may be wrong. Either way, a
/// `Cluster` is the unit a trace-reconstruction algorithm consumes.
///
/// # Examples
///
/// ```
/// use dnasim_core::{Cluster, Strand};
///
/// let reference: Strand = "ACGT".parse()?;
/// let cluster = Cluster::new(reference, vec!["ACG".parse()?, "ACGT".parse()?]);
/// assert_eq!(cluster.coverage(), 2);
/// assert!(!cluster.is_erasure());
/// # Ok::<(), dnasim_core::ParseStrandError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Cluster {
    reference: Strand,
    reads: Vec<Strand>,
}

impl Cluster {
    /// Creates a cluster from a reference strand and its noisy reads.
    pub fn new(reference: Strand, reads: Vec<Strand>) -> Cluster {
        Cluster { reference, reads }
    }

    /// Creates an erasure: a cluster for which no read was recovered.
    ///
    /// ```
    /// use dnasim_core::{Cluster, Strand};
    /// let c = Cluster::erasure("ACGT".parse().unwrap());
    /// assert!(c.is_erasure());
    /// ```
    pub fn erasure(reference: Strand) -> Cluster {
        Cluster {
            reference,
            reads: Vec::new(),
        }
    }

    /// The designed reference strand.
    pub fn reference(&self) -> &Strand {
        &self.reference
    }

    /// The noisy reads belonging to this cluster.
    pub fn reads(&self) -> &[Strand] {
        &self.reads
    }

    /// The sequencing coverage of this cluster (number of noisy reads).
    pub fn coverage(&self) -> usize {
        self.reads.len()
    }

    /// Whether the cluster is an erasure (zero reads recovered).
    pub fn is_erasure(&self) -> bool {
        self.reads.is_empty()
    }

    /// Adds one read to the cluster.
    pub fn push_read(&mut self, read: Strand) {
        self.reads.push(read);
    }

    /// Returns a cluster keeping only the first `n` reads.
    ///
    /// This implements the fixed-coverage protocol of §3.2: when comparing
    /// coverage `i` with coverage `i+1`, the first `i` reads are identical,
    /// so only the marginal read differs.
    ///
    /// ```
    /// use dnasim_core::{Cluster, Strand};
    /// let c = Cluster::new(
    ///     "AC".parse().unwrap(),
    ///     vec!["AC".parse().unwrap(), "A".parse().unwrap(), "C".parse().unwrap()],
    /// );
    /// assert_eq!(c.with_coverage(2).coverage(), 2);
    /// assert_eq!(c.with_coverage(9).coverage(), 3);
    /// ```
    pub fn with_coverage(&self, n: usize) -> Cluster {
        Cluster {
            reference: self.reference.clone(),
            reads: self.reads.iter().take(n).cloned().collect(),
        }
    }

    /// Shuffles the order of the reads in place.
    pub fn shuffle_reads<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        self.reads.shuffle(rng);
    }

    /// Decomposes the cluster into its reference and reads.
    pub fn into_parts(self) -> (Strand, Vec<Strand>) {
        (self.reference, self.reads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    fn sample() -> Cluster {
        Cluster::new(
            "ACGT".parse().unwrap(),
            vec![
                "ACGT".parse().unwrap(),
                "ACG".parse().unwrap(),
                "TACGT".parse().unwrap(),
            ],
        )
    }

    #[test]
    fn coverage_counts_reads() {
        assert_eq!(sample().coverage(), 3);
    }

    #[test]
    fn erasure_has_no_reads() {
        let c = Cluster::erasure("AC".parse().unwrap());
        assert!(c.is_erasure());
        assert_eq!(c.coverage(), 0);
        assert_eq!(c.reference().to_string(), "AC");
    }

    #[test]
    fn with_coverage_takes_prefix() {
        let c = sample();
        let c2 = c.with_coverage(2);
        assert_eq!(c2.reads(), &c.reads()[..2]);
        // Requesting more than available keeps everything.
        assert_eq!(c.with_coverage(10).coverage(), 3);
        // Zero coverage produces an erasure.
        assert!(c.with_coverage(0).is_erasure());
    }

    #[test]
    fn push_read_appends() {
        let mut c = Cluster::erasure("AC".parse().unwrap());
        c.push_read("A".parse().unwrap());
        assert_eq!(c.coverage(), 1);
        assert!(!c.is_erasure());
    }

    #[test]
    fn shuffle_preserves_multiset() {
        let mut c = sample();
        let mut before: Vec<String> = c.reads().iter().map(|r| r.to_string()).collect();
        let mut rng = seeded(5);
        c.shuffle_reads(&mut rng);
        let mut after: Vec<String> = c.reads().iter().map(|r| r.to_string()).collect();
        before.sort();
        after.sort();
        assert_eq!(before, after);
    }

    #[test]
    fn into_parts_round_trip() {
        let c = sample();
        let (reference, reads) = c.clone().into_parts();
        assert_eq!(Cluster::new(reference, reads), c);
    }
}
