//! The DNA alphabet: the four nucleotide bases.

use std::fmt;
use std::str::FromStr;

use crate::rng::{Rng, RngExt};

/// One of the four DNA nucleotide bases.
///
/// DNA storage encodes digital information over the alphabet
/// Σ = {A, C, G, T}. The discriminants are chosen so a base can be used
/// directly as an index into 4-element lookup tables (e.g. substitution
/// matrices).
///
/// # Examples
///
/// ```
/// use dnasim_core::Base;
///
/// let b = Base::try_from('G')?;
/// assert_eq!(b.complement(), Base::C);
/// assert_eq!(b.index(), 2);
/// # Ok::<(), dnasim_core::ParseBaseError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Base {
    /// Adenine.
    A = 0,
    /// Cytosine.
    C = 1,
    /// Guanine.
    G = 2,
    /// Thymine.
    T = 3,
}

impl Base {
    /// All four bases in index order `[A, C, G, T]`.
    ///
    /// ```
    /// use dnasim_core::Base;
    /// assert_eq!(Base::ALL.len(), 4);
    /// assert_eq!(Base::ALL[2], Base::G);
    /// ```
    pub const ALL: [Base; 4] = [Base::A, Base::C, Base::G, Base::T];

    /// The number of distinct bases.
    pub const COUNT: usize = 4;

    /// Returns the index of this base in `0..4` (A=0, C=1, G=2, T=3).
    ///
    /// ```
    /// use dnasim_core::Base;
    /// assert_eq!(Base::T.index(), 3);
    /// ```
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Constructs a base from an index in `0..4`.
    ///
    /// Returns `None` if `idx >= 4`.
    ///
    /// ```
    /// use dnasim_core::Base;
    /// assert_eq!(Base::from_index(1), Some(Base::C));
    /// assert_eq!(Base::from_index(9), None);
    /// ```
    #[inline]
    pub const fn from_index(idx: usize) -> Option<Base> {
        match idx {
            0 => Some(Base::A),
            1 => Some(Base::C),
            2 => Some(Base::G),
            3 => Some(Base::T),
            _ => None,
        }
    }

    /// Returns the Watson–Crick complement (A↔T, C↔G).
    ///
    /// ```
    /// use dnasim_core::Base;
    /// assert_eq!(Base::A.complement(), Base::T);
    /// assert_eq!(Base::G.complement(), Base::C);
    /// ```
    #[inline]
    pub const fn complement(self) -> Base {
        match self {
            Base::A => Base::T,
            Base::C => Base::G,
            Base::G => Base::C,
            Base::T => Base::A,
        }
    }

    /// Returns the affinity partner under faulty bonding, i.e. the base this
    /// one is most commonly confused with during sequencing (A↔G purines,
    /// C↔T pyrimidines), per Heckel et al.'s conditional-error analysis.
    ///
    /// ```
    /// use dnasim_core::Base;
    /// assert_eq!(Base::T.transition_partner(), Base::C);
    /// assert_eq!(Base::A.transition_partner(), Base::G);
    /// ```
    #[inline]
    pub const fn transition_partner(self) -> Base {
        match self {
            Base::A => Base::G,
            Base::G => Base::A,
            Base::C => Base::T,
            Base::T => Base::C,
        }
    }

    /// Whether this base is G or C (used for GC-ratio computations).
    ///
    /// ```
    /// use dnasim_core::Base;
    /// assert!(Base::G.is_gc());
    /// assert!(!Base::A.is_gc());
    /// ```
    #[inline]
    pub const fn is_gc(self) -> bool {
        matches!(self, Base::G | Base::C)
    }

    /// Returns the uppercase ASCII character for this base.
    ///
    /// ```
    /// use dnasim_core::Base;
    /// assert_eq!(Base::C.to_char(), 'C');
    /// ```
    #[inline]
    pub const fn to_char(self) -> char {
        match self {
            Base::A => 'A',
            Base::C => 'C',
            Base::G => 'G',
            Base::T => 'T',
        }
    }

    /// Draws a base uniformly at random.
    ///
    /// ```
    /// use dnasim_core::{Base, rng::seeded};
    /// let mut rng = seeded(7);
    /// let b = Base::random(&mut rng);
    /// assert!(Base::ALL.contains(&b));
    /// ```
    #[inline]
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Base {
        Base::ALL[rng.random_range(0..Base::COUNT)]
    }

    /// Draws a base uniformly at random from the three bases *other than*
    /// `self` — the uniform substitution model used by DNASimulator-style
    /// baselines.
    ///
    /// ```
    /// use dnasim_core::{Base, rng::seeded};
    /// let mut rng = seeded(7);
    /// for _ in 0..32 {
    ///     assert_ne!(Base::A.random_other(&mut rng), Base::A);
    /// }
    /// ```
    #[inline]
    pub fn random_other<R: Rng + ?Sized>(self, rng: &mut R) -> Base {
        let offset = rng.random_range(1..Base::COUNT);
        Base::ALL[(self.index() + offset) % Base::COUNT]
    }
}

impl fmt::Display for Base {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Base::A => "A",
            Base::C => "C",
            Base::G => "G",
            Base::T => "T",
        })
    }
}

/// Error returned when parsing a [`Base`] (or a strand of bases) from text
/// fails.
///
/// ```
/// use dnasim_core::Base;
/// let err = Base::try_from('x').unwrap_err();
/// assert!(err.to_string().contains('x'));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseBaseError {
    /// The offending character.
    pub found: char,
}

impl fmt::Display for ParseBaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid DNA base '{}', expected one of A, C, G, T",
            self.found
        )
    }
}

impl std::error::Error for ParseBaseError {}

impl TryFrom<char> for Base {
    type Error = ParseBaseError;

    fn try_from(c: char) -> Result<Self, Self::Error> {
        match c {
            'A' | 'a' => Ok(Base::A),
            'C' | 'c' => Ok(Base::C),
            'G' | 'g' => Ok(Base::G),
            'T' | 't' => Ok(Base::T),
            _ => Err(ParseBaseError { found: c }),
        }
    }
}

impl TryFrom<u8> for Base {
    type Error = ParseBaseError;

    fn try_from(b: u8) -> Result<Self, Self::Error> {
        Base::try_from(b as char)
    }
}

impl From<Base> for char {
    fn from(b: Base) -> char {
        b.to_char()
    }
}

impl FromStr for Base {
    type Err = ParseBaseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Base::try_from(c),
            _ => Err(ParseBaseError { found: '\0' }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    #[test]
    fn index_round_trip() {
        for b in Base::ALL {
            assert_eq!(Base::from_index(b.index()), Some(b));
        }
        assert_eq!(Base::from_index(4), None);
    }

    #[test]
    fn complement_is_involution() {
        for b in Base::ALL {
            assert_eq!(b.complement().complement(), b);
            assert_ne!(b.complement(), b);
        }
    }

    #[test]
    fn transition_partner_is_involution_and_distinct() {
        for b in Base::ALL {
            assert_eq!(b.transition_partner().transition_partner(), b);
            assert_ne!(b.transition_partner(), b);
        }
    }

    #[test]
    fn gc_classification() {
        assert!(Base::G.is_gc());
        assert!(Base::C.is_gc());
        assert!(!Base::A.is_gc());
        assert!(!Base::T.is_gc());
    }

    #[test]
    fn char_round_trip() {
        for b in Base::ALL {
            assert_eq!(Base::try_from(b.to_char()), Ok(b));
            assert_eq!(Base::try_from(b.to_char().to_ascii_lowercase()), Ok(b));
        }
    }

    #[test]
    fn invalid_chars_rejected() {
        for c in ['N', 'x', ' ', '0', 'U'] {
            assert!(Base::try_from(c).is_err());
        }
    }

    #[test]
    fn from_str_single_char_only() {
        assert_eq!("G".parse::<Base>(), Ok(Base::G));
        assert!("GT".parse::<Base>().is_err());
        assert!("".parse::<Base>().is_err());
    }

    #[test]
    fn random_other_never_returns_self() {
        let mut rng = seeded(123);
        for b in Base::ALL {
            for _ in 0..100 {
                assert_ne!(b.random_other(&mut rng), b);
            }
        }
    }

    #[test]
    fn random_other_covers_all_alternatives() {
        let mut rng = seeded(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[Base::A.random_other(&mut rng).index()] = true;
        }
        assert!(!seen[Base::A.index()]);
        assert!(seen[Base::C.index()] && seen[Base::G.index()] && seen[Base::T.index()]);
    }

    #[test]
    fn random_is_roughly_uniform() {
        let mut rng = seeded(42);
        let mut counts = [0usize; 4];
        let n = 40_000;
        for _ in 0..n {
            counts[Base::random(&mut rng).index()] += 1;
        }
        for c in counts {
            // Each base should appear ~25% of the time; allow generous slack.
            assert!((c as f64 / n as f64 - 0.25).abs() < 0.02, "counts={counts:?}");
        }
    }

    #[test]
    fn display_matches_char() {
        for b in Base::ALL {
            assert_eq!(b.to_string(), b.to_char().to_string());
        }
    }

    #[test]
    fn error_display_mentions_char() {
        let e = Base::try_from('q').unwrap_err();
        assert_eq!(e.found, 'q');
        assert!(e.to_string().contains('q'));
    }
}
