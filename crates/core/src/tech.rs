//! Survey constants for DNA sequencing technologies (paper Table 1.1).
//!
//! These are reference data, not simulation parameters: the harness prints
//! them to regenerate Table 1.1, and channel presets cite them when choosing
//! default error rates.

use std::fmt;

/// One generation of sequencing technology with its cost/error envelope.
#[derive(Debug, Clone, PartialEq)]
pub struct SequencingTech {
    /// Human-readable name, e.g. `"3rd Gen. (Nanopore)"`.
    pub name: &'static str,
    /// Cost per kilobase in USD, `(low, high)`.
    pub cost_per_kb_usd: (f64, f64),
    /// Error rate as a fraction, `(low, high)`.
    pub error_rate: (f64, f64),
    /// Typical sequencing length in base pairs, `(low, high)`.
    pub sequencing_length_bp: (u64, u64),
    /// Read speed per kilobase in hours, `(low, high)`.
    pub read_speed_h_per_kb: (f64, f64),
}

impl fmt::Display for SequencingTech {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: cost ${:.0e}-{:.0e}/Kb, error {:.3}%-{:.3}%, length {}-{} bp",
            self.name,
            self.cost_per_kb_usd.0,
            self.cost_per_kb_usd.1,
            self.error_rate.0 * 100.0,
            self.error_rate.1 * 100.0,
            self.sequencing_length_bp.0,
            self.sequencing_length_bp.1,
        )
    }
}

/// First-generation (Sanger) sequencing.
pub const SANGER: SequencingTech = SequencingTech {
    name: "1st Gen. (Sanger)",
    cost_per_kb_usd: (1.0, 2.0),
    error_rate: (0.000_01, 0.000_1),
    sequencing_length_bp: (500, 500),
    read_speed_h_per_kb: (0.1, 0.1),
};

/// Second-generation (Illumina) sequencing.
pub const ILLUMINA: SequencingTech = SequencingTech {
    name: "2nd Gen. (Illumina)",
    cost_per_kb_usd: (1e-5, 1e-3),
    error_rate: (0.001, 0.01),
    sequencing_length_bp: (25, 150),
    read_speed_h_per_kb: (1e-7, 1e-4),
};

/// Third-generation (Nanopore) sequencing.
pub const NANOPORE: SequencingTech = SequencingTech {
    name: "3rd Gen. (Nanopore)",
    cost_per_kb_usd: (1e-4, 1e-3),
    error_rate: (0.10, 0.10),
    sequencing_length_bp: (100_000, 100_000),
    read_speed_h_per_kb: (1e-7, 1e-6),
};

/// The full survey, in generation order (Table 1.1 columns).
pub const SURVEY: [&SequencingTech; 3] = [&SANGER, &ILLUMINA, &NANOPORE];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn survey_is_generation_ordered_by_error_rate() {
        // The paper's motivating trend: newer technology, higher error rate.
        assert!(SANGER.error_rate.1 < ILLUMINA.error_rate.0);
        assert!(ILLUMINA.error_rate.1 < NANOPORE.error_rate.0);
    }

    #[test]
    fn nanopore_has_highest_error_and_longest_reads() {
        assert_eq!(NANOPORE.error_rate.0, 0.10);
        assert!(NANOPORE.sequencing_length_bp.0 > ILLUMINA.sequencing_length_bp.1);
    }

    #[test]
    fn display_includes_name() {
        for tech in SURVEY {
            assert!(tech.to_string().contains(tech.name));
        }
    }

    #[test]
    fn ranges_are_ordered() {
        for tech in SURVEY {
            assert!(tech.cost_per_kb_usd.0 <= tech.cost_per_kb_usd.1);
            assert!(tech.error_rate.0 <= tech.error_rate.1);
            assert!(tech.sequencing_length_bp.0 <= tech.sequencing_length_bp.1);
            assert!(tech.read_speed_h_per_kb.0 <= tech.read_speed_h_per_kb.1);
        }
    }
}
