//! Streaming cluster flow: bounded windows of clusters with stable
//! global indices.
//!
//! Every pipeline stage in the workspace seeds its per-cluster RNG from
//! the cluster's *global* index (`SeedSequence::fork(global_index)`), so a
//! stage that processes clusters in bounded batches produces byte-identical
//! output to one that materialises the whole [`Dataset`] — regardless of
//! batch size or thread count. This module provides the vocabulary for
//! that contract:
//!
//! * [`Batch`] — a window of clusters that remembers where in the global
//!   cluster order it starts;
//! * [`ClusterSource`] / [`ClusterSink`] — pull/push endpoints a stage
//!   streams between;
//! * [`pump`] — the generic bounded-window driver, which also audits the
//!   window high-watermark so tests can assert a stage never held more
//!   than `batch_size` clusters in flight;
//! * [`Dataset`] adapters, making the in-memory type one trivial
//!   source/sink so existing callers keep working unchanged.
//!
//! # Examples
//!
//! ```
//! use dnasim_core::{Batch, Cluster, ClusterSink, ClusterSource, Dataset, pump};
//!
//! let mut ds = Dataset::new();
//! for _ in 0..10 {
//!     ds.push(Cluster::erasure("ACGT".parse()?));
//! }
//! let mut out = Dataset::new();
//! let stats = pump(&mut ds.stream(), &mut out, 3, Ok)?;
//! assert_eq!(out, ds);
//! assert_eq!(stats.clusters, 10);
//! assert!(stats.high_watermark <= 3);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::ops::Range;

use crate::budget::Budget;
use crate::cluster::Cluster;
use crate::dataset::Dataset;
use crate::error::DnasimError;

/// A bounded window of consecutive clusters with stable global indices.
///
/// `Batch` is the unit streaming stages exchange: cluster `i` of the batch
/// is cluster `start() + i` of the global stream, and stages that need a
/// per-cluster seed fork it from that global index, never from the
/// within-batch position. That is what makes output independent of batch
/// size (see DESIGN.md §11).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Batch {
    start: usize,
    clusters: Vec<Cluster>,
}

impl Batch {
    /// Creates a batch whose first cluster has global index `start`.
    pub fn new(start: usize, clusters: Vec<Cluster>) -> Batch {
        Batch { start, clusters }
    }

    /// Global index of the first cluster in the batch.
    pub fn start(&self) -> usize {
        self.start
    }

    /// Number of clusters in the batch.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// Whether the batch holds no clusters.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// The clusters in the batch, in global order.
    pub fn clusters(&self) -> &[Cluster] {
        &self.clusters
    }

    /// Consumes the batch, yielding its clusters — for sinks that keep
    /// them (accumulators, tees) rather than serialising and dropping.
    pub fn into_clusters(self) -> Vec<Cluster> {
        self.clusters
    }

    /// The half-open range of global indices the batch covers.
    pub fn global_indices(&self) -> Range<usize> {
        self.start..self.start + self.clusters.len()
    }

    /// Iterates `(global_index, cluster)` pairs.
    pub fn iter_indexed(&self) -> impl Iterator<Item = (usize, &Cluster)> {
        let start = self.start;
        self.clusters
            .iter()
            .enumerate()
            .map(move |(i, c)| (start + i, c))
    }

    /// Consumes the batch, returning its start index and clusters.
    pub fn into_parts(self) -> (usize, Vec<Cluster>) {
        (self.start, self.clusters)
    }

    /// Keeps only the first `len` clusters, preserving the start index.
    /// A no-op when the batch is already at most `len` long. This is how
    /// a budgeted driver cuts a batch at the admitted prefix.
    pub fn truncate(&mut self, len: usize) {
        self.clusters.truncate(len);
    }
}

/// A pull endpoint producing clusters in global order, one bounded batch
/// at a time.
pub trait ClusterSource {
    /// Produces the next batch of at most `max` clusters, or `Ok(None)`
    /// once the stream is exhausted.
    ///
    /// Implementations must emit clusters in global order with contiguous
    /// indices: the first batch starts at 0 and each subsequent batch
    /// starts where the previous one ended.
    ///
    /// # Errors
    ///
    /// Implementation-specific — e.g. I/O or parse failures for sources
    /// backed by a reader. `max == 0` is a caller bug and yields
    /// [`DnasimError::Config`].
    fn next_batch(&mut self, max: usize) -> Result<Option<Batch>, DnasimError>;
}

/// A push endpoint consuming clusters in global order.
pub trait ClusterSink {
    /// Accepts the next batch. Batches arrive in global order with
    /// contiguous indices; sinks may reject gaps or overlaps with
    /// [`DnasimError::Config`].
    ///
    /// # Errors
    ///
    /// Implementation-specific — e.g. I/O failures for writer-backed
    /// sinks, or a contiguity violation.
    fn accept(&mut self, batch: Batch) -> Result<(), DnasimError>;

    /// Signals that no further batches will arrive, flushing any
    /// buffered state.
    ///
    /// # Errors
    ///
    /// Implementation-specific; the default does nothing.
    fn finish(&mut self) -> Result<(), DnasimError> {
        Ok(())
    }
}

/// Counters from a bounded-window streaming run.
///
/// `high_watermark` is the audit the acceptance criteria lean on: the
/// maximum number of clusters any single window held, which must never
/// exceed the requested batch size.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowStats {
    /// Number of batches pumped.
    pub batches: usize,
    /// Total clusters pumped.
    pub clusters: usize,
    /// Maximum clusters held in flight by any one window.
    pub high_watermark: usize,
    /// Maximum *reads* resident in any one window — the memory gauge
    /// behind the bounded-memory acceptance criteria. Where
    /// `high_watermark` counts clusters, this counts the strands actually
    /// held, so a stage whose clusters balloon (e.g. pathological
    /// misassignment in imperfect clustering) is observable, not just
    /// asserted bounded.
    pub peak_resident_reads: usize,
}

impl WindowStats {
    /// Folds another window's counters into this one (for multi-stage
    /// pipelines reporting a single summary).
    pub fn absorb(&mut self, other: WindowStats) {
        self.batches += other.batches;
        self.clusters += other.clusters;
        self.high_watermark = self.high_watermark.max(other.high_watermark);
        self.peak_resident_reads = self.peak_resident_reads.max(other.peak_resident_reads);
    }

    /// Records one window of `clusters` clusters holding `reads` reads,
    /// bumping the batch/cluster counters and ratcheting both residency
    /// gauges.
    pub fn record_window(&mut self, clusters: usize, reads: usize) {
        self.batches += 1;
        self.clusters += clusters;
        self.high_watermark = self.high_watermark.max(clusters);
        self.peak_resident_reads = self.peak_resident_reads.max(reads);
    }
}

/// Total reads held by a slice of clusters — the quantity the
/// [`WindowStats::peak_resident_reads`] gauge tracks.
pub fn resident_reads(clusters: &[Cluster]) -> usize {
    clusters.iter().map(|c| c.reads().len()).sum()
}

/// Validates a streaming batch size, translating `0` into a typed error.
pub(crate) fn checked_batch_size(batch_size: usize) -> Result<usize, DnasimError> {
    if batch_size == 0 {
        Err(DnasimError::config(
            "batch_size",
            "streaming batch size must be at least 1",
        ))
    } else {
        Ok(batch_size)
    }
}

/// Drives `source` → `transform` → `sink` with a bounded window of at most
/// `batch_size` clusters, returning the window counters.
///
/// `transform` must map batches 1:1 — same start index, same cluster
/// count — so global indices stay stable through the stage; a transform
/// that re-shapes the stream is a config error, not silent corruption.
/// The sink's [`ClusterSink::finish`] hook runs after the source is
/// exhausted.
///
/// # Errors
///
/// [`DnasimError::Config`] for `batch_size == 0`, a non-contiguous
/// source, or a transform that changes batch shape; otherwise whatever
/// the source, transform, or sink reports.
pub fn pump<S, K, F>(
    source: &mut S,
    sink: &mut K,
    batch_size: usize,
    transform: F,
) -> Result<WindowStats, DnasimError>
where
    S: ClusterSource + ?Sized,
    K: ClusterSink + ?Sized,
    F: FnMut(Batch) -> Result<Batch, DnasimError>,
{
    pump_budgeted(source, sink, batch_size, &Budget::unlimited(), "pump", transform)
}

/// [`pump`] with a deterministic work [`Budget`]: each non-empty batch
/// charges one unit per cluster, each empty batch charges one unit (so a
/// stalled source that yields empty batches forever exhausts the budget
/// instead of spinning), and cancellation is observed at every batch
/// boundary.
///
/// When the budget runs dry mid-batch the *admitted prefix* is still
/// transformed and emitted, so the sink holds exactly the first `limit`
/// clusters of the stream — at any batch size — before the typed error is
/// returned. `stage` names this driver in the error.
///
/// # Errors
///
/// [`DnasimError::DeadlineExceeded`] on exhaustion or cancellation, plus
/// everything [`pump`] can report.
pub fn pump_budgeted<S, K, F>(
    source: &mut S,
    sink: &mut K,
    batch_size: usize,
    budget: &Budget,
    stage: &'static str,
    mut transform: F,
) -> Result<WindowStats, DnasimError>
where
    S: ClusterSource + ?Sized,
    K: ClusterSink + ?Sized,
    F: FnMut(Batch) -> Result<Batch, DnasimError>,
{
    let batch_size = checked_batch_size(batch_size)?;
    let mut stats = WindowStats::default();
    let mut expected_start = 0usize;
    loop {
        budget.check(stage)?;
        let Some(mut batch) = source.next_batch(batch_size)? else {
            break;
        };
        if batch.is_empty() {
            // Progress guard: an empty batch costs one unit, so a source
            // that stalls (empty batches forever) deterministically trips
            // the deadline instead of looping. Real sources never emit
            // empty batches, so metered runs stay byte-identical.
            budget.charge(stage, 1)?;
            continue;
        }
        if batch.start() != expected_start {
            return Err(DnasimError::config(
                "stream",
                format!(
                    "source emitted batch starting at {} but {} clusters were seen",
                    batch.start(),
                    expected_start
                ),
            ));
        }
        let full_len = batch.len();
        let admitted = budget.admit(full_len as u64) as usize;
        batch.truncate(admitted);
        if admitted > 0 {
            let (start, len) = (batch.start(), batch.len());
            stats.record_window(len, resident_reads(batch.clusters()));
            let out = transform(batch)?;
            if out.start() != start || out.len() != len {
                return Err(DnasimError::config(
                    "stream",
                    "streaming transform must map batches 1:1 (same start and length)",
                ));
            }
            sink.accept(out)?;
            expected_start = start + len;
        }
        if admitted < full_len {
            return Err(budget.exceeded(stage));
        }
    }
    sink.finish()?;
    Ok(stats)
}

/// A [`ClusterSource`] adapter that decodes ahead on a dedicated I/O
/// worker thread: while the consumer (typically a thread pool working on
/// batch `k`) holds one batch, the worker is already pulling batch `k+1`
/// from the inner source, hiding decode and I/O latency behind compute.
///
/// Hand-off happens over a rendezvous channel, so at most **two** batches
/// exist at once — the one the consumer holds and the one the worker has
/// decoded and is offering. [`PrefetchSource::stats`] audits that bound:
/// its `high_watermark` is the peak combined size of two consecutive
/// batches, which never exceeds 2× the batch size.
///
/// Batches are delivered strictly in source order, so output through a
/// prefetched source is byte-identical to pulling from the inner source
/// directly. An inner-source error is delivered at exactly the point in
/// the stream where the serial source would have reported it — after
/// every batch decoded before it, never reordered past one. Dropping the
/// source early (e.g. because a downstream sink failed) shuts the worker
/// down and discards any batch still in the hand-off buffer: a buffered
/// batch is never delivered after an abort.
///
/// # Examples
///
/// ```
/// use dnasim_core::{Cluster, Dataset, PrefetchSource, pump};
///
/// let mut ds = Dataset::new();
/// for _ in 0..10 {
///     ds.push(Cluster::erasure("ACGT".parse()?));
/// }
/// let mut prefetch = PrefetchSource::spawn(ds.clone().into_stream(), 3)?;
/// let mut out = Dataset::new();
/// pump(&mut prefetch, &mut out, 3, Ok)?;
/// assert_eq!(out, ds);
/// assert!(prefetch.stats().high_watermark <= 6);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct PrefetchSource {
    rx: Option<std::sync::mpsc::Receiver<Result<Batch, DnasimError>>>,
    worker: Option<std::thread::JoinHandle<()>>,
    prev_len: usize,
    prev_reads: usize,
    stats: WindowStats,
    done: bool,
}

impl PrefetchSource {
    /// Moves `source` onto a dedicated worker thread that pulls batches
    /// of `batch_size` clusters one ahead of the consumer.
    ///
    /// # Errors
    ///
    /// [`DnasimError::Config`] for `batch_size == 0`, or
    /// [`DnasimError::Io`] if the worker thread cannot be spawned.
    pub fn spawn<S>(mut source: S, batch_size: usize) -> Result<PrefetchSource, DnasimError>
    where
        S: ClusterSource + Send + 'static,
    {
        let batch_size = checked_batch_size(batch_size)?;
        // Capacity 0 is a rendezvous: the worker blocks in `send` holding
        // batch k+1 while the consumer processes batch k, which is what
        // caps the in-flight total at two batches.
        let (tx, rx) = std::sync::mpsc::sync_channel(0);
        let worker = std::thread::Builder::new()
            .name("dnasim-prefetch".to_owned())
            .spawn(move || loop {
                match source.next_batch(batch_size) {
                    Ok(Some(batch)) => {
                        if tx.send(Ok(batch)).is_err() {
                            // Consumer hung up (abort): drop the batch.
                            return;
                        }
                    }
                    // Dropping `tx` is the end-of-stream signal.
                    Ok(None) => return,
                    Err(e) => {
                        let _ = tx.send(Err(e));
                        return;
                    }
                }
            })
            .map_err(DnasimError::Io)?;
        Ok(PrefetchSource {
            rx: Some(rx),
            worker: Some(worker),
            prev_len: 0,
            prev_reads: 0,
            stats: WindowStats::default(),
            done: false,
        })
    }

    /// Occupancy counters for the hand-off: `high_watermark` is the peak
    /// combined size of two consecutive batches (the consumer's plus the
    /// prefetched one), ≤ 2× the batch size by construction.
    pub fn stats(&self) -> WindowStats {
        self.stats
    }

    fn join_worker(&mut self) -> Result<(), DnasimError> {
        self.rx = None;
        match self.worker.take() {
            Some(handle) => handle.join().map_err(|_| {
                DnasimError::config("prefetch", "prefetch worker terminated abnormally")
            }),
            None => Ok(()),
        }
    }
}

impl ClusterSource for PrefetchSource {
    fn next_batch(&mut self, max: usize) -> Result<Option<Batch>, DnasimError> {
        let max = checked_batch_size(max)?;
        if self.done {
            return Ok(None);
        }
        let received = match self.rx.as_ref() {
            Some(rx) => rx.recv(),
            None => {
                self.done = true;
                return Ok(None);
            }
        };
        match received {
            Ok(Ok(batch)) => {
                if batch.len() > max {
                    self.done = true;
                    let _ = self.join_worker();
                    return Err(DnasimError::config(
                        "prefetch",
                        format!(
                            "prefetched batch of {} clusters exceeds the requested window \
                             of {max}; pull with the batch size the source was spawned with",
                            batch.len()
                        ),
                    ));
                }
                if !batch.is_empty() {
                    let reads = resident_reads(batch.clusters());
                    self.stats.batches += 1;
                    self.stats.clusters += batch.len();
                    self.stats.high_watermark =
                        self.stats.high_watermark.max(self.prev_len + batch.len());
                    self.stats.peak_resident_reads = self
                        .stats
                        .peak_resident_reads
                        .max(self.prev_reads + reads);
                    self.prev_len = batch.len();
                    self.prev_reads = reads;
                }
                Ok(Some(batch))
            }
            Ok(Err(e)) => {
                self.done = true;
                // The worker returns right after sending an error, so the
                // join cannot itself fail meaningfully here.
                let _ = self.join_worker();
                Err(e)
            }
            Err(_) => {
                // Channel closed: clean end of stream — or a worker panic,
                // which the join converts into a typed error.
                self.done = true;
                self.join_worker()?;
                Ok(None)
            }
        }
    }
}

impl Drop for PrefetchSource {
    fn drop(&mut self) {
        // Closing the channel fails the worker's blocked send, so it exits
        // and any buffered batch is dropped undelivered.
        self.rx = None;
        if let Some(handle) = self.worker.take() {
            let _ = handle.join();
        }
    }
}

/// [`pump`] with the source wrapped in a [`PrefetchSource`]: batch `k+1`
/// is decoded on a dedicated I/O worker while the transform runs batch
/// `k`, and the returned `high_watermark` reports the true in-flight peak
/// — consumer window plus prefetched batch, ≤ 2× `batch_size`.
///
/// Output is byte-identical to [`pump`] over the same source; only the
/// overlap (and therefore wall-clock) differs.
///
/// # Errors
///
/// Everything [`pump`] and [`PrefetchSource::spawn`] can report.
pub fn pump_prefetch<S, K, F>(
    source: S,
    sink: &mut K,
    batch_size: usize,
    transform: F,
) -> Result<WindowStats, DnasimError>
where
    S: ClusterSource + Send + 'static,
    K: ClusterSink + ?Sized,
    F: FnMut(Batch) -> Result<Batch, DnasimError>,
{
    let mut prefetch = PrefetchSource::spawn(source, batch_size)?;
    let mut stats = pump(&mut prefetch, sink, batch_size, transform)?;
    stats.high_watermark = stats.high_watermark.max(prefetch.stats().high_watermark);
    Ok(stats)
}

/// A [`ClusterSource`] over an in-memory [`Dataset`], cloning each window
/// of clusters out of the dataset. See [`Dataset::stream`].
#[derive(Debug)]
pub struct DatasetStream<'a> {
    dataset: &'a Dataset,
    cursor: usize,
}

impl<'a> DatasetStream<'a> {
    pub(crate) fn new(dataset: &'a Dataset) -> DatasetStream<'a> {
        DatasetStream { dataset, cursor: 0 }
    }
}

impl ClusterSource for DatasetStream<'_> {
    fn next_batch(&mut self, max: usize) -> Result<Option<Batch>, DnasimError> {
        let max = checked_batch_size(max)?;
        let clusters = self.dataset.clusters();
        if self.cursor >= clusters.len() {
            return Ok(None);
        }
        let end = self.cursor.saturating_add(max).min(clusters.len());
        let batch = Batch::new(self.cursor, clusters[self.cursor..end].to_vec());
        self.cursor = end;
        Ok(Some(batch))
    }
}

/// A [`ClusterSource`] that owns its [`Dataset`], so it can be moved onto
/// another thread (see [`PrefetchSource`]). See [`Dataset::into_stream`].
#[derive(Debug)]
pub struct OwnedDatasetStream {
    dataset: Dataset,
    cursor: usize,
}

impl OwnedDatasetStream {
    pub(crate) fn new(dataset: Dataset) -> OwnedDatasetStream {
        OwnedDatasetStream { dataset, cursor: 0 }
    }
}

impl ClusterSource for OwnedDatasetStream {
    fn next_batch(&mut self, max: usize) -> Result<Option<Batch>, DnasimError> {
        let max = checked_batch_size(max)?;
        let clusters = self.dataset.clusters();
        if self.cursor >= clusters.len() {
            return Ok(None);
        }
        let end = self.cursor.saturating_add(max).min(clusters.len());
        let batch = Batch::new(self.cursor, clusters[self.cursor..end].to_vec());
        self.cursor = end;
        Ok(Some(batch))
    }
}

impl ClusterSink for Dataset {
    /// Appends the batch's clusters, requiring contiguity: the batch must
    /// start exactly where the dataset currently ends, so a mis-wired
    /// pipeline cannot silently drop or duplicate clusters.
    fn accept(&mut self, batch: Batch) -> Result<(), DnasimError> {
        if batch.start() != self.len() {
            return Err(DnasimError::config(
                "stream",
                format!(
                    "batch starts at global index {} but sink dataset holds {} clusters",
                    batch.start(),
                    self.len()
                ),
            ));
        }
        let (_, clusters) = batch.into_parts();
        self.extend(clusters);
        Ok(())
    }
}

/// A sink that counts clusters and discards them — for stages that only
/// need the stream driven (e.g. profiling via a tap) or for measuring.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink {
    clusters: usize,
}

impl NullSink {
    /// Creates a sink that drops every batch.
    pub fn new() -> NullSink {
        NullSink::default()
    }

    /// Total clusters accepted so far.
    pub fn clusters(&self) -> usize {
        self.clusters
    }
}

impl ClusterSink for NullSink {
    fn accept(&mut self, batch: Batch) -> Result<(), DnasimError> {
        self.clusters += batch.len();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> Dataset {
        (0..n)
            .map(|i| {
                let reference: crate::strand::Strand = "ACGT".parse().unwrap();
                if i % 3 == 0 {
                    Cluster::erasure(reference)
                } else {
                    Cluster::new(reference.clone(), vec![reference])
                }
            })
            .collect()
    }

    #[test]
    fn pump_copies_dataset_at_any_batch_size() {
        let ds = sample(10);
        for batch_size in [1, 3, 7, 10, 64, usize::MAX] {
            let mut out = Dataset::new();
            let stats = pump(&mut ds.stream(), &mut out, batch_size, Ok).unwrap();
            assert_eq!(out, ds, "batch_size={batch_size}");
            assert_eq!(stats.clusters, 10);
            assert!(stats.high_watermark <= batch_size);
        }
    }

    #[test]
    fn batch_global_indices_are_stable() {
        let ds = sample(7);
        let mut source = ds.stream();
        let first = source.next_batch(3).unwrap().unwrap();
        let second = source.next_batch(3).unwrap().unwrap();
        assert_eq!(first.global_indices(), 0..3);
        assert_eq!(second.global_indices(), 3..6);
        let indexed: Vec<usize> = second.iter_indexed().map(|(i, _)| i).collect();
        assert_eq!(indexed, vec![3, 4, 5]);
    }

    #[test]
    fn zero_batch_size_is_config_error() {
        let ds = sample(2);
        let mut out = Dataset::new();
        let err = pump(&mut ds.stream(), &mut out, 0, Ok).unwrap_err();
        assert!(matches!(err, DnasimError::Config { .. }));
    }

    #[test]
    fn dataset_sink_rejects_gap() {
        let mut out = Dataset::new();
        let batch = Batch::new(5, vec![Cluster::erasure("AC".parse().unwrap())]);
        let err = out.accept(batch).unwrap_err();
        assert!(matches!(err, DnasimError::Config { .. }));
    }

    #[test]
    fn pump_rejects_shape_changing_transform() {
        let ds = sample(4);
        let mut out = Dataset::new();
        let err = pump(&mut ds.stream(), &mut out, 2, |b| {
            Ok(Batch::new(b.start(), Vec::new()))
        })
        .unwrap_err();
        assert!(matches!(err, DnasimError::Config { .. }));
    }

    #[test]
    fn null_sink_counts() {
        let ds = sample(9);
        let mut sink = NullSink::new();
        let stats = pump(&mut ds.stream(), &mut sink, 4, Ok).unwrap();
        assert_eq!(sink.clusters(), 9);
        assert_eq!(stats.batches, 3);
        assert_eq!(stats.high_watermark, 4);
    }

    /// A source that interposes empty batches between real windows; `pump`
    /// must skip them without counting a batch or disturbing contiguity.
    struct EmptyBatchSource<'a> {
        inner: DatasetStream<'a>,
        emit_empty: bool,
    }

    impl ClusterSource for EmptyBatchSource<'_> {
        fn next_batch(&mut self, max: usize) -> Result<Option<Batch>, DnasimError> {
            if self.emit_empty {
                self.emit_empty = false;
                // An empty batch at the current cursor position.
                return Ok(Some(Batch::new(0, Vec::new())));
            }
            self.emit_empty = true;
            self.inner.next_batch(max)
        }
    }

    #[test]
    fn pump_skips_empty_batches_without_counting_them() {
        let ds = sample(6);
        let mut source = EmptyBatchSource {
            inner: ds.stream(),
            emit_empty: true,
        };
        let mut out = Dataset::new();
        let stats = pump(&mut source, &mut out, 2, Ok).unwrap();
        assert_eq!(out, ds);
        // Only the three non-empty windows count toward the stats.
        assert_eq!(stats.batches, 3);
        assert_eq!(stats.clusters, 6);
        assert_eq!(stats.high_watermark, 2);
    }

    #[test]
    fn empty_source_yields_zeroed_stats_and_runs_finish() {
        let ds = Dataset::new();
        let mut sink = NullSink::new();
        let stats = pump(&mut ds.stream(), &mut sink, 8, Ok).unwrap();
        assert_eq!(stats, WindowStats::default());
        assert_eq!(stats.high_watermark, 0);
        assert_eq!(sink.clusters(), 0);
    }

    #[test]
    fn single_cluster_window_pins_watermark_to_one() {
        let ds = sample(5);
        let mut out = Dataset::new();
        let stats = pump(&mut ds.stream(), &mut out, 1, Ok).unwrap();
        assert_eq!(out, ds);
        assert_eq!(stats.batches, 5);
        assert_eq!(stats.clusters, 5);
        assert_eq!(stats.high_watermark, 1);
    }

    #[test]
    fn high_watermark_is_monotone_under_interleaved_pump_drivers() {
        // A serve-style aggregate absorbs WindowStats from many interleaved
        // pump runs; the high-watermark must only ever ratchet upward and
        // the batch/cluster counters must sum exactly.
        let sizes = [3usize, 1, 7, 2, 5, 4];
        let mut aggregate = WindowStats::default();
        let mut last_watermark = 0;
        let mut expected_clusters = 0;
        for (round, &batch_size) in sizes.iter().enumerate() {
            let ds = sample(8 + round);
            let mut sink = NullSink::new();
            let window = pump(&mut ds.stream(), &mut sink, batch_size, Ok).unwrap();
            assert!(window.high_watermark <= batch_size);
            aggregate.absorb(window);
            assert!(
                aggregate.high_watermark >= last_watermark,
                "watermark regressed after round {round}"
            );
            last_watermark = aggregate.high_watermark;
            expected_clusters += 8 + round;
        }
        assert_eq!(aggregate.clusters, expected_clusters);
        assert_eq!(aggregate.high_watermark, 7);
        // Absorbing a zeroed window (an admitted-but-empty request) is a
        // no-op on the watermark.
        aggregate.absorb(WindowStats::default());
        assert_eq!(aggregate.high_watermark, 7);
    }

    #[test]
    fn budgeted_pump_emits_exactly_the_limit_prefix_at_any_batch_size() {
        let ds = sample(10);
        for limit in [0u64, 1, 4, 9, 10, 50] {
            let expected: Vec<Cluster> =
                ds.clusters()[..ds.len().min(limit as usize)].to_vec();
            for batch_size in [1, 3, 7, 64] {
                let budget = Budget::limited(limit);
                let mut out = Dataset::new();
                let result =
                    pump_budgeted(&mut ds.stream(), &mut out, batch_size, &budget, "copy", Ok);
                if limit >= 10 {
                    result.unwrap();
                } else {
                    match result.unwrap_err() {
                        DnasimError::DeadlineExceeded { spent, limit: l, stage } => {
                            assert_eq!(spent, limit);
                            assert_eq!(l, limit);
                            assert_eq!(stage, "copy");
                        }
                        other => panic!("expected DeadlineExceeded, got {other:?}"),
                    }
                }
                assert_eq!(
                    out.clusters(),
                    expected.as_slice(),
                    "limit={limit} batch_size={batch_size}"
                );
            }
        }
    }

    /// A source that never produces a cluster: without the empty-batch
    /// charge this would loop forever; with it, the budget trips.
    struct StalledForever;

    impl ClusterSource for StalledForever {
        fn next_batch(&mut self, _max: usize) -> Result<Option<Batch>, DnasimError> {
            Ok(Some(Batch::new(0, Vec::new())))
        }
    }

    #[test]
    fn budgeted_pump_detects_a_stalled_source() {
        let budget = Budget::limited(16);
        let mut sink = NullSink::new();
        let err =
            pump_budgeted(&mut StalledForever, &mut sink, 4, &budget, "stall", Ok).unwrap_err();
        assert!(matches!(err, DnasimError::DeadlineExceeded { .. }));
        assert_eq!(sink.clusters(), 0);
    }

    #[test]
    fn cancelled_budget_stops_pump_at_the_next_batch_boundary() {
        let ds = sample(8);
        let budget = Budget::unlimited();
        budget.token().cancel();
        let mut out = Dataset::new();
        let err = pump_budgeted(&mut ds.stream(), &mut out, 2, &budget, "drain", Ok).unwrap_err();
        assert!(matches!(err, DnasimError::DeadlineExceeded { .. }));
        assert!(out.is_empty(), "cancellation before the first batch emits nothing");
    }

    #[test]
    fn prefetch_output_is_byte_identical_at_any_batch_size() {
        let ds = sample(13);
        for batch_size in [1, 3, 7, 13, 64] {
            let mut out = Dataset::new();
            let stats =
                pump_prefetch(ds.clone().into_stream(), &mut out, batch_size, Ok).unwrap();
            assert_eq!(out, ds, "batch_size={batch_size}");
            assert_eq!(stats.clusters, 13);
            assert!(
                stats.high_watermark <= 2 * batch_size,
                "double-buffer exceeded 2x batch: {} > {}",
                stats.high_watermark,
                2 * batch_size
            );
        }
    }

    #[test]
    fn prefetch_over_empty_source_is_clean_end_of_stream() {
        let mut prefetch = PrefetchSource::spawn(Dataset::new().into_stream(), 4).unwrap();
        assert!(prefetch.next_batch(4).unwrap().is_none());
        // Fused: repeated pulls stay at end of stream.
        assert!(prefetch.next_batch(4).unwrap().is_none());
        assert_eq!(prefetch.stats(), WindowStats::default());
    }

    #[test]
    fn prefetch_single_batch_watermark_is_one_batch() {
        let ds = sample(3);
        let mut out = Dataset::new();
        let stats = pump_prefetch(ds.clone().into_stream(), &mut out, 8, Ok).unwrap();
        assert_eq!(out, ds);
        assert_eq!(stats.batches, 1);
        // With a single batch there is never a second buffer in flight.
        assert_eq!(stats.high_watermark, 3);
    }

    #[test]
    fn prefetch_watermark_is_bounded_by_two_consecutive_batches() {
        let ds = sample(10);
        let mut prefetch = PrefetchSource::spawn(ds.into_stream(), 4).unwrap();
        while prefetch.next_batch(4).unwrap().is_some() {}
        let stats = prefetch.stats();
        assert_eq!(stats.clusters, 10);
        assert_eq!(stats.batches, 3);
        // Peak pair is 4 + 4; the final pair is 4 + 2.
        assert_eq!(stats.high_watermark, 8);
    }

    /// A source that yields `good` batches of one cluster and then fails,
    /// recording how many batches it actually produced.
    struct CountingThenFailing {
        produced: std::sync::Arc<std::sync::atomic::AtomicUsize>,
        good: usize,
        cursor: usize,
    }

    impl ClusterSource for CountingThenFailing {
        fn next_batch(&mut self, _max: usize) -> Result<Option<Batch>, DnasimError> {
            if self.cursor >= self.good {
                return Err(DnasimError::config("test", "injected source fault"));
            }
            let batch = Batch::new(
                self.cursor,
                vec![Cluster::erasure("ACGT".parse().map_err(|_| {
                    DnasimError::config("test", "bad strand literal")
                })?)],
            );
            self.cursor += 1;
            self.produced
                .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            Ok(Some(batch))
        }
    }

    #[test]
    fn prefetch_delivers_source_error_in_stream_order() {
        let produced = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let source = CountingThenFailing {
            produced: produced.clone(),
            good: 2,
            cursor: 0,
        };
        let mut prefetch = PrefetchSource::spawn(source, 1).unwrap();
        assert_eq!(prefetch.next_batch(1).unwrap().unwrap().len(), 1);
        assert_eq!(prefetch.next_batch(1).unwrap().unwrap().len(), 1);
        let err = prefetch.next_batch(1).unwrap_err();
        assert!(matches!(err, DnasimError::Config { .. }));
        // Fused after the error.
        assert!(prefetch.next_batch(1).unwrap().is_none());
    }

    #[test]
    fn aborted_prefetch_drops_the_buffered_batch_undelivered() {
        // The worker decodes ahead; when the consumer aborts (drops the
        // source) the batch sitting in the hand-off must be discarded,
        // not delivered anywhere.
        let produced = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let source = CountingThenFailing {
            produced: produced.clone(),
            good: 100,
            cursor: 0,
        };
        let mut prefetch = PrefetchSource::spawn(source, 1).unwrap();
        let delivered = prefetch.next_batch(1).unwrap().map(|b| b.len());
        assert_eq!(delivered, Some(1));
        let stats = prefetch.stats();
        drop(prefetch); // abort: worker shut down, buffer discarded
        assert_eq!(stats.clusters, 1, "exactly one batch was delivered");
        // The worker had at most one batch in the hand-off beyond the
        // delivered one — never the whole stream.
        let total = produced.load(std::sync::atomic::Ordering::SeqCst);
        assert!(
            (1..=3).contains(&total),
            "worker ran ahead of the rendezvous: produced {total}"
        );
    }

    #[test]
    fn prefetch_source_error_mid_stream_aborts_pump_without_stale_delivery() {
        let produced = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let source = CountingThenFailing {
            produced,
            good: 3,
            cursor: 0,
        };
        let mut out = Dataset::new();
        let err = pump_prefetch(source, &mut out, 1, Ok).unwrap_err();
        assert!(matches!(err, DnasimError::Config { .. }));
        // Every batch decoded before the fault was delivered, in order —
        // exactly what the serial pump would have done.
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn prefetch_rejects_mismatched_pull_size() {
        let ds = sample(8);
        let mut prefetch = PrefetchSource::spawn(ds.into_stream(), 4).unwrap();
        let err = prefetch.next_batch(2).unwrap_err();
        assert!(matches!(err, DnasimError::Config { .. }));
    }

    #[test]
    fn window_stats_absorb_takes_max_watermark() {
        let mut a = WindowStats {
            batches: 1,
            clusters: 4,
            high_watermark: 4,
            peak_resident_reads: 9,
        };
        a.absorb(WindowStats {
            batches: 2,
            clusters: 10,
            high_watermark: 7,
            peak_resident_reads: 5,
        });
        assert_eq!(a.batches, 3);
        assert_eq!(a.clusters, 14);
        assert_eq!(a.high_watermark, 7);
        assert_eq!(a.peak_resident_reads, 9, "read gauge is a max, not a sum");
    }

    #[test]
    fn pump_tracks_peak_resident_reads() {
        // sample() gives every non-erasure cluster exactly one read, with
        // erasures at indices 0, 3, 6, ... — so a window of 3 holds at most
        // 2 reads.
        let ds = sample(9);
        let total: usize = resident_reads(ds.clusters());
        let mut out = Dataset::new();
        let stats = pump(&mut ds.stream(), &mut out, 3, Ok).unwrap();
        assert_eq!(stats.peak_resident_reads, 2);
        // One whole-dataset window degenerates to the total.
        let mut whole = Dataset::new();
        let stats = pump(&mut ds.stream(), &mut whole, usize::MAX, Ok).unwrap();
        assert_eq!(stats.peak_resident_reads, total);
    }

    #[test]
    fn prefetch_read_gauge_is_bounded_by_two_consecutive_batches() {
        let ds = sample(10); // reads at non-multiples of 3: 6 reads total
        let mut prefetch = PrefetchSource::spawn(ds.into_stream(), 4).unwrap();
        while prefetch.next_batch(4).unwrap().is_some() {}
        let stats = prefetch.stats();
        // Batches of 4 hold ≤ 3 reads each; the pairwise peak stays ≤ 6.
        assert!(stats.peak_resident_reads <= 6);
        assert!(stats.peak_resident_reads >= 3);
    }
}
