//! 2-bit packed strands with precomputed per-base equality bitmasks.
//!
//! The bit-parallel edit-distance kernels (`dnasim_metrics::myers`) process
//! 64 dynamic-programming cells per machine word, but only if the pattern
//! strand is available as *equality masks*: for each base `x` and each
//! 64-base block `w`, a word whose bit `i` is set iff position `w·64 + i`
//! of the strand equals `x`. Building those masks costs one pass over the
//! strand, so sequences that participate in many comparisons (cluster
//! representatives, reference strands, MSA candidates) are packed **once**
//! into a [`PackedStrand`] and reused.
//!
//! Alongside the four mask planes, the bases themselves are stored 2 bits
//! each (A=00, C=01, G=10, T=11 — the [`Base::index`] order), 32 bases per
//! `u64`, so a packed strand also serves as the kernel's *text* operand
//! without touching the unpacked representation.

use crate::base::Base;
use crate::strand::Strand;

/// A DNA strand packed 2 bits per base, with per-base equality bitmasks.
///
/// Semantically equivalent to the [`Strand`] it was built from (round-trips
/// losslessly), but laid out for the bit-parallel kernels: `eq_by_code(c)`
/// yields one `u64` per 64-base block whose set bits mark the positions
/// holding the base with [index](Base::index) `c`.
///
/// # Examples
///
/// ```
/// use dnasim_core::{PackedStrand, Strand};
///
/// let s: Strand = "ACGTACGT".parse()?;
/// let p = PackedStrand::from(&s);
/// assert_eq!(p.len(), 8);
/// // A occurs at positions 0 and 4.
/// assert_eq!(p.eq_masks(dnasim_core::Base::A), &[0b0001_0001]);
/// assert_eq!(Strand::from(&p), s);
/// # Ok::<(), dnasim_core::ParseStrandError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct PackedStrand {
    len: usize,
    /// 2-bit base codes, 32 per word, position `i` at bits `2(i mod 32)`.
    codes: Vec<u64>,
    /// Equality masks: `eq[c][w]` bit `i` set iff base `w*64 + i` has code
    /// `c`. Padding bits beyond `len` are zero in every plane.
    eq: [Vec<u64>; 4],
}

impl PackedStrand {
    /// Packs a slice of bases.
    pub fn from_bases(bases: &[Base]) -> PackedStrand {
        let len = bases.len();
        let words = len.div_ceil(64);
        let mut codes = vec![0u64; len.div_ceil(32)];
        let mut eq = [
            vec![0u64; words],
            vec![0u64; words],
            vec![0u64; words],
            vec![0u64; words],
        ];
        for (i, &b) in bases.iter().enumerate() {
            let c = b.index();
            codes[i >> 5] |= (c as u64) << ((i & 31) << 1);
            eq[c][i >> 6] |= 1u64 << (i & 63);
        }
        PackedStrand { len, codes, eq }
    }

    /// Number of bases.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the strand has no bases.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of 64-base blocks (`ceil(len / 64)`; 0 when empty).
    #[inline]
    pub fn words(&self) -> usize {
        self.len.div_ceil(64)
    }

    /// The base at `pos`, or `None` when out of bounds.
    ///
    /// ```
    /// use dnasim_core::{Base, PackedStrand, Strand};
    /// let p = PackedStrand::from(&"ACGT".parse::<Strand>().unwrap());
    /// assert_eq!(p.get(2), Some(Base::G));
    /// assert_eq!(p.get(4), None);
    /// ```
    #[inline]
    pub fn get(&self, pos: usize) -> Option<Base> {
        if pos >= self.len {
            return None;
        }
        let word = self.codes.get(pos >> 5).copied().unwrap_or(0);
        Base::from_index(((word >> ((pos & 31) << 1)) & 3) as usize)
    }

    /// Iterates the 2-bit base codes in position order (each in `0..4`).
    ///
    /// This is the kernel's *text* access path: one shift and mask per
    /// base, no unpacking.
    #[inline]
    pub fn codes(&self) -> impl Iterator<Item = u8> + '_ {
        (0..self.len).map(move |i| {
            let word = self.codes.get(i >> 5).copied().unwrap_or(0);
            ((word >> ((i & 31) << 1)) & 3) as u8
        })
    }

    /// Equality masks for `base`: one word per 64-base block, bit `i` of
    /// word `w` set iff position `w·64 + i` holds `base`.
    #[inline]
    pub fn eq_masks(&self, base: Base) -> &[u64] {
        &self.eq[base.index()]
    }

    /// Equality masks addressed by 2-bit code (`code` is taken mod 4, so
    /// any [`codes`](PackedStrand::codes) value is a valid argument).
    #[inline]
    pub fn eq_by_code(&self, code: u8) -> &[u64] {
        &self.eq[(code & 3) as usize]
    }

    /// Unpacks back into a [`Strand`] (lossless inverse of packing).
    pub fn to_strand(&self) -> Strand {
        (0..self.len).filter_map(|i| self.get(i)).collect()
    }
}

impl From<&Strand> for PackedStrand {
    fn from(s: &Strand) -> PackedStrand {
        PackedStrand::from_bases(s.as_bases())
    }
}

impl From<&[Base]> for PackedStrand {
    fn from(bases: &[Base]) -> PackedStrand {
        PackedStrand::from_bases(bases)
    }
}

impl From<&PackedStrand> for Strand {
    fn from(p: &PackedStrand) -> Strand {
        p.to_strand()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    #[test]
    fn round_trip_lengths_across_word_boundaries() {
        let mut rng = seeded(1);
        for len in [0usize, 1, 31, 32, 33, 63, 64, 65, 110, 127, 128, 129, 300] {
            let s = Strand::random(len, &mut rng);
            let p = PackedStrand::from(&s);
            assert_eq!(p.len(), len);
            assert_eq!(p.words(), len.div_ceil(64));
            assert_eq!(Strand::from(&p), s, "round trip failed at len {len}");
        }
    }

    #[test]
    fn get_matches_strand_indexing() {
        let s: Strand = "ACGTTGCAACGT".parse().unwrap();
        let p = PackedStrand::from(&s);
        for i in 0..s.len() {
            assert_eq!(p.get(i), Some(s[i]));
        }
        assert_eq!(p.get(s.len()), None);
    }

    #[test]
    fn eq_masks_partition_positions() {
        let mut rng = seeded(2);
        let s = Strand::random(150, &mut rng);
        let p = PackedStrand::from(&s);
        for w in 0..p.words() {
            let mut union = 0u64;
            for b in Base::ALL {
                let mask = p.eq_masks(b)[w];
                // Planes are disjoint …
                assert_eq!(union & mask, 0);
                union |= mask;
            }
            // … and together cover exactly the in-range positions.
            let bits_in_word = (s.len() - w * 64).min(64);
            let expect = if bits_in_word == 64 { !0u64 } else { (1u64 << bits_in_word) - 1 };
            assert_eq!(union, expect);
        }
    }

    #[test]
    fn eq_masks_mark_matching_positions() {
        let s: Strand = "AACGTA".parse().unwrap();
        let p = PackedStrand::from(&s);
        assert_eq!(p.eq_masks(Base::A), &[0b100011]);
        assert_eq!(p.eq_masks(Base::C), &[0b000100]);
        assert_eq!(p.eq_masks(Base::G), &[0b001000]);
        assert_eq!(p.eq_masks(Base::T), &[0b010000]);
    }

    #[test]
    fn codes_iterate_in_order() {
        let s: Strand = "ACGT".parse().unwrap();
        let p = PackedStrand::from(&s);
        assert_eq!(p.codes().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn empty_strand_packs_cleanly() {
        let p = PackedStrand::from(&Strand::new());
        assert!(p.is_empty());
        assert_eq!(p.words(), 0);
        assert_eq!(p.codes().count(), 0);
        assert_eq!(Strand::from(&p), Strand::new());
    }

    #[test]
    fn equality_follows_content() {
        let a = PackedStrand::from(&"ACGT".parse::<Strand>().unwrap());
        let b = PackedStrand::from(&"ACGT".parse::<Strand>().unwrap());
        let c = PackedStrand::from(&"ACGA".parse::<Strand>().unwrap());
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
