//! Core types for simulating noisy channels in DNA data storage.
//!
//! DNA storage writes digital data as synthesized DNA *strands* over the
//! alphabet Σ = {A, C, G, T} and reads it back by sequencing. Both
//! directions are noisy: the channel `(Σ_L)^N → (Σ*)^M` subjects strands to
//! insertions, deletions and substitutions (IDS errors), and produces `M ≥
//! N` variable-length noisy reads grouped into *clusters* per reference
//! strand.
//!
//! This crate provides the shared vocabulary for the `dnasim` workspace:
//!
//! * [`Base`] — the four-letter DNA alphabet;
//! * [`Strand`] — owned base sequences (references and noisy reads);
//! * [`PackedStrand`] — 2-bit packed strands with per-base equality masks
//!   for the bit-parallel edit-distance kernels;
//! * [`Cluster`] / [`Dataset`] — reads grouped per reference strand;
//! * [`Batch`] / [`ClusterSource`] / [`ClusterSink`] — bounded-memory
//!   streaming flow over the same clusters (see [`stream`]);
//! * [`Budget`] / [`CancelToken`] — deterministic work metering and
//!   cooperative cancellation (see [`budget`]);
//! * [`EditOp`] / [`EditScript`] — the IDS error vocabulary;
//! * [`DnasimError`] — the workspace-wide failure taxonomy;
//! * [`rng`] — deterministic seeding utilities;
//! * [`tech`] — the sequencing-technology survey (paper Table 1.1).
//!
//! # Examples
//!
//! ```
//! use dnasim_core::{Cluster, Dataset, Strand};
//! use dnasim_core::rng::seeded;
//!
//! let mut rng = seeded(42);
//! let reference = Strand::random(110, &mut rng);
//! let cluster = Cluster::new(reference.clone(), vec![reference.clone()]);
//! let dataset = Dataset::from_clusters(vec![cluster]);
//! assert_eq!(dataset.mean_coverage(), 1.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod base;
pub mod budget;
mod cluster;
mod dataset;
mod edit;
mod error;
mod packed;
pub mod rng;
pub mod stream;
pub mod tech;

mod strand;

pub use base::{Base, ParseBaseError};
pub use budget::{Budget, CancelToken};
pub use cluster::Cluster;
pub use dataset::Dataset;
pub use edit::{ApplyScriptError, EditOp, EditScript, ErrorKind, Mismatch};
pub use error::DnasimError;
pub use packed::PackedStrand;
pub use strand::{ParseStrandError, Strand};
pub use stream::{
    pump, pump_budgeted, pump_prefetch, resident_reads, Batch, ClusterSink, ClusterSource,
    DatasetStream, NullSink, OwnedDatasetStream, PrefetchSource, WindowStats,
};
