//! Deterministic random-number plumbing — fully self-contained.
//!
//! Every stochastic component in the workspace takes an explicit `&mut R:
//! Rng`, and experiments construct their generators through [`seeded`] /
//! [`SeedSequence`] so that whole tables and figures are reproducible from a
//! single seed.
//!
//! The generator, the [`Rng`]/[`RngExt`] traits, and the slice helpers are
//! implemented in-tree (no crates.io dependency): the workspace builds with
//! `CARGO_NET_OFFLINE=true` from a clean checkout. The stream produced by
//! [`seeded`] is part of the repo's compatibility contract — golden tests
//! pin it, and changing it invalidates every recorded experiment seed.
//!
//! # Seed discipline
//!
//! * One experiment = one root seed, fanned out through [`SeedSequence`].
//! * Components that may be added/removed independently use
//!   [`SeedSequence::derive`] with a stable string label, so their stream
//!   never depends on the order other components draw in.
//! * Loops over homogeneous units (clusters, sweep points) use
//!   [`SeedSequence::next_seed`].

use std::ops::{Range, RangeInclusive};

/// The RNG used throughout the simulator: xoshiro256++, a small, fast,
/// seedable PRNG with 256 bits of state and good statistical quality.
pub type SimRng = Xoshiro256PlusPlus;

/// A xoshiro256++ pseudo-random generator (Blackman & Vigna, 2019).
///
/// Seeded from a single `u64` by expanding it through four rounds of
/// SplitMix64, the standard construction that guarantees a non-degenerate
/// (never all-zero) initial state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Creates a generator by expanding a 64-bit seed through SplitMix64.
    pub fn seed_from_u64(seed: u64) -> Xoshiro256PlusPlus {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            splitmix64(sm)
        };
        Xoshiro256PlusPlus {
            s: [next(), next(), next(), next()],
        }
    }

    /// Creates a generator from raw state words.
    ///
    /// Used by the reference-vector tests; prefer [`seed_from_u64`].
    ///
    /// # Panics
    ///
    /// Panics if the state is all zero (the one degenerate fixed point).
    ///
    /// [`seed_from_u64`]: Xoshiro256PlusPlus::seed_from_u64
    pub fn from_state(s: [u64; 4]) -> Xoshiro256PlusPlus {
        assert!(s.iter().any(|&w| w != 0), "xoshiro state must be non-zero");
        Xoshiro256PlusPlus { s }
    }
}

impl Rng for Xoshiro256PlusPlus {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// A source of random bits.
///
/// The one required method is [`next_u64`]; everything else (typed draws,
/// ranges, booleans, slice operations) is layered on top via [`RngExt`] and
/// [`SliceRandom`]. Stochastic functions take `&mut R` with `R: Rng + ?Sized`
/// so callers can pass any generator (in practice always [`SimRng`]).
///
/// [`next_u64`]: Rng::next_u64
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (the upper half of a 64-bit draw).
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Convenience draws on any [`Rng`]: typed values, ranges, and biased coins.
///
/// ```
/// use dnasim_core::rng::{seeded, RngExt};
///
/// let mut rng = seeded(7);
/// let x: f64 = rng.random();
/// assert!((0.0..1.0).contains(&x));
/// assert!((0..10).contains(&rng.random_range(0..10)));
/// let _coin = rng.random_bool(0.25);
/// ```
pub trait RngExt: Rng {
    /// Draws a value uniformly over the type's full domain (`[0, 1)` for
    /// floats).
    #[inline]
    fn random<T: StandardRandom>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    fn random_range<T: SampleUniform, B: SampleRange<T>>(&mut self, range: B) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Types drawable uniformly over their whole domain via [`RngExt::random`].
pub trait StandardRandom {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_random_int {
    ($($unsigned:ty => $signed:ty),* $(,)?) => {$(
        impl StandardRandom for $unsigned {
            #[inline]
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $unsigned
            }
        }
        impl StandardRandom for $signed {
            #[inline]
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $signed
            }
        }
    )*};
}

standard_random_int!(u8 => i8, u16 => i16, u32 => i32, u64 => i64, usize => isize);

impl StandardRandom for u128 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl StandardRandom for i128 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl StandardRandom for bool {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl StandardRandom for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardRandom for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types with an unbiased bounded-uniform sampler, usable with
/// [`RngExt::random_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from `[low, high)`, or `[low, high]` if `inclusive`.
    fn sample_between<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool)
        -> Self;
}

/// Unbiased uniform draw from `[0, span)` via Lemire's multiply-shift
/// rejection method (`span == 0` means the full 2^64 domain).
#[inline]
fn uniform_u64_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    let mut x = rng.next_u64();
    let mut m = u128::from(x) * u128::from(span);
    let mut low_bits = m as u64;
    if low_bits < span {
        let threshold = span.wrapping_neg() % span;
        while low_bits < threshold {
            x = rng.next_u64();
            m = u128::from(x) * u128::from(span);
            low_bits = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! sample_uniform_int {
    ($($ty:ty),* $(,)?) => {$(
        impl SampleUniform for $ty {
            #[inline]
            fn sample_between<R: Rng + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                if inclusive {
                    assert!(low <= high, "cannot sample from an empty range");
                } else {
                    assert!(low < high, "cannot sample from an empty range");
                }
                // Width as u64; spans are computed in the unsigned domain so
                // signed ranges (e.g. -5..5) wrap correctly.
                let span = (high as u64)
                    .wrapping_sub(low as u64)
                    .wrapping_add(inclusive as u64);
                low.wrapping_add(uniform_u64_below(rng, span) as $ty)
            }
        }
    )*};
}

sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! sample_uniform_float {
    ($($ty:ty),* $(,)?) => {$(
        impl SampleUniform for $ty {
            #[inline]
            fn sample_between<R: Rng + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                assert!(
                    low < high || (inclusive && low == high),
                    "cannot sample from an empty range"
                );
                assert!(low.is_finite() && high.is_finite());
                let unit = <$ty as StandardRandom>::sample(rng);
                let value = low + (high - low) * unit;
                // Rounding can land exactly on `high`; fold it back for
                // half-open ranges.
                if !inclusive && value >= high {
                    low
                } else {
                    value
                }
            }
        }
    )*};
}

sample_uniform_float!(f32, f64);

/// Range shapes accepted by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, *self.start(), *self.end(), true)
    }
}

/// Random operations on slices: Fisher–Yates [`shuffle`] and uniform
/// [`choose`].
///
/// ```
/// use dnasim_core::rng::{seeded, SliceRandom};
///
/// let mut rng = seeded(9);
/// let mut xs = [1, 2, 3, 4, 5];
/// xs.shuffle(&mut rng);
/// assert!(xs.contains(&3));
/// assert!(xs.choose(&mut rng).is_some());
/// ```
///
/// [`shuffle`]: SliceRandom::shuffle
/// [`choose`]: SliceRandom::choose
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffles the slice in place (unbiased Fisher–Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Returns a uniformly chosen element, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.random_range(0..=i));
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.random_range(0..self.len())])
        }
    }
}

/// Creates a deterministic [`SimRng`] from a 64-bit seed.
///
/// ```
/// use dnasim_core::rng::seeded;
/// use dnasim_core::rng::RngExt;
///
/// let mut a = seeded(7);
/// let mut b = seeded(7);
/// assert_eq!(a.random::<u64>(), b.random::<u64>());
/// ```
pub fn seeded(seed: u64) -> SimRng {
    SimRng::seed_from_u64(seed)
}

/// A hierarchical seed dispenser.
///
/// Experiments fan out into many independent stochastic components (one per
/// cluster, per simulator layer, per sweep point). `SeedSequence` derives a
/// stream of decorrelated child seeds from one root seed, so adding a
/// component never perturbs the randomness of the others.
///
/// # Examples
///
/// ```
/// use dnasim_core::rng::SeedSequence;
///
/// let mut seq = SeedSequence::new(42);
/// let a = seq.next_seed();
/// let b = seq.next_seed();
/// assert_ne!(a, b);
///
/// // A named substream is independent of draw order.
/// let x = SeedSequence::new(42).derive("channel");
/// let y = SeedSequence::new(42).derive("channel");
/// assert_eq!(x, y);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeedSequence {
    root: u64,
    counter: u64,
}

impl SeedSequence {
    /// Creates a sequence rooted at `seed`.
    pub fn new(seed: u64) -> SeedSequence {
        SeedSequence {
            root: seed,
            counter: 0,
        }
    }

    /// The root seed this sequence derives children from.
    pub fn root(&self) -> u64 {
        self.root
    }

    /// Returns the next child seed in the stream.
    pub fn next_seed(&mut self) -> u64 {
        self.counter += 1;
        splitmix64(self.root ^ splitmix64(self.counter))
    }

    /// Returns the next child RNG in the stream.
    pub fn next_rng(&mut self) -> SimRng {
        seeded(self.next_seed())
    }

    /// Derives an independent child sequence for item `index`.
    ///
    /// This is the workspace's discipline for fan-outs over homogeneous
    /// units (clusters, sweep points, chaos cases): each item gets its own
    /// decorrelated stream, keyed *only* by `(root, index)`. Unlike
    /// [`next_seed`], forking does not mutate the sequence, so the stream an
    /// item receives is independent of processing order — and therefore of
    /// thread scheduling, which is what makes parallel execution
    /// bit-identical to serial (see `dnasim-par`).
    ///
    /// Never substitute ad-hoc arithmetic (`seed + i`, `seed ^ i`) for this:
    /// adjacent seeds fed to SplitMix-style expansion are decorrelated, but
    /// the *set* of streams then depends on how the caller enumerates items,
    /// and collides across components that pick overlapping offsets.
    ///
    /// ```
    /// use dnasim_core::rng::SeedSequence;
    ///
    /// let seq = SeedSequence::new(7);
    /// let a = seq.fork(0).next_seed();
    /// let b = seq.fork(1).next_seed();
    /// assert_ne!(a, b);
    /// // Forking is order-independent and repeatable.
    /// assert_eq!(seq.fork(0).next_seed(), a);
    /// ```
    ///
    /// [`next_seed`]: SeedSequence::next_seed
    pub fn fork(&self, index: u64) -> SeedSequence {
        // Domain-separation tweak keeps fork(i) off the next_seed() stream
        // (which mixes small counters) and off derive() (which mixes FNV
        // label hashes).
        const FORK_TWEAK: u64 = 0x9E6C_63D0_876A_3F6B;
        SeedSequence::new(splitmix64(self.root ^ splitmix64(index ^ FORK_TWEAK)))
    }

    /// Derives the RNG of the child sequence for item `index`.
    pub fn fork_rng(&self, index: u64) -> SimRng {
        seeded(self.fork(index).root)
    }

    /// Derives a seed for a named substream, independent of [`next_seed`]
    /// draw order.
    ///
    /// [`next_seed`]: SeedSequence::next_seed
    pub fn derive(&self, label: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
        for byte in label.bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3); // FNV prime
        }
        splitmix64(self.root ^ h)
    }

    /// Derives an RNG for a named substream.
    pub fn derive_rng(&self, label: &str) -> SimRng {
        seeded(self.derive(label))
    }

    /// Derives an independent child *sequence* for a named substream, so
    /// namespaces can be nested: `seq.derive_seq(tenant).derive_seq(id)`
    /// yields a stream keyed by the whole label path, independent of any
    /// other path. This is the serve tier's isolation primitive — every
    /// `(tenant, request_id)` pair owns a namespace no other pair can
    /// observe or perturb (DESIGN.md §12).
    ///
    /// ```
    /// use dnasim_core::rng::SeedSequence;
    ///
    /// let root = SeedSequence::new(1);
    /// let a = root.derive_seq("tenant-a").derive_seq("req-1");
    /// let b = root.derive_seq("tenant-b").derive_seq("req-1");
    /// assert_ne!(a, b);
    /// // Replaying the same path reproduces the same namespace.
    /// assert_eq!(a, root.derive_seq("tenant-a").derive_seq("req-1"));
    /// ```
    pub fn derive_seq(&self, label: &str) -> SeedSequence {
        SeedSequence::new(self.derive(label))
    }
}

/// SplitMix64 finaliser: a strong 64-bit mixer used to decorrelate seeds.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let xs: Vec<u32> = (0..8).map(|_| seeded(99).random()).collect();
        assert!(xs.windows(2).all(|w| w[0] == w[1]));
        let mut rng = seeded(99);
        let first: u32 = rng.random();
        assert_eq!(first, xs[0]);
    }

    #[test]
    fn different_seeds_differ() {
        let a: u64 = seeded(1).random();
        let b: u64 = seeded(2).random();
        assert_ne!(a, b);
    }

    #[test]
    fn matches_xoshiro256plusplus_reference_vector() {
        // Reference output for state [1, 2, 3, 4] from the xoshiro authors'
        // C implementation (prng.di.unimi.it).
        let mut rng = Xoshiro256PlusPlus::from_state([1, 2, 3, 4]);
        let expected: [u64; 10] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
            9973669472204895162,
            14011001112246962877,
            12406186145184390807,
            15849039046786891736,
            10450023813501588000,
        ];
        for &e in &expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn fill_bytes_matches_next_u64_stream() {
        let mut a = seeded(5);
        let mut b = seeded(5);
        let mut buf = [0u8; 20];
        a.fill_bytes(&mut buf);
        let w0 = b.next_u64().to_le_bytes();
        let w1 = b.next_u64().to_le_bytes();
        let w2 = b.next_u64().to_le_bytes();
        assert_eq!(&buf[..8], &w0);
        assert_eq!(&buf[8..16], &w1);
        assert_eq!(&buf[16..], &w2[..4]);
    }

    #[test]
    fn random_range_respects_bounds() {
        let mut rng = seeded(11);
        for _ in 0..2000 {
            let x = rng.random_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.random_range(1..=255u32);
            assert!((1..=255).contains(&y));
            let z = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&z));
            let f = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn random_range_covers_small_domain() {
        let mut rng = seeded(13);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.random_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // Inclusive single-point range is the identity.
        assert_eq!(rng.random_range(9..=9u32), 9);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        seeded(1).random_range(5..5usize);
    }

    #[test]
    fn random_bool_edge_probabilities() {
        let mut rng = seeded(17);
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn unit_floats_are_in_unit_interval() {
        let mut rng = seeded(19);
        for _ in 0..2000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.random();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = seeded(23);
        let mut xs: Vec<u32> = (0..50).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // A 50-element shuffle fixing every point has probability 1/50!.
        assert_ne!(xs, sorted);
    }

    #[test]
    fn choose_is_none_only_for_empty() {
        let mut rng = seeded(29);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let xs = [7u8, 8, 9];
        assert!(xs.contains(xs.choose(&mut rng).unwrap()));
    }

    #[test]
    fn sequence_children_are_distinct() {
        let mut seq = SeedSequence::new(7);
        let seeds: Vec<u64> = (0..100).map(|_| seq.next_seed()).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len());
    }

    #[test]
    fn sequence_is_reproducible() {
        let mut a = SeedSequence::new(5);
        let mut b = SeedSequence::new(5);
        for _ in 0..10 {
            assert_eq!(a.next_seed(), b.next_seed());
        }
    }

    #[test]
    fn derive_is_order_independent() {
        let mut seq = SeedSequence::new(3);
        let before = seq.derive("x");
        seq.next_seed();
        seq.next_seed();
        assert_eq!(seq.derive("x"), before);
    }

    #[test]
    fn fork_is_order_independent_and_pure() {
        let mut seq = SeedSequence::new(11);
        let before = seq.fork(3);
        seq.next_seed();
        seq.next_seed();
        assert_eq!(seq.fork(3), before);
        // Forking does not advance the parent stream.
        let mut a = SeedSequence::new(11);
        let mut b = SeedSequence::new(11);
        let _ = a.fork(0);
        assert_eq!(a.next_seed(), b.next_seed());
    }

    #[test]
    fn fork_children_are_distinct_and_rooted() {
        let seq = SeedSequence::new(13);
        let mut seeds: Vec<u64> = (0..1000).map(|i| seq.fork(i).next_seed()).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 1000);
        // Different roots give different children for the same index.
        assert_ne!(
            SeedSequence::new(1).fork(7).next_seed(),
            SeedSequence::new(2).fork(7).next_seed()
        );
        // fork_rng draws from the child sequence's root stream.
        let mut direct = seq.fork(5).next_rng();
        let mut viarng = seq.fork_rng(5);
        // Both are seeded deterministically; they need not be equal, but
        // each must be reproducible.
        assert_eq!(direct.next_u64(), seq.fork(5).next_rng().next_u64());
        assert_eq!(viarng.next_u64(), seq.fork_rng(5).next_u64());
    }

    #[test]
    fn fork_avoids_next_seed_and_derive_streams() {
        let seq = SeedSequence::new(99);
        let mut ordered = SeedSequence::new(99);
        let ordinary: Vec<u64> = (0..64).map(|_| ordered.next_seed()).collect();
        for i in 0..64u64 {
            let child = seq.fork(i).next_seed();
            assert!(!ordinary.contains(&child), "fork({i}) collides with next_seed stream");
            assert_ne!(seq.fork(i).next_seed(), seq.derive("channel"));
        }
    }

    #[test]
    fn derive_labels_are_distinct() {
        let seq = SeedSequence::new(3);
        assert_ne!(seq.derive("channel"), seq.derive("coverage"));
        assert_ne!(seq.derive("a"), SeedSequence::new(4).derive("a"));
    }

    #[test]
    fn derive_seq_nests_into_distinct_namespaces() {
        let root = SeedSequence::new(42);
        // Nesting composes: the path (tenant, request) keys the namespace.
        let mut paths = Vec::new();
        for tenant in ["alpha", "beta", "gamma"] {
            for req in ["r0", "r1", "r2"] {
                paths.push(root.derive_seq(tenant).derive_seq(req).root());
            }
        }
        let mut dedup = paths.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), paths.len(), "nested namespaces collide");
        // Label concatenation must not alias the nested path: ("ab", "c")
        // and ("a", "bc") are different namespaces.
        assert_ne!(
            root.derive_seq("ab").derive_seq("c").root(),
            root.derive_seq("a").derive_seq("bc").root()
        );
        // A nested namespace is pure: deriving never mutates the parent.
        let mut a = SeedSequence::new(42);
        let mut b = SeedSequence::new(42);
        let _ = a.derive_seq("tenant");
        assert_eq!(a.next_seed(), b.next_seed());
    }

    #[test]
    fn splitmix_mixes() {
        assert_ne!(splitmix64(0), 0);
        assert_ne!(splitmix64(1), splitmix64(2));
    }
}
