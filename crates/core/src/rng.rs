//! Deterministic random-number plumbing.
//!
//! Every stochastic component in the workspace takes an explicit `&mut R:
//! Rng`, and experiments construct their generators through [`seeded`] /
//! [`SeedSequence`] so that whole tables and figures are reproducible from a
//! single seed.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The RNG used throughout the simulator: a small, fast, seedable PRNG.
pub type SimRng = SmallRng;

/// Creates a deterministic [`SimRng`] from a 64-bit seed.
///
/// ```
/// use dnasim_core::rng::seeded;
/// use rand::RngExt;
///
/// let mut a = seeded(7);
/// let mut b = seeded(7);
/// assert_eq!(a.random::<u64>(), b.random::<u64>());
/// ```
pub fn seeded(seed: u64) -> SimRng {
    SimRng::seed_from_u64(seed)
}

/// A hierarchical seed dispenser.
///
/// Experiments fan out into many independent stochastic components (one per
/// cluster, per simulator layer, per sweep point). `SeedSequence` derives a
/// stream of decorrelated child seeds from one root seed, so adding a
/// component never perturbs the randomness of the others.
///
/// # Examples
///
/// ```
/// use dnasim_core::rng::SeedSequence;
///
/// let mut seq = SeedSequence::new(42);
/// let a = seq.next_seed();
/// let b = seq.next_seed();
/// assert_ne!(a, b);
///
/// // A named substream is independent of draw order.
/// let x = SeedSequence::new(42).derive("channel");
/// let y = SeedSequence::new(42).derive("channel");
/// assert_eq!(x, y);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeedSequence {
    root: u64,
    counter: u64,
}

impl SeedSequence {
    /// Creates a sequence rooted at `seed`.
    pub fn new(seed: u64) -> SeedSequence {
        SeedSequence {
            root: seed,
            counter: 0,
        }
    }

    /// Returns the next child seed in the stream.
    pub fn next_seed(&mut self) -> u64 {
        self.counter += 1;
        splitmix64(self.root ^ splitmix64(self.counter))
    }

    /// Returns the next child RNG in the stream.
    pub fn next_rng(&mut self) -> SimRng {
        seeded(self.next_seed())
    }

    /// Derives a seed for a named substream, independent of [`next_seed`]
    /// draw order.
    ///
    /// [`next_seed`]: SeedSequence::next_seed
    pub fn derive(&self, label: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
        for byte in label.bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3); // FNV prime
        }
        splitmix64(self.root ^ h)
    }

    /// Derives an RNG for a named substream.
    pub fn derive_rng(&self, label: &str) -> SimRng {
        seeded(self.derive(label))
    }
}

/// SplitMix64 finaliser: a strong 64-bit mixer used to decorrelate seeds.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn seeded_is_deterministic() {
        let xs: Vec<u32> = (0..8).map(|_| seeded(99).random()).collect();
        assert!(xs.windows(2).all(|w| w[0] == w[1]));
        let mut rng = seeded(99);
        let first: u32 = rng.random();
        assert_eq!(first, xs[0]);
    }

    #[test]
    fn different_seeds_differ() {
        let a: u64 = seeded(1).random();
        let b: u64 = seeded(2).random();
        assert_ne!(a, b);
    }

    #[test]
    fn sequence_children_are_distinct() {
        let mut seq = SeedSequence::new(7);
        let seeds: Vec<u64> = (0..100).map(|_| seq.next_seed()).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len());
    }

    #[test]
    fn sequence_is_reproducible() {
        let mut a = SeedSequence::new(5);
        let mut b = SeedSequence::new(5);
        for _ in 0..10 {
            assert_eq!(a.next_seed(), b.next_seed());
        }
    }

    #[test]
    fn derive_is_order_independent() {
        let mut seq = SeedSequence::new(3);
        let before = seq.derive("x");
        seq.next_seed();
        seq.next_seed();
        assert_eq!(seq.derive("x"), before);
    }

    #[test]
    fn derive_labels_are_distinct() {
        let seq = SeedSequence::new(3);
        assert_ne!(seq.derive("channel"), seq.derive("coverage"));
        assert_ne!(seq.derive("a"), SeedSequence::new(4).derive("a"));
    }

    #[test]
    fn splitmix_mixes() {
        assert_ne!(splitmix64(0), 0);
        assert_ne!(splitmix64(1), splitmix64(2));
    }
}
