//! Datasets: ordered collections of clusters plus summary statistics.

use crate::rng::SliceRandom;
use crate::rng::Rng;

use crate::cluster::Cluster;
use crate::strand::Strand;

/// A full sequencing dataset: one cluster per reference strand.
///
/// This is the unit the evaluation pipeline operates on: a real (or
/// synthetic-twin) Nanopore dataset, or the output of one of the simulators.
///
/// # Examples
///
/// ```
/// use dnasim_core::{Cluster, Dataset, Strand};
///
/// let c = Cluster::new("ACGT".parse()?, vec!["ACG".parse()?]);
/// let ds = Dataset::from_clusters(vec![c]);
/// assert_eq!(ds.len(), 1);
/// assert_eq!(ds.total_reads(), 1);
/// # Ok::<(), dnasim_core::ParseStrandError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Dataset {
    clusters: Vec<Cluster>,
}

impl Dataset {
    /// Creates an empty dataset.
    pub fn new() -> Dataset {
        Dataset {
            clusters: Vec::new(),
        }
    }

    /// Creates a dataset from clusters.
    pub fn from_clusters(clusters: Vec<Cluster>) -> Dataset {
        Dataset { clusters }
    }

    /// The clusters in the dataset.
    pub fn clusters(&self) -> &[Cluster] {
        &self.clusters
    }

    /// Checked mutable access: applies `f` to every cluster in order,
    /// passing its global index.
    ///
    /// This is the only mutable path into the cluster list besides
    /// [`Dataset::push`]/[`Extend`]. It hands out `&mut Cluster` one at a
    /// time, so callers can rewrite reads or references but can never
    /// insert, remove, or reorder clusters — the invariant streaming
    /// sinks rely on (cluster `i` here is cluster `i` of the stream).
    /// Summary statistics are derived on demand, so read-count mutation
    /// needs no bookkeeping.
    pub fn for_each_cluster_mut<F>(&mut self, mut f: F)
    where
        F: FnMut(usize, &mut Cluster),
    {
        for (index, cluster) in self.clusters.iter_mut().enumerate() {
            f(index, cluster);
        }
    }

    /// A [`ClusterSource`](crate::stream::ClusterSource) over this
    /// dataset, emitting clusters in order in bounded batches.
    pub fn stream(&self) -> crate::stream::DatasetStream<'_> {
        crate::stream::DatasetStream::new(self)
    }

    /// Like [`Dataset::stream`], but consuming the dataset so the source
    /// is `'static` — the shape [`PrefetchSource`](crate::PrefetchSource)
    /// needs to move it onto its worker thread.
    pub fn into_stream(self) -> crate::stream::OwnedDatasetStream {
        crate::stream::OwnedDatasetStream::new(self)
    }

    /// Number of clusters (= number of reference strands).
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// Whether the dataset has no clusters.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// Adds a cluster.
    pub fn push(&mut self, cluster: Cluster) {
        self.clusters.push(cluster);
    }

    /// Iterates over the clusters.
    pub fn iter(&self) -> std::slice::Iter<'_, Cluster> {
        self.clusters.iter()
    }

    /// Total number of noisy reads across all clusters.
    ///
    /// ```
    /// use dnasim_core::{Cluster, Dataset};
    /// let mut ds = Dataset::new();
    /// ds.push(Cluster::new("AC".parse().unwrap(), vec!["AC".parse().unwrap()]));
    /// ds.push(Cluster::erasure("GT".parse().unwrap()));
    /// assert_eq!(ds.total_reads(), 1);
    /// ```
    pub fn total_reads(&self) -> usize {
        self.clusters.iter().map(Cluster::coverage).sum()
    }

    /// Mean sequencing coverage across clusters (reads per reference).
    ///
    /// Returns 0.0 for an empty dataset.
    pub fn mean_coverage(&self) -> f64 {
        if self.clusters.is_empty() {
            return 0.0;
        }
        self.total_reads() as f64 / self.clusters.len() as f64
    }

    /// Number of erasures (clusters with zero reads).
    pub fn erasure_count(&self) -> usize {
        self.clusters.iter().filter(|c| c.is_erasure()).count()
    }

    /// The minimum and maximum coverage over all clusters, or `None` if the
    /// dataset is empty.
    pub fn coverage_range(&self) -> Option<(usize, usize)> {
        let mut it = self.clusters.iter().map(Cluster::coverage);
        let first = it.next()?;
        let (mut lo, mut hi) = (first, first);
        for c in it {
            lo = lo.min(c);
            hi = hi.max(c);
        }
        Some((lo, hi))
    }

    /// Histogram of cluster coverages: `hist[c]` = number of clusters with
    /// coverage exactly `c`.
    pub fn coverage_histogram(&self) -> Vec<usize> {
        let max = self
            .clusters
            .iter()
            .map(Cluster::coverage)
            .max()
            .unwrap_or(0);
        let mut hist = vec![0usize; max + 1];
        for c in &self.clusters {
            hist[c.coverage()] += 1;
        }
        hist
    }

    /// The per-cluster coverages, in cluster order. Useful for resimulating
    /// with *custom coverage* equal to a real dataset's (Table 2.1 protocol).
    pub fn coverages(&self) -> Vec<usize> {
        self.clusters.iter().map(Cluster::coverage).collect()
    }

    /// The reference strands, in cluster order.
    pub fn references(&self) -> Vec<Strand> {
        self.clusters
            .iter()
            .map(|c| c.reference().clone())
            .collect()
    }

    /// Length of the reference strands, or `None` for an empty dataset.
    /// (All evaluation datasets in the paper use a fixed design length.)
    pub fn strand_len(&self) -> Option<usize> {
        self.clusters.first().map(|c| c.reference().len())
    }

    /// Returns a dataset where every cluster keeps only its first `n` reads
    /// (the fixed-coverage protocol of §3.2).
    pub fn with_coverage(&self, n: usize) -> Dataset {
        Dataset {
            clusters: self.clusters.iter().map(|c| c.with_coverage(n)).collect(),
        }
    }

    /// Returns a dataset restricted to clusters with coverage ≥ `min`.
    ///
    /// The §3.2 protocol discards clusters below a minimum coverage (1,006
    /// of the 10,000 Nanopore clusters at min = 10) before sweeping coverage.
    pub fn filter_min_coverage(&self, min: usize) -> Dataset {
        Dataset {
            clusters: self
                .clusters
                .iter()
                .filter(|c| c.coverage() >= min)
                .cloned()
                .collect(),
        }
    }

    /// Shuffles the reads *within* every cluster.
    pub fn shuffle_reads_within_clusters<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for c in &mut self.clusters {
            c.shuffle_reads(rng);
        }
    }

    /// Shuffles the order of the clusters.
    pub fn shuffle_clusters<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        self.clusters.shuffle(rng);
    }

    /// Flattens the dataset into an unordered pool of reads, losing cluster
    /// identity — the shape a real sequencing read-out has before
    /// clustering.
    pub fn into_read_pool<R: Rng + ?Sized>(self, rng: &mut R) -> Vec<Strand> {
        let mut pool: Vec<Strand> = self
            .clusters
            .into_iter()
            .flat_map(|c| c.into_parts().1)
            .collect();
        pool.shuffle(rng);
        pool
    }
}

impl FromIterator<Cluster> for Dataset {
    fn from_iter<I: IntoIterator<Item = Cluster>>(iter: I) -> Dataset {
        Dataset {
            clusters: iter.into_iter().collect(),
        }
    }
}

impl Extend<Cluster> for Dataset {
    fn extend<I: IntoIterator<Item = Cluster>>(&mut self, iter: I) {
        self.clusters.extend(iter);
    }
}

impl IntoIterator for Dataset {
    type Item = Cluster;
    type IntoIter = std::vec::IntoIter<Cluster>;

    fn into_iter(self) -> Self::IntoIter {
        self.clusters.into_iter()
    }
}

impl<'a> IntoIterator for &'a Dataset {
    type Item = &'a Cluster;
    type IntoIter = std::slice::Iter<'a, Cluster>;

    fn into_iter(self) -> Self::IntoIter {
        self.clusters.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    fn sample() -> Dataset {
        let mut ds = Dataset::new();
        ds.push(Cluster::new(
            "ACGT".parse().unwrap(),
            vec!["ACGT".parse().unwrap(), "ACG".parse().unwrap()],
        ));
        ds.push(Cluster::new(
            "TTTT".parse().unwrap(),
            vec![
                "TTT".parse().unwrap(),
                "TTTT".parse().unwrap(),
                "TTTTT".parse().unwrap(),
            ],
        ));
        ds.push(Cluster::erasure("GGGG".parse().unwrap()));
        ds
    }

    #[test]
    fn summary_statistics() {
        let ds = sample();
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.total_reads(), 5);
        assert!((ds.mean_coverage() - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(ds.erasure_count(), 1);
        assert_eq!(ds.coverage_range(), Some((0, 3)));
        assert_eq!(ds.strand_len(), Some(4));
    }

    #[test]
    fn empty_dataset_statistics() {
        let ds = Dataset::new();
        assert!(ds.is_empty());
        assert_eq!(ds.mean_coverage(), 0.0);
        assert_eq!(ds.coverage_range(), None);
        assert_eq!(ds.strand_len(), None);
        assert_eq!(ds.coverage_histogram(), vec![0]);
    }

    #[test]
    fn coverage_histogram_counts() {
        let hist = sample().coverage_histogram();
        assert_eq!(hist, vec![1, 0, 1, 1]);
    }

    #[test]
    fn with_coverage_truncates_all() {
        let ds = sample().with_coverage(1);
        assert_eq!(ds.coverages(), vec![1, 1, 0]);
    }

    #[test]
    fn filter_min_coverage_drops_small_clusters() {
        let ds = sample().filter_min_coverage(2);
        assert_eq!(ds.len(), 2);
        assert!(ds.iter().all(|c| c.coverage() >= 2));
    }

    #[test]
    fn read_pool_has_all_reads() {
        let ds = sample();
        let total = ds.total_reads();
        let mut rng = seeded(11);
        let pool = ds.into_read_pool(&mut rng);
        assert_eq!(pool.len(), total);
    }

    #[test]
    fn from_iterator_collects() {
        let ds: Dataset = sample().into_iter().collect();
        assert_eq!(ds.len(), 3);
    }

    #[test]
    fn coverages_in_cluster_order() {
        assert_eq!(sample().coverages(), vec![2, 3, 0]);
    }
}
