//! Deterministic work budgets and cooperative cancellation.
//!
//! Wall-clock deadlines are useless for a reproducible simulator: the same
//! request must produce the same bytes on a loaded laptop and an idle
//! server. Instead the workspace meters *work units* — clusters pumped
//! through a stage, decode windows attempted — and a [`Budget`] bounds how
//! many a computation may spend. Exhaustion is detected in the serial
//! driver loop of each stage (never inside parallel workers), so the point
//! at which a budget runs out is a pure function of the limit: cluster
//! `limit` is always the first one refused, at any thread count and any
//! batch size (DESIGN.md §13).
//!
//! [`CancelToken`] is the cooperative-shutdown half: a cloneable flag a
//! session owner can raise. Budgets observe their linked token at the same
//! serial checkpoints, so cancellation also lands on a deterministic batch
//! boundary. Both exhaustion and cancellation surface as the typed
//! [`DnasimError::DeadlineExceeded`], never as a panic or a hang.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use crate::error::DnasimError;

/// A cloneable cancellation flag shared between a controller (which calls
/// [`CancelToken::cancel`]) and any number of [`Budget`]s observing it.
///
/// The token is purely cooperative: raising it does not interrupt running
/// work, it makes the next budget checkpoint (a batch boundary) return
/// [`DnasimError::DeadlineExceeded`].
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    cancelled: Arc<AtomicBool>,
}

impl CancelToken {
    /// Creates a fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Raises the flag. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    /// Whether [`cancel`](CancelToken::cancel) has been called on this
    /// token or any clone of it.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }
}

/// A deterministic work-unit meter.
///
/// A budget holds a fixed `limit` of work units and an atomic `spent`
/// counter. Stages consume units through [`admit`](Budget::admit) (take as
/// many of `n` units as remain) or [`charge`](Budget::charge) (all-or-error),
/// always from their serial driver loop, which is what keeps the exhaustion
/// point byte-deterministic.
///
/// [`Budget::unlimited`] is the no-op meter existing entry points delegate
/// through: it never exhausts and costs one atomic add per batch.
#[derive(Debug)]
pub struct Budget {
    limit: u64,
    spent: AtomicU64,
    token: CancelToken,
}

impl Default for Budget {
    fn default() -> Budget {
        Budget::unlimited()
    }
}

impl Budget {
    /// A budget that never exhausts (limit `u64::MAX`).
    pub fn unlimited() -> Budget {
        Budget::limited(u64::MAX)
    }

    /// A budget of exactly `limit` work units.
    pub fn limited(limit: u64) -> Budget {
        Budget {
            limit,
            spent: AtomicU64::new(0),
            token: CancelToken::new(),
        }
    }

    /// Links this budget to an external cancellation token: every
    /// checkpoint observes `token` in addition to the meter.
    pub fn with_token(mut self, token: CancelToken) -> Budget {
        self.token = token;
        self
    }

    /// The configured limit (`u64::MAX` for unlimited budgets).
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// Work units consumed so far.
    pub fn spent(&self) -> u64 {
        self.spent.load(Ordering::Acquire)
    }

    /// Work units still available (0 when cancelled).
    pub fn remaining(&self) -> u64 {
        if self.is_cancelled() {
            return 0;
        }
        self.limit.saturating_sub(self.spent())
    }

    /// Whether the linked token has been cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.token.is_cancelled()
    }

    /// The cancellation token this budget observes (clone it to keep a
    /// handle that can cancel the work).
    pub fn token(&self) -> &CancelToken {
        &self.token
    }

    /// Checkpoint for cancellation only: `Err` iff the linked token has
    /// been raised. Stages call this at every batch boundary.
    ///
    /// # Errors
    ///
    /// [`DnasimError::DeadlineExceeded`] naming `stage`, with the limit
    /// collapsed to what was already spent (cancellation is modelled as
    /// the budget shrinking to its spent amount).
    pub fn check(&self, stage: &'static str) -> Result<(), DnasimError> {
        if self.is_cancelled() {
            let spent = self.spent();
            return Err(DnasimError::DeadlineExceeded {
                spent,
                limit: spent,
                stage,
            });
        }
        Ok(())
    }

    /// Atomically takes up to `units` work units, returning how many were
    /// admitted: `units` while the meter has room, the remaining prefix as
    /// it runs dry, and 0 thereafter (or immediately when cancelled).
    ///
    /// Callers process exactly the admitted prefix, which is what makes
    /// partial output a deterministic function of the limit.
    pub fn admit(&self, units: u64) -> u64 {
        if units == 0 || self.is_cancelled() {
            return 0;
        }
        let mut current = self.spent.load(Ordering::Acquire);
        loop {
            let granted = units.min(self.limit.saturating_sub(current));
            if granted == 0 {
                return 0;
            }
            match self.spent.compare_exchange_weak(
                current,
                current + granted,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return granted,
                Err(actual) => current = actual,
            }
        }
    }

    /// Takes exactly `units` work units or fails: checkpoint plus meter in
    /// one call, for stages that cannot make partial progress.
    ///
    /// # Errors
    ///
    /// [`DnasimError::DeadlineExceeded`] when cancelled or when fewer than
    /// `units` remain (whatever remains is still consumed, so the meter
    /// reads `spent == limit` afterwards).
    pub fn charge(&self, stage: &'static str, units: u64) -> Result<(), DnasimError> {
        self.check(stage)?;
        if self.admit(units) < units {
            return Err(self.exceeded(stage));
        }
        Ok(())
    }

    /// The typed error describing this budget's exhaustion at `stage`.
    pub fn exceeded(&self, stage: &'static str) -> DnasimError {
        DnasimError::DeadlineExceeded {
            spent: self.spent().min(self.limit),
            limit: self.limit,
            stage,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_exhausts() {
        let budget = Budget::unlimited();
        assert_eq!(budget.admit(1 << 40), 1 << 40);
        budget.charge("stage", 12).unwrap();
        budget.check("stage").unwrap();
        assert!(budget.remaining() > 0);
    }

    #[test]
    fn admit_hands_out_the_exact_prefix_then_zero() {
        let budget = Budget::limited(10);
        assert_eq!(budget.admit(4), 4);
        assert_eq!(budget.admit(4), 4);
        // Only 2 remain: the partial admit is the deterministic cut point.
        assert_eq!(budget.admit(4), 2);
        assert_eq!(budget.admit(4), 0);
        assert_eq!(budget.spent(), 10);
        assert_eq!(budget.remaining(), 0);
    }

    #[test]
    fn charge_fails_with_typed_error_and_saturates() {
        let budget = Budget::limited(5);
        budget.charge("pump", 3).unwrap();
        let err = budget.charge("pump", 3).unwrap_err();
        match err {
            DnasimError::DeadlineExceeded { spent, limit, stage } => {
                assert_eq!(spent, 5);
                assert_eq!(limit, 5);
                assert_eq!(stage, "pump");
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        assert_eq!(budget.spent(), 5);
    }

    #[test]
    fn cancellation_trips_every_checkpoint() {
        let budget = Budget::limited(100);
        assert_eq!(budget.admit(10), 10);
        let handle = budget.token().clone();
        handle.cancel();
        assert!(budget.is_cancelled());
        assert_eq!(budget.admit(10), 0);
        assert_eq!(budget.remaining(), 0);
        let err = budget.check("drain").unwrap_err();
        match err {
            DnasimError::DeadlineExceeded { spent, limit, stage } => {
                assert_eq!(spent, 10);
                assert_eq!(limit, 10, "cancel collapses the limit to spent");
                assert_eq!(stage, "drain");
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }

    #[test]
    fn linked_token_is_shared_across_budgets() {
        let token = CancelToken::new();
        let a = Budget::limited(8).with_token(token.clone());
        let b = Budget::unlimited().with_token(token.clone());
        assert!(a.check("a").is_ok() && b.check("b").is_ok());
        token.cancel();
        assert!(a.check("a").is_err());
        assert!(b.check("b").is_err());
    }

    #[test]
    fn concurrent_admits_never_oversubscribe() {
        let budget = std::sync::Arc::new(Budget::limited(1000));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let budget = std::sync::Arc::clone(&budget);
            handles.push(std::thread::spawn(move || {
                let mut taken = 0u64;
                loop {
                    let got = budget.admit(7);
                    if got == 0 {
                        return taken;
                    }
                    taken += got;
                }
            }));
        }
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 1000, "every unit handed out exactly once");
        assert_eq!(budget.spent(), 1000);
    }
}
