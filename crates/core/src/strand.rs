//! DNA strands: owned sequences of [`Base`]s.

use std::fmt;
use std::ops::Index;
use std::str::FromStr;

use crate::rng::{Rng, RngExt};

use crate::base::{Base, ParseBaseError};

/// An owned DNA sequence.
///
/// A `Strand` represents both *reference strands* (the designed sequences of
/// fixed length `L` handed to synthesis) and *noisy reads* (the
/// variable-length sequences coming back from the sequencer): the noisy
/// channel maps `(Σ_L)^N → (Σ*)^M`, so both sides share one representation.
///
/// # Examples
///
/// ```
/// use dnasim_core::Strand;
///
/// let s: Strand = "GCTA".parse()?;
/// assert_eq!(s.len(), 4);
/// assert_eq!(s.to_string(), "GCTA");
/// assert!((s.gc_ratio() - 0.5).abs() < 1e-9);
/// # Ok::<(), dnasim_core::ParseStrandError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Strand {
    bases: Vec<Base>,
}

impl Strand {
    /// Creates an empty strand.
    ///
    /// ```
    /// use dnasim_core::Strand;
    /// assert!(Strand::new().is_empty());
    /// ```
    pub fn new() -> Strand {
        Strand { bases: Vec::new() }
    }

    /// Creates an empty strand with room for `capacity` bases.
    pub fn with_capacity(capacity: usize) -> Strand {
        Strand {
            bases: Vec::with_capacity(capacity),
        }
    }

    /// Creates a strand from a vector of bases.
    ///
    /// ```
    /// use dnasim_core::{Base, Strand};
    /// let s = Strand::from_bases(vec![Base::A, Base::T]);
    /// assert_eq!(s.to_string(), "AT");
    /// ```
    pub fn from_bases(bases: Vec<Base>) -> Strand {
        Strand { bases }
    }

    /// Generates a strand of length `len` with bases drawn uniformly at
    /// random.
    ///
    /// ```
    /// use dnasim_core::{Strand, rng::seeded};
    /// let mut rng = seeded(1);
    /// let s = Strand::random(110, &mut rng);
    /// assert_eq!(s.len(), 110);
    /// ```
    pub fn random<R: Rng + ?Sized>(len: usize, rng: &mut R) -> Strand {
        Strand {
            bases: (0..len).map(|_| Base::random(rng)).collect(),
        }
    }

    /// Generates a random strand whose GC-ratio is exactly 50% (when `len`
    /// is even; otherwise as close as possible), mirroring the GC-balance
    /// constraint synthesis providers impose for strand stability.
    ///
    /// ```
    /// use dnasim_core::{Strand, rng::seeded};
    /// let mut rng = seeded(2);
    /// let s = Strand::random_gc_balanced(100, &mut rng);
    /// assert!((s.gc_ratio() - 0.5).abs() < 1e-9);
    /// ```
    pub fn random_gc_balanced<R: Rng + ?Sized>(len: usize, rng: &mut R) -> Strand {
        use crate::rng::SliceRandom;
        let half = len / 2;
        let mut bases: Vec<Base> = Vec::with_capacity(len);
        for i in 0..len {
            let b = if i < half {
                // GC half.
                if rng.random::<bool>() {
                    Base::G
                } else {
                    Base::C
                }
            } else if rng.random::<bool>() {
                Base::A
            } else {
                Base::T
            };
            bases.push(b);
        }
        bases.shuffle(rng);
        Strand { bases }
    }

    /// Number of bases in the strand.
    #[inline]
    pub fn len(&self) -> usize {
        self.bases.len()
    }

    /// Whether the strand has no bases.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bases.is_empty()
    }

    /// Returns the base at `pos`, or `None` if out of bounds.
    ///
    /// ```
    /// use dnasim_core::{Base, Strand};
    /// let s: Strand = "ACGT".parse().unwrap();
    /// assert_eq!(s.get(2), Some(Base::G));
    /// assert_eq!(s.get(9), None);
    /// ```
    #[inline]
    pub fn get(&self, pos: usize) -> Option<Base> {
        self.bases.get(pos).copied()
    }

    /// A view of the strand as a slice of bases.
    #[inline]
    pub fn as_bases(&self) -> &[Base] {
        &self.bases
    }

    /// Consumes the strand and returns the underlying base vector.
    pub fn into_bases(self) -> Vec<Base> {
        self.bases
    }

    /// Appends one base.
    #[inline]
    pub fn push(&mut self, base: Base) {
        self.bases.push(base);
    }

    /// Removes and returns the last base.
    pub fn pop(&mut self) -> Option<Base> {
        self.bases.pop()
    }

    /// Truncates the strand to at most `len` bases.
    pub fn truncate(&mut self, len: usize) {
        self.bases.truncate(len);
    }

    /// Iterates over the bases.
    pub fn iter(&self) -> std::iter::Copied<std::slice::Iter<'_, Base>> {
        self.bases.iter().copied()
    }

    /// Returns a new strand with the bases in reverse order.
    ///
    /// Two-way reconstruction algorithms run once on the cluster and once on
    /// every read reversed; this is the primitive they use.
    ///
    /// ```
    /// use dnasim_core::Strand;
    /// let s: Strand = "AAGT".parse().unwrap();
    /// assert_eq!(s.reversed().to_string(), "TGAA");
    /// ```
    pub fn reversed(&self) -> Strand {
        let mut bases = self.bases.clone();
        bases.reverse();
        Strand { bases }
    }

    /// Returns the reverse complement (reverse order, each base
    /// complemented), as produced when sequencing the antisense strand.
    ///
    /// ```
    /// use dnasim_core::Strand;
    /// let s: Strand = "AAGT".parse().unwrap();
    /// assert_eq!(s.reverse_complement().to_string(), "ACTT");
    /// ```
    pub fn reverse_complement(&self) -> Strand {
        Strand {
            bases: self.bases.iter().rev().map(|b| b.complement()).collect(),
        }
    }

    /// Returns a sub-strand covering `range` (clamped to the strand length).
    ///
    /// ```
    /// use dnasim_core::Strand;
    /// let s: Strand = "ACGTAC".parse().unwrap();
    /// assert_eq!(s.substrand(1..4).to_string(), "CGT");
    /// assert_eq!(s.substrand(4..100).to_string(), "AC");
    /// ```
    pub fn substrand(&self, range: std::ops::Range<usize>) -> Strand {
        let start = range.start.min(self.bases.len());
        let end = range.end.min(self.bases.len()).max(start);
        Strand {
            bases: self.bases[start..end].to_vec(),
        }
    }

    /// The GC-ratio: fraction of bases that are G or C.
    ///
    /// Extreme GC-ratios destabilise strands (self-looping secondary
    /// structures), so encoders aim for ~0.5. Returns 0.0 for an empty
    /// strand.
    ///
    /// ```
    /// use dnasim_core::Strand;
    /// let s: Strand = "GGCA".parse().unwrap();
    /// assert!((s.gc_ratio() - 0.75).abs() < 1e-9);
    /// ```
    pub fn gc_ratio(&self) -> f64 {
        if self.bases.is_empty() {
            return 0.0;
        }
        let gc = self.bases.iter().filter(|b| b.is_gc()).count();
        gc as f64 / self.bases.len() as f64
    }

    /// The length of the longest homopolymer run (consecutive repeats of the
    /// same base). Sequencers are particularly error-prone on homopolymers,
    /// so encodings bound this.
    ///
    /// ```
    /// use dnasim_core::Strand;
    /// let s: Strand = "AACGGGT".parse().unwrap();
    /// assert_eq!(s.max_homopolymer(), 3);
    /// assert_eq!(Strand::new().max_homopolymer(), 0);
    /// ```
    pub fn max_homopolymer(&self) -> usize {
        let mut best = 0;
        let mut run = 0;
        let mut prev: Option<Base> = None;
        for &b in &self.bases {
            if Some(b) == prev {
                run += 1;
            } else {
                run = 1;
                prev = Some(b);
            }
            best = best.max(run);
        }
        best
    }

    /// Concatenates two strands into a new one.
    ///
    /// ```
    /// use dnasim_core::Strand;
    /// let a: Strand = "AC".parse().unwrap();
    /// let b: Strand = "GT".parse().unwrap();
    /// assert_eq!(a.concat(&b).to_string(), "ACGT");
    /// ```
    pub fn concat(&self, other: &Strand) -> Strand {
        let mut bases = Vec::with_capacity(self.len() + other.len());
        bases.extend_from_slice(&self.bases);
        bases.extend_from_slice(&other.bases);
        Strand { bases }
    }

    /// Whether `prefix` is a prefix of this strand.
    pub fn starts_with(&self, prefix: &Strand) -> bool {
        self.bases.starts_with(&prefix.bases)
    }
}

impl Index<usize> for Strand {
    type Output = Base;

    fn index(&self, pos: usize) -> &Base {
        &self.bases[pos]
    }
}

impl fmt::Display for Strand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.bases {
            write!(f, "{b}")?;
        }
        Ok(())
    }
}

/// Error returned when parsing a [`Strand`] from text fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseStrandError {
    /// Byte position of the offending character.
    pub position: usize,
    /// The underlying base parse error.
    pub source: ParseBaseError,
}

impl fmt::Display for ParseStrandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at position {}", self.source, self.position)
    }
}

impl std::error::Error for ParseStrandError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

impl FromStr for Strand {
    type Err = ParseStrandError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut bases = Vec::with_capacity(s.len());
        for (position, c) in s.chars().enumerate() {
            let base =
                Base::try_from(c).map_err(|source| ParseStrandError { position, source })?;
            bases.push(base);
        }
        Ok(Strand { bases })
    }
}

impl FromIterator<Base> for Strand {
    fn from_iter<I: IntoIterator<Item = Base>>(iter: I) -> Strand {
        Strand {
            bases: iter.into_iter().collect(),
        }
    }
}

impl Extend<Base> for Strand {
    fn extend<I: IntoIterator<Item = Base>>(&mut self, iter: I) {
        self.bases.extend(iter);
    }
}

impl From<Vec<Base>> for Strand {
    fn from(bases: Vec<Base>) -> Strand {
        Strand { bases }
    }
}

impl From<Strand> for Vec<Base> {
    fn from(s: Strand) -> Vec<Base> {
        s.bases
    }
}

impl<'a> IntoIterator for &'a Strand {
    type Item = Base;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, Base>>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl IntoIterator for Strand {
    type Item = Base;
    type IntoIter = std::vec::IntoIter<Base>;

    fn into_iter(self) -> Self::IntoIter {
        self.bases.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    #[test]
    fn parse_and_display_round_trip() {
        let text = "ACGTACGTTTGCA";
        let s: Strand = text.parse().unwrap();
        assert_eq!(s.to_string(), text);
        assert_eq!(s.len(), text.len());
    }

    #[test]
    fn parse_lowercase() {
        let s: Strand = "acgt".parse().unwrap();
        assert_eq!(s.to_string(), "ACGT");
    }

    #[test]
    fn parse_error_reports_position() {
        let err = "ACXGT".parse::<Strand>().unwrap_err();
        assert_eq!(err.position, 2);
        assert_eq!(err.source.found, 'X');
        assert!(err.to_string().contains("position 2"));
    }

    #[test]
    fn empty_strand() {
        let s = Strand::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.to_string(), "");
        assert_eq!(s.gc_ratio(), 0.0);
        assert_eq!(s.max_homopolymer(), 0);
    }

    #[test]
    fn reversed_is_involution() {
        let s: Strand = "AACGT".parse().unwrap();
        assert_eq!(s.reversed().reversed(), s);
        assert_eq!(s.reversed().to_string(), "TGCAA");
    }

    #[test]
    fn reverse_complement_is_involution() {
        let s: Strand = "AACGT".parse().unwrap();
        assert_eq!(s.reverse_complement().reverse_complement(), s);
    }

    #[test]
    fn gc_ratio_extremes() {
        let all_gc: Strand = "GCGC".parse().unwrap();
        assert!((all_gc.gc_ratio() - 1.0).abs() < 1e-12);
        let no_gc: Strand = "ATAT".parse().unwrap();
        assert!(no_gc.gc_ratio().abs() < 1e-12);
    }

    #[test]
    fn homopolymer_runs() {
        let s: Strand = "AAAAA".parse().unwrap();
        assert_eq!(s.max_homopolymer(), 5);
        let s: Strand = "ACGT".parse().unwrap();
        assert_eq!(s.max_homopolymer(), 1);
        let s: Strand = "ACCGGGT".parse().unwrap();
        assert_eq!(s.max_homopolymer(), 3);
    }

    #[test]
    fn random_has_requested_length() {
        let mut rng = seeded(3);
        for len in [0, 1, 17, 110] {
            assert_eq!(Strand::random(len, &mut rng).len(), len);
        }
    }

    #[test]
    fn random_gc_balanced_is_balanced() {
        let mut rng = seeded(4);
        for _ in 0..10 {
            let s = Strand::random_gc_balanced(110, &mut rng);
            assert_eq!(s.len(), 110);
            assert!((s.gc_ratio() - 0.5).abs() < 0.01, "gc={}", s.gc_ratio());
        }
    }

    #[test]
    fn substrand_clamps() {
        let s: Strand = "ACGTAC".parse().unwrap();
        assert_eq!(s.substrand(0..6), s);
        assert_eq!(s.substrand(2..4).to_string(), "GT");
        assert_eq!(s.substrand(10..20).len(), 0);
    }

    #[test]
    fn collect_and_extend() {
        let s: Strand = Base::ALL.into_iter().collect();
        assert_eq!(s.to_string(), "ACGT");
        let mut t = s.clone();
        t.extend(Base::ALL);
        assert_eq!(t.to_string(), "ACGTACGT");
    }

    #[test]
    fn index_access() {
        let s: Strand = "ACGT".parse().unwrap();
        assert_eq!(s[0], Base::A);
        assert_eq!(s[3], Base::T);
    }

    #[test]
    fn concat_and_starts_with() {
        let a: Strand = "AC".parse().unwrap();
        let b: Strand = "GT".parse().unwrap();
        let c = a.concat(&b);
        assert!(c.starts_with(&a));
        assert!(!c.starts_with(&b));
        assert_eq!(c.len(), 4);
    }
}
