//! Edit-operation vocabulary for describing how a noisy read differs from
//! its reference strand.
//!
//! The profiler (crate `dnasim-profile`) recovers a maximum-likelihood
//! [`EditScript`] from each (reference, read) pair; the channel models
//! conceptually *emit* such scripts. Keeping the vocabulary here lets every
//! crate in the workspace speak the same error language.

use std::fmt;

use crate::base::Base;
use crate::strand::Strand;

/// A single edit operation transforming a reference strand into a noisy
/// read, in left-to-right reference order.
///
/// Semantics (reference → read):
/// * [`EditOp::Equal`] — the reference base was sequenced correctly.
/// * [`EditOp::Subst`] — the reference base was read as a different base.
/// * [`EditOp::Delete`] — the reference base is missing from the read.
/// * [`EditOp::Insert`] — an extra base appears in the read before the next
///   reference base.
///
/// # Examples
///
/// ```
/// use dnasim_core::{Base, EditOp};
///
/// let op = EditOp::Subst { orig: Base::A, new: Base::G };
/// assert!(op.is_error());
/// assert_eq!(op.to_string(), "A>G");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EditOp {
    /// The base was copied faithfully.
    Equal(Base),
    /// The reference base `orig` was substituted by `new` in the read.
    Subst {
        /// Base in the reference strand.
        orig: Base,
        /// Base that appears in the read instead.
        new: Base,
    },
    /// The reference base was deleted (absent from the read).
    Delete(Base),
    /// An extra base was inserted into the read.
    Insert(Base),
}

impl EditOp {
    /// Whether this operation is an error (anything but `Equal`).
    #[inline]
    pub const fn is_error(self) -> bool {
        !matches!(self, EditOp::Equal(_))
    }

    /// The error kind of this operation, or `None` for `Equal`.
    #[inline]
    pub const fn kind(self) -> Option<ErrorKind> {
        match self {
            EditOp::Equal(_) => None,
            EditOp::Subst { .. } => Some(ErrorKind::Substitution),
            EditOp::Delete(_) => Some(ErrorKind::Deletion),
            EditOp::Insert(_) => Some(ErrorKind::Insertion),
        }
    }

    /// How many reference positions this operation consumes (1 for `Equal`,
    /// `Subst`, `Delete`; 0 for `Insert`).
    #[inline]
    pub const fn reference_advance(self) -> usize {
        match self {
            EditOp::Insert(_) => 0,
            _ => 1,
        }
    }

    /// How many read positions this operation produces (1 for `Equal`,
    /// `Subst`, `Insert`; 0 for `Delete`).
    #[inline]
    pub const fn read_advance(self) -> usize {
        match self {
            EditOp::Delete(_) => 0,
            _ => 1,
        }
    }
}

impl fmt::Display for EditOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EditOp::Equal(b) => write!(f, "={b}"),
            EditOp::Subst { orig, new } => write!(f, "{orig}>{new}"),
            EditOp::Delete(b) => write!(f, "-{b}"),
            EditOp::Insert(b) => write!(f, "+{b}"),
        }
    }
}

/// The three IDS error kinds of the DNA-storage noisy channel.
///
/// ```
/// use dnasim_core::ErrorKind;
/// assert_eq!(ErrorKind::ALL.len(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ErrorKind {
    /// A base replaced by another base.
    Substitution,
    /// A base missing from the read.
    Deletion,
    /// An extra base present in the read.
    Insertion,
}

impl ErrorKind {
    /// All three kinds, in `[Substitution, Deletion, Insertion]` order.
    pub const ALL: [ErrorKind; 3] = [
        ErrorKind::Substitution,
        ErrorKind::Deletion,
        ErrorKind::Insertion,
    ];

    /// A stable index in `0..3` for histogramming.
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            ErrorKind::Substitution => 0,
            ErrorKind::Deletion => 1,
            ErrorKind::Insertion => 2,
        }
    }
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ErrorKind::Substitution => "substitution",
            ErrorKind::Deletion => "deletion",
            ErrorKind::Insertion => "insertion",
        })
    }
}

/// An ordered sequence of [`EditOp`]s transforming a reference strand into a
/// read.
///
/// # Examples
///
/// ```
/// use dnasim_core::{Base, EditOp, EditScript, Strand};
///
/// let reference: Strand = "AGCG".parse()?;
/// let script = EditScript::from_ops(vec![
///     EditOp::Equal(Base::A),
///     EditOp::Equal(Base::G),
///     EditOp::Delete(Base::C),
///     EditOp::Equal(Base::G),
/// ]);
/// assert_eq!(script.apply(&reference).unwrap().to_string(), "AGG");
/// assert_eq!(script.error_count(), 1);
/// # Ok::<(), dnasim_core::ParseStrandError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EditScript {
    ops: Vec<EditOp>,
}

impl EditScript {
    /// Creates a script from operations.
    pub fn from_ops(ops: Vec<EditOp>) -> EditScript {
        EditScript { ops }
    }

    /// The operations, in reference order.
    pub fn ops(&self) -> &[EditOp] {
        &self.ops
    }

    /// Number of operations (including `Equal`s).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the script has no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of error operations (non-`Equal`). For a minimal script this
    /// equals the Levenshtein distance between reference and read.
    pub fn error_count(&self) -> usize {
        self.ops.iter().filter(|op| op.is_error()).count()
    }

    /// Counts of `[substitutions, deletions, insertions]`.
    pub fn error_kind_counts(&self) -> [usize; 3] {
        let mut counts = [0usize; 3];
        for op in &self.ops {
            if let Some(kind) = op.kind() {
                counts[kind.index()] += 1;
            }
        }
        counts
    }

    /// Applies the script to `reference`, producing the read it encodes.
    ///
    /// # Errors
    ///
    /// Returns [`ApplyScriptError`] if the script does not match the
    /// reference: an `Equal`/`Subst`/`Delete` op names a base different from
    /// the reference base at that position, or the script consumes a
    /// different number of reference bases than `reference` has.
    pub fn apply(&self, reference: &Strand) -> Result<Strand, ApplyScriptError> {
        let mut out = Strand::with_capacity(reference.len());
        let mut pos = 0usize;
        for (op_index, &op) in self.ops.iter().enumerate() {
            match op {
                EditOp::Insert(b) => out.push(b),
                EditOp::Equal(b) | EditOp::Delete(b) | EditOp::Subst { orig: b, .. } => {
                    let actual = reference.get(pos).ok_or(ApplyScriptError {
                        op_index,
                        reference_pos: pos,
                        mismatch: Mismatch::PastEnd,
                    })?;
                    if actual != b {
                        return Err(ApplyScriptError {
                            op_index,
                            reference_pos: pos,
                            mismatch: Mismatch::BaseMismatch {
                                expected: b,
                                actual,
                            },
                        });
                    }
                    match op {
                        EditOp::Equal(_) | EditOp::Insert(_) => out.push(b),
                        EditOp::Subst { new, .. } => out.push(new),
                        EditOp::Delete(_) => {}
                    }
                    pos += 1;
                }
            }
        }
        if pos != reference.len() {
            return Err(ApplyScriptError {
                op_index: self.ops.len(),
                reference_pos: pos,
                mismatch: Mismatch::Underconsumed {
                    reference_len: reference.len(),
                },
            });
        }
        Ok(out)
    }

    /// For each error op, the (reference position, op) pair. Insertions are
    /// attributed to the reference position *before which* they occur.
    ///
    /// This positional attribution is what spatial-distribution analysis
    /// (§3.3.2) is built on.
    pub fn positioned_errors(&self) -> Vec<(usize, EditOp)> {
        let mut out = Vec::new();
        let mut pos = 0usize;
        for &op in &self.ops {
            if op.is_error() {
                out.push((pos, op));
            }
            pos += op.reference_advance();
        }
        out
    }

    /// Lengths of every maximal run of consecutive deletions.
    ///
    /// Long deletions (runs of length ≥ 2) are a separately-modelled error
    /// class (§3.3.1).
    ///
    /// ```
    /// use dnasim_core::{Base, EditOp, EditScript};
    /// let script = EditScript::from_ops(vec![
    ///     EditOp::Delete(Base::A),
    ///     EditOp::Delete(Base::C),
    ///     EditOp::Equal(Base::G),
    ///     EditOp::Delete(Base::T),
    /// ]);
    /// assert_eq!(script.deletion_run_lengths(), vec![2, 1]);
    /// ```
    pub fn deletion_run_lengths(&self) -> Vec<usize> {
        let mut runs = Vec::new();
        let mut run = 0usize;
        for &op in &self.ops {
            if matches!(op, EditOp::Delete(_)) {
                run += 1;
            } else if run > 0 {
                runs.push(run);
                run = 0;
            }
        }
        if run > 0 {
            runs.push(run);
        }
        runs
    }

    /// Lengths of every maximal run of *consecutive errors* of any kind —
    /// the burst structure of the read. Nanopore sequencing is notably
    /// prone to bursts of five or more consecutive corrupted bases.
    ///
    /// ```
    /// use dnasim_core::{Base, EditOp, EditScript};
    /// let script = EditScript::from_ops(vec![
    ///     EditOp::Delete(Base::A),
    ///     EditOp::Subst { orig: Base::C, new: Base::G },
    ///     EditOp::Equal(Base::G),
    ///     EditOp::Insert(Base::T),
    /// ]);
    /// assert_eq!(script.error_run_lengths(), vec![2, 1]);
    /// ```
    pub fn error_run_lengths(&self) -> Vec<usize> {
        let mut runs = Vec::new();
        let mut run = 0usize;
        for &op in &self.ops {
            if op.is_error() {
                run += 1;
            } else if run > 0 {
                runs.push(run);
                run = 0;
            }
        }
        if run > 0 {
            runs.push(run);
        }
        runs
    }

    /// Iterates over the operations.
    pub fn iter(&self) -> std::slice::Iter<'_, EditOp> {
        self.ops.iter()
    }
}

impl FromIterator<EditOp> for EditScript {
    fn from_iter<I: IntoIterator<Item = EditOp>>(iter: I) -> EditScript {
        EditScript {
            ops: iter.into_iter().collect(),
        }
    }
}

impl<'a> IntoIterator for &'a EditScript {
    type Item = &'a EditOp;
    type IntoIter = std::slice::Iter<'a, EditOp>;

    fn into_iter(self) -> Self::IntoIter {
        self.ops.iter()
    }
}

/// Where an [`EditScript::apply`] mismatch occurred.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mismatch {
    /// The op named a base different from the reference base.
    BaseMismatch {
        /// Base the script expected at this reference position.
        expected: Base,
        /// Base actually present in the reference.
        actual: Base,
    },
    /// The script consumed more reference bases than exist.
    PastEnd,
    /// The script ended before consuming the whole reference.
    Underconsumed {
        /// Length of the reference strand.
        reference_len: usize,
    },
}

/// Error returned when applying an [`EditScript`] to a reference it does not
/// describe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ApplyScriptError {
    /// Index of the offending operation within the script.
    pub op_index: usize,
    /// Reference position at the time of the mismatch.
    pub reference_pos: usize,
    /// What went wrong.
    pub mismatch: Mismatch,
}

impl fmt::Display for ApplyScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.mismatch {
            Mismatch::BaseMismatch { expected, actual } => write!(
                f,
                "edit script op {} expected base {} at reference position {}, found {}",
                self.op_index, expected, self.reference_pos, actual
            ),
            Mismatch::PastEnd => write!(
                f,
                "edit script op {} consumes past the end of the reference (position {})",
                self.op_index, self.reference_pos
            ),
            Mismatch::Underconsumed { reference_len } => write!(
                f,
                "edit script consumed only {} of {} reference bases",
                self.reference_pos, reference_len
            ),
        }
    }
}

impl std::error::Error for ApplyScriptError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn strand(s: &str) -> Strand {
        s.parse().unwrap()
    }

    #[test]
    fn identity_script_reproduces_reference() {
        let r = strand("ACGT");
        let script: EditScript = r.iter().map(EditOp::Equal).collect();
        assert_eq!(script.apply(&r).unwrap(), r);
        assert_eq!(script.error_count(), 0);
    }

    #[test]
    fn substitution_script() {
        let r = strand("AG");
        let script = EditScript::from_ops(vec![
            EditOp::Equal(Base::A),
            EditOp::Subst {
                orig: Base::G,
                new: Base::C,
            },
        ]);
        assert_eq!(script.apply(&r).unwrap(), strand("AC"));
        assert_eq!(script.error_kind_counts(), [1, 0, 0]);
    }

    #[test]
    fn insertion_before_and_after() {
        let r = strand("A");
        let script = EditScript::from_ops(vec![
            EditOp::Insert(Base::T),
            EditOp::Equal(Base::A),
            EditOp::Insert(Base::G),
        ]);
        assert_eq!(script.apply(&r).unwrap(), strand("TAG"));
        assert_eq!(script.error_kind_counts(), [0, 0, 2]);
    }

    #[test]
    fn apply_rejects_wrong_base() {
        let r = strand("AC");
        let script = EditScript::from_ops(vec![EditOp::Equal(Base::C), EditOp::Equal(Base::C)]);
        let err = script.apply(&r).unwrap_err();
        assert_eq!(err.op_index, 0);
        assert!(matches!(err.mismatch, Mismatch::BaseMismatch { .. }));
    }

    #[test]
    fn apply_rejects_overconsumption() {
        let r = strand("A");
        let script = EditScript::from_ops(vec![EditOp::Equal(Base::A), EditOp::Delete(Base::A)]);
        let err = script.apply(&r).unwrap_err();
        assert!(matches!(err.mismatch, Mismatch::PastEnd));
    }

    #[test]
    fn apply_rejects_underconsumption() {
        let r = strand("AC");
        let script = EditScript::from_ops(vec![EditOp::Equal(Base::A)]);
        let err = script.apply(&r).unwrap_err();
        assert!(matches!(err.mismatch, Mismatch::Underconsumed { .. }));
        assert!(err.to_string().contains("1 of 2"));
    }

    #[test]
    fn positioned_errors_attribute_positions() {
        // ref: A G C G  → read: A G G (delete C at position 2)
        let script = EditScript::from_ops(vec![
            EditOp::Equal(Base::A),
            EditOp::Equal(Base::G),
            EditOp::Delete(Base::C),
            EditOp::Equal(Base::G),
        ]);
        assert_eq!(
            script.positioned_errors(),
            vec![(2, EditOp::Delete(Base::C))]
        );
    }

    #[test]
    fn insertion_position_is_next_reference_base() {
        let script = EditScript::from_ops(vec![
            EditOp::Equal(Base::A),
            EditOp::Insert(Base::T),
            EditOp::Equal(Base::C),
        ]);
        assert_eq!(
            script.positioned_errors(),
            vec![(1, EditOp::Insert(Base::T))]
        );
    }

    #[test]
    fn deletion_runs() {
        let script = EditScript::from_ops(vec![
            EditOp::Delete(Base::A),
            EditOp::Delete(Base::A),
            EditOp::Delete(Base::A),
            EditOp::Equal(Base::C),
            EditOp::Delete(Base::G),
        ]);
        assert_eq!(script.deletion_run_lengths(), vec![3, 1]);
    }

    #[test]
    fn op_advances() {
        assert_eq!(EditOp::Equal(Base::A).reference_advance(), 1);
        assert_eq!(EditOp::Insert(Base::A).reference_advance(), 0);
        assert_eq!(EditOp::Delete(Base::A).read_advance(), 0);
        assert_eq!(
            EditOp::Subst {
                orig: Base::A,
                new: Base::C
            }
            .read_advance(),
            1
        );
    }

    #[test]
    fn op_display() {
        assert_eq!(EditOp::Equal(Base::A).to_string(), "=A");
        assert_eq!(EditOp::Delete(Base::G).to_string(), "-G");
        assert_eq!(EditOp::Insert(Base::T).to_string(), "+T");
        assert_eq!(
            EditOp::Subst {
                orig: Base::A,
                new: Base::T
            }
            .to_string(),
            "A>T"
        );
    }

    #[test]
    fn kind_indices_are_stable() {
        assert_eq!(ErrorKind::Substitution.index(), 0);
        assert_eq!(ErrorKind::Deletion.index(), 1);
        assert_eq!(ErrorKind::Insertion.index(), 2);
        for (i, k) in ErrorKind::ALL.into_iter().enumerate() {
            assert_eq!(k.index(), i);
        }
    }
}
