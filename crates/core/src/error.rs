//! The workspace-level error taxonomy.
//!
//! Every crate in the workspace reports failures through its own precise
//! error type (parse errors with line numbers, RS parameter errors, layout
//! errors, …). [`DnasimError`] is the common denominator those types
//! convert *into* at the boundaries where callers compose several
//! subsystems — the CLI, the archival pipeline, the fault-injection
//! harness — so that "no panic anywhere" can be stated as "every failure
//! is a `DnasimError` or a quarantined cluster".
//!
//! The taxonomy follows the failure domains of the write→store→read
//! pipeline rather than the crate graph: a caller catching
//! [`DnasimError::Parse`] does not care whether the malformed line came
//! from a cluster file or a learned-model file.

use std::fmt;
use std::io;

/// Workspace-wide error taxonomy for the dnasim pipeline.
///
/// Downstream crates implement `From<TheirError> for DnasimError` so any
/// stage's failure can be propagated with `?` through code that composes
/// stages. The variants partition failures by *domain*:
///
/// | variant | domain |
/// |---|---|
/// | [`Io`](DnasimError::Io) | the operating system / stream layer |
/// | [`Parse`](DnasimError::Parse) | malformed persisted artifacts (cluster files, model files) |
/// | [`Config`](DnasimError::Config) | degenerate or out-of-range configuration |
/// | [`Codec`](DnasimError::Codec) | encode/decode failures inside a strand |
/// | [`Degraded`](DnasimError::Degraded) | losses beyond the redundancy budget |
/// | [`DeadlineExceeded`](DnasimError::DeadlineExceeded) | a deterministic work budget ran out |
#[derive(Debug)]
#[non_exhaustive]
pub enum DnasimError {
    /// An underlying I/O failure (file missing, stream truncated mid-read).
    Io(io::Error),
    /// A persisted artifact failed to parse.
    Parse {
        /// What was being parsed (`"cluster file"`, `"learned model"`, …).
        artifact: &'static str,
        /// 1-based line number of the failure (0 when unlocatable).
        line: usize,
        /// Human-readable description of the defect.
        message: String,
    },
    /// A configuration value is degenerate or out of range.
    Config {
        /// The offending field or parameter (`"rs(n, k)"`, `"probability"`, …).
        field: String,
        /// Why the value was rejected.
        message: String,
    },
    /// A codec-layer failure: a strand or codeword that cannot be decoded.
    Codec {
        /// Description of the failure.
        message: String,
    },
    /// Losses exceeded the redundancy budget; the payload is not fully
    /// recoverable. Carries the accounting so callers can report partial
    /// results instead of aborting.
    Degraded {
        /// Strand slots still missing after every recovery attempt.
        missing: usize,
        /// Total slots the redundancy layer could have absorbed.
        budget: usize,
    },
    /// A deterministic work budget ran out (or its cancellation token was
    /// raised) before the stage finished. Work units are logical — clusters
    /// pumped, decode windows attempted — never wall-clock, so the same
    /// request exhausts at the same point on any machine (DESIGN.md §13).
    DeadlineExceeded {
        /// Work units consumed when the deadline tripped.
        spent: u64,
        /// The configured budget (collapses to `spent` on cancellation).
        limit: u64,
        /// The stage whose checkpoint detected exhaustion.
        stage: &'static str,
    },
}

impl DnasimError {
    /// Convenience constructor for [`DnasimError::Config`].
    pub fn config(field: impl Into<String>, message: impl Into<String>) -> DnasimError {
        DnasimError::Config {
            field: field.into(),
            message: message.into(),
        }
    }

    /// Convenience constructor for [`DnasimError::Codec`].
    pub fn codec(message: impl Into<String>) -> DnasimError {
        DnasimError::Codec {
            message: message.into(),
        }
    }

    /// Convenience constructor for [`DnasimError::Parse`].
    pub fn parse(artifact: &'static str, line: usize, message: impl Into<String>) -> DnasimError {
        DnasimError::Parse {
            artifact,
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for DnasimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DnasimError::Io(e) => write!(f, "i/o error: {e}"),
            DnasimError::Parse {
                artifact,
                line,
                message,
            } => {
                if *line > 0 {
                    write!(f, "{artifact}: line {line}: {message}")
                } else {
                    write!(f, "{artifact}: {message}")
                }
            }
            DnasimError::Config { field, message } => {
                write!(f, "invalid configuration {field}: {message}")
            }
            DnasimError::Codec { message } => write!(f, "codec error: {message}"),
            DnasimError::Degraded { missing, budget } => write!(
                f,
                "degradation budget exceeded: {missing} strand(s) unrecoverable \
                 (redundancy budget {budget})"
            ),
            DnasimError::DeadlineExceeded { spent, limit, stage } => write!(
                f,
                "deadline exceeded in stage {stage}: spent {spent} of {limit} work unit(s)"
            ),
        }
    }
}

impl std::error::Error for DnasimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DnasimError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for DnasimError {
    fn from(e: io::Error) -> DnasimError {
        DnasimError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_all_variants() {
        let cases: Vec<(DnasimError, &str)> = vec![
            (
                DnasimError::Io(io::Error::new(io::ErrorKind::UnexpectedEof, "cut short")),
                "i/o error",
            ),
            (DnasimError::parse("cluster file", 3, "bad base"), "line 3"),
            (DnasimError::parse("learned model", 0, "empty"), "learned model"),
            (DnasimError::config("rs(n, k)", "k >= n"), "rs(n, k)"),
            (DnasimError::codec("too many errors"), "codec error"),
            (
                DnasimError::Degraded {
                    missing: 3,
                    budget: 2,
                },
                "budget exceeded",
            ),
            (
                DnasimError::DeadlineExceeded {
                    spent: 64,
                    limit: 64,
                    stage: "pump",
                },
                "deadline exceeded in stage pump",
            ),
        ];
        for (err, needle) in cases {
            let text = err.to_string();
            assert!(text.contains(needle), "{text:?} missing {needle:?}");
        }
    }

    #[test]
    fn io_errors_convert_and_expose_source() {
        let err: DnasimError =
            io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert!(std::error::Error::source(&err).is_some());
    }
}
