//! Aggregates the JSONL emitted by the bench harness (`DNASIM_BENCH_JSON`)
//! into a single machine-readable report (`BENCH_004.json`) and validates
//! committed reports.
//!
//! Subcommands:
//!
//! * `assemble --mode full|fast --out FILE [--bench-id ID] [--min-speedup R]
//!   [--baseline ID] [--contender ID] group=path...`
//!   — read one JSONL file per named group, write the combined report
//!   (tagged `--bench-id`, default `BENCH_004`). The report records its
//!   own group names under `"required"`, which is what `check` later
//!   enforces. With `--min-speedup`, fail unless the baseline-over-
//!   contender median ratio reaches `R`; the pair defaults to the kernel
//!   gate (`levenshtein/full/110` over `myers/distance/110`) and is
//!   overridden per report — BENCH_007 gates `parse/text/512` over
//!   `parse/binary-prefetch/512`. The gate only makes sense on real
//!   timings, so fast-mode runs skip it.
//! * `check FILE` — parse a report and require every group its
//!   `"required"` array names to be present and non-empty (legacy
//!   reports without the array fall back to `kernel`/`clustering`/
//!   `pipeline`).
//!
//! No external JSON crate exists in this hermetic workspace, so a minimal
//! recursive-descent parser lives here; the schema it must accept is only
//! what the harness and `assemble` themselves produce.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::process::ExitCode;

const BASELINE_ID: &str = "levenshtein/full/110";
const CONTENDER_ID: &str = "myers/distance/110";
const REQUIRED_GROUPS: [&str; 3] = ["kernel", "clustering", "pipeline"];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("assemble") => assemble(&args[1..]),
        Some("check") => check(&args[1..]),
        _ => Err("usage: benchreport assemble|check ...".to_owned()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("benchreport: {message}");
            ExitCode::FAILURE
        }
    }
}

/// One benchmark record, as emitted by the harness.
#[derive(Debug, Clone)]
struct Record {
    id: String,
    median_ns: f64,
    mad_ns: f64,
    min_ns: f64,
    max_ns: f64,
    samples: f64,
    iters_per_sample: f64,
}

impl Record {
    fn from_value(value: &Json) -> Result<Record, String> {
        let obj = value.as_object().ok_or("record is not an object")?;
        let num = |key: &str| -> Result<f64, String> {
            obj.get(key)
                .and_then(Json::as_number)
                .ok_or_else(|| format!("record missing numeric field {key:?}"))
        };
        Ok(Record {
            id: obj
                .get("id")
                .and_then(Json::as_string)
                .ok_or("record missing string field \"id\"")?
                .to_owned(),
            median_ns: num("median_ns")?,
            mad_ns: num("mad_ns")?,
            min_ns: num("min_ns")?,
            max_ns: num("max_ns")?,
            samples: num("samples")?,
            iters_per_sample: num("iters_per_sample")?,
        })
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"id\":\"{}\",\"median_ns\":{:.1},\"mad_ns\":{:.1},\"min_ns\":{:.1},\"max_ns\":{:.1},\"samples\":{},\"iters_per_sample\":{}}}",
            escape(&self.id),
            self.median_ns,
            self.mad_ns,
            self.min_ns,
            self.max_ns,
            self.samples as u64,
            self.iters_per_sample as u64,
        )
    }
}

fn assemble(args: &[String]) -> Result<(), String> {
    let mut mode = String::from("full");
    let mut out: Option<String> = None;
    let mut bench_id = String::from("BENCH_004");
    let mut min_speedup: Option<f64> = None;
    let mut baseline = BASELINE_ID.to_owned();
    let mut contender = CONTENDER_ID.to_owned();
    let mut groups: Vec<(String, String)> = Vec::new(); // (name, jsonl path)
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--mode" => mode = it.next().ok_or("--mode needs a value")?.clone(),
            "--out" => out = Some(it.next().ok_or("--out needs a value")?.clone()),
            "--bench-id" => bench_id = it.next().ok_or("--bench-id needs a value")?.clone(),
            "--baseline" => baseline = it.next().ok_or("--baseline needs a value")?.clone(),
            "--contender" => contender = it.next().ok_or("--contender needs a value")?.clone(),
            "--min-speedup" => {
                let raw = it.next().ok_or("--min-speedup needs a value")?;
                min_speedup = Some(
                    raw.parse()
                        .map_err(|_| format!("bad --min-speedup value {raw:?}"))?,
                );
            }
            other => {
                let (name, path) = other
                    .split_once('=')
                    .ok_or_else(|| format!("expected group=path, got {other:?}"))?;
                groups.push((name.to_owned(), path.to_owned()));
            }
        }
    }
    let out = out.ok_or("assemble requires --out FILE")?;
    if !matches!(mode.as_str(), "full" | "fast") {
        return Err(format!("--mode must be full or fast, got {mode:?}"));
    }
    if groups.is_empty() {
        return Err("assemble requires at least one group=path argument".into());
    }

    let mut report = String::from("{\n");
    let _ = writeln!(report, "  \"schema\": \"dnasim-bench/v1\",");
    let _ = writeln!(report, "  \"bench_id\": \"{}\",", escape(&bench_id));
    let _ = writeln!(report, "  \"mode\": \"{mode}\",");
    let _ = writeln!(report, "  \"groups\": {{");
    let mut all: Vec<Record> = Vec::new();
    for (gi, (name, path)) in groups.iter().enumerate() {
        let records = read_jsonl(path)?;
        if records.is_empty() {
            return Err(format!("group {name:?} ({path}) has no benchmark records"));
        }
        let _ = writeln!(report, "    \"{}\": [", escape(name));
        for (ri, record) in records.iter().enumerate() {
            let comma = if ri + 1 < records.len() { "," } else { "" };
            let _ = writeln!(report, "      {}{comma}", record.to_json());
        }
        let comma = if gi + 1 < groups.len() { "," } else { "" };
        let _ = writeln!(report, "    ]{comma}");
        all.extend(records);
    }
    let _ = writeln!(report, "  }},");

    // The report names the groups it must keep: `check` enforces exactly
    // this list, so a report covering only `parse` validates on its own
    // terms instead of the legacy kernel trio.
    let required: Vec<String> = groups
        .iter()
        .map(|(name, _)| format!("\"{}\"", escape(name)))
        .collect();
    let _ = writeln!(report, "  \"required\": [{}],", required.join(", "));

    let find = |id: &str| all.iter().find(|r| r.id == id);
    match (find(&baseline), find(&contender)) {
        (Some(base), Some(cont)) if cont.median_ns > 0.0 => {
            let ratio = base.median_ns / cont.median_ns;
            let _ = writeln!(
                report,
                "  \"speedup\": {{\"baseline\": \"{}\", \"contender\": \"{}\", \"ratio\": {ratio:.2}}}",
                escape(&baseline),
                escape(&contender)
            );
            if let Some(min) = min_speedup {
                if mode == "full" && ratio < min {
                    return Err(format!(
                        "speedup {ratio:.2}x is below the required {min:.2}x \
                         ({baseline} {:.1} ns vs {contender} {:.1} ns)",
                        base.median_ns, cont.median_ns
                    ));
                }
            }
        }
        _ => {
            if min_speedup.is_some() && mode == "full" {
                return Err(format!(
                    "--min-speedup given but records {baseline:?} / {contender:?} are missing"
                ));
            }
            let _ = writeln!(report, "  \"speedup\": null");
        }
    }
    report.push_str("}\n");

    std::fs::write(&out, report).map_err(|e| format!("writing {out}: {e}"))?;
    println!("benchreport: wrote {out}");
    Ok(())
}

fn check(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("check requires a report path")?;
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let value = parse_json(&text).map_err(|e| format!("{path}: {e}"))?;
    let obj = value.as_object().ok_or("report root is not an object")?;
    let groups = obj
        .get("groups")
        .and_then(Json::as_object)
        .ok_or("report has no \"groups\" object")?;
    // Reports written since the `required` array exist name their own
    // contract; legacy reports fall back to the original trio.
    let required: Vec<String> = match obj.get("required").and_then(Json::as_array) {
        Some(names) => names
            .iter()
            .map(|n| {
                n.as_string()
                    .map(str::to_owned)
                    .ok_or("\"required\" entries must be strings".to_owned())
            })
            .collect::<Result<_, _>>()?,
        None => REQUIRED_GROUPS.iter().map(|s| (*s).to_owned()).collect(),
    };
    if required.is_empty() {
        return Err("\"required\" names no groups".into());
    }
    for name in &required {
        let records = groups
            .get(name)
            .and_then(Json::as_array)
            .ok_or_else(|| format!("report missing group {name:?}"))?;
        if records.is_empty() {
            return Err(format!("group {name:?} is empty"));
        }
        for record in records {
            Record::from_value(record).map_err(|e| format!("group {name:?}: {e}"))?;
        }
    }
    println!(
        "benchreport: {path} ok ({} groups, mode {})",
        groups.len(),
        obj.get("mode").and_then(Json::as_string).unwrap_or("?"),
    );
    Ok(())
}

fn read_jsonl(path: &str) -> Result<Vec<Record>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let mut records = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value = parse_json(line).map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        records.push(
            Record::from_value(&value).map_err(|e| format!("{path}:{}: {e}", lineno + 1))?,
        );
    }
    Ok(records)
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Minimal JSON parser (objects, arrays, strings, numbers, booleans, null).
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(BTreeMap<String, Json>),
}

impl Json {
    fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Object(map) => Some(map),
            _ => None,
        }
    }

    fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    fn as_string(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    fn as_number(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }
}

fn parse_json(text: &str) -> Result<Json, String> {
    let bytes: Vec<char> = text.chars().collect();
    let mut pos = 0usize;
    let value = parse_value(&bytes, &mut pos)?;
    skip_ws(&bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at offset {pos}"));
    }
    Ok(value)
}

fn skip_ws(chars: &[char], pos: &mut usize) {
    while chars.get(*pos).is_some_and(|c| c.is_whitespace()) {
        *pos += 1;
    }
}

fn parse_value(chars: &[char], pos: &mut usize) -> Result<Json, String> {
    skip_ws(chars, pos);
    match chars.get(*pos) {
        Some('{') => parse_object(chars, pos),
        Some('[') => parse_array(chars, pos),
        Some('"') => Ok(Json::String(parse_string(chars, pos)?)),
        Some('t') => parse_literal(chars, pos, "true", Json::Bool(true)),
        Some('f') => parse_literal(chars, pos, "false", Json::Bool(false)),
        Some('n') => parse_literal(chars, pos, "null", Json::Null),
        Some(c) if *c == '-' || c.is_ascii_digit() => parse_number(chars, pos),
        Some(c) => Err(format!("unexpected character {c:?} at offset {pos}", pos = *pos)),
        None => Err("unexpected end of input".to_owned()),
    }
}

fn parse_literal(
    chars: &[char],
    pos: &mut usize,
    word: &str,
    value: Json,
) -> Result<Json, String> {
    for expected in word.chars() {
        if chars.get(*pos) != Some(&expected) {
            return Err(format!("bad literal at offset {pos}", pos = *pos));
        }
        *pos += 1;
    }
    Ok(value)
}

fn parse_number(chars: &[char], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while chars
        .get(*pos)
        .is_some_and(|c| c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E'))
    {
        *pos += 1;
    }
    let raw: String = chars[start..*pos].iter().collect();
    raw.parse::<f64>()
        .map(Json::Number)
        .map_err(|_| format!("bad number {raw:?} at offset {start}"))
}

fn parse_string(chars: &[char], pos: &mut usize) -> Result<String, String> {
    if chars.get(*pos) != Some(&'"') {
        return Err(format!("expected string at offset {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match chars.get(*pos) {
            Some('"') => {
                *pos += 1;
                return Ok(out);
            }
            Some('\\') => {
                *pos += 1;
                match chars.get(*pos) {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some('r') => out.push('\r'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('u') => {
                        let hex: String = chars
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?
                            .iter()
                            .collect();
                        let code = u32::from_str_radix(&hex, 16)
                            .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(c) => {
                out.push(*c);
                *pos += 1;
            }
            None => return Err("unterminated string".to_owned()),
        }
    }
}

fn parse_array(chars: &[char], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(chars, pos);
    if chars.get(*pos) == Some(&']') {
        *pos += 1;
        return Ok(Json::Array(items));
    }
    loop {
        items.push(parse_value(chars, pos)?);
        skip_ws(chars, pos);
        match chars.get(*pos) {
            Some(',') => *pos += 1,
            Some(']') => {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            other => return Err(format!("expected , or ] in array, got {other:?}")),
        }
    }
}

fn parse_object(chars: &[char], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // consume '{'
    let mut map = BTreeMap::new();
    skip_ws(chars, pos);
    if chars.get(*pos) == Some(&'}') {
        *pos += 1;
        return Ok(Json::Object(map));
    }
    loop {
        skip_ws(chars, pos);
        let key = parse_string(chars, pos)?;
        skip_ws(chars, pos);
        if chars.get(*pos) != Some(&':') {
            return Err(format!("expected : after object key {key:?}"));
        }
        *pos += 1;
        let value = parse_value(chars, pos)?;
        map.insert(key, value);
        skip_ws(chars, pos);
        match chars.get(*pos) {
            Some(',') => *pos += 1,
            Some('}') => {
                *pos += 1;
                return Ok(Json::Object(map));
            }
            other => return Err(format!("expected , or }} in object, got {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_harness_line() {
        let line = "{\"id\":\"myers/distance/110\",\"median_ns\":42.5,\"mad_ns\":0.3,\"min_ns\":41.0,\"max_ns\":50.1,\"samples\":60,\"iters_per_sample\":1000}";
        let value = parse_json(line).unwrap();
        let record = Record::from_value(&value).unwrap();
        assert_eq!(record.id, "myers/distance/110");
        assert_eq!(record.median_ns, 42.5);
        assert_eq!(record.samples, 60.0);
    }

    #[test]
    fn parser_round_trips_nested_structures() {
        let value =
            parse_json("{\"a\": [1, 2.5, \"x\\n\"], \"b\": {\"c\": true, \"d\": null}}").unwrap();
        let a = value.as_object().unwrap().get("a").unwrap();
        assert_eq!(a.as_array().unwrap().len(), 3);
        assert_eq!(
            a.as_array().unwrap()[2].as_string(),
            Some("x\n")
        );
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_json("{\"a\":").is_err());
        assert!(parse_json("[1, 2,]").is_err());
        assert!(parse_json("{} trailing").is_err());
    }

    #[test]
    fn record_json_round_trips() {
        let record = Record {
            id: "kernel/x/110".to_owned(),
            median_ns: 12.0,
            mad_ns: 1.0,
            min_ns: 11.0,
            max_ns: 14.0,
            samples: 60.0,
            iters_per_sample: 100.0,
        };
        let parsed = Record::from_value(&parse_json(&record.to_json()).unwrap()).unwrap();
        assert_eq!(parsed.id, record.id);
        assert_eq!(parsed.median_ns, record.median_ns);
    }
}
