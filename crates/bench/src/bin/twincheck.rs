//! Quick aggregate-rate check for the twin channel.
use dnasim_dataset::NanoporeTwinConfig;
use dnasim_metrics::levenshtein;

fn main() {
    let ds = NanoporeTwinConfig::small().generate();
    let (mut errors, mut bases) = (0usize, 0usize);
    for c in ds.iter() {
        for r in c.reads() {
            errors += levenshtein(c.reference().as_bases(), r.as_bases());
            bases += c.reference().len();
        }
    }
    println!("measured aggregate: {:.4} over {} reads", errors as f64 / bases as f64, ds.total_reads());
}
