//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run -p dnasim-bench --release --bin repro -- <experiment> [--full] [--coverage N] [--csv DIR]
//! ```
//!
//! With `--csv DIR`, the numeric series behind Fig. 3.2, Fig. 3.3 and the
//! §3.4.1 sensitivity grid are additionally written as CSV files for
//! external plotting.
//!
//! Experiments: `table-1.1 table-2.1 table-2.2 table-3.1 table-3.2 fig-3.2
//! fig-3.3 fig-3.4 fig-3.5 fig-3.6 fig-3.7 fig-3.8 fig-3.9 fig-3.10
//! sens-3.4.1 appendix-c ext-twoway ext-layers robustness all`.
//!
//! By default a reduced twin dataset (300 clusters) keeps every experiment
//! in seconds; `--full` switches to the paper-scale 10,000-cluster twin.

use std::process::ExitCode;

use dnasim_bench::{render_profile, render_profile_pair, render_second_order};
use dnasim_channel::SimulatorLayer;
use dnasim_core::tech::SURVEY;
use dnasim_dataset::NanoporeTwinConfig;
use dnasim_pipeline::Experiments;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let experiment = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".to_owned());
    let full = args.iter().any(|a| a == "--full");
    let coverage = args
        .iter()
        .position(|a| a == "--coverage")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(5);
    let csv_dir = args
        .iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let config = if full {
        NanoporeTwinConfig::default()
    } else {
        NanoporeTwinConfig::small()
    };

    // Table 1.1 needs no dataset.
    if experiment == "table-1.1" {
        table_1_1();
        return ExitCode::SUCCESS;
    }

    eprintln!(
        "# generating twin ({} clusters) and learning the channel model...",
        config.cluster_count
    );
    let exp = Experiments::new(&config);
    eprintln!(
        "# twin: {} reads, mean coverage {:.2}, learned aggregate error {:.4}",
        exp.twin().total_reads(),
        exp.twin().mean_coverage(),
        exp.learned().aggregate_error_rate
    );
    let gen = exp.generation_stats();
    eprintln!(
        "# twin stream: {} window(s), peak {} cluster(s) / {} read(s) resident",
        gen.batches, gen.high_watermark, gen.peak_resident_reads
    );

    let known = run(&exp, &experiment, coverage, csv_dir.as_deref());
    if !known {
        eprintln!("unknown experiment '{experiment}'");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Runs one experiment (or `all`). Returns false for unknown ids.
fn run(exp: &Experiments, experiment: &str, coverage: usize, csv_dir: Option<&str>) -> bool {
    match experiment {
        "all" => {
            table_1_1();
            for id in [
                "table-2.1",
                "table-2.2",
                "table-3.1",
                "table-3.2",
                "fig-3.2",
                "fig-3.3",
                "fig-3.4",
                "fig-3.5",
                "fig-3.6",
                "fig-3.7",
                "fig-3.8",
                "fig-3.9",
                "fig-3.10",
                "sens-3.4.1",
                "appendix-c",
                "ext-twoway",
                "ext-layers",
                "fidelity",
                "robustness",
            ] {
                eprintln!("# running {id}");
                run(exp, id, coverage, csv_dir);
            }
        }
        "table-2.1" => println!("{}", exp.table_2_1()),
        "table-2.2" => println!("{}", exp.table_2_2()),
        "table-3.1" => println!("{}", exp.ablation_table(5)),
        "table-3.2" => println!("{}", exp.ablation_table(6)),
        "fig-3.2" => {
            let (h, g) = exp.fig_3_2();
            println!(
                "{}",
                render_profile_pair("Fig 3.2: Nanopore noise before reconstruction", &h, &g)
            );
            if let Some(dir) = csv_dir {
                write_csv(
                    dir,
                    "fig-3.2.csv",
                    "position,hamming_rate,gestalt_rate",
                    h.rates()
                        .iter()
                        .zip(g.rates())
                        .enumerate()
                        .map(|(i, (hr, gr))| format!("{i},{hr},{gr}")),
                );
            }
        }
        "fig-3.3" => {
            println!("Fig 3.3: Iterative accuracy at N = 1..10");
            println!("{:>3} {:>10} {:>10}", "N", "strand %", "char %");
            let sweep = exp.coverage_sweep(10);
            for (n, cell) in &sweep {
                println!("{n:>3} {:>10.2} {:>10.2}", cell.per_strand, cell.per_char);
            }
            if let Some(dir) = csv_dir {
                write_csv(
                    dir,
                    "fig-3.3.csv",
                    "coverage,per_strand,per_char",
                    sweep
                        .iter()
                        .map(|(n, c)| format!("{n},{},{}", c.per_strand, c.per_char)),
                );
            }
        }
        "fig-3.4" => {
            for (name, h, g) in exp.post_profiles_real(coverage) {
                println!(
                    "{}",
                    render_profile_pair(
                        &format!("Fig 3.4: post-reconstruction, Nanopore, {name}, N={coverage}"),
                        &h,
                        &g
                    )
                );
            }
        }
        "fig-3.5" => {
            for (name, h, g) in exp.post_profiles_simulated(SimulatorLayer::SpatialSkew, coverage)
            {
                println!(
                    "{}",
                    render_profile_pair(
                        &format!(
                            "Fig 3.5: post-reconstruction, simulated + skew, {name}, N={coverage}"
                        ),
                        &h,
                        &g
                    )
                );
            }
        }
        "fig-3.6" => {
            println!("Fig 3.6: second-order errors in Nanopore data before reconstruction");
            println!("{}", render_second_order(&exp.second_order_analysis(10)));
        }
        "fig-3.7" => {
            for (name, h, g) in exp.uniform_profiles(0.15, coverage) {
                println!(
                    "{}",
                    render_profile_pair(
                        &format!("Fig 3.7: p=0.15 uniform, {name}, N={coverage}"),
                        &h,
                        &g
                    )
                );
            }
        }
        "fig-3.8" => {
            for n in [5usize, 6, 10] {
                for (name, _, g) in exp.uniform_profiles(0.15, n) {
                    if name == "bma" {
                        println!(
                            "{}",
                            render_profile(
                                &format!("Fig 3.8: gestalt-aligned BMA errors, p=0.15, N={n}"),
                                &g
                            )
                        );
                    }
                }
            }
        }
        "fig-3.9" => {
            println!("Fig 3.9: pre-reconstruction spatial distributions at p̄=0.15");
            for (name, profile) in exp.shaped_pre_profiles(0.15) {
                println!("{}", render_profile(&format!("{name} distribution"), &profile));
            }
        }
        "fig-3.10" => {
            for (name, h, g, acc) in exp.shaped_bma_profiles(0.15, coverage) {
                println!(
                    "{}",
                    render_profile_pair(
                        &format!(
                            "Fig 3.10: BMA on {name} data, N={coverage} \
                             (strand {:.2}%, char {:.2}%)",
                            acc.per_strand, acc.per_char
                        ),
                        &h,
                        &g
                    )
                );
            }
        }
        "sens-3.4.1" => {
            println!("§3.4.1 sensitivity grid (uniform spatial distribution)");
            println!(
                "{:>6} {:>4} | {:>9} {:>9} | {:>9} {:>9} | {:>10}",
                "p", "N", "bma str%", "bma chr%", "iter str%", "iter chr%", "iter del-share"
            );
            let grid = exp.sensitivity_grid(&[0.03, 0.06, 0.09, 0.12, 0.15], &[5, 6, 10]);
            if let Some(dir) = csv_dir {
                write_csv(
                    dir,
                    "sens-3.4.1.csv",
                    "error_rate,coverage,bma_strand,bma_char,iter_strand,iter_char,iter_del_share",
                    grid.iter().map(|p| {
                        format!(
                            "{},{},{},{},{},{},{}",
                            p.error_rate,
                            p.coverage,
                            p.bma.per_strand,
                            p.bma.per_char,
                            p.iterative.per_strand,
                            p.iterative.per_char,
                            p.iterative_residual_deletion_share
                        )
                    }),
                );
            }
            for point in grid {
                println!(
                    "{:>6.2} {:>4} | {:>9.2} {:>9.2} | {:>9.2} {:>9.2} | {:>10.2}",
                    point.error_rate,
                    point.coverage,
                    point.bma.per_strand,
                    point.bma.per_char,
                    point.iterative.per_strand,
                    point.iterative.per_char,
                    point.iterative_residual_deletion_share,
                );
            }
        }
        "appendix-c" => {
            // The N=5 panels for every dataset of the ablation (Figs C.4–C.8).
            for (label, profiles) in [
                ("C.4 real Nanopore", exp.post_profiles_real(5)),
                (
                    "C.5 naive",
                    exp.post_profiles_simulated(SimulatorLayer::Naive, 5),
                ),
                (
                    "C.6 naive+cond+LD",
                    exp.post_profiles_simulated(SimulatorLayer::ConditionalLongDel, 5),
                ),
                (
                    "C.7 +skew",
                    exp.post_profiles_simulated(SimulatorLayer::SpatialSkew, 5),
                ),
                (
                    "C.8 +second-order",
                    exp.post_profiles_simulated(SimulatorLayer::SecondOrder, 5),
                ),
            ] {
                for (name, h, g) in profiles {
                    println!(
                        "{}",
                        render_profile_pair(&format!("Fig {label}, {name}, N=5"), &h, &g)
                    );
                }
            }
        }
        "ext-twoway" => {
            println!("{}", exp.two_way_comparison(coverage));
        }
        "ext-layers" => {
            println!("{}", exp.extensions_table(coverage));
        }
        "fidelity" => {
            println!("§3.1 closed-form fidelity distances vs real data (lower is better):");
            for (label, report) in exp.fidelity_by_layer() {
                println!("  {label:<20} {report}");
            }
        }
        "robustness" => {
            // §4.3: validate against a second, different high-error dataset.
            let mut config_a = NanoporeTwinConfig::small();
            let mut config_b = NanoporeTwinConfig::high_error_variant();
            config_b.cluster_count = config_a.cluster_count;
            config_b.erasure_count = config_a.erasure_count;
            if exp.twin().len() >= 10_000 {
                config_a = NanoporeTwinConfig::default();
                config_b = NanoporeTwinConfig::high_error_variant();
            }
            println!(
                "{}",
                dnasim_pipeline::cross_dataset_robustness(&config_a, &config_b, coverage)
            );
        }
        _ => return false,
    }
    true
}

/// Writes a CSV series under `dir` (best-effort; failures are reported to
/// stderr, never fatal to the experiment run).
fn write_csv<I: IntoIterator<Item = String>>(dir: &str, name: &str, header: &str, rows: I) {
    let path = std::path::Path::new(dir).join(name);
    let result = std::fs::create_dir_all(dir).and_then(|()| {
        let mut text = String::from(header);
        text.push('\n');
        for row in rows {
            text.push_str(&row);
            text.push('\n');
        }
        std::fs::write(&path, text)
    });
    match result {
        Ok(()) => eprintln!("# wrote {}", path.display()),
        Err(e) => eprintln!("# failed to write {}: {e}", path.display()),
    }
}

fn table_1_1() {
    println!("== Table 1.1: comparison of DNA sequencing technologies ==");
    println!(
        "{:<22} {:>18} {:>16} {:>18} {:>20}",
        "technology", "cost ($/Kb)", "error rate", "seq. length (bp)", "read speed (h/Kb)"
    );
    for tech in SURVEY {
        println!(
            "{:<22} {:>18} {:>16} {:>18} {:>20}",
            tech.name,
            format!("{:.0e}-{:.0e}", tech.cost_per_kb_usd.0, tech.cost_per_kb_usd.1),
            format!(
                "{:.3}%-{:.3}%",
                tech.error_rate.0 * 100.0,
                tech.error_rate.1 * 100.0
            ),
            format!(
                "{}-{}",
                tech.sequencing_length_bp.0, tech.sequencing_length_bp.1
            ),
            format!(
                "{:.0e}-{:.0e}",
                tech.read_speed_h_per_kb.0, tech.read_speed_h_per_kb.1
            ),
        );
    }
    println!();
}
