//! `calibrate` — algorithm-parameter sweeps on controlled channels.
//!
//! Used to tune reconstruction hyper-parameters (look-ahead windows,
//! refinement rounds) against the accuracy levels the paper reports for
//! its reference implementations.

use dnasim_channel::{CoverageModel, NaiveModel, Simulator};
use dnasim_core::rng::seeded;
use dnasim_core::Strand;
use dnasim_pipeline::evaluate_reconstruction;
use dnasim_reconstruct::{BmaLookahead, Iterative, OneWayBma, TraceReconstructor};

fn main() {
    let clusters = 400;
    let len = 110;
    let mut rng = seeded(0xCA11B);
    let references: Vec<Strand> = (0..clusters).map(|_| Strand::random(len, &mut rng)).collect();

    // The paper's "naive simulator" regime: 5.9% aggregate error, uniform.
    let model = NaiveModel::with_total_rate(0.059);
    for coverage in [5usize, 6] {
        let ds = Simulator::new(&model, CoverageModel::Fixed(coverage))
            .simulate(&references, &mut rng);
        println!("== uniform p=0.059, N={coverage} (paper: BMA 68/93, Iter 91/99 at N=5) ==");
        for w in [2usize, 3, 4, 5, 6] {
            let bma = BmaLookahead { lookahead: w };
            let r = evaluate_reconstruction(&ds, &bma);
            println!("  bma w={w}: {r}");
        }
        for w in [2usize, 3, 4] {
            for rounds in [2usize, 4, 8] {
                let it = Iterative {
                    lookahead: w,
                    max_rounds: rounds,
                };
                let r = evaluate_reconstruction(&ds, &it);
                println!("  iterative w={w} rounds={rounds}: {r}");
            }
        }
        let ow = OneWayBma { lookahead: 3 };
        println!("  one-way bma: {}", evaluate_reconstruction(&ds, &ow));
        let _ = ow.name();
    }
}
