//! Rendering helpers shared by the `repro` harness and the Criterion
//! benches.

use dnasim_core::EditOp;
use dnasim_metrics::PositionalProfile;

/// Renders a figure (a pair of positional profiles) as labelled ASCII
/// charts, the textual equivalent of the paper's Hamming / gestalt-aligned
/// panels.
pub fn render_profile_pair(
    title: &str,
    hamming: &PositionalProfile,
    gestalt: &PositionalProfile,
) -> String {
    let mut out = String::new();
    out.push_str(&format!("-- {title} --\n"));
    out.push_str(&format!(
        "Hamming errors ({} comparisons, {} errors):\n{}",
        hamming.comparisons(),
        hamming.total_errors(),
        hamming.ascii_chart(11)
    ));
    out.push_str(&format!(
        "Gestalt-aligned errors ({} errors):\n{}",
        gestalt.total_errors(),
        gestalt.ascii_chart(11)
    ));
    out
}

/// Renders a single positional profile.
pub fn render_profile(title: &str, profile: &PositionalProfile) -> String {
    format!(
        "-- {title} --\n({} comparisons, {} errors)\n{}",
        profile.comparisons(),
        profile.total_errors(),
        profile.ascii_chart(11)
    )
}

/// Renders the second-order error analysis (Fig. 3.6): each top error with
/// its positional concentration summarised by thirds of the strand.
pub fn render_second_order(entries: &[(EditOp, usize, Vec<usize>)]) -> String {
    let mut out = String::new();
    out.push_str("top second-order errors (count; positional thirds start/mid/end):\n");
    for (op, count, positional) in entries {
        let n = positional.len().max(1);
        let third = (n / 3).max(1);
        let sum = |range: std::ops::Range<usize>| -> usize {
            positional[range.start.min(n)..range.end.min(n)].iter().sum()
        };
        let (a, b, c) = (sum(0..third), sum(third..2 * third), sum(2 * third..n));
        out.push_str(&format!(
            "  {op:>5}: {count:>7}   [{a:>6} | {b:>6} | {c:>6}]\n"
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnasim_core::{Base, Strand};
    use dnasim_metrics::ProfileKind;

    #[test]
    fn render_profile_pair_includes_title_and_bars() {
        let mut h = PositionalProfile::new(ProfileKind::Hamming, 20);
        let mut g = PositionalProfile::new(ProfileKind::GestaltAligned, 20);
        let a: Strand = "AAAAAAAAAAAAAAAAAAAA".parse().unwrap();
        let b: Strand = "AAAAAAAAATAAAAAAAAAA".parse().unwrap();
        h.record(&a, &b);
        g.record(&a, &b);
        let text = render_profile_pair("Fig test", &h, &g);
        assert!(text.contains("Fig test"));
        assert!(text.contains("Hamming"));
        assert!(text.contains("Gestalt"));
        assert!(text.contains('#'));
    }

    #[test]
    fn render_second_order_shows_thirds() {
        let entries = vec![(
            EditOp::Insert(Base::A),
            42,
            vec![10, 0, 0, 0, 0, 0, 0, 0, 2],
        )];
        let text = render_second_order(&entries);
        assert!(text.contains("+A"));
        assert!(text.contains("42"));
        assert!(text.contains("10"));
    }
}
