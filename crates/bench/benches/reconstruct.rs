//! Reconstruction throughput: clusters reconstructed per second by each
//! algorithm at the paper's evaluation coverages.

use std::time::Duration;

use dnasim_testkit::bench::{BenchmarkId, Criterion};
use dnasim_testkit::{criterion_group, criterion_main};
use std::hint::black_box;

use dnasim_channel::{ErrorModel, NaiveModel};
use dnasim_core::rng::seeded;
use dnasim_core::Strand;
use dnasim_reconstruct::{
    BmaLookahead, DividerBma, Iterative, MajorityVote, MsaReconstructor, TraceReconstructor,
    TwoWayIterative, WeightedIterative,
};

fn cluster(coverage: usize, seed: u64) -> (Strand, Vec<Strand>) {
    let mut rng = seeded(seed);
    let reference = Strand::random(110, &mut rng);
    let model = NaiveModel::with_total_rate(0.059);
    let reads = (0..coverage)
        .map(|_| model.corrupt(&reference, &mut rng))
        .collect();
    (reference, reads)
}

fn bench_algorithms(c: &mut Criterion) {
    let algorithms: Vec<Box<dyn TraceReconstructor>> = vec![
        Box::new(MajorityVote),
        Box::new(BmaLookahead::default()),
        Box::new(DividerBma),
        Box::new(Iterative::default()),
        Box::new(TwoWayIterative::default()),
        Box::new(WeightedIterative::default()),
        Box::new(MsaReconstructor),
    ];
    let mut group = c.benchmark_group("reconstruct-110bp");
    for coverage in [5usize, 10, 26] {
        let (_, reads) = cluster(coverage, coverage as u64);
        for algo in &algorithms {
            group.bench_with_input(
                BenchmarkId::new(algo.name(), coverage),
                &coverage,
                |b, _| b.iter(|| algo.reconstruct(black_box(&reads), 110)),
            );
        }
    }
    group.finish();
}

/// DESIGN.md ablation: the Iterative scan's look-ahead window controls the
/// resync cost — time the algorithm across window widths.
fn bench_lookahead_ablation(c: &mut Criterion) {
    let (_, reads) = cluster(6, 99);
    let mut group = c.benchmark_group("iterative-lookahead");
    for w in [1usize, 2, 3, 4, 6] {
        let algo = Iterative {
            lookahead: w,
            max_rounds: 3,
        };
        group.bench_with_input(BenchmarkId::new("w", w), &w, |b, _| {
            b.iter(|| algo.reconstruct(black_box(&reads), 110))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(30)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_secs(1));
    targets = bench_algorithms, bench_lookahead_ablation
}
criterion_main!(benches);
