//! Codec throughput: Reed–Solomon, binary↔DNA transcoding, and strand
//! layout round trips.

use std::time::Duration;

use dnasim_testkit::bench::Criterion;
use dnasim_testkit::{criterion_group, criterion_main};
use std::hint::black_box;

use dnasim_codec::{OuterRsCode, ReedSolomon, RotationCodec, StrandLayout, TwoBitCodec, XorParity};
use dnasim_core::rng::seeded;
use dnasim_core::rng::RngExt;

fn bench_reed_solomon(c: &mut Criterion) {
    let rs = ReedSolomon::new(255, 223).unwrap();
    let mut rng = seeded(1);
    let data: Vec<u8> = (0..223).map(|_| rng.random()).collect();
    let clean = rs.encode(&data);
    c.bench_function("rs-255-223/encode", |b| {
        b.iter(|| rs.encode(black_box(&data)))
    });
    c.bench_function("rs-255-223/decode-clean", |b| {
        b.iter(|| {
            let mut cw = clean.clone();
            rs.decode(black_box(&mut cw)).unwrap().len()
        })
    });
    c.bench_function("rs-255-223/decode-8-errors", |b| {
        b.iter(|| {
            let mut cw = clean.clone();
            for p in [3usize, 50, 99, 120, 170, 200, 230, 250] {
                cw[p] ^= 0x5a;
            }
            rs.decode(black_box(&mut cw)).unwrap().len()
        })
    });
}

fn bench_transcoding(c: &mut Criterion) {
    let mut rng = seeded(2);
    let bytes: Vec<u8> = (0..256).map(|_| rng.random()).collect();
    let two_bit = TwoBitCodec.encode(&bytes);
    let rotation = RotationCodec.encode(&bytes);
    c.bench_function("two-bit/encode-256B", |b| {
        b.iter(|| TwoBitCodec.encode(black_box(&bytes)))
    });
    c.bench_function("two-bit/decode-256B", |b| {
        b.iter(|| TwoBitCodec.decode(black_box(&two_bit)).unwrap())
    });
    c.bench_function("rotation/encode-256B", |b| {
        b.iter(|| RotationCodec.encode(black_box(&bytes)))
    });
    c.bench_function("rotation/decode-256B", |b| {
        b.iter(|| RotationCodec.decode(black_box(&rotation)).unwrap())
    });
}

fn bench_layout(c: &mut Criterion) {
    let mut rng = seeded(3);
    let layout = StrandLayout::new(32, 16, &mut rng).unwrap();
    let data: Vec<u8> = (0..1024).map(|_| rng.random()).collect();
    let strands = layout.encode_file(&data);
    c.bench_function("layout/encode-1KiB", |b| {
        b.iter(|| layout.encode_file(black_box(&data)))
    });
    c.bench_function("layout/decode-1KiB", |b| {
        b.iter(|| layout.decode_file(black_box(&strands)).unwrap().len())
    });
    let parity = XorParity::new(8);
    let chunks: Vec<Vec<u8>> = data.chunks(16).map(<[u8]>::to_vec).collect();
    c.bench_function("xor-parity/protect-64-chunks", |b| {
        b.iter(|| parity.protect(black_box(&chunks)).len())
    });
}

fn bench_outer_code(c: &mut Criterion) {
    let mut rng = seeded(4);
    let payloads: Vec<Vec<u8>> = (0..32)
        .map(|_| (0..16).map(|_| rng.random()).collect())
        .collect();
    let outer = OuterRsCode::new(6, 4).unwrap();
    let protected = outer.protect(&payloads);
    c.bench_function("outer-rs-6-4/protect-32", |b| {
        b.iter(|| outer.protect(black_box(&payloads)).len())
    });
    c.bench_function("outer-rs-6-4/recover-2-losses", |b| {
        b.iter(|| {
            let mut received: Vec<Option<Vec<u8>>> =
                protected.iter().cloned().map(Some).collect();
            received[0] = None;
            received[1] = None;
            outer.recover(black_box(&mut received)).unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(60)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_secs(1));
    targets = bench_reed_solomon, bench_transcoding, bench_layout, bench_outer_code
}
criterion_main!(benches);
