//! Cross-format parse throughput (DESIGN.md §14): the same 512-cluster
//! Nanopore twin decoded from the text format, from the binary format,
//! and from the binary format behind the double-buffered prefetch pump
//! (decode on a dedicated I/O worker, hand-off per batch). Record ids are
//! `parse/<codec>/512`; BENCH_007's acceptance gate requires
//! `parse/binary-prefetch/512` to beat `parse/text/512` by ≥2×.

use std::time::Duration;

use dnasim_testkit::bench::Criterion;
use dnasim_testkit::{criterion_group, criterion_main};
use std::hint::black_box;

use dnasim_core::{pump, pump_prefetch, NullSink};
use dnasim_dataset::{
    write_dataset, write_dataset_format, AnyDatasetReader, BinaryDatasetReader, DatasetReader,
    Format, NanoporeTwinConfig,
};

/// Clusters per benchmarked parse — matches the streaming suite so the
/// text numbers are comparable across reports.
const CLUSTERS: usize = 512;
/// Hand-off granularity; large enough that per-batch overhead amortises,
/// small enough that the prefetch worker genuinely overlaps the consumer.
const BATCH: usize = 64;

/// Renders the benchmark corpus once in both encodings.
fn corpus() -> (Vec<u8>, Vec<u8>) {
    let mut config = NanoporeTwinConfig::small();
    config.cluster_count = CLUSTERS;
    let twin = config.generate();
    let mut text = Vec::new();
    write_dataset(&twin, &mut text).expect("render text corpus");
    let mut binary = Vec::new();
    write_dataset_format(&twin, &mut binary, Format::Binary).expect("render binary corpus");
    (text, binary)
}

fn bench_parse(c: &mut Criterion) {
    let (text, binary) = corpus();
    c.bench_function(format!("parse/text/{CLUSTERS}"), |b| {
        b.iter(|| {
            let mut source = DatasetReader::new(black_box(&text[..]));
            let mut sink = NullSink::default();
            let window = pump(&mut source, &mut sink, BATCH, Ok).expect("parse text");
            assert_eq!(window.clusters, CLUSTERS);
            window.clusters
        })
    });
    c.bench_function(format!("parse/binary/{CLUSTERS}"), |b| {
        b.iter(|| {
            let mut source = BinaryDatasetReader::new(black_box(&binary[..]));
            let mut sink = NullSink::default();
            let window = pump(&mut source, &mut sink, BATCH, Ok).expect("parse binary");
            assert_eq!(window.clusters, CLUSTERS);
            window.clusters
        })
    });
    c.bench_function(format!("parse/binary-prefetch/{CLUSTERS}"), |b| {
        b.iter(|| {
            // The clone prices in handing the buffer to the worker thread;
            // it is charged against the contender, so the ≥2× gate is
            // conservative.
            let source = AnyDatasetReader::detect(std::io::Cursor::new(black_box(binary.clone())))
                .expect("detect binary");
            let mut sink = NullSink::default();
            let window =
                pump_prefetch(source, &mut sink, BATCH, Ok).expect("parse binary prefetch");
            assert_eq!(window.clusters, CLUSTERS);
            window.clusters
        })
    });
}

criterion_group! {
    name = benches;
    // Whole-corpus parses are single-digit milliseconds: a modest sample
    // budget keeps the suite CI-sized without starving the gate of data.
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(Duration::from_secs(5))
        .warm_up_time(Duration::from_secs(1));
    targets = bench_parse
}
criterion_main!(benches);
