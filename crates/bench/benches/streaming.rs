//! Streaming pipeline throughput (DESIGN.md §11): clusters/sec through the
//! bounded-memory source→batch→pool→sink path at window sizes 16, 256 and
//! 4096 clusters. Every iteration asserts the window high-watermark never
//! exceeds the batch size, so these benches double as a constant-memory
//! check under load. Record ids carry the batch size
//! (`streaming/<stage>/batch-N`); divide the dataset size below by the
//! median to get clusters/sec.

use std::time::Duration;

use dnasim_testkit::bench::Criterion;
use dnasim_testkit::{criterion_group, criterion_main};
use std::hint::black_box;

use dnasim_channel::{CoverageModel, KeoliyaModel, Simulator, SimulatorLayer};
use dnasim_core::rng::{seeded, SeedSequence};
use dnasim_core::NullSink;
use dnasim_dataset::{write_dataset, DatasetReader, NanoporeTwinConfig};
use dnasim_par::ThreadPool;
use dnasim_profile::{ErrorStats, LearnedModel, TieBreak};

/// Clusters per benchmarked run — larger than the biggest batch size so
/// the 16- and 256-cluster windows genuinely cycle.
const CLUSTERS: usize = 512;
const BATCH_SIZES: [usize; 3] = [16, 256, 4096];

fn twin_config() -> NanoporeTwinConfig {
    let mut config = NanoporeTwinConfig::small();
    config.cluster_count = CLUSTERS;
    config
}

fn bench_streaming_generate(c: &mut Criterion) {
    let config = twin_config();
    let pool = ThreadPool::from_env();
    for batch_size in BATCH_SIZES {
        c.bench_function(format!("streaming/generate/batch-{batch_size}"), |b| {
            b.iter(|| {
                let mut sink = NullSink::default();
                let window = config
                    .generate_stream(black_box(batch_size), &pool, &mut sink)
                    .expect("stream generation");
                assert!(window.high_watermark <= batch_size);
                window.clusters
            })
        });
    }
}

fn bench_streaming_resimulate(c: &mut Criterion) {
    // Pre-render the input once; each iteration re-reads it through the
    // text parser exactly as the CLI `simulate --stream` path does.
    let twin = twin_config().generate();
    let mut text = Vec::new();
    write_dataset(&twin, &mut text).expect("render twin");
    let mut rng = seeded(11);
    let stats = ErrorStats::from_dataset(&twin, TieBreak::Random, &mut rng);
    let simulator = Simulator::new(
        KeoliyaModel::new(
            LearnedModel::from_stats(&stats, 10),
            SimulatorLayer::SecondOrder,
        ),
        CoverageModel::Fixed(0),
    );
    let seq = SeedSequence::new(11);
    let pool = ThreadPool::from_env();
    for batch_size in BATCH_SIZES {
        c.bench_function(format!("streaming/resimulate/batch-{batch_size}"), |b| {
            b.iter(|| {
                let mut source = DatasetReader::new(black_box(&text[..]));
                let mut sink = NullSink::default();
                let window = simulator
                    .resimulate_stream(&mut source, &seq, batch_size, &pool, &mut sink)
                    .expect("stream resimulation");
                assert!(window.high_watermark <= batch_size);
                window.clusters
            })
        });
    }
}

fn bench_streaming_profile(c: &mut Criterion) {
    let twin = twin_config().generate();
    let mut text = Vec::new();
    write_dataset(&twin, &mut text).expect("render twin");
    for batch_size in BATCH_SIZES {
        c.bench_function(format!("streaming/profile/batch-{batch_size}"), |b| {
            b.iter(|| {
                let mut source = DatasetReader::new(black_box(&text[..]));
                let mut rng = seeded(3);
                let (stats, window) =
                    ErrorStats::from_source(&mut source, batch_size, TieBreak::Random, &mut rng)
                        .expect("stream profiling");
                assert!(window.high_watermark <= batch_size);
                stats.read_count()
            })
        });
    }
}

criterion_group! {
    name = benches;
    // Whole-dataset passes are tens of milliseconds: keep the sample budget
    // modest so the suite stays CI-sized.
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(5))
        .warm_up_time(Duration::from_secs(1));
    targets = bench_streaming_generate, bench_streaming_resimulate, bench_streaming_profile
}
criterion_main!(benches);
