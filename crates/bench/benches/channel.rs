//! Channel throughput: noisy reads generated per second by each simulator
//! model (the cost of generating one table row's dataset).

use std::time::Duration;

use dnasim_testkit::bench::Criterion;
use dnasim_testkit::{criterion_group, criterion_main};
use std::hint::black_box;

use dnasim_channel::{
    DnaSimulatorModel, ErrorModel, KeoliyaModel, NaiveModel, ParametricModel, SimulatorLayer,
    SpatialDistribution,
};
use dnasim_core::rng::seeded;
use dnasim_core::Strand;
use dnasim_dataset::{GroundTruthChannel, NanoporeTwinConfig};
use dnasim_profile::{ErrorStats, LearnedModel, TieBreak};

fn learned_model() -> LearnedModel {
    let mut config = NanoporeTwinConfig::small();
    config.cluster_count = 40;
    let twin = config.generate();
    let mut rng = seeded(11);
    let stats = ErrorStats::from_dataset(&twin, TieBreak::Random, &mut rng);
    LearnedModel::from_stats(&stats, 10)
}

fn bench_models(c: &mut Criterion) {
    let mut rng = seeded(1);
    let reference = Strand::random(110, &mut rng);
    let learned = learned_model();
    let mut group = c.benchmark_group("corrupt-110bp");
    let naive = NaiveModel::with_total_rate(0.059);
    group.bench_function("naive", |b| {
        let mut rng = seeded(2);
        b.iter(|| naive.corrupt(black_box(&reference), &mut rng))
    });
    let dnasim = DnaSimulatorModel::nanopore_default();
    group.bench_function("dnasimulator", |b| {
        let mut rng = seeded(3);
        b.iter(|| dnasim.corrupt(black_box(&reference), &mut rng))
    });
    for layer in SimulatorLayer::ALL {
        let model = KeoliyaModel::new(learned.clone(), layer);
        group.bench_function(format!("keoliya/{layer}"), |b| {
            let mut rng = seeded(4);
            b.iter(|| model.corrupt(black_box(&reference), &mut rng))
        });
    }
    let parametric = ParametricModel::new(0.15, SpatialDistribution::AShaped);
    group.bench_function("parametric-a-shape", |b| {
        let mut rng = seeded(5);
        b.iter(|| parametric.corrupt(black_box(&reference), &mut rng))
    });
    let twin = GroundTruthChannel::new(0.059, 110);
    group.bench_function("nanopore-twin", |b| {
        let mut rng = seeded(6);
        b.iter(|| twin.corrupt(black_box(&reference), &mut rng))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(60)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_secs(1));
    targets = bench_models
}
criterion_main!(benches);
