//! End-to-end pipeline throughput: the archival round trip, the §3.1
//! fidelity computation, and primer-addressed random access.

use std::time::Duration;

use dnasim_testkit::bench::Criterion;
use dnasim_testkit::{criterion_group, criterion_main};
use std::hint::black_box;

use dnasim_core::rng::seeded;
use dnasim_dataset::NanoporeTwinConfig;
use dnasim_pipeline::{
    archive_round_trip, simulator_fidelity, ArchiveConfig, FilePool, PoolConfig,
};

fn bench_archive(c: &mut Criterion) {
    let data: Vec<u8> = (0u8..=255).cycle().take(512).collect();
    c.bench_function("archive-round-trip/512B", |b| {
        b.iter(|| {
            let mut rng = seeded(1);
            archive_round_trip(black_box(&data), &ArchiveConfig::default(), &mut rng)
                .unwrap()
                .strands_written
        })
    });
}

fn bench_fidelity(c: &mut Criterion) {
    let mut config = NanoporeTwinConfig::small();
    config.cluster_count = 30;
    let real = config.generate();
    config.seed ^= 1;
    let other = config.generate();
    c.bench_function("fidelity/30-clusters", |b| {
        b.iter(|| {
            let mut rng = seeded(2);
            simulator_fidelity(black_box(&real), black_box(&other), &mut rng).total()
        })
    });
}

fn bench_random_access(c: &mut Criterion) {
    let mut rng = seeded(3);
    let mut pool = FilePool::new(PoolConfig::default());
    pool.store("target", (0u8..120).collect(), &mut rng).unwrap();
    pool.store("noise", vec![0x5A; 200], &mut rng).unwrap();
    c.bench_function("file-pool/retrieve-120B", |b| {
        b.iter(|| {
            let mut rng = seeded(4);
            pool.retrieve(black_box("target"), &mut rng).unwrap().len()
        })
    });
}

criterion_group! {
    name = benches;
    // End-to-end runs are hundreds of milliseconds each: keep the sample
    // budget small so the whole suite stays in CI territory.
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(8))
        .warm_up_time(Duration::from_secs(1));
    targets = bench_archive, bench_fidelity, bench_random_access
}
criterion_main!(benches);
