//! Profiler throughput: edit-script recovery and statistics accumulation
//! per (reference, read) pair — the cost of learning a channel model.

use std::time::Duration;

use dnasim_testkit::bench::Criterion;
use dnasim_testkit::{criterion_group, criterion_main};
use std::hint::black_box;

use dnasim_channel::{ErrorModel, NaiveModel};
use dnasim_core::rng::seeded;
use dnasim_core::Strand;
use dnasim_profile::{edit_script, ErrorStats, TieBreak};

fn bench_edit_script(c: &mut Criterion) {
    let mut rng = seeded(1);
    let reference = Strand::random(110, &mut rng);
    let read = NaiveModel::with_total_rate(0.059).corrupt(&reference, &mut rng);
    c.bench_function("edit-script/110bp", |b| {
        let mut rng = seeded(2);
        b.iter(|| {
            edit_script(
                black_box(&reference),
                black_box(&read),
                TieBreak::Random,
                &mut rng,
            )
        })
    });
}

fn bench_stats_recording(c: &mut Criterion) {
    let mut rng = seeded(3);
    let model = NaiveModel::with_total_rate(0.059);
    let pairs: Vec<(Strand, Strand)> = (0..64)
        .map(|_| {
            let r = Strand::random(110, &mut rng);
            let read = model.corrupt(&r, &mut rng);
            (r, read)
        })
        .collect();
    c.bench_function("error-stats/64-pairs", |b| {
        b.iter(|| {
            let mut stats = ErrorStats::new();
            let mut rng = seeded(4);
            for (reference, read) in &pairs {
                stats.record_pair(reference, read, TieBreak::Random, &mut rng);
            }
            black_box(stats.total_errors())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(40)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_secs(1));
    targets = bench_edit_script, bench_stats_recording
}
criterion_main!(benches);
