//! Thread-pool scaling: the same per-cluster fan-outs at 1, 2, 4, and all
//! available threads. The outputs are byte-identical across thread counts
//! (the differential suite asserts that); these benches measure what the
//! determinism contract buys in wall-clock.

use std::time::Duration;

use dnasim_testkit::bench::{BenchmarkId, Criterion};
use dnasim_testkit::{criterion_group, criterion_main};
use std::hint::black_box;

use dnasim_channel::{CoverageModel, NaiveModel, Simulator};
use dnasim_core::rng::{seeded, SeedSequence};
use dnasim_core::{Dataset, Strand};
use dnasim_par::ThreadPool;
use dnasim_reconstruct::{reconstruct_clusters, Iterative};

const STRAND_LEN: usize = 110;

fn thread_counts() -> Vec<usize> {
    let all = ThreadPool::default().threads();
    let mut counts = vec![1, 2, 4];
    if !counts.contains(&all) {
        counts.push(all);
    }
    counts.retain(|&t| t <= all.max(4));
    counts
}

fn bench_simulate(c: &mut Criterion) {
    let mut rng = seeded(11);
    let references: Vec<Strand> = (0..400)
        .map(|_| Strand::random(STRAND_LEN, &mut rng))
        .collect();
    let sim = Simulator::new(
        NaiveModel::with_total_rate(0.059),
        CoverageModel::negative_binomial(12.0, 2.5),
    );
    let seq = SeedSequence::new(42);
    let mut group = c.benchmark_group("par-simulate-400x110bp");
    for threads in thread_counts() {
        let pool = ThreadPool::new(threads);
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, _| {
            b.iter(|| sim.simulate_on(black_box(&references), &seq, &pool))
        });
    }
    group.finish();
}

fn bench_reconstruct(c: &mut Criterion) {
    let mut rng = seeded(13);
    let references: Vec<Strand> = (0..200)
        .map(|_| Strand::random(STRAND_LEN, &mut rng))
        .collect();
    let sim = Simulator::new(
        NaiveModel::with_total_rate(0.059),
        CoverageModel::Fixed(10),
    );
    let dataset: Dataset = sim.simulate(&references, &mut rng);
    let algo = Iterative::default();
    let mut group = c.benchmark_group("par-reconstruct-200x10cov");
    for threads in thread_counts() {
        let pool = ThreadPool::new(threads);
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, _| {
            b.iter(|| reconstruct_clusters(&algo, black_box(&dataset), STRAND_LEN, &pool))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_secs(1));
    targets = bench_simulate, bench_reconstruct
}
criterion_main!(benches);
