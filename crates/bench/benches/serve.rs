//! Serve-tier throughput (DESIGN.md §12): requests/sec through the
//! `dnasim serve` batch RPC loop at 1, 2 and 4 worker threads, over a
//! fixed mixed-op traffic batch. Record ids carry the worker count
//! (`serve/loop/threads-N`); divide the request count below by the median
//! to get requests/sec. The single-request `serve/execute/*` records
//! isolate per-op dispatch latency from the loop's admission machinery.

use std::time::Duration;

use dnasim_testkit::bench::Criterion;
use dnasim_testkit::{criterion_group, criterion_main};
use std::hint::black_box;

use dnasim_core::rng::{seeded, RngExt, SeedSequence};
use dnasim_par::ThreadPool;
use dnasim_serve::{execute, serve, Request, ServeConfig};

/// Requests per benchmarked serve session.
const REQUESTS: usize = 64;
const THREADS: [usize; 3] = [1, 2, 4];

/// A deterministic mixed-op traffic batch across four tenants — the same
/// op mix the soak harness uses, scaled to bench size.
fn traffic() -> String {
    let tenants = ["acme", "betalab", "cryogen", "deepsea"];
    let mut rng = seeded(0xBE_5E);
    let mut input = String::new();
    for i in 0..REQUESTS {
        let tenant = tenants[rng.random_range(0..tenants.len())];
        let line = match i % 4 {
            0 => format!(
                "{{\"tenant\":\"{tenant}\",\"request_id\":\"r{i}\",\"op\":\"generate\",\
                 \"clusters\":{},\"len\":32}}",
                rng.random_range(2..9usize)
            ),
            1 | 2 => format!(
                "{{\"tenant\":\"{tenant}\",\"request_id\":\"r{i}\",\"op\":\"corrupt\",\
                 \"count\":{},\"len\":32,\"reads\":3}}",
                rng.random_range(2..7usize)
            ),
            // Lenient archives: at this read depth a few round trips
            // degrade, which is fine for a throughput measurement.
            _ => format!(
                "{{\"tenant\":\"{tenant}\",\"request_id\":\"r{i}\",\"op\":\"archive\",\
                 \"bytes\":48,\"reads\":4,\"lenient\":true}}"
            ),
        };
        input.push_str(&line);
        input.push('\n');
    }
    input
}

fn bench_serve_loop(c: &mut Criterion) {
    let input = traffic();
    let config = ServeConfig {
        window: 16,
        batch_size: 64,
        ..ServeConfig::default()
    };
    for threads in THREADS {
        let pool = ThreadPool::new(threads);
        c.bench_function(format!("serve/loop/threads-{threads}"), |b| {
            b.iter(|| {
                let mut output = Vec::new();
                let report = serve(black_box(input.as_bytes()), &mut output, &config, &pool)
                    .expect("bench traffic serves cleanly");
                assert_eq!(report.requests, REQUESTS);
                assert_eq!(report.ok + report.degraded, REQUESTS);
                assert_eq!(report.errors + report.rejected, 0);
                output.len()
            })
        });
    }
}

fn bench_serve_execute(c: &mut Criterion) {
    let root = SeedSequence::new(0xBE_5E);
    let cases = [
        (
            "corrupt",
            "{\"tenant\":\"acme\",\"request_id\":\"r\",\"op\":\"corrupt\",\
             \"count\":4,\"len\":32,\"reads\":3}",
        ),
        (
            "generate",
            "{\"tenant\":\"acme\",\"request_id\":\"r\",\"op\":\"generate\",\
             \"clusters\":4,\"len\":32}",
        ),
        (
            "archive",
            "{\"tenant\":\"acme\",\"request_id\":\"r\",\"op\":\"archive\",\
             \"bytes\":48,\"reads\":4,\"lenient\":true}",
        ),
    ];
    for (name, line) in cases {
        let request = Request::parse(line, 1, 4096).expect("bench request parses");
        c.bench_function(format!("serve/execute/{name}"), |b| {
            b.iter(|| {
                let outcome = execute(black_box(&request), &root, 64);
                assert!(
                    outcome.line.contains("\"status\":\"ok\"")
                        || outcome.line.contains("\"status\":\"degraded\"")
                );
                outcome.line.len()
            })
        });
    }
}

criterion_group! {
    name = benches;
    // A full 64-request session is tens of milliseconds: keep the sample
    // budget modest so the suite stays CI-sized.
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(5))
        .warm_up_time(Duration::from_secs(1));
    targets = bench_serve_loop, bench_serve_execute
}
criterion_main!(benches);
