//! Microbenchmarks for the similarity metrics: Levenshtein (scalar full
//! and banded), the Myers bit-parallel kernels (plus strand packing),
//! Hamming, and gestalt pattern matching, across strand lengths.
//!
//! The `levenshtein` and `myers` groups run on identical strand pairs so
//! `benchreport` can compute the scalar-vs-kernel speedup directly.

use std::time::Duration;

use dnasim_testkit::bench::{BenchmarkId, Criterion};
use dnasim_testkit::{criterion_group, criterion_main};
use std::hint::black_box;

use dnasim_channel::{ErrorModel, NaiveModel};
use dnasim_core::rng::seeded;
use dnasim_core::{PackedStrand, Strand};
use dnasim_metrics::{
    gestalt_score, hamming, levenshtein, levenshtein_within, matching_blocks, myers, MyersScratch,
};

fn pair(len: usize, seed: u64) -> (Strand, Strand) {
    let mut rng = seeded(seed);
    let reference = Strand::random(len, &mut rng);
    let read = NaiveModel::with_total_rate(0.059).corrupt(&reference, &mut rng);
    (reference, read)
}

fn bench_levenshtein(c: &mut Criterion) {
    let mut group = c.benchmark_group("levenshtein");
    for len in [110usize, 220, 440] {
        let (a, b) = pair(len, 1);
        group.bench_with_input(BenchmarkId::new("full", len), &len, |bench, _| {
            bench.iter(|| levenshtein(black_box(a.as_bases()), black_box(b.as_bases())))
        });
        group.bench_with_input(BenchmarkId::new("banded-20", len), &len, |bench, _| {
            bench.iter(|| {
                levenshtein_within(black_box(a.as_bases()), black_box(b.as_bases()), 20)
            })
        });
    }
    group.finish();
}

fn bench_myers(c: &mut Criterion) {
    let mut group = c.benchmark_group("myers");
    for len in [110usize, 220, 440] {
        let (a, b) = pair(len, 1); // same pairs as the levenshtein group
        let (pa, pb) = (PackedStrand::from(&a), PackedStrand::from(&b));
        group.bench_with_input(BenchmarkId::new("distance", len), &len, |bench, _| {
            let mut scratch = MyersScratch::new();
            bench.iter(|| myers::distance_with(&mut scratch, black_box(&pa), black_box(&pb)))
        });
        group.bench_with_input(BenchmarkId::new("within-20", len), &len, |bench, _| {
            let mut scratch = MyersScratch::new();
            bench.iter(|| {
                myers::within_with(&mut scratch, black_box(&pa), black_box(&pb), 20)
            })
        });
    }
    let (a, _) = pair(110, 1);
    group.bench_with_input(BenchmarkId::new("pack", 110), &110usize, |bench, _| {
        bench.iter(|| PackedStrand::from(black_box(&a)))
    });
    group.finish();
}

fn bench_hamming(c: &mut Criterion) {
    let (a, b) = pair(110, 2);
    c.bench_function("hamming/110", |bench| {
        bench.iter(|| hamming(black_box(&a), black_box(&b)))
    });
}

fn bench_gestalt(c: &mut Criterion) {
    let mut group = c.benchmark_group("gestalt");
    for len in [110usize, 220] {
        let (a, b) = pair(len, 3);
        group.bench_with_input(BenchmarkId::new("score", len), &len, |bench, _| {
            bench.iter(|| gestalt_score(black_box(a.as_bases()), black_box(b.as_bases())))
        });
        group.bench_with_input(BenchmarkId::new("blocks", len), &len, |bench, _| {
            bench.iter(|| matching_blocks(black_box(a.as_bases()), black_box(b.as_bases())))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(60)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_secs(1));
    targets = bench_levenshtein, bench_myers, bench_hamming, bench_gestalt
}
criterion_main!(benches);
