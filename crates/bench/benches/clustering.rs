//! Clustering throughput: grouping a shuffled read pool back into
//! clusters, with and without reference assignment.

use std::time::Duration;

use dnasim_testkit::bench::Criterion;
use dnasim_testkit::{criterion_group, criterion_main};
use std::hint::black_box;

use dnasim_channel::{ErrorModel, NaiveModel};
use dnasim_cluster::{GreedyClusterer, QGramSignature};
use dnasim_core::rng::seeded;
use dnasim_core::Strand;
use dnasim_core::rng::SliceRandom;

fn pool(references: usize, coverage: usize, seed: u64) -> (Vec<Strand>, Vec<Strand>) {
    let mut rng = seeded(seed);
    let refs: Vec<Strand> = (0..references)
        .map(|_| Strand::random(110, &mut rng))
        .collect();
    let model = NaiveModel::with_total_rate(0.059);
    let mut reads = Vec::new();
    for r in &refs {
        for _ in 0..coverage {
            reads.push(model.corrupt(r, &mut rng));
        }
    }
    reads.shuffle(&mut rng);
    (refs, reads)
}

fn bench_clustering(c: &mut Criterion) {
    let (refs, reads) = pool(50, 6, 1);
    let clusterer = GreedyClusterer::default();
    c.bench_function("greedy-cluster/300-reads", |b| {
        b.iter(|| clusterer.cluster(black_box(&reads)).len())
    });
    c.bench_function("cluster-vs-references/300-reads", |b| {
        b.iter(|| {
            clusterer
                .cluster_against_references(black_box(&reads), black_box(&refs))
                .total_reads()
        })
    });
    let strand = &reads[0];
    c.bench_function("qgram-signature/110bp", |b| {
        b.iter(|| QGramSignature::new(black_box(strand), 5, 12))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(Duration::from_secs(4))
        .warm_up_time(Duration::from_secs(1));
    targets = bench_clustering
}
criterion_main!(benches);
