//! Clustering throughput: grouping a shuffled read pool back into
//! clusters, with and without reference assignment.

use std::time::Duration;

use dnasim_testkit::bench::Criterion;
use dnasim_testkit::{criterion_group, criterion_main};
use std::hint::black_box;

use dnasim_channel::{ErrorModel, NaiveModel};
use dnasim_cluster::{GreedyClusterer, QGramSignature, StreamingClusterer};
use dnasim_core::rng::seeded;
use dnasim_core::rng::SliceRandom;
use dnasim_core::{PackedStrand, Strand};
use dnasim_metrics::{
    bank_within_with, myers, BankScratch, MyersScratch, PatternBank, QGramProfile, QGramScratch,
    MAX_LANES,
};

fn pool(references: usize, coverage: usize, seed: u64) -> (Vec<Strand>, Vec<Strand>) {
    let mut rng = seeded(seed);
    let refs: Vec<Strand> = (0..references)
        .map(|_| Strand::random(110, &mut rng))
        .collect();
    let model = NaiveModel::with_total_rate(0.059);
    let mut reads = Vec::new();
    for r in &refs {
        for _ in 0..coverage {
            reads.push(model.corrupt(r, &mut rng));
        }
    }
    reads.shuffle(&mut rng);
    (refs, reads)
}

fn bench_clustering(c: &mut Criterion) {
    let (refs, reads) = pool(50, 6, 1);
    let clusterer = GreedyClusterer::default();
    c.bench_function("greedy-cluster/300-reads", |b| {
        b.iter(|| clusterer.cluster(black_box(&reads)).len())
    });
    c.bench_function("cluster-vs-references/300-reads", |b| {
        b.iter(|| {
            clusterer
                .cluster_against_references(black_box(&reads), black_box(&refs))
                .total_reads()
        })
    });
    let strand = &reads[0];
    c.bench_function("qgram-signature/110bp", |b| {
        b.iter(|| QGramSignature::new(black_box(strand), 5, 12))
    });
}

/// Best-reference assignment over the same pool two ways: the pre-bank
/// code path (one banded Myers call per reference, sequentially) against
/// the shipped path (q-gram error-ball prune, survivors packed into
/// multi-pattern banks). Both compute the identical best assignment, so
/// the ratio is pure kernel-tier + prefilter speedup — this is the
/// BENCH_008 baseline/contender pair.
fn bench_cluster_bank(c: &mut Criterion) {
    let mut rng = seeded(3);
    let refs: Vec<Strand> = (0..64).map(|_| Strand::random(110, &mut rng)).collect();
    let model = NaiveModel::with_total_rate(0.059);
    let mut reads: Vec<Strand> = Vec::new();
    for r in &refs {
        for _ in 0..4 {
            reads.push(model.corrupt(r, &mut rng));
        }
    }
    reads.shuffle(&mut rng);
    let limit = GreedyClusterer::default().distance_threshold;
    let q = GreedyClusterer::default().qgram_len;

    let packed_refs: Vec<PackedStrand> = refs.iter().map(PackedStrand::from).collect();
    let ref_profiles: Vec<QGramProfile> = refs.iter().map(|r| QGramProfile::new(r, q)).collect();
    let packed_reads: Vec<PackedStrand> = reads.iter().map(PackedStrand::from).collect();
    let read_profiles: Vec<QGramProfile> =
        reads.iter().map(|r| QGramProfile::new(r, q)).collect();

    c.bench_function("cluster-bank/single-pattern/64refs", |b| {
        let mut scratch = MyersScratch::new();
        b.iter(|| {
            let mut assigned = 0usize;
            for read in black_box(&packed_reads) {
                let mut best: Option<(usize, usize)> = None;
                for (ri, reference) in packed_refs.iter().enumerate() {
                    if let Some(d) = myers::within_with(&mut scratch, reference, read, limit) {
                        if best.is_none_or(|(bd, _)| d < bd) {
                            best = Some((d, ri));
                        }
                    }
                }
                assigned += usize::from(best.is_some());
            }
            assigned
        })
    });

    c.bench_function("cluster-bank/banked-prefilter/64refs", |b| {
        let mut bank_scratch = BankScratch::new();
        let mut qgram_scratch = QGramScratch::new();
        let mut lane_out: Vec<Option<usize>> = Vec::new();
        let mut survivors: Vec<usize> = Vec::new();
        b.iter(|| {
            let mut assigned = 0usize;
            for (read, profile) in black_box(&packed_reads).iter().zip(&read_profiles) {
                survivors.clear();
                qgram_scratch.load(profile);
                for (ri, rp) in ref_profiles.iter().enumerate() {
                    if qgram_scratch.bound(rp) <= limit {
                        survivors.push(ri);
                    }
                }
                let mut best: Option<(usize, usize)> = None;
                for chunk in survivors.chunks(MAX_LANES) {
                    let lanes: Vec<&PackedStrand> =
                        chunk.iter().map(|&ri| &packed_refs[ri]).collect();
                    if let Some(bank) = PatternBank::new(&lanes) {
                        bank_within_with(&mut bank_scratch, &bank, read, limit, &mut lane_out);
                        for (lane, &ri) in chunk.iter().enumerate() {
                            if let Some(d) = lane_out[lane] {
                                if best.is_none_or(|(bd, _)| d < bd) {
                                    best = Some((d, ri));
                                }
                            }
                        }
                    }
                }
                assigned += usize::from(best.is_some());
            }
            assigned
        })
    });

    // Prefilter effectiveness on this pool, recorded for the BENCH_008
    // gates: each pruned candidate is one Myers evaluation that never ran.
    let mut proposed = 0usize;
    let mut pruned = 0usize;
    for profile in &read_profiles {
        for rp in &ref_profiles {
            proposed += 1;
            pruned += usize::from(rp.distance_lower_bound(profile) > limit);
        }
    }
    c.record_metric(
        "cluster-bank/pruned-share-pct",
        100.0 * pruned as f64 / proposed as f64,
    );
    c.record_metric(
        "cluster-bank/kernel-evals-per-read",
        (proposed - pruned) as f64 / packed_reads.len() as f64,
    );
}

/// The online streaming clusterer against the materialised
/// `cluster_against_references` pass over the same shuffled pool. The
/// memberships are byte-identical by construction (shared decision core),
/// so the only question is cost: this is the BENCH_009 baseline/contender
/// pair, gated on throughput *parity* — streaming must not give up more
/// than a fraction of the materialised pass's speed in exchange for
/// bounded memory. The resident-share pseudo-record proves the bound:
/// the clusterer's live state is per-group representatives, a small
/// fraction of the pool it consumed.
fn bench_streaming_clusterer(c: &mut Criterion) {
    let (refs, reads) = pool(64, 4, 7);
    let clusterer = GreedyClusterer::default();
    c.bench_function("cluster-stream/materialised/64refs", |b| {
        b.iter(|| {
            clusterer
                .cluster_against_references(black_box(&reads), black_box(&refs))
                .total_reads()
        })
    });
    c.bench_function("cluster-stream/streaming/64refs", |b| {
        b.iter(|| {
            let mut stream = StreamingClusterer::with_references(clusterer, black_box(&refs));
            for window in reads.chunks(64) {
                black_box(stream.push_batch(window));
            }
            stream.reads_seen()
        })
    });
    let mut stream = StreamingClusterer::with_references(clusterer, &refs);
    for window in reads.chunks(64) {
        stream.push_batch(window);
    }
    c.record_metric(
        "cluster-stream/resident-share-pct",
        100.0 * stream.resident_groups() as f64 / reads.len() as f64,
    );
    c.record_metric("cluster-stream/pool-reads", reads.len() as f64);
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(Duration::from_secs(4))
        .warm_up_time(Duration::from_secs(1));
    targets = bench_clustering, bench_cluster_bank, bench_streaming_clusterer
}
criterion_main!(benches);
