//! Cross-strand XOR parity — the erasure-recovery scheme of Bornholt et
//! al.'s DNA archival store.
//!
//! Whole strands are lost when PCR fails, coverage is too low, or
//! clustering misassigns every copy. Within-strand Reed–Solomon cannot help
//! then; instead, every group of `k` payloads gains one XOR parity strand,
//! and any *single* missing payload in a group is recoverable from the
//! survivors.

use std::fmt;

/// XOR parity over groups of `k` equal-length payloads.
///
/// # Examples
///
/// ```
/// use dnasim_codec::XorParity;
///
/// let parity = XorParity::new(2);
/// let payloads = vec![vec![1u8, 2], vec![3, 4], vec![5, 6]];
/// let protected = parity.protect(&payloads);
/// assert_eq!(protected.len(), 5); // 3 payloads + 2 parity strands
///
/// // Lose one payload of the first group, recover it.
/// let mut received: Vec<Option<Vec<u8>>> = protected.into_iter().map(Some).collect();
/// received[0] = None;
/// let recovered = parity.recover(&mut received)?;
/// assert_eq!(recovered, 1);
/// assert_eq!(received[0].as_deref(), Some(&[1u8, 2][..]));
/// # Ok::<(), dnasim_codec::ParityError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XorParity {
    group_size: usize,
}

/// Errors from parity protection/recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParityError {
    /// Payloads in one group have different lengths.
    UnequalLengths,
    /// A group lost more strands than parity can recover.
    TooManyMissing {
        /// Index of the unrecoverable group.
        group: usize,
        /// Number of missing strands in it.
        missing: usize,
    },
}

impl fmt::Display for ParityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParityError::UnequalLengths => f.write_str("payloads in a group differ in length"),
            ParityError::TooManyMissing { group, missing } => {
                write!(f, "group {group} lost {missing} strands; XOR parity recovers at most 1")
            }
        }
    }
}

impl std::error::Error for ParityError {}

/// Result of a lenient (best-effort) recovery pass.
///
/// Lenient recovery never fails: groups whose losses exceed the code's
/// budget are recorded here instead of aborting the pass, and every other
/// group is still recovered. Callers decide whether partial recovery is
/// acceptable — the archival pipeline hands this to its degradation
/// budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryOutcome {
    /// Strands rebuilt in place.
    pub recovered: usize,
    /// Groups left unrecovered, as `(group index, strands missing)`.
    pub failed_groups: Vec<(usize, usize)>,
    /// Strand slots still `None` after the pass.
    pub still_missing: usize,
}

impl RecoveryOutcome {
    /// True when every missing strand was rebuilt.
    pub fn is_complete(&self) -> bool {
        self.still_missing == 0
    }
}

impl XorParity {
    /// Creates a parity scheme over groups of `group_size` payloads.
    ///
    /// # Panics
    ///
    /// Panics if `group_size == 0`.
    pub fn new(group_size: usize) -> XorParity {
        assert!(group_size > 0, "group size must be positive");
        XorParity { group_size }
    }

    /// The number of payloads per parity group.
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// Appends one parity strand per group of `group_size` payloads.
    /// The layout is `[payload…, parity_g0, parity_g1, …]`; a final partial
    /// group still gets a parity strand.
    pub fn protect(&self, payloads: &[Vec<u8>]) -> Vec<Vec<u8>> {
        let mut out: Vec<Vec<u8>> = payloads.to_vec();
        for group in payloads.chunks(self.group_size) {
            let len = group.iter().map(Vec::len).max().unwrap_or(0);
            let mut parity = vec![0u8; len];
            for payload in group {
                for (p, &b) in parity.iter_mut().zip(payload) {
                    *p ^= b;
                }
            }
            out.push(parity);
        }
        out
    }

    /// Number of strands [`protect`](XorParity::protect) produces for
    /// `payload_count` payloads.
    pub fn protected_len(&self, payload_count: usize) -> usize {
        payload_count + payload_count.div_ceil(self.group_size)
    }

    /// Recovers missing strands in place. `received` must follow the
    /// [`protect`](XorParity::protect) layout with `None` marking erasures.
    /// Returns the number of strands recovered.
    ///
    /// # Errors
    ///
    /// [`ParityError::TooManyMissing`] if any group lost two or more
    /// strands (payloads or its parity).
    pub fn recover(&self, received: &mut [Option<Vec<u8>>]) -> Result<usize, ParityError> {
        let outcome = self.recover_lenient(received);
        match outcome.failed_groups.first() {
            None => Ok(outcome.recovered),
            Some(&(group, missing)) => Err(ParityError::TooManyMissing { group, missing }),
        }
    }

    /// Best-effort variant of [`recover`](XorParity::recover): groups whose
    /// losses exceed the single-strand budget are reported in the
    /// [`RecoveryOutcome`] instead of aborting, and every recoverable group
    /// is still rebuilt.
    pub fn recover_lenient(&self, received: &mut [Option<Vec<u8>>]) -> RecoveryOutcome {
        // Invert protected_len: find the payload count p with
        // p + ceil(p / group_size) == received.len().
        let total = received.len();
        let mut payload_count = total * self.group_size / (self.group_size + 1);
        while payload_count + payload_count.div_ceil(self.group_size) < total {
            payload_count += 1;
        }
        let group_count = payload_count.div_ceil(self.group_size);
        debug_assert_eq!(payload_count + group_count, total, "layout mismatch");
        let mut recovered = 0usize;
        let mut failed_groups = Vec::new();
        for g in 0..group_count {
            let start = g * self.group_size;
            let end = ((g + 1) * self.group_size).min(payload_count);
            let parity_idx = payload_count + g;
            let mut missing: Vec<usize> = (start..end)
                .chain([parity_idx])
                .filter(|&i| received[i].is_none())
                .collect();
            match (missing.len(), missing.pop()) {
                (0, _) => {}
                (1, Some(hole)) => {
                    let len = (start..end)
                        .chain([parity_idx])
                        .filter_map(|i| received[i].as_ref().map(Vec::len))
                        .max()
                        .unwrap_or(0);
                    let mut rebuilt = vec![0u8; len];
                    for i in (start..end).chain([parity_idx]) {
                        if i == hole {
                            continue;
                        }
                        if let Some(payload) = &received[i] {
                            for (r, &b) in rebuilt.iter_mut().zip(payload) {
                                *r ^= b;
                            }
                        }
                    }
                    received[hole] = Some(rebuilt);
                    recovered += 1;
                }
                (n, _) => failed_groups.push((g, n)),
            }
        }
        let still_missing = received.iter().filter(|slot| slot.is_none()).count();
        RecoveryOutcome {
            recovered,
            failed_groups,
            still_missing,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payloads(n: usize, len: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| (0..len).map(|j| (i * 31 + j) as u8).collect())
            .collect()
    }

    #[test]
    fn protect_appends_parity_per_group() {
        let parity = XorParity::new(4);
        let p = payloads(8, 10);
        let protected = parity.protect(&p);
        assert_eq!(protected.len(), 10);
        assert_eq!(parity.protected_len(8), 10);
        // Parity of group 0 is the XOR of its payloads.
        let mut expected = vec![0u8; 10];
        for payload in &p[..4] {
            for (e, &b) in expected.iter_mut().zip(payload) {
                *e ^= b;
            }
        }
        assert_eq!(protected[8], expected);
    }

    #[test]
    fn recover_single_loss_per_group() {
        let parity = XorParity::new(3);
        let p = payloads(6, 8);
        let protected = parity.protect(&p);
        let mut received: Vec<Option<Vec<u8>>> = protected.into_iter().map(Some).collect();
        received[1] = None; // group 0 payload
        received[5] = None; // group 1 payload
        let recovered = parity.recover(&mut received).unwrap();
        assert_eq!(recovered, 2);
        assert_eq!(received[1].as_deref(), Some(&p[1][..]));
        assert_eq!(received[5].as_deref(), Some(&p[5][..]));
    }

    #[test]
    fn recover_lost_parity_strand() {
        let parity = XorParity::new(2);
        let p = payloads(4, 5);
        let protected = parity.protect(&p);
        let expected_parity = protected[4].clone();
        let mut received: Vec<Option<Vec<u8>>> = protected.into_iter().map(Some).collect();
        received[4] = None; // the first parity strand itself
        assert_eq!(parity.recover(&mut received).unwrap(), 1);
        assert_eq!(received[4].as_deref(), Some(&expected_parity[..]));
    }

    #[test]
    fn double_loss_in_group_is_unrecoverable() {
        let parity = XorParity::new(4);
        let protected = parity.protect(&payloads(4, 6));
        let mut received: Vec<Option<Vec<u8>>> = protected.into_iter().map(Some).collect();
        received[0] = None;
        received[1] = None;
        assert_eq!(
            parity.recover(&mut received),
            Err(ParityError::TooManyMissing { group: 0, missing: 2 })
        );
    }

    #[test]
    fn partial_final_group_works() {
        let parity = XorParity::new(4);
        let p = payloads(6, 3); // groups of 4 + 2
        let protected = parity.protect(&p);
        assert_eq!(protected.len(), 8);
        let mut received: Vec<Option<Vec<u8>>> = protected.into_iter().map(Some).collect();
        received[5] = None; // in the partial group
        assert_eq!(parity.recover(&mut received).unwrap(), 1);
        assert_eq!(received[5].as_deref(), Some(&p[5][..]));
    }

    #[test]
    fn nothing_missing_recovers_zero() {
        let parity = XorParity::new(2);
        let protected = parity.protect(&payloads(4, 4));
        let mut received: Vec<Option<Vec<u8>>> = protected.into_iter().map(Some).collect();
        assert_eq!(parity.recover(&mut received).unwrap(), 0);
    }

    #[test]
    #[should_panic(expected = "group size must be positive")]
    fn zero_group_size_panics() {
        let _ = XorParity::new(0);
    }

    #[test]
    fn lenient_recovers_surviving_groups_and_reports_failures() {
        let parity = XorParity::new(2);
        let p = payloads(4, 6); // two groups of 2
        let protected = parity.protect(&p);
        let mut received: Vec<Option<Vec<u8>>> = protected.into_iter().map(Some).collect();
        received[0] = None;
        received[1] = None; // group 0: both payloads lost, over budget
        received[2] = None; // group 1: one payload lost, recoverable
        let outcome = parity.recover_lenient(&mut received);
        assert_eq!(outcome.recovered, 1);
        assert_eq!(outcome.failed_groups, vec![(0, 2)]);
        assert_eq!(outcome.still_missing, 2);
        assert!(!outcome.is_complete());
        assert_eq!(received[2].as_deref(), Some(&p[2][..]));
        assert!(received[0].is_none());
    }

    #[test]
    fn lenient_with_nothing_lost_is_complete() {
        let parity = XorParity::new(3);
        let protected = parity.protect(&payloads(6, 4));
        let mut received: Vec<Option<Vec<u8>>> = protected.into_iter().map(Some).collect();
        let outcome = parity.recover_lenient(&mut received);
        assert_eq!(outcome.recovered, 0);
        assert!(outcome.failed_groups.is_empty());
        assert!(outcome.is_complete());
    }
}
