//! Encoding, logical redundancy, and strand layout for DNA storage.
//!
//! Writing a file to DNA requires transcoding bits to bases, protecting
//! them against both corruption and whole-strand erasure, and making the
//! result addressable for PCR random access. This crate provides each of
//! those substrates:
//!
//! * [`TwoBitCodec`] / [`RotationCodec`] — binary↔DNA transcoding at the
//!   2 bits/base density maximum or homopolymer-free at ~1.58 bits/base;
//! * [`ReedSolomon`] over [`gf256`] — within-strand logical redundancy
//!   correcting residual substitution errors;
//! * [`XorParity`] — cross-strand parity recovering single erasures per
//!   group;
//! * [`StrandLayout`] — `[primer | index | RS payload | primer]` strand
//!   framing with PCR-style primer matching for random access.
//!
//! # Examples
//!
//! ```
//! use dnasim_codec::{ReedSolomon, TwoBitCodec};
//!
//! let rs = ReedSolomon::new(24, 18)?;
//! let mut codeword = rs.encode(&[42u8; 18]);
//! codeword[5] ^= 0x0f; // corruption surviving reconstruction
//! let data = rs.decode(&mut codeword)?;
//! assert_eq!(data, [42u8; 18]);
//! let strand = TwoBitCodec.encode(data);
//! assert_eq!(strand.len(), 18 * 4);
//! # Ok::<(), dnasim_codec::RsError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod binary;
pub mod gf256;
mod layout;
mod outer;
mod redundancy;
mod rs;

pub use binary::{DecodeError, RotationCodec, TwoBitCodec};
pub use layout::{LayoutError, StrandLayout, INDEX_LEN, PRIMER_LEN};
pub use outer::{OuterCodeError, OuterRsCode};
pub use redundancy::{ParityError, RecoveryOutcome, XorParity};
pub use rs::{ReedSolomon, RsError};
