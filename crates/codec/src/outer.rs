//! Outer Reed–Solomon erasure coding **across strands**.
//!
//! XOR parity recovers one lost strand per group; real archival systems
//! (Grass et al.) stripe an RS code across strands instead, recovering up
//! to `n − k` losses per group of `n`. Byte `i` of every strand in a group
//! forms one RS codeword column: losing whole strands erases the same
//! known positions of every column, which is exactly the erasure channel
//! RS decodes at full parity budget.

use std::fmt;

use crate::redundancy::RecoveryOutcome;
use crate::rs::{ReedSolomon, RsError};

/// An outer `RS(n, k)` code over groups of `k` equal-length payloads.
///
/// # Examples
///
/// ```
/// use dnasim_codec::OuterRsCode;
///
/// let outer = OuterRsCode::new(6, 4)?; // tolerates 2 lost strands per group
/// let payloads: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8; 8]).collect();
/// let protected = outer.protect(&payloads);
/// assert_eq!(protected.len(), 6);
///
/// let mut received: Vec<Option<Vec<u8>>> = protected.into_iter().map(Some).collect();
/// received[1] = None;
/// received[3] = None; // two losses in one group
/// let recovered = outer.recover(&mut received)?;
/// assert_eq!(recovered, 2);
/// assert_eq!(received[1].as_deref(), Some(&[1u8; 8][..]));
/// # Ok::<(), dnasim_codec::OuterCodeError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OuterRsCode {
    rs: ReedSolomon,
}

/// Errors from outer-code protection/recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OuterCodeError {
    /// Invalid `(n, k)` parameters.
    InvalidParameters(RsError),
    /// A group lost more strands than `n − k`.
    TooManyMissing {
        /// Index of the unrecoverable group.
        group: usize,
        /// Strands missing in it.
        missing: usize,
    },
}

impl fmt::Display for OuterCodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OuterCodeError::InvalidParameters(e) => write!(f, "invalid outer code: {e}"),
            OuterCodeError::TooManyMissing { group, missing } => {
                write!(f, "group {group} lost {missing} strands, beyond the parity budget")
            }
        }
    }
}

impl std::error::Error for OuterCodeError {}

impl OuterRsCode {
    /// Creates an outer code with `n` total strands per group carrying `k`
    /// payload strands.
    ///
    /// # Errors
    ///
    /// [`OuterCodeError::InvalidParameters`] unless `0 < k < n ≤ 255`.
    pub fn new(n: usize, k: usize) -> Result<OuterRsCode, OuterCodeError> {
        Ok(OuterRsCode {
            rs: ReedSolomon::new(n, k).map_err(OuterCodeError::InvalidParameters)?,
        })
    }

    /// Payload strands per group.
    pub fn group_payload(&self) -> usize {
        self.rs.data_len()
    }

    /// Total strands per group (payload + parity).
    pub fn group_total(&self) -> usize {
        self.rs.codeword_len()
    }

    /// Maximum recoverable losses per group.
    pub fn loss_budget(&self) -> usize {
        self.rs.codeword_len() - self.rs.data_len()
    }

    /// Number of strands [`protect`](OuterRsCode::protect) produces for
    /// `payload_count` payloads.
    pub fn protected_len(&self, payload_count: usize) -> usize {
        let k = self.group_payload();
        let groups = payload_count.div_ceil(k);
        payload_count + groups * self.loss_budget()
    }

    /// Appends `n − k` parity strands per group of `k` payloads (a final
    /// partial group is implicitly zero-padded to `k`). Layout:
    /// `[payload…, parity_g0…, parity_g1…, …]`.
    pub fn protect(&self, payloads: &[Vec<u8>]) -> Vec<Vec<u8>> {
        let k = self.group_payload();
        let parity_per_group = self.loss_budget();
        let mut out: Vec<Vec<u8>> = payloads.to_vec();
        for group in payloads.chunks(k) {
            let len = group.iter().map(Vec::len).max().unwrap_or(0);
            let mut parity = vec![vec![0u8; len]; parity_per_group];
            // Column-wise RS over byte position `col`.
            let mut column = vec![0u8; k];
            for col in 0..len {
                for (row, payload) in group.iter().enumerate() {
                    column[row] = payload.get(col).copied().unwrap_or(0);
                }
                column[group.len()..].iter_mut().for_each(|c| *c = 0);
                let codeword = self.rs.encode(&column);
                for (p, &byte) in parity.iter_mut().zip(&codeword[k..]) {
                    p[col] = byte;
                }
            }
            out.append(&mut parity);
        }
        out
    }

    /// Recovers missing strands in place; `received` must follow the
    /// [`protect`](OuterRsCode::protect) layout with `None` for losses.
    /// Returns the number of strands rebuilt.
    ///
    /// # Errors
    ///
    /// [`OuterCodeError::TooManyMissing`] if any group lost more than
    /// `n − k` strands.
    pub fn recover(&self, received: &mut [Option<Vec<u8>>]) -> Result<usize, OuterCodeError> {
        let outcome = self.recover_lenient(received);
        match outcome.failed_groups.first() {
            None => Ok(outcome.recovered),
            Some(&(group, missing)) => Err(OuterCodeError::TooManyMissing { group, missing }),
        }
    }

    /// Best-effort variant of [`recover`](OuterRsCode::recover): a group
    /// whose losses exceed `n − k` is reported in the [`RecoveryOutcome`]
    /// instead of aborting, and every recoverable group is still rebuilt.
    pub fn recover_lenient(&self, received: &mut [Option<Vec<u8>>]) -> RecoveryOutcome {
        let k = self.group_payload();
        let parity_per_group = self.loss_budget();
        // Invert protected_len: find p with p + ceil(p/k)·(n−k) ==
        // received.len(). The ratio-based guess can overshoot when the
        // final group is partial (its parity is full-size), so start from a
        // safe lower bound and walk up.
        let total = received.len();
        let mut payload_count = (total * k / self.group_total()).saturating_sub(parity_per_group);
        while payload_count + payload_count.div_ceil(k) * parity_per_group < total {
            payload_count += 1;
        }
        debug_assert_eq!(
            payload_count + payload_count.div_ceil(k) * parity_per_group,
            total,
            "received slice does not match the protect() layout"
        );
        let group_count = payload_count.div_ceil(k);
        let mut recovered = 0usize;
        let mut failed_groups = Vec::new();

        'groups: for g in 0..group_count {
            let payload_range = (g * k)..((g + 1) * k).min(payload_count);
            let parity_range =
                (payload_count + g * parity_per_group)..(payload_count + (g + 1) * parity_per_group);
            // Codeword rows: k payload slots (zero-padded virtual rows for a
            // partial final group count as *present* zeros) + parity rows.
            let group_width = payload_range.len();
            let missing: Vec<usize> = payload_range
                .clone()
                .chain(parity_range.clone())
                .enumerate()
                .filter_map(|(row_in_cw, idx)| {
                    received[idx].is_none().then_some(if row_in_cw < group_width {
                        row_in_cw
                    } else {
                        // Parity rows sit after the *full* k payload rows.
                        k + (row_in_cw - group_width)
                    })
                })
                .collect();
            if missing.is_empty() {
                continue;
            }
            if missing.len() > parity_per_group {
                failed_groups.push((g, missing.len()));
                continue;
            }
            let len = payload_range
                .clone()
                .chain(parity_range.clone())
                .filter_map(|idx| received[idx].as_ref().map(Vec::len))
                .max()
                .unwrap_or(0);
            let mut rebuilt: Vec<Vec<u8>> = vec![vec![0u8; len]; missing.len()];
            let mut codeword = vec![0u8; self.group_total()];
            for col in 0..len {
                codeword.iter_mut().for_each(|c| *c = 0);
                for (row_in_cw, idx) in payload_range.clone().enumerate() {
                    if let Some(payload) = &received[idx] {
                        codeword[row_in_cw] = payload.get(col).copied().unwrap_or(0);
                    }
                }
                for (p, idx) in parity_range.clone().enumerate() {
                    if let Some(payload) = &received[idx] {
                        codeword[k + p] = payload.get(col).copied().unwrap_or(0);
                    }
                }
                let data = match self.rs.decode_erasures(&mut codeword, &missing) {
                    Ok(data) => data,
                    Err(_) => {
                        failed_groups.push((g, missing.len()));
                        continue 'groups;
                    }
                };
                let full = {
                    let mut cw = data.to_vec();
                    cw.extend_from_slice(&codeword[k..]);
                    cw
                };
                for (slot, &cw_row) in rebuilt.iter_mut().zip(&missing) {
                    slot[col] = full[cw_row];
                }
            }
            // Write the rebuilt strands back.
            let mut rebuilt_iter = rebuilt.into_iter();
            for (row_in_cw, idx) in payload_range
                .clone()
                .chain(parity_range.clone())
                .enumerate()
            {
                let cw_row = if row_in_cw < group_width {
                    row_in_cw
                } else {
                    k + (row_in_cw - group_width)
                };
                if missing.contains(&cw_row) && received[idx].is_none() {
                    received[idx] = rebuilt_iter.next();
                    recovered += 1;
                }
            }
        }
        let still_missing = received.iter().filter(|slot| slot.is_none()).count();
        RecoveryOutcome {
            recovered,
            failed_groups,
            still_missing,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payloads(n: usize, len: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| (0..len).map(|j| (i * 37 + j * 11) as u8).collect())
            .collect()
    }

    #[test]
    fn protect_layout_and_lengths() {
        let outer = OuterRsCode::new(6, 4).unwrap();
        let p = payloads(8, 10);
        let protected = outer.protect(&p);
        assert_eq!(protected.len(), outer.protected_len(8));
        assert_eq!(protected.len(), 12); // 8 payloads + 2 groups × 2 parity
        assert_eq!(&protected[..8], &p[..]); // systematic
        assert!(protected[8..].iter().all(|s| s.len() == 10));
    }

    #[test]
    fn recovers_loss_budget_per_group() {
        let outer = OuterRsCode::new(6, 4).unwrap();
        let p = payloads(8, 16);
        let protected = outer.protect(&p);
        let mut received: Vec<Option<Vec<u8>>> = protected.into_iter().map(Some).collect();
        // Two losses in group 0 (payloads) and two in group 1 (one payload,
        // one parity).
        received[0] = None;
        received[2] = None;
        received[5] = None;
        received[11] = None;
        let recovered = outer.recover(&mut received).unwrap();
        assert_eq!(recovered, 4);
        assert_eq!(received[0].as_deref(), Some(&p[0][..]));
        assert_eq!(received[2].as_deref(), Some(&p[2][..]));
        assert_eq!(received[5].as_deref(), Some(&p[5][..]));
    }

    #[test]
    fn beyond_budget_is_rejected() {
        let outer = OuterRsCode::new(6, 4).unwrap();
        let protected = outer.protect(&payloads(4, 8));
        let mut received: Vec<Option<Vec<u8>>> = protected.into_iter().map(Some).collect();
        received[0] = None;
        received[1] = None;
        received[2] = None; // 3 > n − k = 2
        assert_eq!(
            outer.recover(&mut received),
            Err(OuterCodeError::TooManyMissing { group: 0, missing: 3 })
        );
    }

    #[test]
    fn partial_final_group_recovers() {
        let outer = OuterRsCode::new(6, 4).unwrap();
        let p = payloads(6, 12); // second group has only 2 payloads
        let protected = outer.protect(&p);
        assert_eq!(protected.len(), 10);
        let mut received: Vec<Option<Vec<u8>>> = protected.into_iter().map(Some).collect();
        received[4] = None;
        received[5] = None; // both payloads of the partial group
        let recovered = outer.recover(&mut received).unwrap();
        assert_eq!(recovered, 2);
        assert_eq!(received[4].as_deref(), Some(&p[4][..]));
        assert_eq!(received[5].as_deref(), Some(&p[5][..]));
    }

    #[test]
    fn nothing_missing_is_a_noop() {
        let outer = OuterRsCode::new(5, 3).unwrap();
        let protected = outer.protect(&payloads(3, 4));
        let mut received: Vec<Option<Vec<u8>>> = protected.into_iter().map(Some).collect();
        assert_eq!(outer.recover(&mut received).unwrap(), 0);
    }

    #[test]
    fn lenient_recovers_surviving_groups_and_reports_failures() {
        let outer = OuterRsCode::new(6, 4).unwrap();
        let p = payloads(8, 10); // two groups of 4, budget 2 each
        let protected = outer.protect(&p);
        let mut received: Vec<Option<Vec<u8>>> = protected.into_iter().map(Some).collect();
        received[0] = None;
        received[1] = None;
        received[2] = None; // group 0: 3 losses > budget 2
        received[5] = None; // group 1: 1 loss, recoverable
        let outcome = outer.recover_lenient(&mut received);
        assert_eq!(outcome.recovered, 1);
        assert_eq!(outcome.failed_groups, vec![(0, 3)]);
        assert_eq!(outcome.still_missing, 3);
        assert!(!outcome.is_complete());
        assert_eq!(received[5].as_deref(), Some(&p[5][..]));
        assert!(received[0].is_none());
    }

    #[test]
    fn outperforms_xor_parity_on_double_loss() {
        use crate::redundancy::XorParity;
        // Same overhead: XOR(4) = 1 parity per 4; RS(5,4) = 1 parity per 4.
        // Double loss in one group: XOR fails, RS(6,4) at the same *total*
        // budget as XOR(2) succeeds.
        let p = payloads(4, 8);
        let xor = XorParity::new(4);
        let mut xor_received: Vec<Option<Vec<u8>>> =
            xor.protect(&p).into_iter().map(Some).collect();
        xor_received[0] = None;
        xor_received[1] = None;
        assert!(xor.recover(&mut xor_received).is_err());

        let outer = OuterRsCode::new(6, 4).unwrap();
        let mut rs_received: Vec<Option<Vec<u8>>> =
            outer.protect(&p).into_iter().map(Some).collect();
        rs_received[0] = None;
        rs_received[1] = None;
        assert_eq!(outer.recover(&mut rs_received).unwrap(), 2);
        assert_eq!(rs_received[0].as_deref(), Some(&p[0][..]));
    }

    #[test]
    fn partial_group_layout_inversion() {
        // 13 payloads, k = 4: the naive ratio guess infers 14 — regression
        // test for the inversion.
        let outer = OuterRsCode::new(6, 4).unwrap();
        let p = payloads(13, 8);
        let protected = outer.protect(&p);
        assert_eq!(protected.len(), 13 + 4 * 2);
        let mut received: Vec<Option<Vec<u8>>> = protected.into_iter().map(Some).collect();
        received[12] = None; // the lone payload of the final group
        assert_eq!(outer.recover(&mut received).unwrap(), 1);
        assert_eq!(received[12].as_deref(), Some(&p[12][..]));
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(OuterRsCode::new(4, 4).is_err());
        assert!(OuterRsCode::new(4, 0).is_err());
    }
}
