//! Binary ↔ DNA transcoding.
//!
//! Digital payloads must be expressed over {A, C, G, T} before synthesis.
//! Two codecs are provided:
//!
//! * [`TwoBitCodec`] — the trivial 2 bits/base mapping (A=00, C=01, G=10,
//!   T=11), reaching the theoretical maximum density of 2 bits per
//!   nucleotide but placing no constraint on homopolymers;
//! * [`RotationCodec`] — a Goldman-style rotating ternary code that never
//!   repeats a base (maximum homopolymer length 1) at ~1.58 bits/base,
//!   trading density for sequencing robustness.

use std::fmt;

use dnasim_core::{Base, Strand};

/// Error returned when DNA→binary decoding fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The strand length is not a whole number of symbols.
    LengthNotAligned {
        /// Offending strand length.
        len: usize,
        /// Required alignment in bases.
        alignment: usize,
    },
    /// A homopolymer (repeated base) appeared where the rotation code
    /// forbids one.
    UnexpectedRepeat {
        /// Position of the repeated base.
        position: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::LengthNotAligned { len, alignment } => {
                write!(f, "strand length {len} is not a multiple of {alignment}")
            }
            DecodeError::UnexpectedRepeat { position } => {
                write!(f, "repeated base at position {position} breaks the rotation code")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// The 2-bits-per-base codec: each byte becomes four bases.
///
/// # Examples
///
/// ```
/// use dnasim_codec::TwoBitCodec;
///
/// let strand = TwoBitCodec.encode(&[0b00011011]);
/// assert_eq!(strand.to_string(), "ACGT");
/// assert_eq!(TwoBitCodec.decode(&strand)?, vec![0b00011011]);
/// # Ok::<(), dnasim_codec::DecodeError>(())
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TwoBitCodec;

impl TwoBitCodec {
    /// Encodes bytes as a strand, four bases per byte (MSB first).
    pub fn encode(&self, bytes: &[u8]) -> Strand {
        let mut strand = Strand::with_capacity(bytes.len() * 4);
        for &byte in bytes {
            for shift in [6u8, 4, 2, 0] {
                let bits = (byte >> shift) & 0b11;
                strand.push(Base::ALL[bits as usize]);
            }
        }
        strand
    }

    /// Decodes a strand back to bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::LengthNotAligned`] if the strand length is not
    /// a multiple of 4.
    pub fn decode(&self, strand: &Strand) -> Result<Vec<u8>, DecodeError> {
        if !strand.len().is_multiple_of(4) {
            return Err(DecodeError::LengthNotAligned {
                len: strand.len(),
                alignment: 4,
            });
        }
        let mut bytes = Vec::with_capacity(strand.len() / 4);
        for chunk in strand.as_bases().chunks(4) {
            let mut byte = 0u8;
            for &b in chunk {
                byte = (byte << 2) | b.index() as u8;
            }
            bytes.push(byte);
        }
        Ok(bytes)
    }
}

/// A rotating ternary codec: each trit (0–2) advances the current base by
/// 1–3 positions in the cyclic order A→C→G→T→A, so consecutive bases are
/// never equal.
///
/// Six trits carry one byte (3⁵ = 243 < 256 would not fit; 3⁶ = 729 does),
/// giving six bases per byte.
///
/// # Examples
///
/// ```
/// use dnasim_codec::RotationCodec;
///
/// let strand = RotationCodec.encode(&[0xAB, 0x00, 0xFF]);
/// assert_eq!(strand.max_homopolymer(), 1); // never two equal bases in a row
/// assert_eq!(RotationCodec.decode(&strand)?, vec![0xAB, 0x00, 0xFF]);
/// # Ok::<(), dnasim_codec::DecodeError>(())
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RotationCodec;

/// Trits per encoded byte (3⁶ = 729 ≥ 256).
const TRITS_PER_BYTE: usize = 6;

impl RotationCodec {
    /// Encodes bytes as a homopolymer-free strand, six bases per byte.
    pub fn encode(&self, bytes: &[u8]) -> Strand {
        let mut strand = Strand::with_capacity(bytes.len() * TRITS_PER_BYTE);
        let mut current = Base::A; // virtual predecessor of the first base
        for &byte in bytes {
            let mut value = byte as usize;
            let mut trits = [0usize; TRITS_PER_BYTE];
            for t in trits.iter_mut().rev() {
                *t = value % 3;
                value /= 3;
            }
            for trit in trits {
                // Advance 1..=3 positions: never lands on `current`.
                let next = Base::ALL[(current.index() + trit + 1) % 4];
                strand.push(next);
                current = next;
            }
        }
        strand
    }

    /// Decodes a homopolymer-free strand back to bytes.
    ///
    /// # Errors
    ///
    /// [`DecodeError::LengthNotAligned`] if the length is not a multiple of
    /// six; [`DecodeError::UnexpectedRepeat`] if two consecutive bases are
    /// equal (corruption made the rotation ill-defined).
    pub fn decode(&self, strand: &Strand) -> Result<Vec<u8>, DecodeError> {
        if !strand.len().is_multiple_of(TRITS_PER_BYTE) {
            return Err(DecodeError::LengthNotAligned {
                len: strand.len(),
                alignment: TRITS_PER_BYTE,
            });
        }
        let mut bytes = Vec::with_capacity(strand.len() / TRITS_PER_BYTE);
        let mut current = Base::A;
        for (chunk_idx, chunk) in strand.as_bases().chunks(TRITS_PER_BYTE).enumerate() {
            let mut value = 0usize;
            for (i, &b) in chunk.iter().enumerate() {
                let step = (b.index() + 4 - current.index()) % 4;
                if step == 0 {
                    return Err(DecodeError::UnexpectedRepeat {
                        position: chunk_idx * TRITS_PER_BYTE + i,
                    });
                }
                value = value * 3 + (step - 1);
                current = b;
            }
            bytes.push(value.min(255) as u8);
        }
        Ok(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnasim_core::rng::seeded;
    use dnasim_core::rng::RngExt;

    #[test]
    fn two_bit_round_trips_all_bytes() {
        let bytes: Vec<u8> = (0..=255).collect();
        let strand = TwoBitCodec.encode(&bytes);
        assert_eq!(strand.len(), 1024);
        assert_eq!(TwoBitCodec.decode(&strand).unwrap(), bytes);
    }

    #[test]
    fn two_bit_known_mapping() {
        assert_eq!(TwoBitCodec.encode(&[0b00011011]).to_string(), "ACGT");
        assert_eq!(TwoBitCodec.encode(&[0xFF]).to_string(), "TTTT");
        assert_eq!(TwoBitCodec.encode(&[0x00]).to_string(), "AAAA");
    }

    #[test]
    fn two_bit_rejects_misaligned() {
        let strand: Strand = "ACG".parse().unwrap();
        assert_eq!(
            TwoBitCodec.decode(&strand),
            Err(DecodeError::LengthNotAligned { len: 3, alignment: 4 })
        );
    }

    #[test]
    fn two_bit_empty() {
        assert_eq!(TwoBitCodec.encode(&[]).len(), 0);
        assert_eq!(TwoBitCodec.decode(&Strand::new()).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn rotation_round_trips_all_bytes() {
        let bytes: Vec<u8> = (0..=255).collect();
        let strand = RotationCodec.encode(&bytes);
        assert_eq!(RotationCodec.decode(&strand).unwrap(), bytes);
    }

    #[test]
    fn rotation_never_repeats_bases() {
        let mut rng = seeded(1);
        for _ in 0..20 {
            let bytes: Vec<u8> = (0..64).map(|_| rng.random()).collect();
            let strand = RotationCodec.encode(&bytes);
            assert_eq!(strand.max_homopolymer(), 1);
        }
    }

    #[test]
    fn rotation_rejects_repeat() {
        let strand: Strand = "AACGTC".parse().unwrap();
        assert!(matches!(
            RotationCodec.decode(&strand),
            Err(DecodeError::UnexpectedRepeat { .. })
        ));
    }

    #[test]
    fn rotation_rejects_misaligned() {
        let strand: Strand = "ACGTC".parse().unwrap();
        assert!(matches!(
            RotationCodec.decode(&strand),
            Err(DecodeError::LengthNotAligned { .. })
        ));
    }

    #[test]
    fn density_comparison() {
        // 2-bit: 4 bases/byte; rotation: 6 bases/byte.
        let bytes = [0u8; 100];
        assert_eq!(TwoBitCodec.encode(&bytes).len(), 400);
        assert_eq!(RotationCodec.encode(&bytes).len(), 600);
    }

    #[test]
    fn error_display() {
        let e = DecodeError::LengthNotAligned { len: 5, alignment: 4 };
        assert!(e.to_string().contains('5'));
        let e = DecodeError::UnexpectedRepeat { position: 3 };
        assert!(e.to_string().contains('3'));
    }
}
