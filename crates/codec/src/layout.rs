//! Strand layout: how a file becomes addressable, decodable strands.
//!
//! Following the key-value design of Bornholt et al. / Yazdi et al., every
//! strand carries `[primer | index | payload-with-RS | primer']`:
//!
//! * the **primers** are fixed 20-base sequences unique to the file,
//!   enabling PCR random access (selective amplification of one file's
//!   strands out of the shared pool);
//! * the **index** orders strands within the file (erasures are detected as
//!   missing indices);
//! * the **payload** is Reed–Solomon-protected against residual corruption
//!   that survives trace reconstruction.

use std::fmt;

use dnasim_core::rng::SimRng;
use dnasim_core::Strand;

use crate::binary::{DecodeError, TwoBitCodec};
use crate::rs::{ReedSolomon, RsError};

/// Number of bases in each primer.
pub const PRIMER_LEN: usize = 20;

/// Number of bases encoding the strand index (2-bit code over a u32).
pub const INDEX_LEN: usize = 16;

/// Layout configuration for a file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrandLayout {
    /// Forward primer (the file's "key").
    primer: Strand,
    /// Reverse primer appended at the strand end.
    reverse_primer: Strand,
    /// RS code protecting each payload.
    rs: ReedSolomon,
}

/// Errors from layout encoding/decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayoutError {
    /// The strand is too short to contain primers, index, and payload.
    StrandTooShort {
        /// Observed length.
        len: usize,
        /// Minimum decodable length.
        min: usize,
    },
    /// DNA→binary decoding failed.
    Decode(DecodeError),
    /// Reed–Solomon decoding failed.
    ReedSolomon(RsError),
    /// A strand index was missing after reconstruction.
    MissingStrand {
        /// The absent index.
        index: u32,
    },
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::StrandTooShort { len, min } => {
                write!(f, "strand of {len} bases is shorter than the minimum {min}")
            }
            LayoutError::Decode(e) => write!(f, "payload decode failed: {e}"),
            LayoutError::ReedSolomon(e) => write!(f, "reed-solomon failed: {e}"),
            LayoutError::MissingStrand { index } => {
                write!(f, "strand {index} missing after reconstruction")
            }
        }
    }
}

impl std::error::Error for LayoutError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LayoutError::Decode(e) => Some(e),
            LayoutError::ReedSolomon(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DecodeError> for LayoutError {
    fn from(e: DecodeError) -> LayoutError {
        LayoutError::Decode(e)
    }
}

impl From<RsError> for LayoutError {
    fn from(e: RsError) -> LayoutError {
        LayoutError::ReedSolomon(e)
    }
}

impl StrandLayout {
    /// Creates a layout with freshly drawn GC-balanced primers and an
    /// `RS(codeword_len, data_len)` payload code.
    ///
    /// # Errors
    ///
    /// Propagates [`RsError::InvalidParameters`] for a bad RS shape.
    pub fn new(
        codeword_len: usize,
        data_len: usize,
        rng: &mut SimRng,
    ) -> Result<StrandLayout, RsError> {
        Ok(StrandLayout {
            primer: Strand::random_gc_balanced(PRIMER_LEN, rng),
            reverse_primer: Strand::random_gc_balanced(PRIMER_LEN, rng),
            rs: ReedSolomon::new(codeword_len, data_len)?,
        })
    }

    /// The forward primer identifying this file.
    pub fn primer(&self) -> &Strand {
        &self.primer
    }

    /// Payload data bytes carried per strand.
    pub fn payload_bytes(&self) -> usize {
        self.rs.data_len()
    }

    /// Total designed strand length.
    pub fn strand_len(&self) -> usize {
        PRIMER_LEN + INDEX_LEN + self.rs.codeword_len() * 4 + PRIMER_LEN
    }

    /// Encodes a file into strands. The data is chunked into
    /// [`payload_bytes`](StrandLayout::payload_bytes)-sized pieces (the last
    /// chunk zero-padded), each RS-encoded and wrapped with index and
    /// primers.
    pub fn encode_file(&self, data: &[u8]) -> Vec<Strand> {
        let chunk_size = self.rs.data_len();
        let mut strands = Vec::new();
        let mut chunks: Vec<Vec<u8>> = data.chunks(chunk_size).map(<[u8]>::to_vec).collect();
        if chunks.is_empty() {
            chunks.push(vec![0u8; chunk_size]);
        }
        if let Some(last) = chunks.last_mut() {
            last.resize(chunk_size, 0);
        }
        for (index, chunk) in chunks.iter().enumerate() {
            let mut codeword = self.rs.encode(chunk);
            // Scramble (whiten) the codeword with an index-keyed keystream.
            // Without this, structured payloads (runs, sequential counters,
            // XOR parity of similar chunks) produce near-identical strands
            // that clustering cannot tell apart — randomisation before
            // synthesis is standard DNA-storage practice for this reason.
            scramble(&mut codeword, index as u32);
            let mut strand = self.primer.clone();
            strand.extend(TwoBitCodec.encode(&(index as u32).to_be_bytes()).iter());
            strand.extend(TwoBitCodec.encode(&codeword).iter());
            strand.extend(self.reverse_primer.iter());
            strands.push(strand);
        }
        strands
    }

    /// Decodes one reconstructed strand into `(index, payload bytes)`.
    ///
    /// # Errors
    ///
    /// Any of the [`LayoutError`] variants for malformed or uncorrectable
    /// strands.
    pub fn decode_strand(&self, strand: &Strand) -> Result<(u32, Vec<u8>), LayoutError> {
        let min = self.strand_len();
        if strand.len() < min {
            return Err(LayoutError::StrandTooShort {
                len: strand.len(),
                min,
            });
        }
        let index_region = strand.substrand(PRIMER_LEN..PRIMER_LEN + INDEX_LEN);
        let index_bytes = TwoBitCodec.decode(&index_region)?;
        let index = match <[u8; 4]>::try_from(index_bytes.as_slice()) {
            Ok(bytes) => u32::from_be_bytes(bytes),
            Err(_) => {
                return Err(LayoutError::StrandTooShort {
                    len: strand.len(),
                    min,
                })
            }
        };
        let payload_start = PRIMER_LEN + INDEX_LEN;
        let payload_end = payload_start + self.rs.codeword_len() * 4;
        let payload_region = strand.substrand(payload_start..payload_end);
        let mut codeword = TwoBitCodec.decode(&payload_region)?;
        scramble(&mut codeword, index); // XOR keystream is its own inverse
        let data = self.rs.decode(&mut codeword)?;
        Ok((index, data.to_vec()))
    }

    /// Reassembles the original file bytes (including any tail padding)
    /// from reconstructed strands.
    ///
    /// Strands may arrive unordered; duplicates keep the first successful
    /// decode.
    ///
    /// # Errors
    ///
    /// [`LayoutError::MissingStrand`] if an index in `0..max_index` never
    /// decoded successfully.
    pub fn decode_file(&self, strands: &[Strand]) -> Result<Vec<u8>, LayoutError> {
        let mut chunks: std::collections::BTreeMap<u32, Vec<u8>> =
            std::collections::BTreeMap::new();
        for strand in strands {
            if let Ok((index, data)) = self.decode_strand(strand) {
                chunks.entry(index).or_insert(data);
            }
        }
        let Some((&max_index, _)) = chunks.iter().next_back() else {
            return Err(LayoutError::MissingStrand { index: 0 });
        };
        let mut out = Vec::with_capacity((max_index as usize + 1) * self.rs.data_len());
        for index in 0..=max_index {
            match chunks.get(&index) {
                Some(data) => out.extend_from_slice(data),
                None => return Err(LayoutError::MissingStrand { index }),
            }
        }
        Ok(out)
    }
}

/// XORs `bytes` with a keystream derived from the strand index
/// (SplitMix64 per 8-byte block). Applying it twice is the identity.
fn scramble(bytes: &mut [u8], index: u32) {
    for (block, chunk) in bytes.chunks_mut(8).enumerate() {
        let mut z = (u64::from(index) << 32) ^ (block as u64) ^ 0x9e37_79b9_7f4a_7c15;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        for (byte, key) in chunk.iter_mut().zip(z.to_le_bytes()) {
            *byte ^= key;
        }
    }
}

impl StrandLayout {
    /// Whether a read plausibly belongs to this file: its first bases match
    /// the forward primer within `max_mismatches` (the selectivity rule PCR
    /// amplification implements physically).
    pub fn matches_primer(&self, read: &Strand, max_mismatches: usize) -> bool {
        if read.len() < PRIMER_LEN {
            return false;
        }
        let mismatches = (0..PRIMER_LEN)
            .filter(|&i| read[i] != self.primer[i])
            .count();
        mismatches <= max_mismatches
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnasim_core::rng::seeded;

    fn layout() -> StrandLayout {
        let mut rng = seeded(42);
        StrandLayout::new(24, 18, &mut rng).unwrap()
    }

    #[test]
    fn encode_decode_round_trip() {
        let layout = layout();
        let data: Vec<u8> = (0..100u8).collect();
        let strands = layout.encode_file(&data);
        assert_eq!(strands.len(), 100usize.div_ceil(18));
        for s in &strands {
            assert_eq!(s.len(), layout.strand_len());
        }
        let decoded = layout.decode_file(&strands).unwrap();
        assert_eq!(&decoded[..100], &data[..]);
        // Padding is zeros.
        assert!(decoded[100..].iter().all(|&b| b == 0));
    }

    #[test]
    fn decode_survives_shuffled_strands() {
        let layout = layout();
        let data: Vec<u8> = (0..90u8).collect();
        let mut strands = layout.encode_file(&data);
        strands.reverse();
        let decoded = layout.decode_file(&strands).unwrap();
        assert_eq!(&decoded[..90], &data[..]);
    }

    #[test]
    fn decode_corrects_payload_corruption() {
        let layout = layout();
        let data: Vec<u8> = (0..54u8).collect();
        let mut strands = layout.encode_file(&data);
        // Corrupt 3 payload bases of strand 0 (≤ 3 symbol errors, t = 3).
        let mut bases = strands[0].clone().into_bases();
        for &pos in &[PRIMER_LEN + INDEX_LEN, PRIMER_LEN + INDEX_LEN + 8, PRIMER_LEN + INDEX_LEN + 16] {
            bases[pos] = bases[pos].complement();
        }
        strands[0] = Strand::from_bases(bases);
        let decoded = layout.decode_file(&strands).unwrap();
        assert_eq!(&decoded[..54], &data[..]);
    }

    #[test]
    fn missing_strand_is_reported() {
        let layout = layout();
        let data = vec![7u8; 60];
        let mut strands = layout.encode_file(&data);
        assert!(strands.len() >= 2);
        strands.remove(0);
        match layout.decode_file(&strands) {
            Err(LayoutError::MissingStrand { index: 0 }) => {}
            other => panic!("expected MissingStrand(0), got {other:?}"),
        }
    }

    #[test]
    fn too_short_strand_is_rejected() {
        let layout = layout();
        let short: Strand = "ACGT".parse().unwrap();
        assert!(matches!(
            layout.decode_strand(&short),
            Err(LayoutError::StrandTooShort { .. })
        ));
    }

    #[test]
    fn primer_matching_selects_file_strands() {
        let mut rng = seeded(9);
        let layout_a = StrandLayout::new(24, 18, &mut rng).unwrap();
        let layout_b = StrandLayout::new(24, 18, &mut rng).unwrap();
        let strands_a = layout_a.encode_file(&[1u8; 18]);
        let strands_b = layout_b.encode_file(&[2u8; 18]);
        assert!(layout_a.matches_primer(&strands_a[0], 2));
        assert!(!layout_a.matches_primer(&strands_b[0], 2));
        assert!(layout_b.matches_primer(&strands_b[0], 2));
    }

    #[test]
    fn empty_file_produces_one_strand() {
        let layout = layout();
        let strands = layout.encode_file(&[]);
        assert_eq!(strands.len(), 1);
        let decoded = layout.decode_file(&strands).unwrap();
        assert!(decoded.iter().all(|&b| b == 0));
    }

    #[test]
    fn strand_len_accounts_for_all_regions() {
        let layout = layout();
        assert_eq!(layout.strand_len(), 20 + 16 + 24 * 4 + 20);
        assert_eq!(layout.payload_bytes(), 18);
    }
}
