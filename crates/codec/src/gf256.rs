//! Arithmetic over GF(2⁸), the symbol field of the Reed–Solomon code.
//!
//! Uses the conventional primitive polynomial `x⁸ + x⁴ + x³ + x² + 1`
//! (0x11d) with generator α = 2, and log/antilog tables built at first use.

/// A field element of GF(2⁸).
pub type Gf = u8;

/// The log/antilog tables for GF(2⁸).
#[derive(Debug)]
struct Tables {
    exp: [u8; 512],
    log: [u8; 256],
}

fn tables() -> &'static Tables {
    use std::sync::OnceLock;
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut exp = [0u8; 512];
        let mut log = [0u8; 256];
        let mut x: u16 = 1;
        #[allow(clippy::needless_range_loop)] // i is both table index and exponent
        for i in 0..255 {
            exp[i] = x as u8;
            log[x as usize] = i as u8;
            x <<= 1;
            if x & 0x100 != 0 {
                x ^= 0x11d;
            }
        }
        // Duplicate so exp[i + 255] == exp[i], avoiding a mod in mul.
        for i in 255..512 {
            exp[i] = exp[i - 255];
        }
        Tables { exp, log }
    })
}

/// Addition in GF(2⁸) (XOR).
///
/// ```
/// use dnasim_codec::gf256::add;
/// assert_eq!(add(0x53, 0xca), 0x99);
/// assert_eq!(add(7, 7), 0);
/// ```
#[inline]
pub fn add(a: Gf, b: Gf) -> Gf {
    a ^ b
}

/// Multiplication in GF(2⁸).
///
/// ```
/// use dnasim_codec::gf256::mul;
/// assert_eq!(mul(0, 17), 0);
/// assert_eq!(mul(1, 17), 17);
/// ```
#[inline]
pub fn mul(a: Gf, b: Gf) -> Gf {
    if a == 0 || b == 0 {
        return 0;
    }
    let t = tables();
    t.exp[t.log[a as usize] as usize + t.log[b as usize] as usize]
}

/// Multiplicative inverse in GF(2⁸).
///
/// # Panics
///
/// Panics if `a == 0` (zero has no inverse).
#[inline]
pub fn inv(a: Gf) -> Gf {
    assert!(a != 0, "zero has no multiplicative inverse");
    let t = tables();
    t.exp[255 - t.log[a as usize] as usize]
}

/// Division in GF(2⁸).
///
/// # Panics
///
/// Panics if `b == 0`.
#[inline]
pub fn div(a: Gf, b: Gf) -> Gf {
    mul(a, inv(b))
}

/// α raised to the power `n` (α = 2).
#[inline]
pub fn exp(n: usize) -> Gf {
    tables().exp[n % 255]
}

/// Discrete log base α of `a`.
///
/// # Panics
///
/// Panics if `a == 0`.
#[inline]
pub fn log(a: Gf) -> usize {
    assert!(a != 0, "log of zero is undefined");
    tables().log[a as usize] as usize
}

/// Evaluates a polynomial (coefficients highest-degree first) at `x`.
pub fn poly_eval(poly: &[Gf], x: Gf) -> Gf {
    let mut acc = 0u8;
    for &c in poly {
        acc = add(mul(acc, x), c);
    }
    acc
}

/// Multiplies two polynomials (coefficients highest-degree first).
pub fn poly_mul(a: &[Gf], b: &[Gf]) -> Vec<Gf> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0u8; a.len() + b.len() - 1];
    for (i, &x) in a.iter().enumerate() {
        for (j, &y) in b.iter().enumerate() {
            out[i + j] ^= mul(x, y);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addition_is_xor_and_self_inverse() {
        for a in 0..=255u8 {
            assert_eq!(add(a, a), 0);
            assert_eq!(add(a, 0), a);
        }
    }

    #[test]
    fn multiplication_identity_and_zero() {
        for a in 0..=255u8 {
            assert_eq!(mul(a, 1), a);
            assert_eq!(mul(a, 0), 0);
            assert_eq!(mul(0, a), 0);
        }
    }

    #[test]
    fn multiplication_is_commutative_spot() {
        for a in [3u8, 17, 99, 200, 255] {
            for b in [1u8, 2, 80, 254] {
                assert_eq!(mul(a, b), mul(b, a));
            }
        }
    }

    #[test]
    fn every_nonzero_element_has_inverse() {
        for a in 1..=255u8 {
            assert_eq!(mul(a, inv(a)), 1, "a = {a}");
        }
    }

    #[test]
    fn division_round_trips() {
        for a in [5u8, 100, 255] {
            for b in [1u8, 7, 199] {
                assert_eq!(mul(div(a, b), b), a);
            }
        }
    }

    #[test]
    fn exp_log_round_trip() {
        for n in 0..255 {
            assert_eq!(log(exp(n)), n);
        }
        assert_eq!(exp(255), exp(0)); // α^255 = 1 = α^0
    }

    #[test]
    fn distributivity_spot() {
        for a in [2u8, 51, 130] {
            for b in [9u8, 77] {
                for c in [33u8, 250] {
                    assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
                }
            }
        }
    }

    #[test]
    fn poly_eval_constant_and_linear() {
        assert_eq!(poly_eval(&[7], 99), 7);
        // p(x) = x + 3 at x = 2 → 2 ^ 3 = 1
        assert_eq!(poly_eval(&[1, 3], 2), 1);
    }

    #[test]
    fn poly_mul_against_eval() {
        // (x + 1)(x + 2) evaluated must equal product of evaluations.
        let p = [1u8, 1];
        let q = [1u8, 2];
        let pq = poly_mul(&p, &q);
        for x in [0u8, 1, 2, 7, 200] {
            assert_eq!(poly_eval(&pq, x), mul(poly_eval(&p, x), poly_eval(&q, x)));
        }
    }

    #[test]
    #[should_panic(expected = "zero has no multiplicative inverse")]
    fn inv_zero_panics() {
        let _ = inv(0);
    }
}
