//! Systematic Reed–Solomon codes over GF(2⁸) — the logical-redundancy
//! layer that corrects residual corruption after trace reconstruction
//! (cf. Grass et al.'s RS-protected DNA archival storage).

use std::fmt;

use crate::gf256::{self, Gf};

/// A systematic Reed–Solomon code `RS(n, k)` with `n − k` parity symbols,
/// correcting up to `⌊(n − k) / 2⌋` symbol errors per codeword.
///
/// # Examples
///
/// ```
/// use dnasim_codec::ReedSolomon;
///
/// let rs = ReedSolomon::new(16, 12)?;
/// let data = *b"hello rs(16,12)!";
/// let mut codeword = rs.encode(&data[..12]);
/// codeword[3] ^= 0xff; // corrupt one symbol
/// codeword[9] ^= 0x55; // and another
/// let decoded = rs.decode(&mut codeword)?;
/// assert_eq!(decoded, &data[..12]);
/// # Ok::<(), dnasim_codec::RsError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReedSolomon {
    n: usize,
    k: usize,
    /// Generator polynomial, highest-degree coefficient first.
    generator: Vec<Gf>,
}

/// Errors from Reed–Solomon construction or decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RsError {
    /// Invalid `(n, k)` parameters.
    InvalidParameters {
        /// Requested codeword length.
        n: usize,
        /// Requested data length.
        k: usize,
    },
    /// The received word has the wrong length.
    LengthMismatch {
        /// Expected length (`n`).
        expected: usize,
        /// Actual length.
        actual: usize,
    },
    /// More errors than the code can correct.
    TooManyErrors,
}

impl fmt::Display for RsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RsError::InvalidParameters { n, k } => {
                write!(f, "invalid RS parameters n={n}, k={k} (need 0 < k < n ≤ 255)")
            }
            RsError::LengthMismatch { expected, actual } => {
                write!(f, "codeword length {actual}, expected {expected}")
            }
            RsError::TooManyErrors => f.write_str("too many symbol errors to correct"),
        }
    }
}

impl std::error::Error for RsError {}

impl ReedSolomon {
    /// Creates an `RS(n, k)` code.
    ///
    /// # Errors
    ///
    /// Returns [`RsError::InvalidParameters`] unless `0 < k < n ≤ 255`.
    pub fn new(n: usize, k: usize) -> Result<ReedSolomon, RsError> {
        if k == 0 || k >= n || n > 255 {
            return Err(RsError::InvalidParameters { n, k });
        }
        // g(x) = ∏_{i=0}^{n-k-1} (x − α^i)
        let mut generator = vec![1u8];
        for i in 0..(n - k) {
            generator = gf256::poly_mul(&generator, &[1, gf256::exp(i)]);
        }
        Ok(ReedSolomon { n, k, generator })
    }

    /// Codeword length `n`.
    pub fn codeword_len(&self) -> usize {
        self.n
    }

    /// Data length `k`.
    pub fn data_len(&self) -> usize {
        self.k
    }

    /// Number of correctable symbol errors, `⌊(n − k) / 2⌋`.
    pub fn correction_capacity(&self) -> usize {
        (self.n - self.k) / 2
    }

    /// Encodes `k` data bytes into an `n`-byte systematic codeword
    /// (data first, parity appended).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != k`.
    pub fn encode(&self, data: &[u8]) -> Vec<u8> {
        assert_eq!(data.len(), self.k, "data must be exactly k bytes");
        let parity_len = self.n - self.k;
        // Polynomial long division: remainder of data·x^{n−k} by g(x).
        let mut remainder = vec![0u8; parity_len];
        for &byte in data {
            let factor = byte ^ remainder[0];
            remainder.rotate_left(1);
            if let Some(last) = remainder.last_mut() {
                *last = 0;
            }
            if factor != 0 {
                for (r, &g) in remainder.iter_mut().zip(&self.generator[1..]) {
                    *r ^= gf256::mul(g, factor);
                }
            }
        }
        let mut codeword = data.to_vec();
        codeword.extend_from_slice(&remainder);
        codeword
    }

    /// Decodes a (possibly corrupted) codeword in place and returns the
    /// corrected data bytes.
    ///
    /// # Errors
    ///
    /// [`RsError::LengthMismatch`] if `codeword.len() != n`;
    /// [`RsError::TooManyErrors`] if the corruption exceeds the correction
    /// capacity.
    pub fn decode<'a>(&self, codeword: &'a mut [u8]) -> Result<&'a [u8], RsError> {
        if codeword.len() != self.n {
            return Err(RsError::LengthMismatch {
                expected: self.n,
                actual: codeword.len(),
            });
        }
        let parity_len = self.n - self.k;
        // Syndromes s_i = c(α^i).
        let syndromes: Vec<Gf> = (0..parity_len)
            .map(|i| gf256::poly_eval(codeword, gf256::exp(i)))
            .collect();
        if syndromes.iter().all(|&s| s == 0) {
            return Ok(&codeword[..self.k]);
        }

        // Berlekamp–Massey: error-locator polynomial σ (lowest-degree-first
        // here, σ[0] = 1).
        let sigma = berlekamp_massey(&syndromes);
        let num_errors = sigma.len() - 1;
        if num_errors == 0 || num_errors > self.correction_capacity() {
            return Err(RsError::TooManyErrors);
        }

        // Chien search: roots of σ give error positions.
        let mut error_positions = Vec::with_capacity(num_errors);
        for pos in 0..self.n {
            // Codeword index `pos` (highest-degree first) corresponds to
            // location α^{n−1−pos}; σ has a root at its inverse.
            let loc = gf256::exp(self.n - 1 - pos);
            let x_inv = gf256::inv(loc);
            let mut acc = 0u8;
            for (j, &c) in sigma.iter().enumerate() {
                acc ^= gf256::mul(c, pow(x_inv, j));
            }
            if acc == 0 {
                error_positions.push(pos);
            }
        }
        if error_positions.len() != num_errors {
            return Err(RsError::TooManyErrors);
        }

        // Forney: error magnitudes from the evaluator polynomial
        // Ω(x) = [S(x)·σ(x)] mod x^{parity_len} (lowest-degree-first).
        let mut omega = vec![0u8; parity_len];
        for (i, &s) in syndromes.iter().enumerate() {
            for (j, &c) in sigma.iter().enumerate() {
                if i + j < parity_len {
                    omega[i + j] ^= gf256::mul(s, c);
                }
            }
        }
        // σ'(x): formal derivative (odd-degree coefficients).
        for &pos in &error_positions {
            let loc = gf256::exp(self.n - 1 - pos);
            let x_inv = gf256::inv(loc);
            let omega_val = {
                let mut acc = 0u8;
                for (j, &c) in omega.iter().enumerate() {
                    acc ^= gf256::mul(c, pow(x_inv, j));
                }
                acc
            };
            let sigma_deriv = {
                let mut acc = 0u8;
                let mut j = 1;
                while j < sigma.len() {
                    acc ^= gf256::mul(sigma[j], pow(x_inv, j - 1));
                    j += 2;
                }
                acc
            };
            if sigma_deriv == 0 {
                return Err(RsError::TooManyErrors);
            }
            // Forney with first root b = 0: e_j = X_j · Ω(X_j⁻¹) / σ'(X_j⁻¹).
            let magnitude = gf256::mul(loc, gf256::div(omega_val, sigma_deriv));
            codeword[pos] ^= magnitude;
        }

        // Verify: all syndromes must now vanish.
        for i in 0..parity_len {
            if gf256::poly_eval(codeword, gf256::exp(i)) != 0 {
                return Err(RsError::TooManyErrors);
            }
        }
        Ok(&codeword[..self.k])
    }
}

impl ReedSolomon {
    /// Decodes a codeword whose only corruption is *erasures* at known
    /// positions (symbols lost, locations known). Erasure decoding
    /// corrects up to `n − k` losses — twice the unknown-error capacity —
    /// which is what makes RS the right outer code across strands, where
    /// missing indices pinpoint the losses.
    ///
    /// # Errors
    ///
    /// [`RsError::LengthMismatch`] for a wrong-length codeword;
    /// [`RsError::TooManyErrors`] if more than `n − k` positions are
    /// erased, an erasure position is out of range, or the corrected word
    /// fails re-verification.
    pub fn decode_erasures<'a>(
        &self,
        codeword: &'a mut [u8],
        erasures: &[usize],
    ) -> Result<&'a [u8], RsError> {
        if codeword.len() != self.n {
            return Err(RsError::LengthMismatch {
                expected: self.n,
                actual: codeword.len(),
            });
        }
        let parity_len = self.n - self.k;
        if erasures.len() > parity_len {
            return Err(RsError::TooManyErrors);
        }
        if erasures.iter().any(|&p| p >= self.n) {
            return Err(RsError::TooManyErrors);
        }
        if erasures.is_empty() {
            // Nothing erased: just verify.
            for i in 0..parity_len {
                if gf256::poly_eval(codeword, gf256::exp(i)) != 0 {
                    return Err(RsError::TooManyErrors);
                }
            }
            return Ok(&codeword[..self.k]);
        }

        let syndromes: Vec<Gf> = (0..parity_len)
            .map(|i| gf256::poly_eval(codeword, gf256::exp(i)))
            .collect();

        // Erasure locator Λ(x) = ∏ (1 − X_j·x), lowest-degree-first.
        let mut lambda = vec![1u8];
        for &pos in erasures {
            let loc = gf256::exp(self.n - 1 - pos);
            // multiply lambda by (1 + loc·x) (− = + in GF(2^8))
            let mut next = vec![0u8; lambda.len() + 1];
            for (i, &c) in lambda.iter().enumerate() {
                next[i] ^= c;
                next[i + 1] ^= gf256::mul(c, loc);
            }
            lambda = next;
        }

        // Ω(x) = [S(x)·Λ(x)] mod x^{parity_len}.
        let mut omega = vec![0u8; parity_len];
        for (i, &syn) in syndromes.iter().enumerate() {
            for (j, &c) in lambda.iter().enumerate() {
                if i + j < parity_len {
                    omega[i + j] ^= gf256::mul(syn, c);
                }
            }
        }

        // Forney for each erasure: e_j = X_j·Ω(X_j⁻¹) / Λ'(X_j⁻¹).
        for &pos in erasures {
            let loc = gf256::exp(self.n - 1 - pos);
            let x_inv = gf256::inv(loc);
            let omega_val = {
                let mut acc = 0u8;
                for (j, &c) in omega.iter().enumerate() {
                    acc ^= gf256::mul(c, pow(x_inv, j));
                }
                acc
            };
            let lambda_deriv = {
                let mut acc = 0u8;
                let mut j = 1;
                while j < lambda.len() {
                    acc ^= gf256::mul(lambda[j], pow(x_inv, j - 1));
                    j += 2;
                }
                acc
            };
            if lambda_deriv == 0 {
                return Err(RsError::TooManyErrors);
            }
            let magnitude = gf256::mul(loc, gf256::div(omega_val, lambda_deriv));
            codeword[pos] ^= magnitude;
        }

        for i in 0..parity_len {
            if gf256::poly_eval(codeword, gf256::exp(i)) != 0 {
                return Err(RsError::TooManyErrors);
            }
        }
        Ok(&codeword[..self.k])
    }
}

/// x^e in GF(2⁸).
fn pow(x: Gf, e: usize) -> Gf {
    if e == 0 {
        return 1;
    }
    if x == 0 {
        return 0;
    }
    gf256::exp(gf256::log(x) * e % 255)
}

/// Berlekamp–Massey over GF(2⁸); returns the error-locator polynomial in
/// lowest-degree-first order with σ[0] = 1.
fn berlekamp_massey(syndromes: &[Gf]) -> Vec<Gf> {
    let mut sigma = vec![1u8];
    let mut prev = vec![1u8];
    let mut l = 0usize;
    let mut m = 1usize;
    let mut b = 1u8;
    for n in 0..syndromes.len() {
        // Discrepancy.
        let mut delta = syndromes[n];
        for i in 1..=l.min(sigma.len() - 1) {
            delta ^= gf256::mul(sigma[i], syndromes[n - i]);
        }
        if delta == 0 {
            m += 1;
        } else if 2 * l <= n {
            let temp = sigma.clone();
            let coef = gf256::div(delta, b);
            // σ ← σ − (Δ/b)·x^m·prev
            if sigma.len() < prev.len() + m {
                sigma.resize(prev.len() + m, 0);
            }
            for (i, &p) in prev.iter().enumerate() {
                sigma[i + m] ^= gf256::mul(coef, p);
            }
            l = n + 1 - l;
            prev = temp;
            b = delta;
            m = 1;
        } else {
            let coef = gf256::div(delta, b);
            if sigma.len() < prev.len() + m {
                sigma.resize(prev.len() + m, 0);
            }
            for (i, &p) in prev.iter().enumerate() {
                sigma[i + m] ^= gf256::mul(coef, p);
            }
            m += 1;
        }
    }
    sigma.truncate(l + 1);
    sigma
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnasim_core::rng::seeded;
    use dnasim_core::rng::RngExt;

    #[test]
    fn construction_validates_parameters() {
        assert!(ReedSolomon::new(255, 223).is_ok());
        assert!(ReedSolomon::new(10, 10).is_err());
        assert!(ReedSolomon::new(10, 0).is_err());
        assert!(ReedSolomon::new(256, 200).is_err());
    }

    #[test]
    fn clean_codeword_round_trips() {
        let rs = ReedSolomon::new(20, 14).unwrap();
        let data: Vec<u8> = (0..14).collect();
        let mut cw = rs.encode(&data);
        assert_eq!(cw.len(), 20);
        assert_eq!(&cw[..14], &data[..]); // systematic
        assert_eq!(rs.decode(&mut cw).unwrap(), &data[..]);
    }

    #[test]
    fn corrects_up_to_capacity() {
        let rs = ReedSolomon::new(32, 24).unwrap(); // t = 4
        let mut rng = seeded(1);
        for trial in 0..50 {
            let data: Vec<u8> = (0..24).map(|_| rng.random()).collect();
            let clean = rs.encode(&data);
            for errors in 1..=rs.correction_capacity() {
                let mut cw = clean.clone();
                // Corrupt `errors` distinct positions.
                let mut positions = std::collections::HashSet::new();
                while positions.len() < errors {
                    positions.insert(rng.random_range(0..32usize));
                }
                for &p in &positions {
                    let flip: u8 = rng.random_range(1..=255u32) as u8;
                    cw[p] ^= flip;
                }
                assert_eq!(
                    rs.decode(&mut cw).expect("within capacity"),
                    &data[..],
                    "trial {trial}, {errors} errors"
                );
            }
        }
    }

    #[test]
    fn detects_overload_beyond_capacity() {
        let rs = ReedSolomon::new(16, 12).unwrap(); // t = 2
        let mut rng = seeded(2);
        let mut failures = 0;
        let trials = 100;
        for _ in 0..trials {
            let data: Vec<u8> = (0..12).map(|_| rng.random()).collect();
            let mut cw = rs.encode(&data);
            // 5 errors is far beyond t = 2.
            let mut positions = std::collections::HashSet::new();
            while positions.len() < 5 {
                positions.insert(rng.random_range(0..16usize));
            }
            for &p in &positions {
                cw[p] ^= rng.random_range(1..=255u32) as u8;
            }
            match rs.decode(&mut cw) {
                Err(RsError::TooManyErrors) => failures += 1,
                Ok(decoded) => {
                    // RS may miscorrect beyond capacity — but never silently
                    // return the wrong data while *claiming* the original.
                    if decoded != &data[..] {
                        failures += 1; // counted as detected-or-miscorrected
                    }
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        // The overwhelming majority of overloads must be flagged.
        assert!(failures > trials * 8 / 10, "only {failures}/{trials} flagged");
    }

    #[test]
    fn wrong_length_is_rejected() {
        let rs = ReedSolomon::new(16, 12).unwrap();
        let mut short = vec![0u8; 10];
        assert_eq!(
            rs.decode(&mut short),
            Err(RsError::LengthMismatch {
                expected: 16,
                actual: 10
            })
        );
    }

    #[test]
    #[should_panic(expected = "data must be exactly k bytes")]
    fn encode_rejects_wrong_data_length() {
        let rs = ReedSolomon::new(16, 12).unwrap();
        let _ = rs.encode(&[0u8; 5]);
    }

    #[test]
    fn single_error_in_parity_is_corrected() {
        let rs = ReedSolomon::new(12, 8).unwrap();
        let data = [9u8; 8];
        let mut cw = rs.encode(&data);
        cw[11] ^= 0xa5; // corrupt a parity symbol
        assert_eq!(rs.decode(&mut cw).unwrap(), &data[..]);
    }

    #[test]
    fn large_code_255_223() {
        let rs = ReedSolomon::new(255, 223).unwrap();
        let mut rng = seeded(3);
        let data: Vec<u8> = (0..223).map(|_| rng.random()).collect();
        let mut cw = rs.encode(&data);
        for p in [0usize, 100, 200, 254, 50, 51, 52, 128, 99, 10, 11, 12, 13, 14, 15, 16] {
            cw[p] ^= 0x3c;
        }
        assert_eq!(rs.decode(&mut cw).unwrap(), &data[..]);
    }

    #[test]
    fn erasure_decoding_corrects_full_parity_budget() {
        let rs = ReedSolomon::new(16, 10).unwrap(); // 6 erasures correctable
        let mut rng = seeded(10);
        for _ in 0..30 {
            let data: Vec<u8> = (0..10).map(|_| rng.random()).collect();
            let clean = rs.encode(&data);
            let mut erased: Vec<usize> = (0..16).collect();
            use dnasim_core::rng::SliceRandom;
            erased.shuffle(&mut rng);
            erased.truncate(6);
            let mut cw = clean.clone();
            for &p in &erased {
                cw[p] = 0; // symbol lost; decoder only knows the position
            }
            assert_eq!(rs.decode_erasures(&mut cw, &erased).unwrap(), &data[..]);
        }
    }

    #[test]
    fn erasure_decoding_rejects_over_budget() {
        let rs = ReedSolomon::new(12, 8).unwrap();
        let mut cw = rs.encode(&[1u8; 8]);
        let too_many: Vec<usize> = (0..5).collect();
        assert_eq!(
            rs.decode_erasures(&mut cw, &too_many),
            Err(RsError::TooManyErrors)
        );
    }

    #[test]
    fn erasure_decoding_clean_word_verifies() {
        let rs = ReedSolomon::new(12, 8).unwrap();
        let data = [7u8; 8];
        let mut cw = rs.encode(&data);
        assert_eq!(rs.decode_erasures(&mut cw, &[]).unwrap(), &data[..]);
        cw[3] ^= 1; // silent corruption without erasure info is detected
        assert_eq!(rs.decode_erasures(&mut cw, &[]), Err(RsError::TooManyErrors));
    }

    #[test]
    fn erasure_positions_out_of_range_rejected() {
        let rs = ReedSolomon::new(12, 8).unwrap();
        let mut cw = rs.encode(&[0u8; 8]);
        assert_eq!(
            rs.decode_erasures(&mut cw, &[12]),
            Err(RsError::TooManyErrors)
        );
    }

    #[test]
    fn error_display() {
        assert!(RsError::TooManyErrors.to_string().contains("too many"));
        assert!(RsError::InvalidParameters { n: 1, k: 1 }
            .to_string()
            .contains("n=1"));
    }
}
