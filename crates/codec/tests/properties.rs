//! Property-based tests for the codec stack.

use dnasim_testkit::prelude::*;

use dnasim_codec::{
    OuterRsCode, ReedSolomon, RotationCodec, StrandLayout, TwoBitCodec, XorParity,
};
use dnasim_core::rng::seeded;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn two_bit_density_is_four_bases_per_byte(
        bytes in dnasim_testkit::collection::vec(any::<u8>(), 0..100),
    ) {
        let strand = TwoBitCodec.encode(&bytes);
        prop_assert_eq!(strand.len(), bytes.len() * 4);
        prop_assert_eq!(TwoBitCodec.decode(&strand).unwrap(), bytes);
    }

    #[test]
    fn rotation_is_homopolymer_free_for_any_payload(
        bytes in dnasim_testkit::collection::vec(any::<u8>(), 1..100),
    ) {
        let strand = RotationCodec.encode(&bytes);
        prop_assert_eq!(strand.len(), bytes.len() * 6);
        prop_assert!(strand.max_homopolymer() <= 1);
        prop_assert_eq!(RotationCodec.decode(&strand).unwrap(), bytes);
    }

    #[test]
    fn rs_parameters_and_round_trip(
        k in 1usize..40,
        extra in 2usize..16,
        seed in any::<u64>(),
    ) {
        let n = k + extra;
        let rs = ReedSolomon::new(n, k).unwrap();
        prop_assert_eq!(rs.correction_capacity(), extra / 2);
        use dnasim_core::rng::RngExt;
        let mut rng = seeded(seed);
        let data: Vec<u8> = (0..k).map(|_| rng.random()).collect();
        let mut cw = rs.encode(&data);
        prop_assert_eq!(cw.len(), n);
        prop_assert_eq!(rs.decode(&mut cw).unwrap(), &data[..]);
    }

    #[test]
    fn rs_erasures_up_to_full_budget(
        k in 2usize..20,
        extra in 2usize..10,
        seed in any::<u64>(),
    ) {
        let n = k + extra;
        let rs = ReedSolomon::new(n, k).unwrap();
        use dnasim_core::rng::RngExt;
        use dnasim_core::rng::SliceRandom;
        let mut rng = seeded(seed);
        let data: Vec<u8> = (0..k).map(|_| rng.random()).collect();
        let clean = rs.encode(&data);
        let mut positions: Vec<usize> = (0..n).collect();
        positions.shuffle(&mut rng);
        positions.truncate(extra);
        let mut cw = clean.clone();
        for &p in &positions {
            cw[p] = 0;
        }
        prop_assert_eq!(rs.decode_erasures(&mut cw, &positions).unwrap(), &data[..]);
    }

    #[test]
    fn xor_parity_layout_arithmetic(
        payload_count in 1usize..40,
        group in 1usize..8,
    ) {
        let parity = XorParity::new(group);
        let payloads: Vec<Vec<u8>> = (0..payload_count).map(|i| vec![i as u8; 4]).collect();
        let protected = parity.protect(&payloads);
        prop_assert_eq!(protected.len(), parity.protected_len(payload_count));
        // No losses: recovery is a no-op.
        let mut received: Vec<Option<Vec<u8>>> = protected.into_iter().map(Some).collect();
        prop_assert_eq!(parity.recover(&mut received).unwrap(), 0);
    }

    #[test]
    fn outer_code_single_loss_anywhere(
        payload_count in 1usize..25,
        loss_seed in any::<u64>(),
    ) {
        let outer = OuterRsCode::new(6, 4).unwrap();
        let payloads: Vec<Vec<u8>> =
            (0..payload_count).map(|i| vec![(i * 13) as u8; 6]).collect();
        let protected = outer.protect(&payloads);
        prop_assert_eq!(protected.len(), outer.protected_len(payload_count));
        let mut received: Vec<Option<Vec<u8>>> =
            protected.iter().cloned().map(Some).collect();
        let loss = (loss_seed as usize) % received.len();
        let lost = received[loss].take().unwrap();
        prop_assert_eq!(outer.recover(&mut received).unwrap(), 1);
        prop_assert_eq!(received[loss].as_ref().unwrap(), &lost);
    }

    #[test]
    fn layout_file_round_trip(
        data in dnasim_testkit::collection::vec(any::<u8>(), 0..200),
        seed in any::<u64>(),
    ) {
        let mut rng = seeded(seed);
        let layout = StrandLayout::new(20, 12, &mut rng).unwrap();
        let strands = layout.encode_file(&data);
        prop_assert!(strands.iter().all(|s| s.len() == layout.strand_len()));
        let decoded = layout.decode_file(&strands).unwrap();
        prop_assert_eq!(&decoded[..data.len()], &data[..]);
        prop_assert!(decoded[data.len()..].iter().all(|&b| b == 0));
    }

    #[test]
    fn layout_strands_are_pairwise_distant(
        seed in any::<u64>(),
    ) {
        // Scrambling must keep even structured payloads distinguishable.
        let mut rng = seeded(seed);
        let layout = StrandLayout::new(20, 12, &mut rng).unwrap();
        let data = vec![0u8; 96]; // the most structured payload possible
        let strands = layout.encode_file(&data);
        for i in 0..strands.len() {
            for j in (i + 1)..strands.len() {
                let d = dnasim_metrics::levenshtein(
                    strands[i].as_bases(),
                    strands[j].as_bases(),
                );
                prop_assert!(d > 20, "strands {i} and {j} are only {d} apart");
            }
        }
    }
}
