//! Datasets for DNA-storage evaluation: the synthetic Nanopore twin,
//! reference generators, and cluster-file I/O.
//!
//! The paper evaluates simulators against a Microsoft Nanopore dataset
//! (10,000 clusters, ≈27× mean coverage, 5.9% aggregate error). That data
//! is not redistributable, so [`NanoporeTwinConfig`] generates a
//! statistical twin through a hidden [`GroundTruthChannel`] that
//! reproduces every statistic the paper measures — and adds effects
//! (bursts, per-read quality, homopolymer sensitivity) that no simulator
//! under test models, keeping the comparison honest.
//!
//! # Examples
//!
//! ```
//! use dnasim_dataset::NanoporeTwinConfig;
//!
//! let mut config = NanoporeTwinConfig::small();
//! config.cluster_count = 50;
//! let dataset = config.generate();
//! assert_eq!(dataset.len(), 50);
//! assert!(dataset.mean_coverage() > 15.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod binary;
mod format;
mod generators;
mod io;
mod twin;

pub use binary::{
    fnv1a64, BinaryDatasetReader, BinaryDatasetWriter, BINARY_MAGIC, BINARY_VERSION,
};
pub use format::{
    read_dataset_auto, write_dataset_format, AnyDatasetReader, AnyDatasetWriter, Format,
    ParseFormatError,
};
pub use generators::{generate_references, ReferenceStyle};
pub use io::{read_dataset, write_dataset, DatasetReader, DatasetWriter, ReadDatasetError};
pub use twin::{GroundTruthChannel, NanoporeTwinConfig, TwinProfile};
