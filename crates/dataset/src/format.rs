//! Cluster-file format selection and auto-detection.
//!
//! Two on-disk formats carry the same clusters: the line-oriented text
//! format (the interchange format, see [`read_dataset`](crate::read_dataset))
//! and the length-prefixed binary format (the throughput format, see
//! [`BinaryDatasetReader`](crate::BinaryDatasetReader)). This module
//! provides [`Format`] for explicit selection (`--format text|binary`),
//! one-byte auto-detection (the binary magic starts with `0x89`, outside
//! ASCII, while text starts with `>`, whitespace, or nothing), and
//! [`AnyDatasetReader`]/[`AnyDatasetWriter`] wrappers that present the
//! two codecs behind one streaming face.

use std::fmt;
use std::io::{self, BufRead, Write};
use std::str::FromStr;

use dnasim_core::{Batch, Cluster, ClusterSink, ClusterSource, Dataset, DnasimError};

use crate::binary::{BinaryDatasetReader, BinaryDatasetWriter, BINARY_MAGIC};
use crate::io::{DatasetReader, DatasetWriter, ReadDatasetError};

/// A cluster-file on-disk format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Format {
    /// Line-oriented `>`-reference text (the interchange format).
    #[default]
    Text,
    /// Length-prefixed, checksummed 2-bit binary frames.
    Binary,
}

impl Format {
    /// The accepted spellings, in display order (for CLI error messages).
    pub const CHOICES: [&'static str; 2] = ["text", "binary"];

    /// The canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Format::Text => "text",
            Format::Binary => "binary",
        }
    }

    /// Detects the format of `reader` from its first buffered byte
    /// without consuming anything. Empty input detects as text (an empty
    /// text file is an empty dataset).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from filling the buffer.
    pub fn detect<R: BufRead>(reader: &mut R) -> io::Result<Format> {
        let buf = reader.fill_buf()?;
        Ok(match buf.first() {
            Some(&first) if first == BINARY_MAGIC[0] => Format::Binary,
            _ => Format::Text,
        })
    }
}

impl fmt::Display for Format {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error from parsing a [`Format`] name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFormatError {
    /// The rejected spelling.
    pub value: String,
}

impl fmt::Display for ParseFormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown format {:?} (expected one of: {})",
            self.value,
            Format::CHOICES.join(", ")
        )
    }
}

impl std::error::Error for ParseFormatError {}

impl FromStr for Format {
    type Err = ParseFormatError;

    fn from_str(s: &str) -> Result<Format, ParseFormatError> {
        match s.trim().to_ascii_lowercase().as_str() {
            "text" => Ok(Format::Text),
            "binary" => Ok(Format::Binary),
            _ => Err(ParseFormatError {
                value: s.to_owned(),
            }),
        }
    }
}

/// A streaming cluster reader over either format, with the same face as
/// the per-format readers.
///
/// # Examples
///
/// ```
/// use dnasim_dataset::{AnyDatasetReader, Format};
///
/// let text = ">ACGT\nACG\n";
/// let mut reader = AnyDatasetReader::detect(text.as_bytes())?;
/// assert_eq!(reader.format(), Format::Text);
/// assert_eq!(reader.next_cluster()?.ok_or("missing")?.coverage(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub enum AnyDatasetReader<R> {
    /// Reading the text format.
    Text(DatasetReader<R>),
    /// Reading the binary format.
    Binary(BinaryDatasetReader<R>),
}

impl<R: BufRead> AnyDatasetReader<R> {
    /// Wraps `reader` for an explicitly chosen format.
    pub fn with_format(reader: R, format: Format) -> AnyDatasetReader<R> {
        match format {
            Format::Text => AnyDatasetReader::Text(DatasetReader::new(reader)),
            Format::Binary => AnyDatasetReader::Binary(BinaryDatasetReader::new(reader)),
        }
    }

    /// Auto-detects the format from the first byte and wraps accordingly.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from peeking the stream.
    pub fn detect(mut reader: R) -> Result<AnyDatasetReader<R>, ReadDatasetError> {
        let format = Format::detect(&mut reader).map_err(|source| ReadDatasetError::Io {
            line: 0,
            offset: 0,
            source,
        })?;
        Ok(AnyDatasetReader::with_format(reader, format))
    }

    /// The format this reader is decoding.
    pub fn format(&self) -> Format {
        match self {
            AnyDatasetReader::Text(_) => Format::Text,
            AnyDatasetReader::Binary(_) => Format::Binary,
        }
    }

    /// Number of clusters emitted so far.
    pub fn clusters_read(&self) -> usize {
        match self {
            AnyDatasetReader::Text(r) => r.clusters_read(),
            AnyDatasetReader::Binary(r) => r.clusters_read(),
        }
    }

    /// Bytes fully consumed from the underlying reader so far.
    pub fn bytes_read(&self) -> u64 {
        match self {
            AnyDatasetReader::Text(r) => r.bytes_read(),
            AnyDatasetReader::Binary(r) => r.bytes_read(),
        }
    }

    /// Parses the next cluster, or `Ok(None)` at end of input.
    ///
    /// # Errors
    ///
    /// Any [`ReadDatasetError`] variant for malformed input; the reader
    /// is fused afterwards.
    pub fn next_cluster(&mut self) -> Result<Option<Cluster>, ReadDatasetError> {
        match self {
            AnyDatasetReader::Text(r) => r.next_cluster(),
            AnyDatasetReader::Binary(r) => r.next_cluster(),
        }
    }
}

impl<R: BufRead> Iterator for AnyDatasetReader<R> {
    type Item = Result<Cluster, ReadDatasetError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_cluster().transpose()
    }
}

impl<R: BufRead> ClusterSource for AnyDatasetReader<R> {
    fn next_batch(&mut self, max: usize) -> Result<Option<Batch>, DnasimError> {
        match self {
            AnyDatasetReader::Text(r) => r.next_batch(max),
            AnyDatasetReader::Binary(r) => r.next_batch(max),
        }
    }
}

/// A streaming cluster writer over either format, with the same face as
/// the per-format writers.
#[derive(Debug)]
pub enum AnyDatasetWriter<W: Write> {
    /// Writing the text format.
    Text(DatasetWriter<W>),
    /// Writing the binary format.
    Binary(BinaryDatasetWriter<W>),
}

impl<W: Write> AnyDatasetWriter<W> {
    /// Creates a streaming writer emitting `format`.
    pub fn new(writer: W, format: Format) -> AnyDatasetWriter<W> {
        match format {
            Format::Text => AnyDatasetWriter::Text(DatasetWriter::new(writer)),
            Format::Binary => AnyDatasetWriter::Binary(BinaryDatasetWriter::new(writer)),
        }
    }

    /// The format this writer emits.
    pub fn format(&self) -> Format {
        match self {
            AnyDatasetWriter::Text(_) => Format::Text,
            AnyDatasetWriter::Binary(_) => Format::Binary,
        }
    }

    /// Number of clusters written so far.
    pub fn clusters_written(&self) -> usize {
        match self {
            AnyDatasetWriter::Text(w) => w.clusters_written(),
            AnyDatasetWriter::Binary(w) => w.clusters_written(),
        }
    }

    /// Number of reads written so far.
    pub fn reads_written(&self) -> usize {
        match self {
            AnyDatasetWriter::Text(w) => w.reads_written(),
            AnyDatasetWriter::Binary(w) => w.reads_written(),
        }
    }

    /// Number of erasure clusters written so far.
    pub fn erasures_written(&self) -> usize {
        match self {
            AnyDatasetWriter::Text(w) => w.erasures_written(),
            AnyDatasetWriter::Binary(w) => w.erasures_written(),
        }
    }

    /// Appends one cluster in the chosen format.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from the writer.
    pub fn write_cluster(&mut self, cluster: &Cluster) -> io::Result<()> {
        match self {
            AnyDatasetWriter::Text(w) => w.write_cluster(cluster),
            AnyDatasetWriter::Binary(w) => w.write_cluster(cluster),
        }
    }

    /// Finalises the output (binary headers for empty files), flushes,
    /// and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn into_inner(self) -> io::Result<W> {
        match self {
            AnyDatasetWriter::Text(w) => w.into_inner(),
            AnyDatasetWriter::Binary(w) => w.into_inner(),
        }
    }
}

impl<W: Write> ClusterSink for AnyDatasetWriter<W> {
    fn accept(&mut self, batch: Batch) -> Result<(), DnasimError> {
        match self {
            AnyDatasetWriter::Text(w) => w.accept(batch),
            AnyDatasetWriter::Binary(w) => w.accept(batch),
        }
    }

    fn finish(&mut self) -> Result<(), DnasimError> {
        match self {
            AnyDatasetWriter::Text(w) => w.finish(),
            AnyDatasetWriter::Binary(w) => w.finish(),
        }
    }
}

/// Reads a whole dataset in either format, auto-detected by magic bytes.
///
/// # Errors
///
/// Any [`ReadDatasetError`] variant for malformed input.
///
/// # Examples
///
/// ```
/// use dnasim_dataset::read_dataset_auto;
///
/// let ds = read_dataset_auto(">ACGT\nACG\n".as_bytes())?;
/// assert_eq!(ds.len(), 1);
/// # Ok::<(), dnasim_dataset::ReadDatasetError>(())
/// ```
pub fn read_dataset_auto<R: BufRead>(reader: R) -> Result<Dataset, ReadDatasetError> {
    let mut source = AnyDatasetReader::detect(reader)?;
    let mut dataset = Dataset::new();
    while let Some(cluster) = source.next_cluster()? {
        dataset.push(cluster);
    }
    Ok(dataset)
}

/// Writes a whole dataset in the chosen format.
///
/// # Errors
///
/// Propagates I/O failures from the writer.
pub fn write_dataset_format<W: Write>(
    dataset: &Dataset,
    writer: W,
    format: Format,
) -> io::Result<()> {
    let mut sink = AnyDatasetWriter::new(writer, format);
    for cluster in dataset.iter() {
        sink.write_cluster(cluster)?;
    }
    sink.into_inner().map(drop)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnasim_core::rng::seeded;
    use dnasim_core::Strand;

    fn sample() -> Dataset {
        let mut rng = seeded(5);
        let mut ds = Dataset::new();
        for i in 0..5 {
            let reference = Strand::random(30, &mut rng);
            let reads = (0..i).map(|_| Strand::random(28, &mut rng)).collect();
            ds.push(Cluster::new(reference, reads));
        }
        ds
    }

    #[test]
    fn format_parses_and_displays() {
        assert_eq!("text".parse::<Format>().unwrap(), Format::Text);
        assert_eq!("Binary".parse::<Format>().unwrap(), Format::Binary);
        assert_eq!(Format::Binary.to_string(), "binary");
        let err = "fasta".parse::<Format>().unwrap_err();
        assert!(err.to_string().contains("text, binary"), "{err}");
    }

    #[test]
    fn auto_detection_round_trips_both_formats() {
        let ds = sample();
        for format in [Format::Text, Format::Binary] {
            let mut buf = Vec::new();
            write_dataset_format(&ds, &mut buf, format).unwrap();
            let mut detected = AnyDatasetReader::detect(buf.as_slice()).unwrap();
            assert_eq!(detected.format(), format);
            let mut back = Dataset::new();
            while let Some(cluster) = detected.next_cluster().unwrap() {
                back.push(cluster);
            }
            assert_eq!(back, ds, "{format}");
            assert_eq!(read_dataset_auto(buf.as_slice()).unwrap(), ds, "{format}");
        }
    }

    #[test]
    fn empty_input_detects_as_text_and_parses_empty() {
        let mut empty: &[u8] = &[];
        assert_eq!(Format::detect(&mut empty).unwrap(), Format::Text);
        assert!(read_dataset_auto("".as_bytes()).unwrap().is_empty());
    }

    #[test]
    fn detection_does_not_consume_bytes() {
        let bytes = b">AC\nAC\n";
        let mut reader: &[u8] = bytes;
        assert_eq!(Format::detect(&mut reader).unwrap(), Format::Text);
        assert_eq!(reader, bytes);
    }

    #[test]
    fn wrapper_counters_match_inner_writer() {
        let ds = sample();
        let mut sink = AnyDatasetWriter::new(Vec::new(), Format::Binary);
        for cluster in ds.iter() {
            sink.write_cluster(cluster).unwrap();
        }
        assert_eq!(sink.clusters_written(), ds.len());
        assert_eq!(sink.reads_written(), ds.total_reads());
        assert_eq!(sink.erasures_written(), ds.erasure_count());
    }
}
