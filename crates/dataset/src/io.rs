//! Cluster-file text I/O.
//!
//! The on-disk format mirrors the Microsoft Nanopore cluster files the
//! paper works with: each cluster is the reference strand on a `>`-prefixed
//! line followed by one read per line, clusters separated by blank lines.
//!
//! ```text
//! >ACGTACGTAC
//! ACGTACTAC
//! ACGGTACGTAC
//!
//! >TTGACCAGTA
//! TTGACCAGTA
//! ```
//!
//! Parsing is tolerant of the byte-level variation real files arrive
//! with: CRLF line endings, surrounding whitespace, repeated or trailing
//! blank lines, and a final cluster with no blank line after it all parse
//! identically to the canonical form.
//!
//! One extension over the Microsoft format: a read whose every base was
//! deleted by the channel is a zero-length strand, which a bare line
//! cannot express (an empty line already means "cluster boundary"). Such
//! reads are written as a single `-` and parsed back to an empty read, so
//! `write_dataset` → `read_dataset` is lossless for every dataset the
//! simulator can produce.

use std::fmt;
use std::io::{self, BufRead, Write};

use dnasim_core::{
    Batch, Cluster, ClusterSink, ClusterSource, Dataset, DnasimError, ParseStrandError, Strand,
};

/// Sentinel line for a zero-length read (all bases deleted).
const EMPTY_READ_TOKEN: &str = "-";

/// Errors from reading a cluster file, text or binary.
///
/// Every variant carries a position: text-format failures carry the
/// 1-based line number they surfaced at (see
/// [`line`](ReadDatasetError::line)) *and* the byte offset of that line's
/// start, while binary frames — which have no lines — carry the byte
/// offset alone (see [`offset`](ReadDatasetError::offset)). Either way, a
/// multi-megabyte cluster file with one bad byte is diagnosable without
/// bisecting it by hand.
#[derive(Debug)]
pub enum ReadDatasetError {
    /// Underlying I/O failure.
    Io {
        /// 1-based line number at which the read failed (the line after
        /// the last one successfully read); 0 for binary input.
        line: usize,
        /// Byte offset at which the read failed (bytes fully consumed
        /// before the failure).
        offset: u64,
        /// The I/O failure.
        source: io::Error,
    },
    /// A line failed to parse as a strand.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Byte offset of the start of the offending line.
        offset: u64,
        /// The parse failure.
        source: ParseStrandError,
    },
    /// A read line appeared before any `>` reference line.
    ReadBeforeReference {
        /// 1-based line number.
        line: usize,
        /// Byte offset of the start of the offending line.
        offset: u64,
    },
    /// A binary cluster frame is malformed: bad magic or version, a
    /// checksum mismatch, a truncated frame, or a length field that lies
    /// about the payload. Binary files have no lines, so the position is
    /// a byte offset only.
    Frame {
        /// Byte offset of the start of the offending frame or field.
        offset: u64,
        /// What was wrong with it.
        message: String,
    },
}

impl ReadDatasetError {
    /// The 1-based line number the failure surfaced at (0 for binary
    /// input, which has no lines — use
    /// [`offset`](ReadDatasetError::offset) instead).
    pub fn line(&self) -> usize {
        match self {
            ReadDatasetError::Io { line, .. }
            | ReadDatasetError::Parse { line, .. }
            | ReadDatasetError::ReadBeforeReference { line, .. } => *line,
            ReadDatasetError::Frame { .. } => 0,
        }
    }

    /// The byte offset the failure surfaced at: the start of the
    /// offending line for text input, the offending frame or field for
    /// binary input.
    pub fn offset(&self) -> u64 {
        match self {
            ReadDatasetError::Io { offset, .. }
            | ReadDatasetError::Parse { offset, .. }
            | ReadDatasetError::ReadBeforeReference { offset, .. }
            | ReadDatasetError::Frame { offset, .. } => *offset,
        }
    }
}

impl fmt::Display for ReadDatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadDatasetError::Io { line: 0, offset, source } => {
                write!(f, "byte {offset}: i/o error: {source}")
            }
            ReadDatasetError::Io { line, offset, source } => {
                write!(f, "line {line} (byte {offset}): i/o error: {source}")
            }
            ReadDatasetError::Parse { line, offset, source } => {
                write!(f, "line {line} (byte {offset}): {source}")
            }
            ReadDatasetError::ReadBeforeReference { line, offset } => {
                write!(
                    f,
                    "line {line} (byte {offset}): read appears before any '>' reference line"
                )
            }
            ReadDatasetError::Frame { offset, message } => {
                write!(f, "byte {offset}: {message}")
            }
        }
    }
}

impl std::error::Error for ReadDatasetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadDatasetError::Io { source, .. } => Some(source),
            ReadDatasetError::Parse { source, .. } => Some(source),
            ReadDatasetError::ReadBeforeReference { .. } | ReadDatasetError::Frame { .. } => None,
        }
    }
}

impl From<ReadDatasetError> for DnasimError {
    fn from(e: ReadDatasetError) -> DnasimError {
        match e {
            // Re-wrap so the position survives into the generic error;
            // the original kind is preserved for retry/ENOENT dispatch.
            ReadDatasetError::Io { line: 0, offset, source } => DnasimError::Io(io::Error::new(
                source.kind(),
                format!("cluster file byte {offset}: {source}"),
            )),
            ReadDatasetError::Io { line, offset, source } => DnasimError::Io(io::Error::new(
                source.kind(),
                format!("cluster file line {line} (byte {offset}): {source}"),
            )),
            ReadDatasetError::Parse { line, offset, source } => DnasimError::parse(
                "cluster file",
                line,
                format!("byte {offset}: {source}"),
            ),
            ReadDatasetError::ReadBeforeReference { line, offset } => DnasimError::parse(
                "cluster file",
                line,
                format!("byte {offset}: read appears before any '>' reference line"),
            ),
            ReadDatasetError::Frame { offset, message } => DnasimError::parse(
                "binary cluster file",
                0,
                format!("byte {offset}: {message}"),
            ),
        }
    }
}

/// An incremental cluster-file parser: yields one [`Cluster`] at a time
/// over any [`BufRead`], holding at most one cluster in memory.
///
/// This is the streaming face of [`read_dataset`] (which is now a thin
/// wrapper over it) and implements
/// [`ClusterSource`](dnasim_core::ClusterSource) so a file on disk plugs
/// directly into the bounded-window pipeline. All byte-level tolerance
/// (CRLF, surrounding whitespace, repeated/trailing blank lines, the `-`
/// empty-read sentinel) is identical to the whole-file parser, because it
/// *is* the whole-file parser, re-cut at cluster granularity.
///
/// After the first error the reader is fused: subsequent calls yield
/// end-of-stream rather than resuming a corrupt parse.
///
/// # Examples
///
/// ```
/// use dnasim_dataset::DatasetReader;
///
/// let text = ">ACGT\nACG\n\n>TTTT\n";
/// let mut reader = DatasetReader::new(text.as_bytes());
/// let first = reader.next_cluster()?.ok_or("missing cluster")?;
/// assert_eq!(first.coverage(), 1);
/// let second = reader.next_cluster()?.ok_or("missing cluster")?;
/// assert!(second.is_erasure());
/// assert!(reader.next_cluster()?.is_none());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct DatasetReader<R> {
    reader: R,
    buf: String,
    line_no: usize,
    offset: u64,
    pending: Option<Cluster>,
    emitted: usize,
    done: bool,
}

impl<R: BufRead> DatasetReader<R> {
    /// Creates a streaming reader over cluster-file text.
    pub fn new(reader: R) -> DatasetReader<R> {
        DatasetReader {
            reader,
            buf: String::new(),
            line_no: 0,
            offset: 0,
            pending: None,
            emitted: 0,
            done: false,
        }
    }

    /// Number of clusters emitted so far (the global index of the next
    /// cluster this reader will yield).
    pub fn clusters_read(&self) -> usize {
        self.emitted
    }

    /// Bytes fully consumed from the underlying reader so far.
    pub fn bytes_read(&self) -> u64 {
        self.offset
    }

    /// Parses the next cluster, or `Ok(None)` at end of input.
    ///
    /// # Errors
    ///
    /// Any [`ReadDatasetError`] variant for malformed input; the reader
    /// is fused afterwards.
    pub fn next_cluster(&mut self) -> Result<Option<Cluster>, ReadDatasetError> {
        if self.done {
            return Ok(None);
        }
        match self.advance() {
            Ok(Some(cluster)) => {
                self.emitted += 1;
                Ok(Some(cluster))
            }
            Ok(None) => {
                self.done = true;
                Ok(None)
            }
            Err(e) => {
                self.done = true;
                Err(e)
            }
        }
    }

    fn advance(&mut self) -> Result<Option<Cluster>, ReadDatasetError> {
        loop {
            self.buf.clear();
            let line_start = self.offset;
            let consumed =
                self.reader
                    .read_line(&mut self.buf)
                    .map_err(|source| ReadDatasetError::Io {
                        line: self.line_no + 1,
                        offset: line_start,
                        source,
                    })?;
            if consumed == 0 {
                break;
            }
            self.line_no += 1;
            self.offset += consumed as u64;
            let line_no = self.line_no;
            let trimmed = self.buf.trim();
            if trimmed.is_empty() {
                if let Some(cluster) = self.pending.take() {
                    return Ok(Some(cluster));
                }
                continue;
            }
            if let Some(reference_text) = trimmed.strip_prefix('>') {
                let reference: Strand = reference_text
                    .trim()
                    .parse()
                    .map_err(|source| ReadDatasetError::Parse {
                        line: line_no,
                        offset: line_start,
                        source,
                    })?;
                let flushed = self.pending.replace(Cluster::erasure(reference));
                if let Some(cluster) = flushed {
                    return Ok(Some(cluster));
                }
            } else {
                let read: Strand = if trimmed == EMPTY_READ_TOKEN {
                    Strand::new()
                } else {
                    trimmed.parse().map_err(|source| ReadDatasetError::Parse {
                        line: line_no,
                        offset: line_start,
                        source,
                    })?
                };
                match self.pending.as_mut() {
                    Some(cluster) => cluster.push_read(read),
                    None => {
                        return Err(ReadDatasetError::ReadBeforeReference {
                            line: line_no,
                            offset: line_start,
                        })
                    }
                }
            }
        }
        Ok(self.pending.take())
    }
}

impl<R: BufRead> Iterator for DatasetReader<R> {
    type Item = Result<Cluster, ReadDatasetError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_cluster().transpose()
    }
}

impl<R: BufRead> ClusterSource for DatasetReader<R> {
    fn next_batch(&mut self, max: usize) -> Result<Option<Batch>, DnasimError> {
        if max == 0 {
            return Err(DnasimError::config(
                "batch_size",
                "streaming batch size must be at least 1",
            ));
        }
        let start = self.emitted;
        let mut clusters = Vec::new();
        while clusters.len() < max {
            match self.next_cluster()? {
                Some(cluster) => clusters.push(cluster),
                None => break,
            }
        }
        if clusters.is_empty() {
            Ok(None)
        } else {
            Ok(Some(Batch::new(start, clusters)))
        }
    }
}

/// An incremental cluster-file emitter: writes one [`Cluster`] at a time,
/// buffering nothing beyond the underlying writer.
///
/// The streaming face of [`write_dataset`] (now a thin wrapper), and a
/// [`ClusterSink`](dnasim_core::ClusterSink) so the bounded-window
/// pipeline can emit straight to disk. Output is byte-identical to the
/// whole-dataset writer: a blank line *before* every cluster except the
/// first, so interleaving or re-batching never changes the file.
///
/// # Examples
///
/// ```
/// use dnasim_core::Cluster;
/// use dnasim_dataset::{read_dataset, DatasetWriter};
///
/// let mut buf = Vec::new();
/// let mut writer = DatasetWriter::new(&mut buf);
/// writer.write_cluster(&Cluster::erasure("ACGT".parse()?))?;
/// writer.write_cluster(&Cluster::erasure("TTTT".parse()?))?;
/// assert_eq!(writer.clusters_written(), 2);
/// assert_eq!(read_dataset(buf.as_slice())?.len(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct DatasetWriter<W: Write> {
    writer: W,
    clusters: usize,
    reads: usize,
    erasures: usize,
}

impl<W: Write> DatasetWriter<W> {
    /// Creates a streaming writer over `writer`.
    pub fn new(writer: W) -> DatasetWriter<W> {
        DatasetWriter {
            writer,
            clusters: 0,
            reads: 0,
            erasures: 0,
        }
    }

    /// Number of clusters written so far.
    pub fn clusters_written(&self) -> usize {
        self.clusters
    }

    /// Number of reads written so far.
    pub fn reads_written(&self) -> usize {
        self.reads
    }

    /// Number of erasure clusters written so far.
    pub fn erasures_written(&self) -> usize {
        self.erasures
    }

    /// Appends one cluster in cluster-file text format.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from the writer.
    pub fn write_cluster(&mut self, cluster: &Cluster) -> io::Result<()> {
        if self.clusters > 0 {
            writeln!(self.writer)?;
        }
        writeln!(self.writer, ">{}", cluster.reference())?;
        for read in cluster.reads() {
            if read.is_empty() {
                writeln!(self.writer, "{EMPTY_READ_TOKEN}")?;
            } else {
                writeln!(self.writer, "{read}")?;
            }
        }
        self.clusters += 1;
        self.reads += cluster.coverage();
        if cluster.is_erasure() {
            self.erasures += 1;
        }
        Ok(())
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from the flush.
    pub fn into_inner(mut self) -> io::Result<W> {
        self.writer.flush()?;
        Ok(self.writer)
    }
}

impl<W: Write> ClusterSink for DatasetWriter<W> {
    /// Writes the batch, requiring contiguity: the batch must start at the
    /// number of clusters already written.
    fn accept(&mut self, batch: Batch) -> Result<(), DnasimError> {
        if batch.start() != self.clusters {
            return Err(DnasimError::config(
                "stream",
                format!(
                    "batch starts at global index {} but writer has emitted {} clusters",
                    batch.start(),
                    self.clusters
                ),
            ));
        }
        for cluster in batch.clusters() {
            self.write_cluster(cluster).map_err(DnasimError::Io)?;
        }
        Ok(())
    }

    fn finish(&mut self) -> Result<(), DnasimError> {
        self.writer.flush().map_err(DnasimError::Io)
    }
}

/// Reads a dataset from cluster-file text.
///
/// A thin wrapper over [`DatasetReader`] that materialises the whole file.
///
/// # Errors
///
/// Any [`ReadDatasetError`] variant for malformed input.
///
/// # Examples
///
/// ```
/// use dnasim_dataset::read_dataset;
///
/// let text = ">ACGT\nACG\nACGT\n\n>TTTT\n";
/// let ds = read_dataset(text.as_bytes())?;
/// assert_eq!(ds.len(), 2);
/// assert_eq!(ds.clusters()[0].coverage(), 2);
/// assert!(ds.clusters()[1].is_erasure());
/// # Ok::<(), dnasim_dataset::ReadDatasetError>(())
/// ```
pub fn read_dataset<R: BufRead>(reader: R) -> Result<Dataset, ReadDatasetError> {
    let mut dataset = Dataset::new();
    let mut source = DatasetReader::new(reader);
    while let Some(cluster) = source.next_cluster()? {
        dataset.push(cluster);
    }
    Ok(dataset)
}

/// Writes a dataset in cluster-file text format.
///
/// A thin wrapper over [`DatasetWriter`].
///
/// # Errors
///
/// Propagates I/O failures from the writer.
pub fn write_dataset<W: Write>(dataset: &Dataset, writer: W) -> io::Result<()> {
    let mut sink = DatasetWriter::new(writer);
    for cluster in dataset.iter() {
        sink.write_cluster(cluster)?;
    }
    sink.into_inner().map(drop)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnasim_core::rng::seeded;

    fn sample() -> Dataset {
        let mut rng = seeded(1);
        let mut ds = Dataset::new();
        for _ in 0..5 {
            let reference = Strand::random(20, &mut rng);
            let reads = (0..3).map(|_| Strand::random(18, &mut rng)).collect();
            ds.push(Cluster::new(reference, reads));
        }
        ds.push(Cluster::erasure(Strand::random(20, &mut rng)));
        ds
    }

    #[test]
    fn round_trip() {
        let ds = sample();
        let mut buf = Vec::new();
        write_dataset(&ds, &mut buf).unwrap();
        let back = read_dataset(buf.as_slice()).unwrap();
        assert_eq!(back, ds);
    }

    #[test]
    fn empty_input_is_empty_dataset() {
        let ds = read_dataset("".as_bytes()).unwrap();
        assert!(ds.is_empty());
    }

    #[test]
    fn trailing_cluster_without_blank_line() {
        let ds = read_dataset(">AC\nAC\nAG".as_bytes()).unwrap();
        assert_eq!(ds.len(), 1);
        assert_eq!(ds.clusters()[0].coverage(), 2);
    }

    #[test]
    fn multiple_blank_lines_are_tolerated() {
        let ds = read_dataset(">AC\nAC\n\n\n\n>GT\nGT\n".as_bytes()).unwrap();
        assert_eq!(ds.len(), 2);
    }

    #[test]
    fn parse_error_reports_line() {
        let err = read_dataset(">AC\nAX\n".as_bytes()).unwrap_err();
        match err {
            ReadDatasetError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected: {other}"),
        }
    }

    #[test]
    fn read_before_reference_is_rejected() {
        let err = read_dataset("ACGT\n".as_bytes()).unwrap_err();
        assert!(matches!(
            err,
            ReadDatasetError::ReadBeforeReference { line: 1, offset: 0 }
        ));
    }

    #[test]
    fn parse_error_reports_byte_offset_of_the_line_start() {
        // ">AC\n" is 4 bytes, "AC\n" is 3: the bad line starts at byte 7.
        let err = read_dataset(">AC\nAC\nAX\n".as_bytes()).unwrap_err();
        match &err {
            ReadDatasetError::Parse { line, offset, .. } => {
                assert_eq!(*line, 3);
                assert_eq!(*offset, 7);
            }
            other => panic!("unexpected: {other}"),
        }
        assert_eq!(err.offset(), 7);
        assert!(err.to_string().contains("byte 7"));
    }

    #[test]
    fn whitespace_around_lines_is_trimmed() {
        let ds = read_dataset("  >ACGT  \n  AC  \n".as_bytes()).unwrap();
        assert_eq!(ds.clusters()[0].reference().to_string(), "ACGT");
        assert_eq!(ds.clusters()[0].reads()[0].to_string(), "AC");
    }

    #[test]
    fn erasure_round_trips() {
        let mut ds = Dataset::new();
        ds.push(Cluster::erasure("ACGT".parse().unwrap()));
        let mut buf = Vec::new();
        write_dataset(&ds, &mut buf).unwrap();
        let back = read_dataset(buf.as_slice()).unwrap();
        assert_eq!(back.erasure_count(), 1);
    }

    #[test]
    fn streaming_reader_matches_whole_file_parse() {
        let ds = sample();
        let mut buf = Vec::new();
        write_dataset(&ds, &mut buf).unwrap();
        let streamed: Dataset = DatasetReader::new(buf.as_slice())
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(streamed, ds);
    }

    #[test]
    fn streaming_writer_output_is_byte_identical_at_any_batching() {
        let ds = sample();
        let mut whole = Vec::new();
        write_dataset(&ds, &mut whole).unwrap();
        for batch_size in [1, 2, 4, usize::MAX] {
            let mut buf = Vec::new();
            let mut sink = DatasetWriter::new(&mut buf);
            dnasim_core::pump(&mut ds.stream(), &mut sink, batch_size, Ok).unwrap();
            assert_eq!(buf, whole, "batch_size={batch_size}");
        }
    }

    #[test]
    fn reader_source_batches_have_stable_indices() {
        let ds = sample();
        let mut buf = Vec::new();
        write_dataset(&ds, &mut buf).unwrap();
        let mut source = DatasetReader::new(buf.as_slice());
        let first = source.next_batch(4).unwrap().unwrap();
        assert_eq!(first.global_indices(), 0..4);
        let second = source.next_batch(4).unwrap().unwrap();
        assert_eq!(second.global_indices(), 4..6);
        assert!(source.next_batch(4).unwrap().is_none());
    }

    #[test]
    fn reader_is_fused_after_error() {
        let mut reader = DatasetReader::new(">AC\nAX\n\n>GT\nGT\n".as_bytes());
        assert!(reader.next_cluster().is_err());
        assert!(reader.next_cluster().unwrap().is_none());
    }

    #[test]
    fn writer_sink_rejects_gap() {
        let mut sink = DatasetWriter::new(Vec::new());
        let batch = Batch::new(3, vec![Cluster::erasure("AC".parse().unwrap())]);
        assert!(sink.accept(batch).is_err());
    }

    #[test]
    fn writer_counts_reads_and_erasures() {
        let ds = sample();
        let mut sink = DatasetWriter::new(Vec::new());
        for cluster in ds.iter() {
            sink.write_cluster(cluster).unwrap();
        }
        assert_eq!(sink.clusters_written(), ds.len());
        assert_eq!(sink.reads_written(), ds.total_reads());
        assert_eq!(sink.erasures_written(), ds.erasure_count());
    }
}
