//! Cluster-file text I/O.
//!
//! The on-disk format mirrors the Microsoft Nanopore cluster files the
//! paper works with: each cluster is the reference strand on a `>`-prefixed
//! line followed by one read per line, clusters separated by blank lines.
//!
//! ```text
//! >ACGTACGTAC
//! ACGTACTAC
//! ACGGTACGTAC
//!
//! >TTGACCAGTA
//! TTGACCAGTA
//! ```
//!
//! Parsing is tolerant of the byte-level variation real files arrive
//! with: CRLF line endings, surrounding whitespace, repeated or trailing
//! blank lines, and a final cluster with no blank line after it all parse
//! identically to the canonical form.
//!
//! One extension over the Microsoft format: a read whose every base was
//! deleted by the channel is a zero-length strand, which a bare line
//! cannot express (an empty line already means "cluster boundary"). Such
//! reads are written as a single `-` and parsed back to an empty read, so
//! `write_dataset` → `read_dataset` is lossless for every dataset the
//! simulator can produce.

use std::fmt;
use std::io::{self, BufRead, Write};

use dnasim_core::{Cluster, Dataset, DnasimError, ParseStrandError, Strand};

/// Sentinel line for a zero-length read (all bases deleted).
const EMPTY_READ_TOKEN: &str = "-";

/// Errors from reading a cluster file.
#[derive(Debug)]
pub enum ReadDatasetError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line failed to parse as a strand.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The parse failure.
        source: ParseStrandError,
    },
    /// A read line appeared before any `>` reference line.
    ReadBeforeReference {
        /// 1-based line number.
        line: usize,
    },
}

impl fmt::Display for ReadDatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadDatasetError::Io(e) => write!(f, "i/o error: {e}"),
            ReadDatasetError::Parse { line, source } => {
                write!(f, "line {line}: {source}")
            }
            ReadDatasetError::ReadBeforeReference { line } => {
                write!(f, "line {line}: read appears before any '>' reference line")
            }
        }
    }
}

impl std::error::Error for ReadDatasetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadDatasetError::Io(e) => Some(e),
            ReadDatasetError::Parse { source, .. } => Some(source),
            ReadDatasetError::ReadBeforeReference { .. } => None,
        }
    }
}

impl From<io::Error> for ReadDatasetError {
    fn from(e: io::Error) -> ReadDatasetError {
        ReadDatasetError::Io(e)
    }
}

impl From<ReadDatasetError> for DnasimError {
    fn from(e: ReadDatasetError) -> DnasimError {
        match e {
            ReadDatasetError::Io(io) => DnasimError::Io(io),
            ReadDatasetError::Parse { line, source } => {
                DnasimError::parse("cluster file", line, source.to_string())
            }
            ReadDatasetError::ReadBeforeReference { line } => DnasimError::parse(
                "cluster file",
                line,
                "read appears before any '>' reference line",
            ),
        }
    }
}

/// Reads a dataset from cluster-file text.
///
/// # Errors
///
/// Any [`ReadDatasetError`] variant for malformed input.
///
/// # Examples
///
/// ```
/// use dnasim_dataset::read_dataset;
///
/// let text = ">ACGT\nACG\nACGT\n\n>TTTT\n";
/// let ds = read_dataset(text.as_bytes())?;
/// assert_eq!(ds.len(), 2);
/// assert_eq!(ds.clusters()[0].coverage(), 2);
/// assert!(ds.clusters()[1].is_erasure());
/// # Ok::<(), dnasim_dataset::ReadDatasetError>(())
/// ```
pub fn read_dataset<R: BufRead>(reader: R) -> Result<Dataset, ReadDatasetError> {
    let mut dataset = Dataset::new();
    let mut current: Option<Cluster> = None;
    for (idx, line) in reader.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            if let Some(cluster) = current.take() {
                dataset.push(cluster);
            }
            continue;
        }
        if let Some(reference_text) = trimmed.strip_prefix('>') {
            if let Some(cluster) = current.take() {
                dataset.push(cluster);
            }
            let reference: Strand = reference_text
                .trim()
                .parse()
                .map_err(|source| ReadDatasetError::Parse {
                    line: line_no,
                    source,
                })?;
            current = Some(Cluster::erasure(reference));
        } else {
            let read: Strand = if trimmed == EMPTY_READ_TOKEN {
                Strand::new()
            } else {
                trimmed.parse().map_err(|source| ReadDatasetError::Parse {
                    line: line_no,
                    source,
                })?
            };
            match current.as_mut() {
                Some(cluster) => cluster.push_read(read),
                None => return Err(ReadDatasetError::ReadBeforeReference { line: line_no }),
            }
        }
    }
    if let Some(cluster) = current.take() {
        dataset.push(cluster);
    }
    Ok(dataset)
}

/// Writes a dataset in cluster-file text format.
///
/// # Errors
///
/// Propagates I/O failures from the writer.
pub fn write_dataset<W: Write>(dataset: &Dataset, mut writer: W) -> io::Result<()> {
    for (i, cluster) in dataset.iter().enumerate() {
        if i > 0 {
            writeln!(writer)?;
        }
        writeln!(writer, ">{}", cluster.reference())?;
        for read in cluster.reads() {
            if read.is_empty() {
                writeln!(writer, "{EMPTY_READ_TOKEN}")?;
            } else {
                writeln!(writer, "{read}")?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnasim_core::rng::seeded;

    fn sample() -> Dataset {
        let mut rng = seeded(1);
        let mut ds = Dataset::new();
        for _ in 0..5 {
            let reference = Strand::random(20, &mut rng);
            let reads = (0..3).map(|_| Strand::random(18, &mut rng)).collect();
            ds.push(Cluster::new(reference, reads));
        }
        ds.push(Cluster::erasure(Strand::random(20, &mut rng)));
        ds
    }

    #[test]
    fn round_trip() {
        let ds = sample();
        let mut buf = Vec::new();
        write_dataset(&ds, &mut buf).unwrap();
        let back = read_dataset(buf.as_slice()).unwrap();
        assert_eq!(back, ds);
    }

    #[test]
    fn empty_input_is_empty_dataset() {
        let ds = read_dataset("".as_bytes()).unwrap();
        assert!(ds.is_empty());
    }

    #[test]
    fn trailing_cluster_without_blank_line() {
        let ds = read_dataset(">AC\nAC\nAG".as_bytes()).unwrap();
        assert_eq!(ds.len(), 1);
        assert_eq!(ds.clusters()[0].coverage(), 2);
    }

    #[test]
    fn multiple_blank_lines_are_tolerated() {
        let ds = read_dataset(">AC\nAC\n\n\n\n>GT\nGT\n".as_bytes()).unwrap();
        assert_eq!(ds.len(), 2);
    }

    #[test]
    fn parse_error_reports_line() {
        let err = read_dataset(">AC\nAX\n".as_bytes()).unwrap_err();
        match err {
            ReadDatasetError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected: {other}"),
        }
    }

    #[test]
    fn read_before_reference_is_rejected() {
        let err = read_dataset("ACGT\n".as_bytes()).unwrap_err();
        assert!(matches!(
            err,
            ReadDatasetError::ReadBeforeReference { line: 1 }
        ));
    }

    #[test]
    fn whitespace_around_lines_is_trimmed() {
        let ds = read_dataset("  >ACGT  \n  AC  \n".as_bytes()).unwrap();
        assert_eq!(ds.clusters()[0].reference().to_string(), "ACGT");
        assert_eq!(ds.clusters()[0].reads()[0].to_string(), "AC");
    }

    #[test]
    fn erasure_round_trips() {
        let mut ds = Dataset::new();
        ds.push(Cluster::erasure("ACGT".parse().unwrap()));
        let mut buf = Vec::new();
        write_dataset(&ds, &mut buf).unwrap();
        let back = read_dataset(buf.as_slice()).unwrap();
        assert_eq!(back.erasure_count(), 1);
    }
}
