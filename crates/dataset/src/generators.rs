//! Reference-strand generators.
//!
//! Encoders in practice constrain designed strands — balanced GC-ratio for
//! chemical stability, bounded homopolymers for sequencer accuracy. These
//! generators produce reference pools under each regime so experiments can
//! control for sequence composition.

use dnasim_core::rng::SimRng;
use dnasim_core::{Base, Strand};

/// How reference strands are sampled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReferenceStyle {
    /// Uniform i.i.d. bases.
    Uniform,
    /// Exactly 50% GC content (shuffled).
    GcBalanced,
    /// Uniform, but homopolymer runs capped at the given length.
    HomopolymerLimited(usize),
}

/// Generates `count` reference strands of length `len` in the given style.
///
/// # Examples
///
/// ```
/// use dnasim_core::rng::seeded;
/// use dnasim_dataset::{generate_references, ReferenceStyle};
///
/// let mut rng = seeded(1);
/// let refs = generate_references(10, 110, ReferenceStyle::HomopolymerLimited(3), &mut rng);
/// assert_eq!(refs.len(), 10);
/// assert!(refs.iter().all(|r| r.max_homopolymer() <= 3));
/// ```
pub fn generate_references(
    count: usize,
    len: usize,
    style: ReferenceStyle,
    rng: &mut SimRng,
) -> Vec<Strand> {
    (0..count)
        .map(|_| match style {
            ReferenceStyle::Uniform => Strand::random(len, rng),
            ReferenceStyle::GcBalanced => Strand::random_gc_balanced(len, rng),
            ReferenceStyle::HomopolymerLimited(max_run) => {
                homopolymer_limited(len, max_run.max(1), rng)
            }
        })
        .collect()
}

fn homopolymer_limited(len: usize, max_run: usize, rng: &mut SimRng) -> Strand {
    let mut strand = Strand::with_capacity(len);
    let mut run = 0usize;
    let mut prev: Option<Base> = None;
    for _ in 0..len {
        let base = match prev {
            Some(p) if run >= max_run => p.random_other(rng),
            _ => Base::random(rng),
        };
        if Some(base) == prev {
            run += 1;
        } else {
            run = 1;
            prev = Some(base);
        }
        strand.push(base);
    }
    strand
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnasim_core::rng::seeded;

    #[test]
    fn uniform_generates_requested_shape() {
        let mut rng = seeded(1);
        let refs = generate_references(20, 110, ReferenceStyle::Uniform, &mut rng);
        assert_eq!(refs.len(), 20);
        assert!(refs.iter().all(|r| r.len() == 110));
        // Distinct strands with overwhelming probability.
        assert_ne!(refs[0], refs[1]);
    }

    #[test]
    fn gc_balanced_is_balanced() {
        let mut rng = seeded(2);
        for r in generate_references(10, 100, ReferenceStyle::GcBalanced, &mut rng) {
            assert!((r.gc_ratio() - 0.5).abs() < 0.01);
        }
    }

    #[test]
    fn homopolymer_cap_is_respected() {
        let mut rng = seeded(3);
        for cap in [1usize, 2, 3] {
            for r in
                generate_references(10, 200, ReferenceStyle::HomopolymerLimited(cap), &mut rng)
            {
                assert!(
                    r.max_homopolymer() <= cap,
                    "cap {cap} violated: {}",
                    r.max_homopolymer()
                );
            }
        }
    }

    #[test]
    fn zero_count_and_zero_len() {
        let mut rng = seeded(4);
        assert!(generate_references(0, 10, ReferenceStyle::Uniform, &mut rng).is_empty());
        let refs = generate_references(2, 0, ReferenceStyle::Uniform, &mut rng);
        assert!(refs.iter().all(Strand::is_empty));
    }
}
