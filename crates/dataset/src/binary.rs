//! Cluster-file binary I/O: the `dnb` length-prefixed frame codec.
//!
//! The text cluster format (see [`io`](crate::read_dataset)) is the
//! interchange format, but parsing it dominates streaming throughput once
//! the compute side is parallel (BENCH_005). This module adds a binary
//! codec that stores bases 2 bits each via [`PackedStrand`] code order
//! (A=00, C=01, G=10, T=11) and frames every cluster with an explicit
//! length prefix and checksum, so a reader never has to scan for
//! boundaries and corruption is detected rather than silently decoded.
//!
//! # Frame layout
//!
//! ```text
//! file   := header frame*
//! header := magic[4] version[1] reserved[3]         (8 bytes)
//! magic  := 0x89 'D' 'N' 'B'                        (0x89 keeps byte 0
//!                                                    out of ASCII, so one
//!                                                    byte distinguishes
//!                                                    binary from text)
//! frame  := payload_len:u32le payload checksum:u64le
//! payload:= ref_len:u32le read_count:u32le read_len:u32le{read_count}
//!           packed(reference) packed(read){read_count}
//! packed := ceil(len/4) bytes, base i at bits (i mod 4)·2 of byte i/4
//! ```
//!
//! `checksum` is FNV-1a-64 over the payload bytes. Every strand is
//! byte-aligned so a frame can be decoded field-by-field without bit
//! arithmetic across strand boundaries. The payload length is validated
//! against the declared strand lengths *exactly* — a frame whose fields
//! disagree about its own size is rejected as corrupt, not partially
//! decoded.
//!
//! All read errors are typed [`ReadDatasetError::Frame`] (or `Io`) values
//! carrying the byte offset of the offending frame; corrupt input never
//! panics and never yields a silently wrong cluster.

use std::io::{self, BufRead, Read, Write};

use dnasim_core::{Base, Batch, Cluster, ClusterSink, ClusterSource, DnasimError, PackedStrand, Strand};

use crate::io::ReadDatasetError;

/// Magic bytes opening every binary cluster file. The first byte is
/// deliberately outside ASCII: text cluster files start with `>`,
/// whitespace, or are empty, so one buffered byte decides the format.
pub const BINARY_MAGIC: [u8; 4] = [0x89, b'D', b'N', b'B'];

/// Current frame-format version, written after the magic.
pub const BINARY_VERSION: u8 = 1;

/// Header length: magic, version, three reserved zero bytes.
const HEADER_LEN: usize = 8;

/// Upper bound on a single frame's payload. Large enough for any cluster
/// the simulator produces (a 256 MiB payload is ~10⁹ bases), small enough
/// that a length-lying frame cannot drive a pathological allocation.
const MAX_PAYLOAD_LEN: u32 = 1 << 28;

/// Upper bound on a single strand's length inside a frame.
const MAX_STRAND_LEN: u32 = 1 << 26;

/// Upper bound on reads per cluster inside a frame.
const MAX_READ_COUNT: u32 = 1 << 22;

/// FNV-1a 64-bit hash — the frame checksum.
///
/// Chosen over CRC for its two-line implementation (the workspace is
/// hermetic) while still catching every single-bit and short-burst error
/// the fault injector produces.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

fn frame_error(offset: u64, message: impl Into<String>) -> ReadDatasetError {
    ReadDatasetError::Frame {
        offset,
        message: message.into(),
    }
}

fn checked_u32(len: usize, what: &str) -> io::Result<u32> {
    u32::try_from(len).map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("{what} of {len} exceeds the binary frame limit"),
        )
    })
}

/// Appends `strand` to `out` packed 2 bits per base, byte-aligned.
fn pack_strand(strand: &Strand, out: &mut Vec<u8>) {
    let packed = PackedStrand::from(strand);
    let start = out.len();
    out.resize(start + strand.len().div_ceil(4), 0);
    for (i, code) in packed.codes().enumerate() {
        out[start + i / 4] |= code << ((i % 4) * 2);
    }
}

/// An incremental binary cluster-file emitter: the binary twin of
/// [`DatasetWriter`](crate::DatasetWriter), one frame per cluster.
///
/// The header is written lazily before the first cluster (and by
/// [`finish`](dnasim_core::ClusterSink::finish)/
/// [`into_inner`](BinaryDatasetWriter::into_inner) for empty files, so a
/// zero-cluster binary file is still a valid, detectable binary file).
///
/// # Examples
///
/// ```
/// use dnasim_core::Cluster;
/// use dnasim_dataset::{BinaryDatasetReader, BinaryDatasetWriter};
///
/// let mut writer = BinaryDatasetWriter::new(Vec::new());
/// writer.write_cluster(&Cluster::erasure("ACGT".parse()?))?;
/// let bytes = writer.into_inner()?;
/// let mut reader = BinaryDatasetReader::new(bytes.as_slice());
/// assert!(reader.next_cluster()?.ok_or("missing")?.is_erasure());
/// assert!(reader.next_cluster()?.is_none());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct BinaryDatasetWriter<W: Write> {
    writer: W,
    header_written: bool,
    clusters: usize,
    reads: usize,
    erasures: usize,
}

impl<W: Write> BinaryDatasetWriter<W> {
    /// Creates a streaming binary writer over `writer`.
    pub fn new(writer: W) -> BinaryDatasetWriter<W> {
        BinaryDatasetWriter {
            writer,
            header_written: false,
            clusters: 0,
            reads: 0,
            erasures: 0,
        }
    }

    /// Number of clusters written so far.
    pub fn clusters_written(&self) -> usize {
        self.clusters
    }

    /// Number of reads written so far.
    pub fn reads_written(&self) -> usize {
        self.reads
    }

    /// Number of erasure clusters written so far.
    pub fn erasures_written(&self) -> usize {
        self.erasures
    }

    fn ensure_header(&mut self) -> io::Result<()> {
        if !self.header_written {
            self.writer.write_all(&BINARY_MAGIC)?;
            self.writer.write_all(&[BINARY_VERSION, 0, 0, 0])?;
            self.header_written = true;
        }
        Ok(())
    }

    /// Appends one cluster as a checksummed binary frame.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from the writer, and rejects clusters
    /// whose dimensions exceed the frame limits (`InvalidInput`).
    pub fn write_cluster(&mut self, cluster: &Cluster) -> io::Result<()> {
        self.ensure_header()?;
        let mut payload = Vec::new();
        let ref_len = checked_u32(cluster.reference().len(), "reference length")?;
        payload.extend_from_slice(&ref_len.to_le_bytes());
        let read_count = checked_u32(cluster.reads().len(), "read count")?;
        payload.extend_from_slice(&read_count.to_le_bytes());
        for read in cluster.reads() {
            let read_len = checked_u32(read.len(), "read length")?;
            payload.extend_from_slice(&read_len.to_le_bytes());
        }
        pack_strand(cluster.reference(), &mut payload);
        for read in cluster.reads() {
            pack_strand(read, &mut payload);
        }
        let payload_len = checked_u32(payload.len(), "frame payload length")?;
        if payload_len > MAX_PAYLOAD_LEN
            || ref_len > MAX_STRAND_LEN
            || read_count > MAX_READ_COUNT
        {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "cluster exceeds binary frame limits",
            ));
        }
        self.writer.write_all(&payload_len.to_le_bytes())?;
        self.writer.write_all(&payload)?;
        self.writer.write_all(&fnv1a64(&payload).to_le_bytes())?;
        self.clusters += 1;
        self.reads += cluster.coverage();
        if cluster.is_erasure() {
            self.erasures += 1;
        }
        Ok(())
    }

    /// Writes the header if nothing has been written yet, flushes, and
    /// returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn into_inner(mut self) -> io::Result<W> {
        self.ensure_header()?;
        self.writer.flush()?;
        Ok(self.writer)
    }
}

impl<W: Write> ClusterSink for BinaryDatasetWriter<W> {
    /// Writes the batch, requiring contiguity: the batch must start at the
    /// number of clusters already written.
    fn accept(&mut self, batch: Batch) -> Result<(), DnasimError> {
        if batch.start() != self.clusters {
            return Err(DnasimError::config(
                "stream",
                format!(
                    "batch starts at global index {} but writer has emitted {} clusters",
                    batch.start(),
                    self.clusters
                ),
            ));
        }
        for cluster in batch.clusters() {
            self.write_cluster(cluster).map_err(DnasimError::Io)?;
        }
        Ok(())
    }

    fn finish(&mut self) -> Result<(), DnasimError> {
        self.ensure_header().map_err(DnasimError::Io)?;
        self.writer.flush().map_err(DnasimError::Io)
    }
}

/// A little-endian cursor over one frame's payload, reporting absolute
/// file offsets in its errors.
struct PayloadCursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Absolute file offset of `bytes[0]`.
    base: u64,
}

impl<'a> PayloadCursor<'a> {
    fn offset(&self) -> u64 {
        self.base + self.pos as u64
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], ReadDatasetError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let slice = &self.bytes[self.pos..end];
                self.pos = end;
                Ok(slice)
            }
            None => Err(frame_error(
                self.offset(),
                format!("frame payload too short for {what}"),
            )),
        }
    }

    fn u32le(&mut self, what: &str) -> Result<u32, ReadDatasetError> {
        let bytes = self.take(4, what)?;
        let mut raw = [0u8; 4];
        raw.copy_from_slice(bytes);
        Ok(u32::from_le_bytes(raw))
    }

    fn strand(&mut self, len: usize) -> Result<Strand, ReadDatasetError> {
        let at = self.offset();
        let packed = self.take(len.div_ceil(4), "packed strand bytes")?;
        let mut bases = Vec::with_capacity(len);
        for i in 0..len {
            let code = (packed[i / 4] >> ((i % 4) * 2)) & 3;
            match Base::from_index(usize::from(code)) {
                Some(base) => bases.push(base),
                None => {
                    // Codes are masked to two bits, so all four values map
                    // to a base; kept as a typed error for the panic guard.
                    return Err(frame_error(at, "invalid packed base code"));
                }
            }
        }
        Ok(Strand::from_bases(bases))
    }
}

/// An incremental binary cluster-file parser: the binary twin of
/// [`DatasetReader`](crate::DatasetReader), yielding one [`Cluster`] per
/// frame.
///
/// The header is validated lazily on the first read. After the first
/// error the reader is fused, like its text counterpart. Corrupt input —
/// bad magic, truncation, bit flips, or frames whose length fields lie —
/// yields a typed [`ReadDatasetError::Frame`] carrying the byte offset of
/// the offending frame, never a panic and never a wrong cluster.
#[derive(Debug)]
pub struct BinaryDatasetReader<R> {
    reader: R,
    offset: u64,
    header_checked: bool,
    emitted: usize,
    done: bool,
}

impl<R: BufRead> BinaryDatasetReader<R> {
    /// Creates a streaming reader over binary cluster-file bytes.
    pub fn new(reader: R) -> BinaryDatasetReader<R> {
        BinaryDatasetReader {
            reader,
            offset: 0,
            header_checked: false,
            emitted: 0,
            done: false,
        }
    }

    /// Number of clusters emitted so far.
    pub fn clusters_read(&self) -> usize {
        self.emitted
    }

    /// Bytes fully consumed from the underlying reader so far.
    pub fn bytes_read(&self) -> u64 {
        self.offset
    }

    fn read_exact(&mut self, buf: &mut [u8], what: &str) -> Result<(), ReadDatasetError> {
        let at = self.offset;
        self.reader.read_exact(buf).map_err(|source| {
            if source.kind() == io::ErrorKind::UnexpectedEof {
                frame_error(at, format!("truncated {what}"))
            } else {
                ReadDatasetError::Io {
                    line: 0,
                    offset: at,
                    source,
                }
            }
        })?;
        self.offset += buf.len() as u64;
        Ok(())
    }

    /// Whether the stream is at end-of-input (no bytes buffered or
    /// readable).
    fn at_eof(&mut self) -> Result<bool, ReadDatasetError> {
        let at = self.offset;
        let buf = self.reader.fill_buf().map_err(|source| ReadDatasetError::Io {
            line: 0,
            offset: at,
            source,
        })?;
        Ok(buf.is_empty())
    }

    fn check_header(&mut self) -> Result<(), ReadDatasetError> {
        let mut header = [0u8; HEADER_LEN];
        self.read_exact(&mut header, "binary header")?;
        if header[..4] != BINARY_MAGIC {
            return Err(frame_error(
                0,
                "not a binary cluster file (bad magic bytes)",
            ));
        }
        if header[4] != BINARY_VERSION {
            return Err(frame_error(
                4,
                format!(
                    "unsupported binary format version {} (expected {BINARY_VERSION})",
                    header[4]
                ),
            ));
        }
        self.header_checked = true;
        Ok(())
    }

    fn decode_frame(&mut self) -> Result<Option<Cluster>, ReadDatasetError> {
        if !self.header_checked {
            // A zero-byte input is an empty dataset (matching the text
            // parser); anything shorter than the header is truncation.
            if self.offset == 0 && self.at_eof()? {
                return Ok(None);
            }
            self.check_header()?;
        }
        if self.at_eof()? {
            return Ok(None);
        }
        let frame_start = self.offset;
        let mut len_raw = [0u8; 4];
        self.read_exact(&mut len_raw, "frame length")?;
        let payload_len = u32::from_le_bytes(len_raw);
        if payload_len > MAX_PAYLOAD_LEN {
            return Err(frame_error(
                frame_start,
                format!("frame payload length {payload_len} exceeds the {MAX_PAYLOAD_LEN}-byte limit"),
            ));
        }
        let payload_start = self.offset;
        let mut payload = Vec::new();
        let taken = self
            .reader
            .by_ref()
            .take(u64::from(payload_len))
            .read_to_end(&mut payload)
            .map_err(|source| ReadDatasetError::Io {
                line: 0,
                offset: payload_start,
                source,
            })?;
        self.offset += taken as u64;
        if taken < payload_len as usize {
            return Err(frame_error(
                frame_start,
                format!("truncated frame payload: declared {payload_len} bytes, found {taken}"),
            ));
        }
        let mut checksum_raw = [0u8; 8];
        self.read_exact(&mut checksum_raw, "frame checksum")?;
        let expected = u64::from_le_bytes(checksum_raw);
        let actual = fnv1a64(&payload);
        if actual != expected {
            return Err(frame_error(
                frame_start,
                format!("frame checksum mismatch: stored {expected:#018x}, computed {actual:#018x}"),
            ));
        }
        let mut cursor = PayloadCursor {
            bytes: &payload,
            pos: 0,
            base: payload_start,
        };
        let ref_len = cursor.u32le("reference length")?;
        let read_count = cursor.u32le("read count")?;
        if ref_len > MAX_STRAND_LEN {
            return Err(frame_error(frame_start, "reference length exceeds frame limit"));
        }
        if read_count > MAX_READ_COUNT {
            return Err(frame_error(frame_start, "read count exceeds frame limit"));
        }
        let mut read_lens = Vec::with_capacity(read_count as usize);
        let mut expected_len: u64 = 8 + 4 * u64::from(read_count);
        expected_len += (u64::from(ref_len)).div_ceil(4);
        for _ in 0..read_count {
            let read_len = cursor.u32le("read length")?;
            if read_len > MAX_STRAND_LEN {
                return Err(frame_error(frame_start, "read length exceeds frame limit"));
            }
            expected_len += (u64::from(read_len)).div_ceil(4);
            read_lens.push(read_len);
        }
        if expected_len != u64::from(payload_len) {
            return Err(frame_error(
                frame_start,
                format!(
                    "frame length fields are inconsistent: declared payload {payload_len} bytes, \
                     strand lengths require {expected_len}"
                ),
            ));
        }
        let reference = cursor.strand(ref_len as usize)?;
        let mut reads = Vec::with_capacity(read_lens.len());
        for read_len in read_lens {
            reads.push(cursor.strand(read_len as usize)?);
        }
        Ok(Some(Cluster::new(reference, reads)))
    }

    /// Decodes the next cluster frame, or `Ok(None)` at end of input.
    ///
    /// # Errors
    ///
    /// [`ReadDatasetError::Frame`] for malformed frames,
    /// [`ReadDatasetError::Io`] for underlying I/O failures; the reader
    /// is fused afterwards.
    pub fn next_cluster(&mut self) -> Result<Option<Cluster>, ReadDatasetError> {
        if self.done {
            return Ok(None);
        }
        match self.decode_frame() {
            Ok(Some(cluster)) => {
                self.emitted += 1;
                Ok(Some(cluster))
            }
            Ok(None) => {
                self.done = true;
                Ok(None)
            }
            Err(e) => {
                self.done = true;
                Err(e)
            }
        }
    }
}

impl<R: BufRead> Iterator for BinaryDatasetReader<R> {
    type Item = Result<Cluster, ReadDatasetError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_cluster().transpose()
    }
}

impl<R: BufRead> ClusterSource for BinaryDatasetReader<R> {
    fn next_batch(&mut self, max: usize) -> Result<Option<Batch>, DnasimError> {
        if max == 0 {
            return Err(DnasimError::config(
                "batch_size",
                "streaming batch size must be at least 1",
            ));
        }
        let start = self.emitted;
        let mut clusters = Vec::new();
        while clusters.len() < max {
            match self.next_cluster()? {
                Some(cluster) => clusters.push(cluster),
                None => break,
            }
        }
        if clusters.is_empty() {
            Ok(None)
        } else {
            Ok(Some(Batch::new(start, clusters)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnasim_core::rng::seeded;
    use dnasim_core::Dataset;

    fn sample() -> Dataset {
        let mut rng = seeded(7);
        let mut ds = Dataset::new();
        for i in 0..6 {
            let reference = Strand::random(23 + i, &mut rng);
            let reads = (0..i).map(|_| Strand::random(20, &mut rng)).collect();
            ds.push(Cluster::new(reference, reads));
        }
        ds.push(Cluster::new(
            "ACGT".parse().unwrap(),
            vec![Strand::new(), "AC".parse().unwrap()],
        ));
        ds
    }

    fn encode(ds: &Dataset) -> Vec<u8> {
        let mut writer = BinaryDatasetWriter::new(Vec::new());
        for cluster in ds.iter() {
            writer.write_cluster(cluster).unwrap();
        }
        writer.into_inner().unwrap()
    }

    fn decode(bytes: &[u8]) -> Result<Dataset, ReadDatasetError> {
        let mut reader = BinaryDatasetReader::new(bytes);
        let mut ds = Dataset::new();
        while let Some(cluster) = reader.next_cluster()? {
            ds.push(cluster);
        }
        Ok(ds)
    }

    #[test]
    fn round_trip_preserves_every_cluster() {
        let ds = sample();
        assert_eq!(decode(&encode(&ds)).unwrap(), ds);
    }

    #[test]
    fn empty_dataset_is_a_valid_header_only_file() {
        let bytes = BinaryDatasetWriter::new(Vec::new()).into_inner().unwrap();
        assert_eq!(bytes.len(), HEADER_LEN);
        assert_eq!(bytes[..4], BINARY_MAGIC);
        assert!(decode(&bytes).unwrap().is_empty());
    }

    #[test]
    fn zero_byte_input_is_an_empty_dataset() {
        assert!(decode(&[]).unwrap().is_empty());
    }

    #[test]
    fn text_input_is_rejected_by_magic() {
        let err = decode(b">ACGT\nACG\n").unwrap_err();
        assert!(matches!(err, ReadDatasetError::Frame { offset: 0, .. }));
        assert!(err.to_string().contains("magic"), "{err}");
    }

    #[test]
    fn unsupported_version_is_rejected() {
        let mut bytes = encode(&sample());
        bytes[4] = 9;
        let err = decode(&bytes).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn truncation_anywhere_is_a_typed_error() {
        let full = encode(&sample());
        for cut in 1..full.len() {
            match decode(&full[..cut]) {
                Ok(ds) => {
                    // A cut exactly on a frame boundary decodes the prefix.
                    assert!(ds.len() < sample().len(), "cut={cut}");
                }
                Err(
                    ReadDatasetError::Frame { .. } | ReadDatasetError::Io { line: 0, .. },
                ) => {}
                Err(other) => panic!("cut={cut}: unexpected {other}"),
            }
        }
    }

    #[test]
    fn bit_flip_in_payload_fails_the_checksum() {
        let ds = sample();
        let bytes = encode(&ds);
        // Flip one bit inside the first frame's payload (skip header and
        // the 4-byte length field).
        let mut corrupt = bytes.clone();
        corrupt[HEADER_LEN + 4] ^= 0b0000_0100;
        let err = decode(&corrupt).unwrap_err();
        assert!(
            err.to_string().contains("checksum")
                || err.to_string().contains("inconsistent"),
            "{err}"
        );
    }

    #[test]
    fn length_lie_is_rejected_not_misread() {
        let bytes = encode(&sample());
        // Overwrite the first frame's payload length with a lie that still
        // passes the sanity cap; the strand-length consistency check (or
        // the checksum over the shifted window) must catch it.
        let mut corrupt = bytes.clone();
        let lie = 12u32.to_le_bytes();
        corrupt[HEADER_LEN..HEADER_LEN + 4].copy_from_slice(&lie);
        let err = decode(&corrupt).unwrap_err();
        assert!(matches!(err, ReadDatasetError::Frame { .. }), "{err}");

        // And a huge lie beyond the cap fails fast without allocating.
        let mut huge = bytes;
        huge[HEADER_LEN..HEADER_LEN + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = decode(&huge).unwrap_err();
        assert!(err.to_string().contains("limit"), "{err}");
    }

    #[test]
    fn reader_is_fused_after_error() {
        let mut bytes = encode(&sample());
        bytes[HEADER_LEN + 4] ^= 1;
        let mut reader = BinaryDatasetReader::new(bytes.as_slice());
        assert!(reader.next_cluster().is_err());
        assert!(reader.next_cluster().unwrap().is_none());
    }

    #[test]
    fn writer_counts_match_text_writer() {
        let ds = sample();
        let mut writer = BinaryDatasetWriter::new(Vec::new());
        for cluster in ds.iter() {
            writer.write_cluster(cluster).unwrap();
        }
        assert_eq!(writer.clusters_written(), ds.len());
        assert_eq!(writer.reads_written(), ds.total_reads());
        assert_eq!(writer.erasures_written(), ds.erasure_count());
    }

    #[test]
    fn sink_rejects_non_contiguous_batch() {
        let mut sink = BinaryDatasetWriter::new(Vec::new());
        let batch = Batch::new(3, vec![Cluster::erasure("AC".parse().unwrap())]);
        assert!(sink.accept(batch).is_err());
    }

    #[test]
    fn source_batches_have_stable_indices() {
        let bytes = encode(&sample());
        let mut source = BinaryDatasetReader::new(bytes.as_slice());
        let first = source.next_batch(4).unwrap().unwrap();
        assert_eq!(first.global_indices(), 0..4);
        let second = source.next_batch(4).unwrap().unwrap();
        assert_eq!(second.global_indices(), 4..7);
        assert!(source.next_batch(4).unwrap().is_none());
    }

    #[test]
    fn binary_is_smaller_than_text_for_dense_clusters() {
        let mut rng = seeded(3);
        let mut ds = Dataset::new();
        for _ in 0..20 {
            let reference = Strand::random(110, &mut rng);
            let reads = (0..10).map(|_| Strand::random(110, &mut rng)).collect();
            ds.push(Cluster::new(reference, reads));
        }
        let mut text = Vec::new();
        crate::write_dataset(&ds, &mut text).unwrap();
        let binary = encode(&ds);
        assert!(binary.len() * 2 < text.len(), "binary {} vs text {}", binary.len(), text.len());
    }
}
