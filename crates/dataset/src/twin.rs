//! The synthetic Nanopore "wetlab twin".
//!
//! The paper evaluates simulators against the Microsoft Nanopore dataset
//! ([3]): 10,000 reference strands of length 110, 269,709 noisy reads,
//! mean coverage ≈ 27 (range 0–164, 16 empty clusters), 5.9% aggregate
//! error concentrated at terminal positions. That dataset is not
//! redistributable, so this module generates a statistical twin: a hidden
//! ground-truth channel that reproduces every statistic the paper measures
//! — and is deliberately *richer* than any simulator under test (burst
//! errors, per-read quality variation, homopolymer sensitivity), so that
//! simulators are graded on approximating it, never on sharing its code
//! path.

use dnasim_channel::{CoverageModel, ErrorModel};
use dnasim_core::rng::{SeedSequence, SimRng};
use dnasim_core::{Base, Batch, Budget, Cluster, ClusterSink, Dataset, DnasimError, Strand, WindowStats};
use dnasim_core::rng::RngExt;
use dnasim_par::ThreadPool;

/// The error "personality" of a twin dataset: kind mix, terminal skew,
/// substitution bias and burstiness.
///
/// Two presets support the paper's §4.3 recommendation that simulators be
/// validated against *multiple* high-error datasets: the Nanopore profile
/// the evaluation uses, and a deliberately different high-error variant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwinProfile {
    /// Fractions `[substitution, deletion, insertion]` of the aggregate
    /// error budget.
    pub kind_mix: [f64; 3],
    /// Leading positions with inflated error.
    pub head_positions: usize,
    /// Multiplier for the leading positions.
    pub head_multiplier: f64,
    /// Trailing positions with inflated error.
    pub tail_positions: usize,
    /// Multiplier for the trailing positions.
    pub tail_multiplier: f64,
    /// Probability a substitution targets the transition partner.
    pub partner_bias: f64,
    /// Per-read burst probability.
    pub burst_probability: f64,
}

impl TwinProfile {
    /// The Nanopore profile measured by the paper: deletion-heavy,
    /// end-skewed (end ≈ 2× start), strongly transition-biased.
    pub fn nanopore() -> TwinProfile {
        TwinProfile {
            kind_mix: [0.40, 0.45, 0.15],
            head_positions: 2,
            head_multiplier: 4.0,
            tail_positions: 1,
            tail_multiplier: 8.0,
            partner_bias: 0.7,
            burst_probability: 0.02,
        }
    }

    /// A deliberately different high-error technology: insertion-heavy,
    /// *start*-skewed, weakly transition-biased, burstier — used to check
    /// that a model learned on one dataset does not silently transfer.
    pub fn high_error_variant() -> TwinProfile {
        TwinProfile {
            kind_mix: [0.30, 0.30, 0.40],
            head_positions: 3,
            head_multiplier: 7.0,
            tail_positions: 2,
            tail_multiplier: 3.0,
            partner_bias: 0.4,
            burst_probability: 0.05,
        }
    }
}

/// Configuration of the synthetic Nanopore twin.
#[derive(Debug, Clone, PartialEq)]
pub struct NanoporeTwinConfig {
    /// Number of reference strands (paper: 10,000).
    pub cluster_count: usize,
    /// Designed strand length (paper: 110).
    pub strand_len: usize,
    /// Mean sequencing coverage (paper: ≈26.97).
    pub mean_coverage: f64,
    /// Negative-binomial dispersion for the coverage distribution.
    pub coverage_dispersion: f64,
    /// Coverage ceiling (paper range tops at 164).
    pub max_coverage: usize,
    /// Number of clusters forced to zero coverage (paper: 16 erasures).
    pub erasure_count: usize,
    /// Aggregate per-base error rate (paper: 5.9%).
    pub aggregate_error_rate: f64,
    /// The channel personality (see [`TwinProfile`]).
    pub profile: TwinProfile,
    /// Root seed for the whole dataset.
    pub seed: u64,
}

impl Default for NanoporeTwinConfig {
    /// The full paper-scale dataset.
    fn default() -> NanoporeTwinConfig {
        NanoporeTwinConfig {
            cluster_count: 10_000,
            strand_len: 110,
            mean_coverage: 26.97,
            coverage_dispersion: 2.5,
            max_coverage: 164,
            erasure_count: 16,
            aggregate_error_rate: 0.059,
            profile: TwinProfile::nanopore(),
            seed: 0xD0A_57012,
        }
    }
}

impl NanoporeTwinConfig {
    /// A reduced configuration (hundreds of clusters) for tests, examples
    /// and quick experiment iterations; statistically identical per-read.
    pub fn small() -> NanoporeTwinConfig {
        NanoporeTwinConfig {
            cluster_count: 300,
            erasure_count: 1,
            ..NanoporeTwinConfig::default()
        }
    }

    /// A second, deliberately different high-error dataset (insertion-
    /// heavy, start-skewed, burstier, 8% aggregate) for the §4.3
    /// multi-dataset robustness check.
    pub fn high_error_variant() -> NanoporeTwinConfig {
        NanoporeTwinConfig {
            aggregate_error_rate: 0.08,
            profile: TwinProfile::high_error_variant(),
            seed: 0xB_5EED,
            ..NanoporeTwinConfig::default()
        }
    }

    /// Generates the twin dataset.
    ///
    /// Cluster `i` is generated on its own RNG stream,
    /// [`SeedSequence::fork`]`(i)` of the root seed, rather than by
    /// threading one serial RNG through the whole dataset. Stream
    /// independence means the bytes of cluster `i` do not depend on how
    /// many clusters precede it — so [`NanoporeTwinConfig::generate_on`]
    /// can fan the same work out over threads and produce identical bytes.
    pub fn generate(&self) -> Dataset {
        let seq = SeedSequence::new(self.seed);
        let channel = self.channel();
        let coverage = self.coverage_model();
        let clusters = (0..self.cluster_count)
            .map(|index| {
                let mut rng = seq.fork_rng(index as u64);
                self.generate_cluster(index, &channel, &coverage, &mut rng)
            })
            .collect();
        Dataset::from_clusters(clusters)
    }

    /// Parallel counterpart of [`NanoporeTwinConfig::generate`]: same
    /// bytes for any thread count, thanks to the per-cluster fork
    /// discipline.
    ///
    /// # Errors
    ///
    /// Returns [`DnasimError::Degraded`] if a worker panicked.
    pub fn generate_on(&self, pool: &ThreadPool) -> Result<Dataset, DnasimError> {
        let seq = SeedSequence::new(self.seed);
        let channel = self.channel();
        let coverage = self.coverage_model();
        let clusters = pool.par_map_len(self.cluster_count, |index| {
            let mut rng = seq.fork_rng(index as u64);
            self.generate_cluster(index, &channel, &coverage, &mut rng)
        })?;
        Ok(Dataset::from_clusters(clusters))
    }

    /// Streaming counterpart of [`NanoporeTwinConfig::generate_on`]:
    /// generates the twin in bounded batches of at most `batch_size`
    /// clusters, pushing each finished batch into `sink` — at no point
    /// does more than one batch exist in memory.
    ///
    /// Cluster `i` is always generated on [`SeedSequence::fork`]`(i)` of
    /// its global index, so the emitted clusters are byte-identical to
    /// [`NanoporeTwinConfig::generate`] for every batch size and thread
    /// count.
    ///
    /// # Errors
    ///
    /// [`DnasimError::Config`] for `batch_size == 0`,
    /// [`DnasimError::Degraded`] if a worker panicked, or whatever the
    /// sink reports.
    pub fn generate_stream<K>(
        &self,
        batch_size: usize,
        pool: &ThreadPool,
        sink: &mut K,
    ) -> Result<WindowStats, DnasimError>
    where
        K: ClusterSink + ?Sized,
    {
        self.generate_stream_budgeted(batch_size, pool, &Budget::unlimited(), sink)
    }

    /// [`NanoporeTwinConfig::generate_stream`] metered by a [`Budget`]:
    /// one work unit per generated cluster, admitted in the serial batch
    /// loop, so an exhausted budget always cuts the twin at global cluster
    /// `limit` — at any batch size or thread count — after emitting the
    /// admitted prefix.
    ///
    /// # Errors
    ///
    /// [`DnasimError::DeadlineExceeded`] on exhaustion or cancellation,
    /// plus everything [`NanoporeTwinConfig::generate_stream`] can report.
    pub fn generate_stream_budgeted<K>(
        &self,
        batch_size: usize,
        pool: &ThreadPool,
        budget: &Budget,
        sink: &mut K,
    ) -> Result<WindowStats, DnasimError>
    where
        K: ClusterSink + ?Sized,
    {
        if batch_size == 0 {
            return Err(DnasimError::config(
                "batch_size",
                "streaming batch size must be at least 1",
            ));
        }
        let seq = SeedSequence::new(self.seed);
        let channel = self.channel();
        let coverage = self.coverage_model();
        let mut stats = WindowStats::default();
        let mut start = 0usize;
        while start < self.cluster_count {
            budget.check("generate")?;
            let len = batch_size.min(self.cluster_count - start);
            let admitted = usize::try_from(budget.admit(len as u64)).unwrap_or(usize::MAX);
            let clusters = pool.par_map_len(admitted, |i| {
                let index = start + i;
                let mut rng = seq.fork_rng(index as u64);
                self.generate_cluster(index, &channel, &coverage, &mut rng)
            })?;
            if admitted > 0 {
                stats.record_window(admitted, dnasim_core::resident_reads(&clusters));
                sink.accept(Batch::new(start, clusters))?;
                start += admitted;
            }
            if admitted < len {
                return Err(budget.exceeded("generate"));
            }
        }
        sink.finish()?;
        Ok(stats)
    }

    fn channel(&self) -> GroundTruthChannel {
        GroundTruthChannel::with_profile(
            self.aggregate_error_rate,
            self.strand_len,
            self.profile,
        )
    }

    fn coverage_model(&self) -> CoverageModel {
        CoverageModel::negative_binomial(self.mean_coverage, self.coverage_dispersion)
    }

    fn generate_cluster(
        &self,
        index: usize,
        channel: &GroundTruthChannel,
        coverage: &CoverageModel,
        rng: &mut SimRng,
    ) -> Cluster {
        let reference = Strand::random(self.strand_len, rng);
        let n = if index < self.erasure_count {
            // Deterministically placed erasures (cluster order is
            // shuffled downstream by evaluation protocols anyway).
            0
        } else {
            coverage.sample(index, rng).min(self.max_coverage)
        };
        let reads = (0..n)
            .map(|_| channel.corrupt(&reference, rng))
            .collect();
        Cluster::new(reference, reads)
    }
}

/// The hidden ground-truth channel behind the twin.
///
/// Effects stacked on top of a conditional IDS base model:
///
/// * terminal spatial skew — positions 0–1 inflated ~4×, the final
///   position ~8× (end ≈ 2× start, Fig. 3.2b);
/// * transition-biased substitution (A↔G, C↔T at ~0.7 probability);
/// * long deletions (0.33% of bases start a run; lengths 2:84%, 3:13%,
///   4:1.8%, 5:0.2%, 6:0.02%);
/// * per-read quality variation (lognormal noise multiplier);
/// * rare burst errors — ≥5 consecutive corrupted bases, a Nanopore
///   signature;
/// * homopolymer sensitivity — extra error rate inside runs of ≥3;
/// * second-order positional skew — `Insert(A)` concentrated at the strand
///   head and `T→C` at the tail (Fig. 3.6's structure).
#[derive(Debug, Clone, PartialEq)]
pub struct GroundTruthChannel {
    strand_len: usize,
    /// Per-kind base rates `[sub, del, ins]` before modulation.
    base_rates: [f64; 3],
    /// Probability a deletion event becomes a long run.
    long_del_given_del: f64,
    long_del_weights: [f64; 5],
    /// Per-read burst probability.
    burst_probability: f64,
    /// Probability a substitution targets the transition partner.
    partner_bias: f64,
    /// Spatial multipliers (mean 1.0).
    spatial: Vec<f64>,
}

impl GroundTruthChannel {
    /// Builds the channel with the paper's Nanopore profile.
    pub fn new(aggregate_error_rate: f64, strand_len: usize) -> GroundTruthChannel {
        GroundTruthChannel::with_profile(
            aggregate_error_rate,
            strand_len,
            TwinProfile::nanopore(),
        )
    }

    /// Builds the channel with an explicit [`TwinProfile`].
    pub fn with_profile(
        aggregate_error_rate: f64,
        strand_len: usize,
        profile: TwinProfile,
    ) -> GroundTruthChannel {
        // The per-read quality lognormal (mean e^{σ²/2}), homopolymer boost
        // and head-insertion bias all inflate the realised rate above the
        // nominal one; RATE_CALIBRATION rescales so the *measured* aggregate
        // matches `aggregate_error_rate` (validated by unit test).
        const RATE_CALIBRATION: f64 = 1.0 / 1.36;
        let scaled = aggregate_error_rate * RATE_CALIBRATION;
        let base_rates = [
            scaled * profile.kind_mix[0],
            scaled * profile.kind_mix[1],
            scaled * profile.kind_mix[2],
        ];
        // Terminal skew per profile, interior renormalised to mean 1.0.
        let mut spatial = vec![1.0f64; strand_len];
        if strand_len > profile.head_positions + profile.tail_positions {
            for m in spatial.iter_mut().take(profile.head_positions) {
                *m = profile.head_multiplier;
            }
            let tail_start = strand_len - profile.tail_positions;
            for m in spatial.iter_mut().skip(tail_start) {
                *m = profile.tail_multiplier;
            }
        }
        let mean = spatial.iter().sum::<f64>() / spatial.len().max(1) as f64;
        if mean > 0.0 {
            spatial.iter_mut().for_each(|m| *m /= mean);
        }
        GroundTruthChannel {
            strand_len,
            base_rates,
            long_del_given_del: 0.0033
                / (aggregate_error_rate * profile.kind_mix[1]).max(1e-9),
            long_del_weights: [0.84, 0.13, 0.018, 0.002, 0.0002],
            burst_probability: profile.burst_probability,
            partner_bias: profile.partner_bias,
            spatial,
        }
    }

    /// The spatial multiplier at `position`.
    pub fn spatial_multiplier(&self, position: usize) -> f64 {
        self.spatial.get(position).copied().unwrap_or(1.0)
    }

    fn sample_long_del_len(&self, rng: &mut SimRng) -> usize {
        let total: f64 = self.long_del_weights.iter().sum();
        let mut target = rng.random::<f64>() * total;
        for (i, &w) in self.long_del_weights.iter().enumerate() {
            target -= w;
            if target <= 0.0 {
                return i + 2;
            }
        }
        2
    }

    /// If the 4-mer context ending at `position` is an error hotspot,
    /// returns the (deterministic, context-derived) per-read miscall
    /// probability. Roughly 0.25% of contexts qualify, with strengths in
    /// [0.35, 0.85].
    fn hotspot_probability(&self, bases: &[Base], position: usize) -> Option<f64> {
        if position < 2 || position + 1 >= bases.len() {
            return None;
        }
        // FNV-1a over the 4-mer around the position, SplitMix64-finalised.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in &bases[position - 2..=position + 1] {
            h ^= b.index() as u64 + 1;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
        h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^= h >> 31;
        if h % 10_000 < 25 {
            // Strength derived from the hash: [0.35, 0.85].
            Some(0.35 + (h >> 32) as f64 / u32::MAX as f64 * 0.5)
        } else {
            None
        }
    }

    /// Substitution target with transition bias: the affinity partner at
    /// 0.7, each remaining base at 0.15. The tail of the strand further
    /// biases T→C (a second-order skew for the profiler to discover).
    fn substitution_target(&self, base: Base, position: usize, rng: &mut SimRng) -> Base {
        let tail = position * 10 >= self.strand_len * 9;
        let partner_p = if tail && base == Base::T {
            (self.partner_bias + 0.15).min(0.95)
        } else {
            self.partner_bias
        };
        let u: f64 = rng.random();
        if u < partner_p {
            base.transition_partner()
        } else {
            // One of the two non-partner alternatives.
            let partner = base.transition_partner();
            let mut pick = base.random_other(rng);
            while pick == partner {
                pick = base.random_other(rng);
            }
            pick
        }
    }
}

impl ErrorModel for GroundTruthChannel {
    fn corrupt(&self, reference: &Strand, rng: &mut SimRng) -> Strand {
        let bases = reference.as_bases();
        let mut read = Strand::with_capacity(bases.len() + 8);

        // Per-read quality multiplier: lognormal (σ = 0.45) — some reads
        // are noticeably noisier than others.
        let quality = {
            let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
            let u2: f64 = rng.random();
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            (0.45 * z).exp()
        };

        // Optional burst: a window of ≥5 consecutive corrupted positions.
        let burst: Option<(usize, usize)> = if !bases.is_empty()
            && rng.random::<f64>() < self.burst_probability
        {
            let len = 5 + rng.random_range(0..4usize);
            let start = rng.random_range(0..bases.len());
            Some((start, (start + len).min(bases.len())))
        } else {
            None
        };

        // Whole homopolymer runs of length ≥ 3 are error-boosted.
        let mut homopolymer = vec![false; bases.len()];
        let mut run_start = 0usize;
        for i in 1..=bases.len() {
            if i == bases.len() || bases[i] != bases[run_start] {
                if i - run_start >= 3 {
                    homopolymer[run_start..i].iter_mut().for_each(|m| *m = true);
                }
                run_start = i;
            }
        }

        let mut i = 0usize;
        while i < bases.len() {
            let base = bases[i];
            // Systematic, sequence-dependent error hotspots: certain local
            // contexts miscall with high probability in *every* read of the
            // cluster (a documented Nanopore failure mode). Majority voting
            // cannot outvote them, which is a key reason real data
            // reconstructs far worse than rate-matched uniform simulations.
            if let Some(p_hot) = self.hotspot_probability(bases, i) {
                if rng.random::<f64>() < p_hot {
                    read.push(base.transition_partner());
                    i += 1;
                    continue;
                }
            }

            if let Some((lo, hi)) = burst {
                if i >= lo && i < hi {
                    // Inside a burst: each base is substituted or deleted.
                    if rng.random::<f64>() < 0.5 {
                        read.push(base.random_other(rng));
                    }
                    i += 1;
                    continue;
                }
            }

            let spatial = self.spatial_multiplier(i);
            let homopolymer_boost = if homopolymer[i] { 1.8 } else { 1.0 };
            let modulation = (spatial * quality * homopolymer_boost).min(12.0);
            let p_sub = (self.base_rates[0] * modulation).min(0.45);
            let p_del = (self.base_rates[1] * modulation).min(0.45);
            // Insert(A) is concentrated at the strand head: double insertion
            // rate over the first tenth, biased to A (second-order skew).
            let head = i * 10 < self.strand_len;
            let p_ins = (self.base_rates[2] * modulation * if head { 2.0 } else { 0.9 })
                .min(0.45);

            let u: f64 = rng.random();
            if u < p_sub {
                read.push(self.substitution_target(base, i, rng));
            } else if u < p_sub + p_del {
                if rng.random::<f64>() < self.long_del_given_del {
                    i += self.sample_long_del_len(rng);
                    continue;
                }
                // single deletion: emit nothing
            } else if u < p_sub + p_del + p_ins {
                let inserted = if head && rng.random::<f64>() < 0.6 {
                    Base::A
                } else {
                    Base::random(rng)
                };
                read.push(inserted);
                read.push(base);
            } else {
                read.push(base);
            }
            i += 1;
        }
        read
    }

    fn name(&self) -> String {
        "nanopore-twin".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnasim_core::rng::seeded;
    use dnasim_metrics::levenshtein;

    #[test]
    fn generate_on_matches_generate_for_any_thread_count() {
        let mut config = NanoporeTwinConfig::small();
        config.cluster_count = 40;
        let serial = config.generate();
        for threads in [1, 2, 4, 8] {
            let par = config.generate_on(&ThreadPool::new(threads)).unwrap();
            assert_eq!(par, serial);
        }
    }

    #[test]
    fn generate_stream_matches_generate_at_any_batch_size() {
        let mut config = NanoporeTwinConfig::small();
        config.cluster_count = 30;
        let whole = config.generate();
        for batch_size in [1, 7, 30, usize::MAX] {
            for threads in [1, 4] {
                let mut streamed = Dataset::new();
                let stats = config
                    .generate_stream(batch_size, &ThreadPool::new(threads), &mut streamed)
                    .unwrap();
                assert_eq!(streamed, whole, "batch_size={batch_size} threads={threads}");
                assert_eq!(stats.clusters, 30);
                assert!(stats.high_watermark <= batch_size);
            }
        }
    }

    #[test]
    fn generate_stream_rejects_zero_batch() {
        let config = NanoporeTwinConfig::small();
        let mut out = Dataset::new();
        assert!(config
            .generate_stream(0, &ThreadPool::serial(), &mut out)
            .is_err());
    }

    #[test]
    fn small_twin_matches_configuration() {
        let config = NanoporeTwinConfig::small();
        let ds = config.generate();
        assert_eq!(ds.len(), 300);
        assert_eq!(ds.strand_len(), Some(110));
        assert_eq!(ds.erasure_count() >= 1, true);
        let (lo, hi) = ds.coverage_range().unwrap();
        assert_eq!(lo, 0);
        assert!(hi <= config.max_coverage);
        // Mean coverage near the configured value.
        assert!(
            (ds.mean_coverage() - config.mean_coverage).abs() < 4.0,
            "mean coverage {}",
            ds.mean_coverage()
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = NanoporeTwinConfig::small().generate();
        let b = NanoporeTwinConfig::small().generate();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut config = NanoporeTwinConfig::small();
        config.seed = 1;
        let a = config.generate();
        config.seed = 2;
        let b = config.generate();
        assert_ne!(a, b);
    }

    #[test]
    fn aggregate_error_rate_is_close_to_target() {
        let config = NanoporeTwinConfig::small();
        let ds = config.generate();
        let mut errors = 0usize;
        let mut bases = 0usize;
        for cluster in ds.iter().take(60) {
            for read in cluster.reads() {
                errors += levenshtein(cluster.reference().as_bases(), read.as_bases());
                bases += cluster.reference().len();
            }
        }
        let rate = errors as f64 / bases as f64;
        assert!(
            (rate - 0.059).abs() < 0.015,
            "aggregate error rate {rate}, expected ≈0.059"
        );
    }

    #[test]
    fn terminal_positions_are_noisier() {
        let channel = GroundTruthChannel::new(0.059, 110);
        assert!(channel.spatial_multiplier(0) > 2.0 * channel.spatial_multiplier(50));
        // End ≈ 2× start.
        assert!(channel.spatial_multiplier(109) > 1.5 * channel.spatial_multiplier(0));
        assert!(channel.spatial_multiplier(500) == 1.0);
    }

    #[test]
    fn substitutions_are_transition_biased() {
        let channel = GroundTruthChannel::new(0.5, 110);
        let mut rng = seeded(5);
        let mut partner = 0usize;
        let mut other = 0usize;
        for _ in 0..2000 {
            let t = channel.substitution_target(Base::A, 50, &mut rng);
            if t == Base::G {
                partner += 1;
            } else {
                other += 1;
            }
            assert_ne!(t, Base::A);
        }
        assert!(partner > 2 * other, "partner {partner} vs other {other}");
    }

    #[test]
    fn long_deletions_present_in_output() {
        // Crank the deletion rate so long runs are frequent enough to see.
        let channel = GroundTruthChannel::new(0.2, 200);
        let mut rng = seeded(6);
        let reference = Strand::random(200, &mut rng);
        let mut shrunk = 0usize;
        for _ in 0..200 {
            let read = channel.corrupt(&reference, &mut rng);
            if read.len() + 2 <= reference.len() {
                shrunk += 1;
            }
        }
        assert!(shrunk > 20, "only {shrunk} reads shrank by ≥2");
    }

    #[test]
    fn zero_error_channel_is_identity() {
        let channel = GroundTruthChannel::new(0.0, 50);
        let mut rng = seeded(7);
        let reference = Strand::random(50, &mut rng);
        // Bursts are still possible (1%); sample a read that avoided one.
        let mut identical = 0;
        for _ in 0..100 {
            if channel.corrupt(&reference, &mut rng) == reference {
                identical += 1;
            }
        }
        assert!(identical >= 95, "{identical}/100 identical");
    }

    #[test]
    fn paper_scale_default_config() {
        let config = NanoporeTwinConfig::default();
        assert_eq!(config.cluster_count, 10_000);
        assert_eq!(config.strand_len, 110);
        assert_eq!(config.erasure_count, 16);
        assert!((config.aggregate_error_rate - 0.059).abs() < 1e-12);
    }
}

#[cfg(test)]
mod profile_tests {
    use super::*;
    use dnasim_metrics::levenshtein;

    #[test]
    fn high_error_variant_differs_in_shape() {
        let a = GroundTruthChannel::new(0.059, 110);
        let b = GroundTruthChannel::with_profile(0.08, 110, TwinProfile::high_error_variant());
        // Nanopore: end hotter than start; variant: start hotter than end.
        assert!(a.spatial_multiplier(109) > a.spatial_multiplier(0));
        assert!(b.spatial_multiplier(0) > b.spatial_multiplier(109));
    }

    #[test]
    fn variant_config_hits_its_aggregate_rate() {
        let mut config = NanoporeTwinConfig::high_error_variant();
        config.cluster_count = 120;
        config.erasure_count = 0;
        let ds = config.generate();
        let (mut errors, mut bases) = (0usize, 0usize);
        for c in ds.iter().take(60) {
            for r in c.reads() {
                errors += levenshtein(c.reference().as_bases(), r.as_bases());
                bases += c.reference().len();
            }
        }
        let rate = errors as f64 / bases as f64;
        assert!((rate - 0.08).abs() < 0.02, "variant aggregate {rate}");
    }

    #[test]
    fn variant_is_insertion_heavier() {
        use dnasim_core::rng::seeded as seed;
        let nano = GroundTruthChannel::new(0.08, 110);
        let variant =
            GroundTruthChannel::with_profile(0.08, 110, TwinProfile::high_error_variant());
        let mut rng = seed(4);
        let mut nano_len = 0usize;
        let mut variant_len = 0usize;
        for _ in 0..300 {
            let r = Strand::random(110, &mut rng);
            nano_len += nano.corrupt(&r, &mut rng).len();
            variant_len += variant.corrupt(&r, &mut rng).len();
        }
        // Insertion-heavy mix yields longer reads on average.
        assert!(variant_len > nano_len, "{variant_len} !> {nano_len}");
    }
}
